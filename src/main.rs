//! `wfd` — command-line driver for the theorem harnesses.
//!
//! ```console
//! $ wfd list
//! $ wfd registers          5  0:200 1:300 2:400
//! $ wfd fig1-sigma         3  2:500
//! $ wfd consensus          5  0:100 1:200 2:300
//! $ wfd consensus-via-regs 3
//! $ wfd qc                 3
//! $ wfd fig3-psi           3
//! $ wfd nbac               4  3:5
//! $ wfd corollary3         3  2:400
//! ```
//!
//! Each subcommand runs one checker-validated harness on the failure
//! pattern given as `n` followed by `process:crash_time` pairs, printing
//! the verdict. Exit code 0 = the property held; 1 = violation; 2 = bad
//! usage.

use std::process::ExitCode;
use weakest_failure_detectors::core::theorems::{self, RunSetup};
use weakest_failure_detectors::prelude::*;

const HARNESSES: &[(&str, &str)] = &[
    (
        "registers",
        "Theorem 1 sufficiency: ABD over Σ, linearizability-checked",
    ),
    (
        "fig1-sigma",
        "Theorem 1 necessity: Figure 1 extraction, Σ-checked",
    ),
    (
        "consensus",
        "Corollary 4 sufficiency: (Ω,Σ) consensus, spec-checked",
    ),
    (
        "consensus-via-regs",
        "Corollary 2 route: Σ → registers → Disk-Paxos + Ω",
    ),
    (
        "chandra-toueg",
        "baseline: ◇S rotating coordinator (majority only)",
    ),
    (
        "qc",
        "Corollary 7 sufficiency: Figure 2 Ψ-QC (consensus mode)",
    ),
    (
        "fig3-psi",
        "Corollary 7 necessity: Figure 3 extraction, Ψ-checked",
    ),
    (
        "nbac",
        "Corollary 10: Figure 4 NBAC with unanimous Yes votes",
    ),
    (
        "corollary3",
        "necessity chain: consensus → SMR registers → Fig 1 → Σ",
    ),
];

fn usage() -> ExitCode {
    eprintln!("usage: wfd <harness> [n] [pid:crash_time ...]   (default n = 3)");
    eprintln!("       wfd list");
    eprintln!("\nharnesses:");
    for (name, desc) in HARNESSES {
        eprintln!("  {name:18} {desc}");
    }
    ExitCode::from(2)
}

fn parse_pattern(args: &[String]) -> Option<FailurePattern> {
    let n: usize = args.first().map_or(Some(3), |a| a.parse().ok())?;
    if n == 0 {
        return None;
    }
    let mut pattern = FailurePattern::failure_free(n);
    for spec in args.iter().skip(1) {
        let (p, t) = spec.split_once(':')?;
        let p: usize = p.parse().ok()?;
        let t: u64 = t.parse().ok()?;
        if p >= n {
            return None;
        }
        pattern = pattern.with_crash(ProcessId(p), t);
    }
    Some(pattern)
}

fn report<T: std::fmt::Debug, E: std::fmt::Display>(what: &str, r: Result<T, E>) -> ExitCode {
    match r {
        Ok(stats) => {
            println!("{what}: holds ✓");
            println!("  {stats:?}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            println!("{what}: VIOLATED — {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    if cmd == "list" {
        for (name, desc) in HARNESSES {
            println!("{name:18} {desc}");
        }
        return ExitCode::SUCCESS;
    }
    if !HARNESSES.iter().any(|(name, _)| name == cmd) {
        eprintln!("error: unknown harness '{cmd}'");
        return usage();
    }
    let Some(pattern) = parse_pattern(&args[1..]) else {
        return usage();
    };
    if pattern.correct().is_empty() {
        eprintln!("error: at least one process must stay correct");
        return ExitCode::from(2);
    }
    println!("pattern: {pattern}");
    let n = pattern.n();
    let setup = RunSetup::new(pattern).with_seed(7).with_horizon(250_000);
    let proposals: Vec<u64> = (0..n as u64).map(|i| 10 + i).collect();
    match cmd.as_str() {
        "registers" => report(
            "Σ-ABD linearizability",
            theorems::sigma_implements_registers(&setup),
        ),
        "fig1-sigma" => report(
            "Figure 1 Σ-extraction",
            theorems::registers_yield_sigma(&setup),
        ),
        "consensus" => report(
            "(Ω,Σ) consensus",
            theorems::omega_sigma_solves_consensus(&setup, &proposals),
        ),
        "consensus-via-regs" => report(
            "register-route consensus",
            theorems::consensus_via_registers(&setup, &proposals),
        ),
        "chandra-toueg" => report(
            "Chandra–Toueg consensus",
            theorems::chandra_toueg_consensus(&setup, &proposals),
        ),
        "qc" => report(
            "Ψ-QC (consensus mode)",
            theorems::psi_solves_qc(&setup, PsiMode::OmegaSigma, &proposals),
        ),
        "fig3-psi" => report(
            "Figure 3 Ψ-extraction",
            theorems::qc_yields_psi(&setup, PsiMode::OmegaSigma),
        ),
        "nbac" => {
            let votes: Vec<Option<Vote>> = (0..n)
                .map(|p| {
                    if setup.pattern.is_crashed(ProcessId(p), 0) {
                        None
                    } else {
                        Some(Vote::Yes)
                    }
                })
                .collect();
            report(
                "Figure 4 NBAC",
                theorems::qc_fs_solve_nbac(&setup, PsiMode::OmegaSigma, &votes),
            )
        }
        "corollary3" => report(
            "Corollary 3 Σ-chain",
            theorems::consensus_yields_sigma(&setup),
        ),
        _ => usage(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_defaults_to_three_processes() {
        let p = parse_pattern(&[]).expect("default");
        assert_eq!(p.n(), 3);
        assert!(p.is_failure_free());
    }

    #[test]
    fn parse_n_and_crashes() {
        let p = parse_pattern(&strs(&["5", "0:100", "2:300"])).expect("valid");
        assert_eq!(p.n(), 5);
        assert_eq!(p.crash_time(ProcessId(0)), Some(100));
        assert_eq!(p.crash_time(ProcessId(2)), Some(300));
        assert_eq!(p.num_faulty(), 2);
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!(parse_pattern(&strs(&["0"])).is_none(), "empty system");
        assert!(
            parse_pattern(&strs(&["3", "9:1"])).is_none(),
            "pid out of range"
        );
        assert!(
            parse_pattern(&strs(&["3", "junk"])).is_none(),
            "malformed spec"
        );
        assert!(parse_pattern(&strs(&["x"])).is_none(), "non-numeric n");
    }
}
