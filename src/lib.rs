//! # weakest-failure-detectors
//!
//! Facade crate for the executable reproduction of Delporte-Gallet,
//! Fauconnier, Guerraoui, Hadzilacos, Kouznetsov, Toueg — *"The Weakest
//! Failure Detectors to Solve Certain Fundamental Problems in Distributed
//! Computing"* (PODC 2004).
//!
//! Re-exports the whole workspace under stable module names:
//!
//! * [`sim`] — the asynchronous message-passing model (processes, crash
//!   failure patterns, environments, schedulers, traces).
//! * [`detectors`] — failure detector values, oracles (Ω, Σ, FS, Ψ, …),
//!   message-passing implementations and spec checkers.
//! * [`registers`] — atomic registers from Σ (ABD), the majority baseline,
//!   linearizability checking, and the Figure 1 Σ-extraction.
//! * [`consensus`] — consensus from (Ω, Σ), the register-based Ω algorithm,
//!   the Chandra–Toueg baseline, and the multivalued transformation.
//! * [`quittable`] — quittable consensus and the Figure 2 Ψ algorithm.
//! * [`extraction`] — CHT-style machinery and the Figure 3 Ψ-extraction.
//! * [`nbac`] — non-blocking atomic commit and the Figure 4/5
//!   transformations.
//! * [`core`] — the reduction framework and executable theorem harnesses.
//!
//! See the repository README for a guided tour and `examples/` for runnable
//! entry points.

pub use wfd_consensus as consensus;
pub use wfd_core as core;
pub use wfd_detectors as detectors;
pub use wfd_extraction as extraction;
pub use wfd_nbac as nbac;
pub use wfd_quittable as quittable;
pub use wfd_registers as registers;
pub use wfd_sim as sim;

/// Convenience prelude re-exporting the most common types of the workspace.
///
/// One `use weakest_failure_detectors::prelude::*;` is enough to run
/// simulations, explorations and the executable theorems: it pulls in the
/// per-crate staples from [`wfd_core::prelude`] (protocols, detectors,
/// registers, consensus, the engine) plus the cross-crate entry points
/// every example needs — the bounded explorer and its builder
/// ([`explore`](wfd_sim::explore()), [`ExploreConfig`](wfd_sim::ExploreConfig),
/// [`Hasher`](wfd_sim::Hasher)), the liveness checker
/// ([`check_liveness`](wfd_sim::check_liveness()),
/// [`LivenessConfig`](wfd_sim::LivenessConfig), [`Ltl`](wfd_sim::Ltl)),
/// the machine-layer replay entry point, reduction switches, and
/// state-space diagrams ([`Replay`](wfd_sim::Replay),
/// [`ReductionConfig`](wfd_sim::ReductionConfig),
/// [`Diagram`](wfd_sim::Diagram)),
/// the observability layer
/// ([`Obs`](wfd_sim::Obs), [`EnvOverrides`](wfd_sim::EnvOverrides)), the
/// theorem harnesses ([`theorems`](wfd_core::theorems)), and the ABD
/// op-history helpers.
pub mod prelude {
    pub use wfd_core::prelude::*;
    pub use wfd_core::theorems::{self, RunSetup};
    pub use wfd_registers::abd::{op_history_from_trace, AbdOp};
    pub use wfd_sim::{
        check_liveness, explore, Diagram, DiagramConfig, EnvOverrides, ExploreConfig, Hasher,
        LivenessConfig, LivenessReport, LivenessVerdict, Ltl, MetricsMode, NoDetector, Obs,
        ReductionConfig, Replay, TraceMode,
    };
}
