//! Executable theorem harnesses: one deterministic, checker-validated
//! experiment per direction of each of the paper's results.
//!
//! Every harness takes a [`RunSetup`] (failure pattern + seed + horizon),
//! assembles oracles, algorithms and workload, runs the simulation, and
//! returns the relevant checker's statistics — or its violation, which
//! for a correct implementation should never happen and is therefore a
//! `Result::Err` worth a test failure.

use wfd_consensus::chandra_toueg::ChandraToueg;
use wfd_consensus::register_omega::RegisterOmegaConsensus;
use wfd_consensus::spec::{check_consensus, ConsensusStats, ConsensusViolation};
use wfd_consensus::OmegaSigmaConsensus;
use wfd_detectors::check::{
    check_fs, check_psi, check_sigma, FsStats, FsViolation, PsiStats, PsiViolation, SigmaStats,
    SigmaViolation,
};
use wfd_detectors::history::history_from_outputs;
use wfd_detectors::oracles::{
    EventuallyStrongOracle, FsOracle, OmegaOracle, PairOracle, PsiMode, PsiOracle, SigmaOracle,
};
use wfd_detectors::{PsiValue, Signal};
use wfd_extraction::{PsiExtraction, PsiQcFamily};
use wfd_nbac::fs_from_nbac::FsFromNbac;
use wfd_nbac::spec::{check_nbac, NbacStats, NbacViolation};
use wfd_nbac::{NbacFromQc, QcFromNbac, Vote};
use wfd_quittable::spec::{check_qc, QcStats, QcViolation};
use wfd_quittable::{PsiQc, QcDecision};
use wfd_registers::abd::{op_history_from_trace, AbdOp, AbdRegister, QuorumRule};
use wfd_registers::linearizability::{check_linearizable, LinearizabilityError};
use wfd_registers::sigma_extraction::{initial_e_value, EValue, SigmaExtraction};
use wfd_sim::{FailurePattern, ProcessId, ProcessSet, RandomFair, Sim, SimConfig, Time};

/// Common knobs of a theorem-harness run.
#[derive(Clone, Debug)]
pub struct RunSetup {
    /// The failure pattern of the run.
    pub pattern: FailurePattern,
    /// Seed driving both oracle noise and the random-fair scheduler.
    pub seed: u64,
    /// Step horizon.
    pub horizon: u64,
    /// Stabilisation time handed to the oracles.
    pub stabilize: Time,
}

impl RunSetup {
    /// A setup with defaults scaled to the pattern (seed 0, horizon
    /// 60 000, oracle stabilisation shortly after the last crash).
    pub fn new(pattern: FailurePattern) -> Self {
        let stabilize = pattern.last_crash_time().unwrap_or(0) + 100;
        RunSetup {
            pattern,
            seed: 0,
            horizon: 60_000,
            stabilize,
        }
    }

    /// Override the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Override the horizon.
    pub fn with_horizon(mut self, horizon: u64) -> Self {
        self.horizon = horizon;
        self
    }

    /// Override the oracle stabilisation time.
    pub fn with_stabilize(mut self, t: Time) -> Self {
        self.stabilize = t;
        self
    }

    fn n(&self) -> usize {
        self.pattern.n()
    }
}

/// Evidence from a successful register run.
#[derive(Clone, Debug)]
pub struct RegisterEvidence {
    /// Operations that completed.
    pub completed_ops: usize,
    /// Operations left pending (e.g. invoker crashed).
    pub pending_ops: usize,
    /// Completed operations whose response came after the last crash —
    /// liveness evidence in post-crash territory.
    pub post_crash_completions: usize,
}

/// **Theorem 1, sufficiency**: with Σ, the ABD register is linearizable
/// and live in any environment. Runs a write/read workload on every
/// process and checks the reconstructed history.
///
/// # Errors
///
/// Returns the linearizability violation, should one occur.
pub fn sigma_implements_registers(
    setup: &RunSetup,
) -> Result<RegisterEvidence, LinearizabilityError> {
    let n = setup.n();
    let sigma = SigmaOracle::new(&setup.pattern, setup.stabilize, setup.seed)
        .with_jitter(setup.stabilize / 2 + 1);
    let mut sim = Sim::new(
        SimConfig::new(n).with_horizon(setup.horizon),
        (0..n)
            .map(|_| AbdRegister::new(QuorumRule::Detector, 0u64))
            .collect(),
        setup.pattern.clone(),
        sigma,
        RandomFair::new(setup.seed),
    );
    let spacing = (setup.stabilize / 2).max(50);
    for p in 0..n {
        for k in 0..4u64 {
            let t = k * spacing;
            sim.schedule_invoke(ProcessId(p), t, AbdOp::Write((p as u64 + 1) * 1_000 + k));
            sim.schedule_invoke(ProcessId(p), t + spacing / 2, AbdOp::Read);
        }
    }
    sim.run();
    let h = op_history_from_trace(sim.trace(), 0);
    check_linearizable(&h)?;
    let last_crash = setup.pattern.last_crash_time().unwrap_or(0);
    Ok(RegisterEvidence {
        completed_ops: h.completed().count(),
        pending_ops: h.pending().count(),
        post_crash_completions: h
            .completed()
            .filter(|o| o.response.expect("completed").0 > last_crash)
            .count(),
    })
}

/// **Theorem 1, necessity (Figure 1)**: the transformation extracts a
/// conforming Σ from a register implementation and its detector.
///
/// # Errors
///
/// Returns the Σ-spec violation, should one occur.
pub fn registers_yield_sigma(setup: &RunSetup) -> Result<SigmaStats, SigmaViolation> {
    let n = setup.n();
    let sigma = SigmaOracle::new(&setup.pattern, setup.stabilize, setup.seed)
        .with_jitter(setup.stabilize / 2 + 1);
    let mut sim = Sim::new(
        SimConfig::new(n).with_horizon(setup.horizon),
        (0..n)
            .map(|_| {
                SigmaExtraction::new(
                    n,
                    (0..n)
                        .map(|_| AbdRegister::new(QuorumRule::Detector, initial_e_value(n)))
                        .collect::<Vec<AbdRegister<EValue>>>(),
                )
            })
            .collect(),
        setup.pattern.clone(),
        sigma,
        RandomFair::new(setup.seed),
    );
    sim.run();
    let h = history_from_outputs(sim.trace(), |q: &ProcessSet| Some(q.clone()));
    check_sigma(&h, &setup.pattern)
}

/// **Corollary 3, the necessity chain for Σ**: a detector `D` that solves
/// consensus implements registers via state-machine replication, and the
/// Figure 1 transformation then extracts Σ from those registers — here
/// with `D` = (Ω, Σ), end to end:
/// `D → consensus → SMR registers → Figure 1 → Σ`.
///
/// # Errors
///
/// Returns the Σ-spec violation, should one occur.
pub fn consensus_yields_sigma(setup: &RunSetup) -> Result<SigmaStats, SigmaViolation> {
    use wfd_consensus::smr_register::RegisterFromConsensus;
    let n = setup.n();
    let fd = PairOracle::new(
        OmegaOracle::new(&setup.pattern, setup.stabilize, setup.seed),
        SigmaOracle::new(&setup.pattern, setup.stabilize, setup.seed),
    );
    let mut sim = Sim::new(
        SimConfig::new(n).with_horizon(setup.horizon),
        (0..n)
            .map(|_| {
                SigmaExtraction::new(
                    n,
                    (0..n)
                        .map(|_| RegisterFromConsensus::new(initial_e_value(n)))
                        .collect::<Vec<RegisterFromConsensus<EValue>>>(),
                )
            })
            .collect(),
        setup.pattern.clone(),
        fd,
        RandomFair::new(setup.seed),
    );
    sim.run();
    let h = history_from_outputs(sim.trace(), |q: &ProcessSet| Some(q.clone()));
    check_sigma(&h, &setup.pattern)
}

/// **Corollary 3, the necessity chain for (Ω, Σ) as a whole**: a detector
/// `D` solving consensus solves QC trivially (consensus never quits), and
/// the Figure 3 transformation extracts a detector behaving like (Ω, Σ)
/// from it — here with `D` = (Ω, Σ). The returned stats certify that the
/// emitted stream conforms to Ψ and settled in (Ω, Σ) mode, whose
/// post-switch projections satisfy Ω and Σ.
///
/// # Errors
///
/// Returns the Ψ-spec violation, should one occur.
pub fn consensus_yields_omega_sigma(setup: &RunSetup) -> Result<PsiStats, PsiViolation> {
    use wfd_extraction::OmegaSigmaQcFamily;
    let n = setup.n();
    let fd = PairOracle::new(
        OmegaOracle::new(&setup.pattern, setup.stabilize, setup.seed),
        SigmaOracle::new(&setup.pattern, setup.stabilize, setup.seed),
    );
    let mut sim = Sim::new(
        SimConfig::new(n).with_horizon(setup.horizon),
        (0..n)
            .map(|_| PsiExtraction::new(OmegaSigmaQcFamily).with_eval_interval(48))
            .collect(),
        setup.pattern.clone(),
        fd,
        RandomFair::new(setup.seed),
    );
    sim.run();
    let h = history_from_outputs(sim.trace(), |v: &PsiValue| Some(v.clone()));
    check_psi(&h, &setup.pattern)
}

/// **Corollary 2/4, sufficiency**: (Ω, Σ) solves consensus in any
/// environment (the quorum-based algorithm).
///
/// # Errors
///
/// Returns the consensus violation, should one occur.
pub fn omega_sigma_solves_consensus(
    setup: &RunSetup,
    proposals: &[u64],
) -> Result<ConsensusStats<u64>, ConsensusViolation<u64>> {
    let n = setup.n();
    assert_eq!(proposals.len(), n, "one proposal per process");
    let fd = PairOracle::new(
        OmegaOracle::new(&setup.pattern, setup.stabilize, setup.seed)
            .with_jitter(setup.stabilize / 2 + 1),
        SigmaOracle::new(&setup.pattern, setup.stabilize, setup.seed)
            .with_jitter(setup.stabilize / 2 + 1),
    );
    let mut sim = Sim::new(
        SimConfig::new(n).with_horizon(setup.horizon),
        (0..n).map(|_| OmegaSigmaConsensus::<u64>::new()).collect(),
        setup.pattern.clone(),
        fd,
        RandomFair::new(setup.seed),
    );
    for (p, &v) in proposals.iter().enumerate() {
        sim.schedule_invoke(ProcessId(p), 0, v);
    }
    let correct = setup.pattern.correct();
    sim.run_until(move |_, procs| {
        procs
            .iter()
            .enumerate()
            .all(|(i, p)| !correct.contains(ProcessId(i)) || p.decision().is_some())
    });
    let props: Vec<Option<u64>> = proposals.iter().copied().map(Some).collect();
    check_consensus(sim.trace(), &props, &setup.pattern)
}

/// **Corollary 2, the paper's construction route**: consensus via
/// Σ-backed registers plus Ω (Disk-Paxos over hosted ABD registers).
///
/// # Errors
///
/// Returns the consensus violation, should one occur.
pub fn consensus_via_registers(
    setup: &RunSetup,
    proposals: &[u64],
) -> Result<ConsensusStats<u64>, ConsensusViolation<u64>> {
    let n = setup.n();
    assert_eq!(proposals.len(), n, "one proposal per process");
    let fd = PairOracle::new(
        OmegaOracle::new(&setup.pattern, setup.stabilize, setup.seed),
        SigmaOracle::new(&setup.pattern, setup.stabilize, setup.seed),
    );
    let mut sim = Sim::new(
        SimConfig::new(n).with_horizon(setup.horizon),
        (0..n)
            .map(|_| RegisterOmegaConsensus::<u64>::new(n))
            .collect(),
        setup.pattern.clone(),
        fd,
        RandomFair::new(setup.seed),
    );
    for (p, &v) in proposals.iter().enumerate() {
        sim.schedule_invoke(ProcessId(p), 0, v);
    }
    let correct = setup.pattern.correct();
    sim.run_until(move |_, procs| {
        procs
            .iter()
            .enumerate()
            .all(|(i, p)| !correct.contains(ProcessId(i)) || p.decision().is_some())
    });
    let props: Vec<Option<u64>> = proposals.iter().copied().map(Some).collect();
    check_consensus(sim.trace(), &props, &setup.pattern)
}

/// **Baseline (experiment E9)**: Chandra–Toueg ◇S consensus. Conforms
/// only under a correct majority; used to exhibit the crossover against
/// (Ω, Σ).
///
/// # Errors
///
/// Returns the consensus violation — including the expected
/// `Termination` failures when a majority has crashed.
pub fn chandra_toueg_consensus(
    setup: &RunSetup,
    proposals: &[u64],
) -> Result<ConsensusStats<u64>, ConsensusViolation<u64>> {
    let n = setup.n();
    assert_eq!(proposals.len(), n, "one proposal per process");
    let fd = EventuallyStrongOracle::new(&setup.pattern, setup.stabilize, setup.seed);
    let mut sim = Sim::new(
        SimConfig::new(n).with_horizon(setup.horizon),
        (0..n).map(|_| ChandraToueg::<u64>::new()).collect(),
        setup.pattern.clone(),
        fd,
        RandomFair::new(setup.seed),
    );
    for (p, &v) in proposals.iter().enumerate() {
        sim.schedule_invoke(ProcessId(p), 0, v);
    }
    let correct = setup.pattern.correct();
    sim.run_until(move |_, procs| {
        procs
            .iter()
            .enumerate()
            .all(|(i, p)| !correct.contains(ProcessId(i)) || p.decision().is_some())
    });
    let props: Vec<Option<u64>> = proposals.iter().copied().map(Some).collect();
    check_consensus(sim.trace(), &props, &setup.pattern)
}

/// **Corollary 7, sufficiency (Figure 2)**: Ψ solves QC. `mode` selects
/// which behaviour the Ψ history commits to (`Fs` requires the pattern to
/// contain a crash).
///
/// # Errors
///
/// Returns the QC violation, should one occur.
pub fn psi_solves_qc(
    setup: &RunSetup,
    mode: PsiMode,
    proposals: &[u64],
) -> Result<QcStats<u64>, QcViolation<u64>> {
    let n = setup.n();
    assert_eq!(proposals.len(), n, "one proposal per process");
    let psi = PsiOracle::new(&setup.pattern, mode, setup.stabilize, 30, setup.seed);
    let mut sim = Sim::new(
        SimConfig::new(n).with_horizon(setup.horizon),
        (0..n).map(|_| PsiQc::<u64>::new()).collect(),
        setup.pattern.clone(),
        psi,
        RandomFair::new(setup.seed),
    );
    for (p, &v) in proposals.iter().enumerate() {
        sim.schedule_invoke(ProcessId(p), 0, v);
    }
    let correct = setup.pattern.correct();
    sim.run_until(move |_, procs| {
        procs
            .iter()
            .enumerate()
            .all(|(i, p)| !correct.contains(ProcessId(i)) || p.decision().is_some())
    });
    let props: Vec<Option<u64>> = proposals.iter().copied().map(Some).collect();
    check_qc(sim.trace(), &props, &setup.pattern)
}

/// **Corollary 7, necessity (Figure 3)**: the transformation extracts a
/// conforming Ψ from a QC algorithm and its detector.
///
/// # Errors
///
/// Returns the Ψ-spec violation, should one occur.
pub fn qc_yields_psi(setup: &RunSetup, mode: PsiMode) -> Result<PsiStats, PsiViolation> {
    let n = setup.n();
    let psi = PsiOracle::new(&setup.pattern, mode, setup.stabilize, 20, setup.seed);
    let mut sim = Sim::new(
        SimConfig::new(n).with_horizon(setup.horizon),
        (0..n)
            .map(|_| PsiExtraction::new(PsiQcFamily).with_eval_interval(48))
            .collect(),
        setup.pattern.clone(),
        psi,
        RandomFair::new(setup.seed),
    );
    sim.run();
    let h = history_from_outputs(sim.trace(), |v: &PsiValue| Some(v.clone()));
    check_psi(&h, &setup.pattern)
}

/// **Theorem 8(a) / Figure 4**: QC + FS solve NBAC. `votes[p] = None`
/// means `p` never votes (e.g. it crashes first).
///
/// # Errors
///
/// Returns the NBAC violation, should one occur.
pub fn qc_fs_solve_nbac(
    setup: &RunSetup,
    mode: PsiMode,
    votes: &[Option<Vote>],
) -> Result<NbacStats, NbacViolation> {
    let n = setup.n();
    assert_eq!(votes.len(), n, "one vote slot per process");
    let fd = PairOracle::new(
        FsOracle::new(&setup.pattern, 30, setup.seed),
        PsiOracle::new(&setup.pattern, mode, setup.stabilize, 30, setup.seed),
    );
    let mut sim = Sim::new(
        SimConfig::new(n).with_horizon(setup.horizon),
        (0..n)
            .map(|_| NbacFromQc::new(n, PsiQc::<u8>::new()))
            .collect(),
        setup.pattern.clone(),
        fd,
        RandomFair::new(setup.seed),
    );
    for (p, v) in votes.iter().enumerate() {
        if let Some(v) = v {
            sim.schedule_invoke(ProcessId(p), 0, *v);
        }
    }
    let correct = setup.pattern.correct();
    sim.run_until(move |_, procs| {
        procs
            .iter()
            .enumerate()
            .all(|(i, p)| !correct.contains(ProcessId(i)) || p.decision().is_some())
    });
    check_nbac(sim.trace(), &setup.pattern)
}

/// **Theorem 8(b) / Figure 5**: NBAC solves QC (run over the in-repo
/// NBAC, which is Figure 4 over Ψ-QC).
///
/// # Errors
///
/// Returns the QC violation, should one occur.
pub fn nbac_yields_qc(
    setup: &RunSetup,
    mode: PsiMode,
    proposals: &[Option<u8>],
) -> Result<QcStats<u8>, QcViolation<u8>> {
    let n = setup.n();
    assert_eq!(proposals.len(), n, "one proposal slot per process");
    let fd = PairOracle::new(
        FsOracle::new(&setup.pattern, 30, setup.seed),
        PsiOracle::new(&setup.pattern, mode, setup.stabilize, 30, setup.seed),
    );
    let mut sim = Sim::new(
        SimConfig::new(n).with_horizon(setup.horizon),
        (0..n)
            .map(|_| QcFromNbac::new(n, NbacFromQc::new(n, PsiQc::<u8>::new())))
            .collect(),
        setup.pattern.clone(),
        fd,
        RandomFair::new(setup.seed),
    );
    for (p, v) in proposals.iter().enumerate() {
        if let Some(v) = v {
            sim.schedule_invoke(ProcessId(p), 0, *v);
        }
    }
    let correct = setup.pattern.correct();
    sim.run_until(move |_, procs| {
        procs
            .iter()
            .enumerate()
            .all(|(i, p)| !correct.contains(ProcessId(i)) || p.decision().is_some())
    });
    check_qc(sim.trace(), proposals, &setup.pattern)
}

/// **Theorem 8(b), second half**: repeated unanimous-`Yes` NBAC
/// implements FS.
///
/// # Errors
///
/// Returns the FS violation, should one occur.
pub fn nbac_yields_fs(setup: &RunSetup, mode: PsiMode) -> Result<FsStats, FsViolation> {
    let n = setup.n();
    let fd = PairOracle::new(
        FsOracle::new(&setup.pattern, 30, setup.seed),
        PsiOracle::new(&setup.pattern, mode, setup.stabilize, 30, setup.seed),
    );
    let mut sim = Sim::new(
        SimConfig::new(n).with_horizon(setup.horizon),
        (0..n)
            .map(|_| FsFromNbac::new(move || NbacFromQc::new(n, PsiQc::<u8>::new())))
            .collect(),
        setup.pattern.clone(),
        fd,
        RandomFair::new(setup.seed),
    );
    sim.run();
    let h = history_from_outputs(sim.trace(), |s: &Signal| Some(*s));
    check_fs(&h, &setup.pattern)
}

/// Convenience: the decision of a QC stats object, for terse assertions.
pub fn qc_decided_value<V: Clone>(stats: &QcStats<V>) -> Option<QcDecision<V>> {
    stats.decision.clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfd_nbac::Decision;

    fn majority_crash_pattern() -> FailurePattern {
        FailurePattern::with_crashes(
            5,
            &[
                (ProcessId(0), 100),
                (ProcessId(1), 200),
                (ProcessId(2), 300),
            ],
        )
    }

    #[test]
    fn theorem1_sufficiency_harness() {
        let setup = RunSetup::new(majority_crash_pattern()).with_horizon(40_000);
        let ev = sigma_implements_registers(&setup).expect("linearizable");
        assert!(ev.completed_ops > 0);
        assert!(ev.post_crash_completions > 0);
    }

    #[test]
    fn theorem1_necessity_harness() {
        let setup = RunSetup::new(FailurePattern::failure_free(3)).with_horizon(30_000);
        let stats = registers_yield_sigma(&setup).expect("Σ extracted");
        assert!(stats.samples > 3);
    }

    #[test]
    fn corollary4_sufficiency_harness() {
        let setup = RunSetup::new(majority_crash_pattern()).with_horizon(60_000);
        let stats = omega_sigma_solves_consensus(&setup, &[1, 2, 3, 4, 5]).expect("consensus");
        assert!(stats.decision.is_some());
    }

    #[test]
    fn corollary3_consensus_to_sigma_chain() {
        let setup = RunSetup::new(FailurePattern::failure_free(3))
            .with_seed(3)
            .with_horizon(120_000);
        let stats = consensus_yields_sigma(&setup).expect("Σ from consensus via SMR + Fig 1");
        assert!(
            stats.samples > 6,
            "extraction should emit quorums beyond the initial Π"
        );
    }

    #[test]
    fn corollary3_chain_sheds_crashed_processes() {
        // The completeness half with a real crash: the extracted Σ must
        // eventually stop quoting the crashed process, which requires the
        // SMR registers to report genuine (quorum) participants.
        let pattern = FailurePattern::with_crashes(3, &[(ProcessId(2), 400)]);
        let setup = RunSetup::new(pattern).with_seed(5).with_horizon(250_000);
        let stats = consensus_yields_sigma(&setup).expect("Σ conforms despite the crash");
        assert!(stats.stabilization_time().is_some());
    }

    #[test]
    fn corollary3_consensus_to_omega_sigma_chain() {
        use wfd_detectors::check::PsiPhase;
        let setup = RunSetup::new(FailurePattern::failure_free(3))
            .with_seed(2)
            .with_horizon(150_000);
        let stats =
            consensus_yields_omega_sigma(&setup).expect("(Ω,Σ)-mode Ψ from consensus-as-QC");
        assert_eq!(stats.phase, PsiPhase::OmegaSigma);
    }

    #[test]
    fn corollary2_register_route_harness() {
        let setup = RunSetup::new(FailurePattern::failure_free(3)).with_horizon(80_000);
        let stats = consensus_via_registers(&setup, &[7, 8, 9]).expect("consensus");
        assert!(stats.decision.is_some());
    }

    #[test]
    fn baseline_ct_works_with_majority_only() {
        let ok = RunSetup::new(FailurePattern::with_crashes(5, &[(ProcessId(0), 50)]))
            .with_horizon(60_000);
        chandra_toueg_consensus(&ok, &[1, 2, 3, 4, 5]).expect("CT with majority");

        // Crash the majority at t = 0: with late crash times a fast
        // schedule can legitimately decide before any crash occurs, so
        // an immediate majority loss is the only schedule-independent way
        // to exhibit the blocking.
        let bad = RunSetup::new(FailurePattern::with_crashes(
            5,
            &[(ProcessId(0), 0), (ProcessId(1), 0), (ProcessId(2), 0)],
        ))
        .with_horizon(20_000);
        let err = chandra_toueg_consensus(&bad, &[1, 2, 3, 4, 5])
            .expect_err("CT must fail without a majority");
        assert!(matches!(err, ConsensusViolation::Termination { .. }));
    }

    #[test]
    fn corollary7_sufficiency_harness() {
        let setup = RunSetup::new(FailurePattern::failure_free(3)).with_horizon(60_000);
        let stats = psi_solves_qc(&setup, PsiMode::OmegaSigma, &[1, 0, 1]).expect("QC solved");
        assert!(matches!(stats.decision, Some(QcDecision::Value(_))));

        let crashy = RunSetup::new(FailurePattern::with_crashes(3, &[(ProcessId(1), 30)]))
            .with_horizon(40_000);
        let stats = psi_solves_qc(&crashy, PsiMode::Fs, &[1, 0, 1]).expect("QC solved");
        assert_eq!(stats.decision, Some(QcDecision::Quit));
    }

    #[test]
    fn theorem8_nbac_harnesses() {
        let setup = RunSetup::new(FailurePattern::failure_free(3)).with_horizon(80_000);
        let votes = vec![Some(Vote::Yes); 3];
        let stats = qc_fs_solve_nbac(&setup, PsiMode::OmegaSigma, &votes).expect("NBAC");
        assert_eq!(stats.decision, Some(Decision::Commit));

        let qc = nbac_yields_qc(&setup, PsiMode::OmegaSigma, &[Some(1), Some(0), Some(1)])
            .expect("QC from NBAC");
        assert_eq!(qc.decision, Some(QcDecision::Value(0)));
    }

    #[test]
    fn nbac_yields_fs_harness() {
        let setup = RunSetup::new(FailurePattern::with_crashes(3, &[(ProcessId(2), 500)]))
            .with_horizon(80_000)
            .with_stabilize(50);
        let stats = nbac_yields_fs(&setup, PsiMode::OmegaSigma).expect("FS from NBAC");
        assert!(stats.first_red.is_some());
    }
}
