//! # wfd-core — the paper's results as an executable API
//!
//! This umbrella crate ties the workspace together: it re-exports the
//! building blocks and packages each of the paper's four weakest-failure-
//! detector results as a pair of runnable *theorem harnesses* (one per
//! direction) in [`theorems`]. Each harness assembles the full stack —
//! oracle detectors, algorithms, simulator, property checkers — runs one
//! deterministic experiment, and returns the checker's verdict:
//!
//! | Result (paper) | Sufficiency harness | Necessity harness |
//! |---|---|---|
//! | Theorem 1: Σ ⇔ registers | [`theorems::sigma_implements_registers`] | [`theorems::registers_yield_sigma`] (Fig 1) |
//! | Corollary 4: (Ω, Σ) ⇔ consensus | [`theorems::omega_sigma_solves_consensus`], [`theorems::consensus_via_registers`] | via Theorem 1 + CHT (see DESIGN.md) |
//! | Corollary 7: Ψ ⇔ QC | [`theorems::psi_solves_qc`] (Fig 2) | [`theorems::qc_yields_psi`] (Fig 3) |
//! | Theorem 8 / Corollary 10: (Ψ, FS) ⇔ NBAC | [`theorems::qc_fs_solve_nbac`] (Fig 4) | [`theorems::nbac_yields_qc`] (Fig 5), [`theorems::nbac_yields_fs`] |
//!
//! ```
//! use wfd_core::theorems::{self, RunSetup};
//! use wfd_sim::{FailurePattern, ProcessId};
//!
//! // Σ keeps registers linearizable even with a crashed majority:
//! let pattern = FailurePattern::with_crashes(
//!     5,
//!     &[(ProcessId(0), 200), (ProcessId(1), 300), (ProcessId(2), 400)],
//! );
//! let setup = RunSetup::new(pattern).with_seed(7);
//! let evidence = theorems::sigma_implements_registers(&setup)?;
//! assert!(evidence.completed_ops > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod theorems;

/// Convenience re-exports of the most common workspace types.
pub mod prelude {
    pub use wfd_consensus::{
        chandra_toueg::ChandraToueg, check_consensus, ConsensusOutput, ConsensusStats,
        ConsensusViolation, OmegaSigmaConsensus,
    };
    pub use wfd_detectors::check::{check_fs, check_omega, check_psi, check_sigma, PsiPhase};
    pub use wfd_detectors::history::history_from_outputs;
    pub use wfd_detectors::impls::{HeartbeatOmega, MajoritySigma, TimeoutFs};
    pub use wfd_detectors::oracles::{
        FsOracle, OmegaOracle, PairOracle, PsiMode, PsiOracle, SigmaOracle,
    };
    pub use wfd_detectors::reductions::{
        FsFromPerfect, OmegaFromEventuallyPerfect, PsiFromOmegaSigma,
    };
    pub use wfd_detectors::{History, OmegaSigma, PsiValue, Recorder, Signal};
    pub use wfd_extraction::{OmegaSigmaQcFamily, PsiExtraction, PsiQcFamily};
    pub use wfd_nbac::{
        check_nbac, Decision, NbacFromQc, NbacOutput, NbacStats, NbacViolation, QcFromNbac, Vote,
    };
    pub use wfd_quittable::{check_qc, ConsensusAsQc, PsiQc, QcDecision, QcStats, QcViolation};
    pub use wfd_registers::sigma_extraction::SigmaExtraction;
    pub use wfd_registers::transformations::{MwmrFromSwmr, SwmrRegister};
    pub use wfd_registers::{check_linearizable, AbdRegister, OpHistory, QuorumRule};
    pub use wfd_sim::{
        Adversarial, Ctx, Environment, FailurePattern, FdOracle, PatternSampler, ProcessId,
        ProcessSet, Protocol, RandomFair, RoundRobin, Sim, SimConfig, Time, Trace,
    };
}
