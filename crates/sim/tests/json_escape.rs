//! String-escaping coverage for `wfd_sim::json`.
//!
//! Lint diagnostics embed arbitrary source excerpts (quotes, escapes,
//! control characters, non-ASCII) in their JSON reports, so the escaping
//! path is now load-bearing for more than repro artifacts: every byte a
//! source file can contain must survive a render→parse round trip.

use wfd_sim::json::{escape, render_validated, Json};

fn round_trip(s: &str) -> String {
    let rendered = Json::Str(s.to_string()).to_string();
    Json::parse(&rendered)
        .unwrap_or_else(|e| panic!("rendering of {s:?} must parse back: {e}"))
        .as_str()
        .expect("a string renders to a string")
        .to_string()
}

#[test]
fn quotes_and_backslashes() {
    for s in [
        "\"",
        "\\",
        "\\\"",
        "a\"b",
        "a\\b",
        "ends with backslash\\",
        "\\\\\\", // three backslashes
        "say \\\"hi\\\"",
        r#"let s = "nested \"deep\" quote";"#,
    ] {
        assert_eq!(round_trip(s), s);
    }
}

#[test]
fn every_control_character_escapes_and_parses() {
    // All of U+0000..U+001F, each alone and embedded.
    for code in 0u32..0x20 {
        let c = char::from_u32(code).expect("control chars are scalar values");
        let alone = c.to_string();
        assert_eq!(round_trip(&alone), alone, "control char {code:#04x}");
        let embedded = format!("a{c}b");
        assert_eq!(round_trip(&embedded), embedded, "embedded {code:#04x}");
        // The rendered form must stay ASCII: raw control bytes inside a
        // JSON string are invalid per RFC 8259.
        let rendered = Json::Str(alone).to_string();
        assert!(
            rendered.chars().all(|ch| (ch as u32) >= 0x20),
            "rendered {code:#04x} must not contain raw control bytes: {rendered:?}"
        );
    }
}

#[test]
fn named_escapes_render_compactly() {
    assert_eq!(escape("\n"), "\"\\n\"");
    assert_eq!(escape("\r"), "\"\\r\"");
    assert_eq!(escape("\t"), "\"\\t\"");
    assert_eq!(escape("\u{1}"), "\"\\u0001\"");
    assert_eq!(escape("\u{1f}"), "\"\\u001f\"");
    assert_eq!(escape("plain"), "\"plain\"");
}

#[test]
fn non_ascii_passes_through_verbatim() {
    for s in [
        "é",
        "uni→code",
        "日本語のコメント",
        "emoji 🦀 in a source line",
        "mixed \"quotes\" → and 中文 with \t tabs",
        "\u{7f}",            // DEL is not < 0x20: passes through raw, still valid JSON
        "\u{2028}",          // line separator: legal raw inside JSON strings
        "a\u{0}b\u{1F600}c", // NUL next to an astral-plane scalar
    ] {
        assert_eq!(round_trip(s), s);
    }
}

#[test]
fn source_excerpt_shapes_survive() {
    // The kinds of lines wfd-lint embeds as excerpts.
    for s in [
        r#"let t_start = obs.is_on().then(Instant::now); // wfd-lint: allow(d2-wall-clock, reason)"#,
        "write!(w, \"{procs:?}|{inboxes:?}\")",
        "let s = r#\"raw \"quoted\" text\"#;",
        "\tindented\twith\ttabs",
    ] {
        assert_eq!(round_trip(s), s);
    }
}

#[test]
fn escaping_composes_inside_nested_values() {
    let v = Json::Obj(vec![
        ("k\"ey".into(), Json::str("v\\al\nue")),
        (
            "arr".into(),
            Json::Arr(vec![Json::str("\u{2}"), Json::str("日本")]),
        ),
    ]);
    let rendered = render_validated(&v);
    let back = Json::parse(&rendered).expect("validated render parses");
    assert_eq!(back.get("k\"ey").and_then(Json::as_str), Some("v\\al\nue"));
    let arr = back.get("arr").and_then(Json::as_array).expect("arr");
    assert_eq!(arr[0].as_str(), Some("\u{2}"));
    assert_eq!(arr[1].as_str(), Some("日本"));
}

#[test]
fn render_validated_returns_the_plain_rendering() {
    let v = Json::Obj(vec![("n".into(), Json::u64(7))]);
    assert_eq!(render_validated(&v), v.to_string());
}

#[test]
#[should_panic(expected = "round-trip")]
fn render_validated_catches_corrupt_numbers() {
    // Num keeps raw tokens; a garbage token is the one way a caller can
    // build an unserializable value, and the shared emit path must catch
    // it before it reaches an artifact.
    let v = Json::Obj(vec![("n".into(), Json::Num("not-a-number".into()))]);
    let _ = render_validated(&v);
}
