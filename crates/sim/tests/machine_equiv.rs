//! The sixth 40-seed equivalence ladder: every consumer of the unified
//! `Machine` transition system — the engine's run loop, the bounded
//! explorer, and the liveness checker's fair graph — must produce
//! byte-identical results across worker counts and agree with the
//! retained pre-refactor loop (`explore_baseline`, kept verbatim as the
//! differential anchor). A divergence anywhere means the machine-layer
//! rebase changed semantics, not just structure.
//!
//! Plus the golden-file diagram gate: `wfd_sim::diagram` output is
//! checked byte-for-byte against committed `.dot`/`.mmd` files, and
//! structurally (balanced braces, declared node ids only) — so renderer
//! drift cannot land silently.
//!
//! Thread counts are pinned through [`ExploreConfig::with_threads`] /
//! [`LivenessConfig::with_threads`]; the explicit value takes the same
//! path as `WFD_EXPLORE_THREADS` (see `EnvOverrides`), without the
//! cross-test env races.

use wfd_sim::explore_baseline::explore_baseline;
use wfd_sim::liveness::fixtures::{Decider, PingPong};
use wfd_sim::{
    check_liveness, explore, Ctx, Diagram, DiagramConfig, ExploreConfig, ExploreReport,
    FailurePattern, FingerprintHasher, Footprint, Hasher, LivenessConfig, Ltl, NoDetector,
    ProcessId, Protocol, RandomFair, RecordedSchedule, ReplaySchedule, Sim, SimConfig, StepKind,
    Symmetry, Time,
};

/// The seed family: a two-process broadcast/relay protocol whose tree
/// shape, outputs and verdict vary with every parameter (the same design
/// as the dedup ladders' `Mixer`, duplicated here so this ladder stays
/// self-contained).
#[derive(Clone, Debug, PartialEq)]
struct Mixer {
    burst: u64,
    mult: u64,
    acc: u64,
    relays_left: u64,
}

impl Mixer {
    fn family(seed: u64) -> Self {
        Mixer {
            burst: 1 + seed % 3,
            mult: 3 + seed % 5,
            acc: seed % 7,
            relays_left: seed % 2,
        }
    }
}

impl Protocol for Mixer {
    type Msg = u64;
    type Output = u64;
    type Inv = ();
    type Fd = ();

    fn on_start(&mut self, ctx: &mut Ctx<Self>) {
        for tag in 0..self.burst {
            ctx.broadcast_others(tag);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<Self>, _from: ProcessId, tag: u64) {
        self.acc = self.acc.wrapping_mul(self.mult).wrapping_add(tag);
        ctx.output(self.acc);
        if self.relays_left > 0 && tag > 0 {
            self.relays_left -= 1;
            ctx.broadcast_others(tag - 1);
        }
    }

    fn footprint(&self, me: ProcessId, n: usize, step: StepKind<'_, Self>) -> Footprint {
        match step {
            StepKind::Start { .. } => Footprint::local().sends_to_others(n, me),
            StepKind::Tick => Footprint::local(),
            StepKind::Deliver { msg: tag, .. } => {
                let fp = Footprint::local().outputs();
                if self.relays_left > 0 && *tag > 0 {
                    fp.sends_to_others(n, me)
                } else {
                    fp
                }
            }
        }
    }

    fn symmetry(_n: usize) -> Symmetry {
        Symmetry::Full
    }
}

fn family_pattern(seed: u64) -> FailurePattern {
    if seed.is_multiple_of(4) {
        FailurePattern::failure_free(2).with_crash(ProcessId(1), (seed % 5) as Time)
    } else {
        FailurePattern::failure_free(2)
    }
}

fn run_explore(seed: u64, threads: usize) -> ExploreReport {
    let pattern = family_pattern(seed);
    let bar = 20 + (seed % 30);
    explore(
        ExploreConfig::new(4 + (seed as usize % 4))
            .with_max_states(500_000)
            .with_hasher(Hasher::Fingerprint)
            .with_threads(threads),
        move || (0..2).map(|_| Mixer::family(seed)).collect::<Vec<_>>(),
        vec![None, None],
        &pattern,
        NoDetector,
        move |_procs: &[Mixer], outputs: &[(ProcessId, u64)]| match outputs
            .iter()
            .find(|(_, acc)| *acc > bar)
        {
            Some((p, acc)) => Err(format!("{p} accumulated {acc} > {bar}")),
            None => Ok(()),
        },
    )
}

/// Ladder leg 1 — explorer: the Machine-backed loop at 1/2/4 workers is
/// byte-identical modulo the informational `threads_used`, and agrees
/// with the pre-refactor baseline loop on everything the baseline's
/// classic DFS order defines (verdict, flags, distinct-state coverage).
#[test]
fn explorer_matches_baseline_and_is_thread_invariant() {
    let mut violating = 0;
    for seed in 0..40u64 {
        let pattern = family_pattern(seed);
        let bar = 20 + (seed % 30);
        let baseline = explore_baseline(
            ExploreConfig::new(4 + (seed as usize % 4)).with_max_states(500_000),
            FingerprintHasher,
            move || (0..2).map(|_| Mixer::family(seed)).collect::<Vec<_>>(),
            vec![None, None],
            &pattern,
            NoDetector,
            move |_procs: &[Mixer], outputs: &[(ProcessId, u64)]| match outputs
                .iter()
                .find(|(_, acc)| *acc > bar)
            {
                Some((p, acc)) => Err(format!("{p} accumulated {acc} > {bar}")),
                None => Ok(()),
            },
        );
        let one = run_explore(seed, 1);
        // Baseline vs Machine-backed: the traversal order differs by
        // design (classic DFS vs batched), so anything downstream of an
        // early stop is order-shaped. The verdict itself must agree; on
        // exhaustive sweeps (no violation, so both walked the whole
        // space) the bound flags and the distinct-state coverage must be
        // identical too; on violating seeds each witness must actually
        // replay to its reported message.
        assert_eq!(
            baseline.violation.is_some(),
            one.violation.is_some(),
            "seed {seed}: machine loop changed the verdict\n{baseline:?}\nvs\n{one:?}"
        );
        if one.violation.is_none() {
            assert!(
                baseline.depth_bounded == one.depth_bounded
                    && baseline.states_capped == one.states_capped
                    && baseline.dedup_entries == one.dedup_entries,
                "seed {seed}: machine loop diverged from the baseline\n{baseline:?}\nvs\n{one:?}"
            );
        }
        for v in [&baseline.violation, &one.violation].into_iter().flatten() {
            let replayed = wfd_sim::Replay::explore(v.decisions.clone()).run(
                move || (0..2).map(|_| Mixer::family(seed)).collect::<Vec<_>>(),
                vec![None, None],
                &pattern,
                NoDetector,
                move |_procs: &[Mixer], outputs: &[(ProcessId, u64)]| match outputs
                    .iter()
                    .find(|(_, acc)| *acc > bar)
                {
                    Some((p, acc)) => Err(format!("{p} accumulated {acc} > {bar}")),
                    None => Ok(()),
                },
            );
            assert_eq!(
                replayed,
                Err(v.message.clone()),
                "seed {seed}: a reported witness does not replay"
            );
        }
        // Machine-backed across worker counts: byte-identical.
        let normalize = |r: &ExploreReport| {
            let mut r = r.clone();
            r.threads_used = 0;
            format!("{r:?}")
        };
        for threads in [2usize, 4] {
            let many = run_explore(seed, threads);
            assert_eq!(
                normalize(&one),
                normalize(&many),
                "seed {seed}: {threads} workers changed the report"
            );
        }
        if one.violation.is_some() {
            violating += 1;
        }
    }
    assert!(violating >= 5, "sweep too tame: {violating}");
}

/// Ladder leg 2 — engine: the dispatch-through-`machine::ResolvedStep`
/// run loop stays a deterministic function of its inputs (two identical
/// runs are byte-identical, trace and all), and a recorded decision log
/// replays with zero divergences to the byte-identical trace.
#[test]
fn engine_runs_are_deterministic_and_replay_byte_identically() {
    for seed in 0..40u64 {
        let n = 2 + (seed as usize % 2);
        let pattern = if seed.is_multiple_of(4) {
            FailurePattern::failure_free(n).with_crash(ProcessId(seed as usize % n), 3)
        } else {
            FailurePattern::failure_free(n)
        };
        let cfg = || {
            let mut c = SimConfig::new(n);
            c.horizon = 120 + (seed % 40);
            c
        };
        let procs = || (0..n).map(|_| Mixer::family(seed)).collect::<Vec<_>>();

        let mut recorded = Sim::new(
            cfg(),
            procs(),
            pattern.clone(),
            NoDetector,
            RecordedSchedule::new(RandomFair::new(seed)),
        );
        let out = recorded.run();
        let golden = format!("{} {:?}", out.steps, recorded.trace().events());

        // Determinism: the identical configuration reruns byte-identically.
        let mut again = Sim::new(
            cfg(),
            procs(),
            pattern.clone(),
            NoDetector,
            RecordedSchedule::new(RandomFair::new(seed)),
        );
        let out2 = again.run();
        assert_eq!(out.reason, out2.reason, "seed {seed}: stop reason drifted");
        assert_eq!(
            golden,
            format!("{} {:?}", out2.steps, again.trace().events()),
            "seed {seed}: rerun drifted"
        );

        // Replay: the recorded decision log reproduces the run exactly.
        let log = recorded.scheduler().log().to_vec();
        let mut replay = Sim::new(
            cfg(),
            procs(),
            pattern.clone(),
            NoDetector,
            ReplaySchedule::new(log),
        );
        let out3 = replay.run();
        assert_eq!(
            replay.scheduler().divergences(),
            0,
            "seed {seed}: replay diverged from its own log"
        );
        assert_eq!(
            golden,
            format!("{} {:?}", out3.steps, replay.trace().events()),
            "seed {seed}: replayed trace is not byte-identical"
        );
    }
}

/// Ladder leg 3 — liveness: the `FairMachine`-backed graph build is
/// byte-identical across worker counts — not only the verdict but the
/// full report (model sizes, product size, lasso witness decisions).
#[test]
fn liveness_reports_are_byte_identical_across_threads() {
    for seed in 0..40u64 {
        let n = 2 + (seed as usize % 2);
        let mut pattern = FailurePattern::failure_free(n);
        if seed.is_multiple_of(4) {
            pattern = pattern.with_crash(ProcessId(seed as usize % n), 0);
        }
        let livelock = seed.is_multiple_of(2);
        let run = |threads: usize| {
            let cfg =
                LivenessConfig::new(2 + (seed % 2), 2 + ((seed / 2) % 2), 0).with_threads(threads);
            let report = if livelock {
                check_liveness(
                    cfg,
                    || PingPong::fleet(n),
                    vec![None; n],
                    &pattern,
                    NoDetector,
                    &Ltl::prop("decided").eventually(),
                )
            } else {
                check_liveness(
                    cfg,
                    || Decider::fleet(n),
                    vec![None; n],
                    &pattern,
                    NoDetector,
                    &Ltl::prop("all-decided").eventually(),
                )
            };
            format!("{:?}", report.expect("family scenarios are well-formed"))
        };
        let one = run(1);
        assert!(
            one.contains(if livelock { "Violated" } else { "Holds" }),
            "seed {seed}: unexpected baseline verdict\n{one}"
        );
        for threads in [2usize, 4] {
            assert_eq!(
                one,
                run(threads),
                "seed {seed}: {threads} workers changed the liveness report"
            );
        }
    }
}

/// The golden protocol for the diagram gate: two processes ping once on
/// start; each delivery increments a counter and outputs it. Small enough
/// that the full reachable graph fits the caps, rich enough to exercise
/// start/deliver/λ edges, props and a highlighted violation.
#[derive(Clone, Debug, PartialEq)]
struct Pulse {
    count: u64,
}

impl Protocol for Pulse {
    type Msg = u64;
    type Output = u64;
    type Inv = ();
    type Fd = ();

    fn on_start(&mut self, ctx: &mut Ctx<Self>) {
        ctx.broadcast_others(1);
    }

    fn on_message(&mut self, ctx: &mut Ctx<Self>, _from: ProcessId, tag: u64) {
        self.count += tag;
        ctx.output(self.count);
    }

    fn props() -> &'static [&'static str] {
        &["pulsed"]
    }

    fn eval_prop(_prop: usize, procs: &[Self], _view: &wfd_sim::PropView<'_>) -> bool {
        procs.iter().any(|p| p.count > 0)
    }
}

fn pulse_diagram() -> Diagram {
    Diagram::walk(
        &DiagramConfig::new("pulse")
            .with_max_states(64)
            .with_max_depth(6),
        || (0..2).map(|_| Pulse { count: 0 }).collect::<Vec<_>>(),
        vec![None, None],
        &FailurePattern::failure_free(2),
        NoDetector,
        |procs: &[Pulse], _outputs: &[(ProcessId, u64)]| {
            if procs.iter().all(|p| p.count > 0) {
                Err("every process pulsed".to_string())
            } else {
                Ok(())
            }
        },
    )
    .expect("well-formed scenario")
}

/// Golden-file gate: the DOT and Mermaid renderings are byte-identical
/// to the committed artifacts — any renderer or walk-order drift fails
/// loudly and updates consciously. Regenerate with
/// `WFD_UPDATE_GOLDEN=1 cargo test -p wfd-sim --test machine_equiv`.
#[test]
fn diagram_output_matches_the_golden_files() {
    let d = pulse_diagram();
    assert!(
        d.has_violation(),
        "the golden scenario must show a violation"
    );
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden");
    for (name, body) in [
        ("diagram_pulse.dot", d.to_dot()),
        ("diagram_pulse.mmd", d.to_mermaid()),
    ] {
        let path = dir.join(name);
        if std::env::var_os("WFD_UPDATE_GOLDEN").is_some() {
            std::fs::create_dir_all(&dir).expect("create tests/golden");
            std::fs::write(&path, &body).expect("write golden file");
            continue;
        }
        let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "cannot read {}: {e} (regenerate with WFD_UPDATE_GOLDEN=1)",
                path.display()
            )
        });
        assert_eq!(
            body, golden,
            "{name} drifted from tests/golden (regenerate with WFD_UPDATE_GOLDEN=1 if intended)"
        );
    }
}

/// Structural gate: rebuilt from scratch the diagram is identical
/// (determinism), the DOT braces balance, and every edge endpoint is a
/// declared node id.
#[test]
fn diagram_output_is_deterministic_and_well_formed() {
    let d = pulse_diagram();
    let again = pulse_diagram();
    assert_eq!(d.to_dot(), again.to_dot(), "walk is not deterministic");
    let dot = d.to_dot();
    assert_eq!(
        dot.matches('{').count(),
        dot.matches('}').count(),
        "unbalanced braces"
    );
    for (from, to, _) in &d.edges {
        assert!(
            *from < d.nodes.len() && *to < d.nodes.len(),
            "undeclared id"
        );
        assert!(
            dot.contains(&format!("s{from} -> s{to}")),
            "edge s{from}->s{to} missing from DOT"
        );
    }
    let mmd = d.to_mermaid();
    for (from, to, _) in &d.edges {
        assert!(
            mmd.contains(&format!("s{from} --> s{to}")),
            "edge s{from}-->s{to} missing from Mermaid"
        );
    }
}
