//! The [`TraceMode`] contract: the executed schedule is a pure function
//! of the inputs, so turning tracing down (or off) must change *what is
//! recorded* and nothing else — same outputs, same decisions, same
//! aggregate counters.

use wfd_sim::{
    Adversarial, Ctx, EventKind, FailurePattern, NoDetector, ProcessId, Protocol, RandomFair,
    RoundRobin, Scheduler, Sim, SimConfig, TraceMode,
};

/// Ring ping protocol with a per-process step/message account — enough
/// end state to compare runs without any trace.
#[derive(Debug, Default)]
struct Ring {
    pings_seen: u64,
    steps: u64,
}

#[derive(Clone, Debug, PartialEq)]
struct Ping(u64);

impl Protocol for Ring {
    type Msg = Ping;
    type Output = u64;
    type Inv = ();
    type Fd = ();

    fn on_start(&mut self, ctx: &mut Ctx<Self>) {
        let next = ProcessId((ctx.me().index() + 1) % ctx.n());
        ctx.send(next, Ping(0));
    }

    fn on_tick(&mut self, _ctx: &mut Ctx<Self>) {
        self.steps += 1;
    }

    fn on_message(&mut self, ctx: &mut Ctx<Self>, _from: ProcessId, msg: Ping) {
        self.steps += 1;
        self.pings_seen += 1;
        ctx.output(self.pings_seen);
        let next = ProcessId((ctx.me().index() + 1) % ctx.n());
        ctx.send(next, Ping(msg.0 + 1));
    }
}

fn run<S: Scheduler>(n: usize, mode: TraceMode, sched: S) -> Sim<Ring, NoDetector, S> {
    let mut sim = Sim::new(
        SimConfig::new(n).with_horizon(3_000).with_trace_mode(mode),
        (0..n).map(|_| Ring::default()).collect(),
        FailurePattern::failure_free(n).with_crash(ProcessId(0), 700),
        NoDetector,
        sched,
    );
    sim.run();
    sim
}

/// End state (the full observable account of a run without its trace).
fn end_state(sim: &Sim<Ring, NoDetector, impl Scheduler>) -> Vec<(u64, u64)> {
    sim.processes()
        .iter()
        .map(|p| (p.pings_seen, p.steps))
        .collect()
}

#[test]
fn off_runs_the_same_schedule_as_full() {
    let n = 4;
    for seed in 0..5 {
        let full = run(n, TraceMode::Full, RandomFair::new(seed));
        let off = run(n, TraceMode::Off, RandomFair::new(seed));
        assert_eq!(end_state(&full), end_state(&off), "seed {seed}");
        assert_eq!(full.stats(), {
            // Event counts legitimately differ (that is the point);
            // every schedule-determined counter must not.
            let mut s = off.stats();
            s.events = full.stats().events;
            s
        });
        assert!(off.trace().is_empty(), "Off must record nothing");
    }
}

#[test]
fn outputs_only_records_exactly_outputs_and_crashes() {
    let n = 3;
    let full = run(n, TraceMode::Full, RoundRobin::new());
    let outs = run(n, TraceMode::OutputsOnly, RoundRobin::new());

    // Identical output stream (time, pid, value)...
    let full_outs: Vec<_> = full.trace().outputs().map(|(t, p, o)| (t, p, *o)).collect();
    let only_outs: Vec<_> = outs.trace().outputs().map(|(t, p, o)| (t, p, *o)).collect();
    assert_eq!(full_outs, only_outs);
    // ... identical crash events ...
    assert_eq!(
        full.trace().crashes().collect::<Vec<_>>(),
        outs.trace().crashes().collect::<Vec<_>>()
    );
    // ... and nothing else.
    assert!(outs
        .trace()
        .events()
        .iter()
        .all(|e| matches!(e.kind, EventKind::Output(_) | EventKind::Crash)));
    assert!(full.trace().len() > outs.trace().len());
}

#[test]
fn stats_match_trace_summary_in_full_mode() {
    for seed in [0, 9] {
        let sim = run(5, TraceMode::Full, Adversarial::new(seed));
        assert_eq!(sim.stats(), sim.trace().summary(), "seed {seed}");
    }
}

#[test]
fn stats_are_exact_in_every_mode() {
    let reference = run(4, TraceMode::Full, RandomFair::new(42))
        .trace()
        .summary();
    for mode in [TraceMode::OutputsOnly, TraceMode::Off] {
        let stats = run(4, mode, RandomFair::new(42)).stats();
        assert_eq!(stats.steps, reference.steps, "{mode:?}");
        assert_eq!(stats.messages_sent, reference.messages_sent, "{mode:?}");
        assert_eq!(
            stats.messages_delivered, reference.messages_delivered,
            "{mode:?}"
        );
        assert_eq!(stats.outputs, reference.outputs, "{mode:?}");
        assert_eq!(stats.crashes, reference.crashes, "{mode:?}");
    }
}
