//! The observability layer's load-bearing guarantee: metrics **never**
//! influence what the simulator or the explorer compute. Turning metrics
//! on must leave every [`RunOutcome`], every trace, and every
//! [`ExploreReport`] byte-identical to a metrics-off execution — at any
//! thread count — because the obs handle only ever writes to a side table
//! of relaxed atomics that nothing on the decision path reads back.
//!
//! These tests are the acceptance gate for that claim:
//!
//! * engine runs with `Obs::off()` vs `Obs::on()` produce identical
//!   outcomes and identical traces (full `Debug` form),
//! * explorations with metrics off vs on produce byte-identical reports
//!   at 1 and 4 worker threads,
//! * and while invisible to results, the metrics are *not* inert: the
//!   snapshot carries the exact traversal counters and its JSON export
//!   round-trips through the crate's own parser.

use wfd_sim::json::Json;
use wfd_sim::{
    explore, CounterId, Ctx, ExploreConfig, ExploreReport, FailurePattern, NoDetector, Obs,
    ProcessId, Protocol, RoundRobin, Sim, SimConfig,
};

/// A small token-relay protocol with enough branching to exercise the
/// explorer's dedup table and the engine's send paths.
#[derive(Clone, Debug, PartialEq)]
struct Relay {
    acc: u64,
    relays_left: u64,
}

impl Protocol for Relay {
    type Msg = u64;
    type Output = u64;
    type Inv = ();
    type Fd = ();

    fn on_start(&mut self, ctx: &mut Ctx<Self>) {
        ctx.broadcast_others(ctx.me().index() as u64);
    }

    fn on_message(&mut self, ctx: &mut Ctx<Self>, _from: ProcessId, tag: u64) {
        self.acc = self.acc.wrapping_mul(7).wrapping_add(tag);
        ctx.output(self.acc);
        if self.relays_left > 0 && tag > 0 {
            self.relays_left -= 1;
            ctx.broadcast_others(tag - 1);
        }
    }
}

fn make_procs() -> Vec<Relay> {
    (0..2)
        .map(|_| Relay {
            acc: 1,
            relays_left: 1,
        })
        .collect()
}

fn safety(_: &[Relay], outputs: &[(ProcessId, u64)]) -> Result<(), String> {
    match outputs.iter().find(|(_, acc)| *acc > 40) {
        Some((p, acc)) => Err(format!("{p} overflowed: {acc}")),
        None => Ok(()),
    }
}

fn run_sim(obs: Obs) -> String {
    let n = 3;
    let mut sim = Sim::new(
        SimConfig::new(n).with_obs(obs),
        (0..n)
            .map(|_| Relay {
                acc: 1,
                relays_left: 2,
            })
            .collect(),
        FailurePattern::failure_free(n),
        NoDetector,
        RoundRobin::new(),
    );
    let outcome = sim.run();
    format!("{outcome:?}\n{:?}", sim.trace())
}

fn run_explore(obs: Obs, threads: usize) -> ExploreReport {
    let cfg = ExploreConfig::new(7)
        .with_max_states(500_000)
        .with_threads(threads)
        .with_obs(obs);
    explore(
        cfg,
        make_procs,
        vec![None, None],
        &FailurePattern::failure_free(2),
        NoDetector,
        safety,
    )
}

#[test]
fn engine_outcome_and_trace_are_identical_with_metrics_on() {
    assert_eq!(run_sim(Obs::off()), run_sim(Obs::on()));
}

#[test]
fn explore_reports_are_byte_identical_with_metrics_on_at_any_thread_count() {
    for threads in [1, 4] {
        let off = run_explore(Obs::off(), threads);
        let on = run_explore(Obs::on(), threads);
        assert_eq!(
            format!("{off:?}"),
            format!("{on:?}"),
            "{threads} threads: metrics changed the report"
        );
    }
}

#[test]
fn metrics_actually_measure_the_traversal() {
    let obs = Obs::on();
    let report = run_explore(obs.clone(), 1);
    let snap = obs.snapshot().expect("metrics are on");
    assert_eq!(
        snap.counter(CounterId::ExploreStatesVisited),
        report.states_visited as u64
    );
    assert_eq!(
        snap.counter(CounterId::ExploreDedupHits),
        report.dedup_hits as u64
    );
    assert_eq!(
        snap.counter(CounterId::ExploreDedupEntries),
        report.dedup_entries as u64
    );
    assert_eq!(snap.counter(CounterId::ExploreRuns), 1);
}

#[test]
fn snapshot_json_round_trips_through_the_crate_parser() {
    let obs = Obs::on();
    let _ = run_explore(obs.clone(), 2);
    let json = obs.snapshot().expect("metrics are on").to_json();
    let parsed = Json::parse(&json.to_string()).expect("metrics JSON must parse");
    let counters = parsed.get("counters").expect("counters block");
    assert!(counters.get("explore_states_visited").is_some());
    assert!(parsed.get("histograms").is_some());
    assert!(parsed.get("phases").is_some());
}

#[test]
fn off_handle_never_allocates_a_snapshot() {
    let obs = Obs::off();
    let _ = run_explore(obs.clone(), 1);
    assert!(obs.snapshot().is_none());
    assert!(!obs.is_on());
}
