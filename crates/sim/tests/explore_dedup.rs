//! Seeded property sweep: neither state deduplication, the dedup key
//! representation, nor the worker count may change the explorer's verdict.
//!
//! Three equivalence ladders over a 40-seed family of randomized
//! protocols:
//!
//! 1. **Key representation is invisible** — [`FingerprintHasher`] and
//!    [`ExactKeyHasher`] traverse the identical state graph, so their
//!    reports must agree on *every* semantic field (strict
//!    [`ExploreReport::same_semantics`]). This is the collision check for
//!    the 128-bit fingerprint.
//! 2. **Dedup is invisible to the verdict** — fingerprint-dedup,
//!    exact-key-dedup, and dedup-off all agree on whether a violation
//!    exists and on the states-capped flag. (With batched traversal the
//!    *specific* counterexample may differ between dedup on/off: dedup
//!    changes which states share the first violating batch, and the
//!    report picks the lexicographically-least violation of that batch.
//!    At `batch == 1` — classic DFS — even the message is identical, and
//!    a dedicated ladder asserts exactly that.)
//! 3. **Thread count is invisible, period** — reports at 1, 2, and 4
//!    workers are byte-identical modulo the informational `threads_used`.
//! 4. **The deprecated shim is a perfect alias** — `explore_with_hasher`
//!    equals `explore` + [`ExploreConfig::with_hasher`], byte-for-byte.
//!
//! This is also the regression net for the two historical dedup bugs
//! (pruning shallower revisits with remaining budget; merging states that
//! differed only in output history): both would break ladder 2.

use wfd_sim::{
    explore, Ctx, ExploreConfig, ExploreReport, FailurePattern, Hasher, NoDetector, ProcessId,
    Protocol, Time,
};

/// A seed-parameterized toy protocol: on start, broadcast a burst of
/// tagged messages; on receipt, mix the tag into an accumulator, output
/// it, and (budget permitting) re-send a decremented tag. The reachable
/// tree's shape and outputs vary with every parameter.
#[derive(Clone, Debug, PartialEq)]
struct Mixer {
    burst: u64,
    mult: u64,
    acc: u64,
    relays_left: u64,
}

impl Mixer {
    fn family(seed: u64) -> Self {
        Mixer {
            burst: 1 + seed % 3,
            mult: 3 + seed % 5,
            acc: seed % 7,
            relays_left: seed % 2,
        }
    }
}

impl Protocol for Mixer {
    type Msg = u64;
    type Output = u64;
    type Inv = ();
    type Fd = ();

    fn on_start(&mut self, ctx: &mut Ctx<Self>) {
        for tag in 0..self.burst {
            ctx.broadcast_others(tag);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<Self>, _from: ProcessId, tag: u64) {
        self.acc = self.acc.wrapping_mul(self.mult).wrapping_add(tag);
        ctx.output(self.acc);
        if self.relays_left > 0 && tag > 0 {
            self.relays_left -= 1;
            ctx.broadcast_others(tag - 1);
        }
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Fingerprint,
    ExactKey,
    DedupOff,
}

fn family_pattern(seed: u64) -> FailurePattern {
    if seed.is_multiple_of(4) {
        FailurePattern::failure_free(2).with_crash(ProcessId(1), (seed % 5) as Time)
    } else {
        FailurePattern::failure_free(2)
    }
}

fn family_cfg(seed: u64) -> ExploreConfig {
    ExploreConfig::new(4 + (seed as usize % 4)).with_max_states(500_000)
}

fn run_family(seed: u64, mode: Mode, cfg: ExploreConfig) -> ExploreReport {
    let pattern = family_pattern(seed);
    // A seed-dependent safety bar some families break and others respect.
    let bar = 20 + (seed % 30);
    let cfg = match mode {
        Mode::DedupOff => cfg.with_dedup(false),
        Mode::ExactKey => cfg.with_hasher(Hasher::ExactKey),
        Mode::Fingerprint => cfg.with_hasher(Hasher::Fingerprint),
    };
    let make = move || (0..2).map(|_| Mixer::family(seed)).collect::<Vec<_>>();
    let safety = move |_procs: &[Mixer], outputs: &[(ProcessId, u64)]| match outputs
        .iter()
        .find(|(_, acc)| *acc > bar)
    {
        Some((p, acc)) => Err(format!("{p} accumulated {acc} > {bar}")),
        None => Ok(()),
    };
    explore(cfg, make, vec![None, None], &pattern, NoDetector, safety)
}

#[test]
fn key_representation_and_dedup_never_change_the_verdict() {
    let mut violating_families = 0;
    let mut clean_families = 0;
    for seed in 0..40 {
        let fp = run_family(seed, Mode::Fingerprint, family_cfg(seed));
        let exact = run_family(seed, Mode::ExactKey, family_cfg(seed));
        let brute = run_family(seed, Mode::DedupOff, family_cfg(seed));
        assert!(
            !fp.states_capped && !brute.states_capped,
            "seed {seed}: state cap hit"
        );

        // Ladder 1 (strict): the fingerprint must be a drop-in for the
        // exact key — identical traversal, counts, flags, counterexample.
        assert!(
            fp.same_semantics(&exact),
            "seed {seed}: fingerprint diverged from exact key\n{fp:?}\nvs\n{exact:?}"
        );

        // Ladder 2: dedup on/off agree on the verdict and flags.
        assert_eq!(
            fp.violation.is_some(),
            brute.violation.is_some(),
            "seed {seed}: dedup changed the verdict\n{fp:?}\nvs\n{brute:?}"
        );
        // Dedup may *clear* the depth-bounded flag (a deep revisit that
        // would have hit the bound is pruned because its subtree was
        // already covered in full from a shallower visit), but it can
        // never introduce a bound-hit brute force does not see.
        assert!(
            !fp.depth_bounded || brute.depth_bounded,
            "seed {seed}: dedup invented a depth-bound hit"
        );

        match fp.violation {
            Some(_) => violating_families += 1,
            None => clean_families += 1,
        }
    }
    // The sweep is only meaningful if it actually exercises both outcomes.
    assert!(
        violating_families >= 5,
        "sweep too tame: {violating_families}"
    );
    assert!(clean_families >= 5, "sweep too strict: {clean_families}");
}

/// At `batch == 1` the traversal is the classic depth-first search, and
/// the PR 2 guarantee holds verbatim: sound dedup only prunes subtrees
/// already explored violation-free with at least as much remaining depth
/// budget, so even the *first* violation found is identical, message and
/// all.
#[test]
fn at_batch_one_dedup_preserves_the_exact_counterexample() {
    for seed in 0..40 {
        let dfs = |mode| run_family(seed, mode, family_cfg(seed).with_batch(1).with_threads(1));
        let with_dedup = dfs(Mode::Fingerprint);
        let without = dfs(Mode::DedupOff);
        assert_eq!(
            with_dedup.violation.map(|v| v.message),
            without.violation.map(|v| v.message),
            "seed {seed}: dedup changed the DFS counterexample"
        );
    }
}

/// Reports at 1, 2 and 4 worker threads must be byte-identical modulo the
/// informational `threads_used` field — across the whole seeded family,
/// violating and clean alike.
#[test]
fn thread_count_never_changes_the_report() {
    for seed in 0..40 {
        let one = run_family(seed, Mode::Fingerprint, family_cfg(seed).with_threads(1));
        for threads in [2, 4] {
            let many = run_family(
                seed,
                Mode::Fingerprint,
                family_cfg(seed).with_threads(threads),
            );
            assert_eq!(many.threads_used, threads);
            assert!(
                one.same_semantics(&many),
                "seed {seed}, {threads} threads: report diverged\n{one:?}\nvs\n{many:?}"
            );
            let normalize = |r: &ExploreReport| {
                let mut r = r.clone();
                r.threads_used = 0;
                format!("{r:?}")
            };
            assert_eq!(normalize(&one), normalize(&many), "seed {seed}");
        }
    }
}

/// The deprecated [`explore_with_hasher`] entry point must stay a perfect
/// shim for the unified API: across the whole 40-seed family, calling it
/// with [`FingerprintHasher`] / [`ExactKeyHasher`] produces reports
/// byte-identical (full `Debug` form) to `explore` with the matching
/// [`ExploreConfig::with_hasher`] setting. This is the contract that lets
/// downstream callers migrate at their leisure.
#[test]
#[allow(deprecated)]
fn deprecated_shim_matches_unified_entry_point() {
    use wfd_sim::{explore_with_hasher, ExactKeyHasher, FingerprintHasher};
    for seed in 0..40 {
        let pattern = family_pattern(seed);
        let bar = 20 + (seed % 30);
        let make = move || (0..2).map(|_| Mixer::family(seed)).collect::<Vec<_>>();
        let safety = move |_procs: &[Mixer], outputs: &[(ProcessId, u64)]| match outputs
            .iter()
            .find(|(_, acc)| *acc > bar)
        {
            Some((p, acc)) => Err(format!("{p} accumulated {acc} > {bar}")),
            None => Ok(()),
        };
        for hasher in [Hasher::Fingerprint, Hasher::ExactKey] {
            let unified = explore(
                family_cfg(seed).with_hasher(hasher),
                make,
                vec![None, None],
                &pattern,
                NoDetector,
                safety,
            );
            let shimmed = match hasher {
                Hasher::Fingerprint => explore_with_hasher(
                    family_cfg(seed),
                    FingerprintHasher,
                    make,
                    vec![None, None],
                    &pattern,
                    NoDetector,
                    safety,
                ),
                Hasher::ExactKey => explore_with_hasher(
                    family_cfg(seed),
                    ExactKeyHasher,
                    make,
                    vec![None, None],
                    &pattern,
                    NoDetector,
                    safety,
                ),
            };
            assert_eq!(
                format!("{unified:?}"),
                format!("{shimmed:?}"),
                "seed {seed}, {hasher:?}: deprecated shim diverged from the unified entry point"
            );
        }
    }
}

/// Dedup on a clean family may only *reduce* the states expanded, never
/// miss any verdict-relevant ones — sanity-check the count relation too.
#[test]
fn dedup_only_shrinks_the_search() {
    for seed in [1, 2, 3, 5, 6] {
        let count = |mode| {
            run_family(seed, mode, ExploreConfig::new(6).with_max_states(500_000)).states_visited
        };
        assert!(
            count(Mode::Fingerprint) <= count(Mode::DedupOff),
            "seed {seed}"
        );
    }
}
