//! Seeded property sweep: state deduplication must be *invisible* to the
//! explorer's verdict.
//!
//! Dedup is a pure optimization — it may collapse the state count, but
//! for every (protocol, pattern, checker, depth) it must produce the same
//! answer as the brute-force search: the same violation (sound dedup only
//! prunes subtrees that were already explored violation-free with at
//! least as much remaining depth budget, so even the *first* violation
//! found in DFS order is identical), or a clean pass in both.
//!
//! This is the regression net for the two historical dedup bugs (pruning
//! shallower revisits with remaining budget; merging states that differed
//! only in output history) across a randomized family of protocols.

use wfd_sim::{explore, Ctx, ExploreConfig, FailurePattern, NoDetector, ProcessId, Protocol, Time};

/// A seed-parameterized toy protocol: on start, broadcast a burst of
/// tagged messages; on receipt, mix the tag into an accumulator, output
/// it, and (budget permitting) re-send a decremented tag. The reachable
/// tree's shape and outputs vary with every parameter.
#[derive(Clone, Debug, PartialEq)]
struct Mixer {
    burst: u64,
    mult: u64,
    acc: u64,
    relays_left: u64,
}

impl Mixer {
    fn family(seed: u64) -> Self {
        Mixer {
            burst: 1 + seed % 3,
            mult: 3 + seed % 5,
            acc: seed % 7,
            relays_left: seed % 2,
        }
    }
}

impl Protocol for Mixer {
    type Msg = u64;
    type Output = u64;
    type Inv = ();
    type Fd = ();

    fn on_start(&mut self, ctx: &mut Ctx<Self>) {
        for tag in 0..self.burst {
            ctx.broadcast_others(tag);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<Self>, _from: ProcessId, tag: u64) {
        self.acc = self.acc.wrapping_mul(self.mult).wrapping_add(tag);
        ctx.output(self.acc);
        if self.relays_left > 0 && tag > 0 {
            self.relays_left -= 1;
            ctx.broadcast_others(tag - 1);
        }
    }
}

fn run_family(seed: u64, dedup: bool) -> (Option<String>, bool, bool) {
    let n = 2;
    let pattern = if seed.is_multiple_of(4) {
        FailurePattern::failure_free(n).with_crash(ProcessId(1), (seed % 5) as Time)
    } else {
        FailurePattern::failure_free(n)
    };
    // A seed-dependent safety bar some families break and others respect.
    let bar = 20 + (seed % 30);
    let report = explore(
        ExploreConfig::new(4 + (seed as usize % 4))
            .with_max_states(500_000)
            .with_dedup(dedup),
        || (0..n).map(|_| Mixer::family(seed)).collect(),
        vec![None, None],
        &pattern,
        NoDetector,
        |_procs, outputs| match outputs.iter().find(|(_, acc)| *acc > bar) {
            Some((p, acc)) => Err(format!("{p} accumulated {acc} > {bar}")),
            None => Ok(()),
        },
    );
    (
        report.violation.map(|v| v.message),
        report.depth_bounded,
        report.states_capped,
    )
}

#[test]
fn dedup_never_changes_the_verdict_across_seeded_families() {
    let mut violating_families = 0;
    let mut clean_families = 0;
    for seed in 0..40 {
        let (with_dedup, bounded_d, capped_d) = run_family(seed, true);
        let (without_dedup, bounded_b, capped_b) = run_family(seed, false);
        assert!(!capped_d && !capped_b, "seed {seed}: state cap hit");
        assert_eq!(
            with_dedup, without_dedup,
            "seed {seed}: dedup changed the verdict"
        );
        // Dedup may *clear* the depth-bounded flag (a deep revisit that
        // would have hit the bound is pruned because its subtree was
        // already covered in full from a shallower visit), but it can
        // never introduce a bound-hit brute force does not see.
        assert!(
            !bounded_d || bounded_b,
            "seed {seed}: dedup invented a depth-bound hit"
        );
        match with_dedup {
            Some(_) => violating_families += 1,
            None => clean_families += 1,
        }
    }
    // The sweep is only meaningful if it actually exercises both outcomes.
    assert!(
        violating_families >= 5,
        "sweep too tame: {violating_families}"
    );
    assert!(clean_families >= 5, "sweep too strict: {clean_families}");
}

/// Dedup on a clean family may only *reduce* the states expanded, never
/// miss any verdict-relevant ones — sanity-check the count relation too.
#[test]
fn dedup_only_shrinks_the_search() {
    for seed in [1, 2, 3, 5, 6] {
        let n = 2;
        let pattern = FailurePattern::failure_free(n);
        let count = |dedup: bool| {
            explore(
                ExploreConfig::new(6)
                    .with_max_states(500_000)
                    .with_dedup(dedup),
                || (0..n).map(|_| Mixer::family(seed)).collect(),
                vec![None, None],
                &pattern,
                NoDetector,
                |_, _| Ok(()),
            )
            .states_visited
        };
        assert!(count(true) <= count(false), "seed {seed}");
    }
}
