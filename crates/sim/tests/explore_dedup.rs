//! Seeded property sweep: neither state deduplication, the dedup key
//! representation, nor the worker count may change the explorer's verdict.
//!
//! Three equivalence ladders over a 40-seed family of randomized
//! protocols:
//!
//! 1. **Key representation is invisible** — [`FingerprintHasher`] and
//!    [`ExactKeyHasher`] traverse the identical state graph, so their
//!    reports must agree on *every* semantic field (strict
//!    [`ExploreReport::same_semantics`]). This is the collision check for
//!    the 128-bit fingerprint.
//! 2. **Dedup is invisible to the verdict** — fingerprint-dedup,
//!    exact-key-dedup, and dedup-off all agree on whether a violation
//!    exists and on the states-capped flag. (With batched traversal the
//!    *specific* counterexample may differ between dedup on/off: dedup
//!    changes which states share the first violating batch, and the
//!    report picks the lexicographically-least violation of that batch.
//!    At `batch == 1` — classic DFS — even the message is identical, and
//!    a dedicated ladder asserts exactly that.)
//! 3. **Thread count is invisible, period** — reports at 1, 2, and 4
//!    workers are byte-identical modulo the informational `threads_used`.
//! 4. **Reductions are invisible to the verdict** — DPOR, symmetry
//!    canonicalization, and their combination agree with the unreduced
//!    explorer on whether a violation exists, at every worker count, and
//!    reduced counterexamples still replay.
//!
//! This is also the regression net for the two historical dedup bugs
//! (pruning shallower revisits with remaining budget; merging states that
//! differed only in output history — both would break ladder 2) and for
//! the naive sleep-set implementation that commutes steps across a
//! detector transition (a hand-traced fixture proves the miss is still
//! reproducible via `with_unstable_sleep`).

use wfd_sim::{
    explore, Ctx, ExploreConfig, ExploreReport, FailurePattern, FnDetector, Footprint, Hasher,
    NoDetector, OracleSpec, ProcessId, Protocol, Replay, Repro, StepKind, Symmetry, Time,
};

/// A seed-parameterized toy protocol: on start, broadcast a burst of
/// tagged messages; on receipt, mix the tag into an accumulator, output
/// it, and (budget permitting) re-send a decremented tag. The reachable
/// tree's shape and outputs vary with every parameter.
#[derive(Clone, Debug, PartialEq)]
struct Mixer {
    burst: u64,
    mult: u64,
    acc: u64,
    relays_left: u64,
}

impl Mixer {
    fn family(seed: u64) -> Self {
        Mixer {
            burst: 1 + seed % 3,
            mult: 3 + seed % 5,
            acc: seed % 7,
            relays_left: seed % 2,
        }
    }
}

impl Protocol for Mixer {
    type Msg = u64;
    type Output = u64;
    type Inv = ();
    type Fd = ();

    fn on_start(&mut self, ctx: &mut Ctx<Self>) {
        for tag in 0..self.burst {
            ctx.broadcast_others(tag);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<Self>, _from: ProcessId, tag: u64) {
        self.acc = self.acc.wrapping_mul(self.mult).wrapping_add(tag);
        ctx.output(self.acc);
        if self.relays_left > 0 && tag > 0 {
            self.relays_left -= 1;
            ctx.broadcast_others(tag - 1);
        }
    }

    // Precise reduction declarations — validated against every executed
    // step by the explorer whenever DPOR is on, so the ladders also prove
    // the declarations honest.
    fn footprint(&self, me: ProcessId, n: usize, step: StepKind<'_, Self>) -> Footprint {
        match step {
            StepKind::Start { .. } => Footprint::local().sends_to_others(n, me),
            StepKind::Tick => Footprint::local(),
            StepKind::Deliver { msg: tag, .. } => {
                let fp = Footprint::local().outputs();
                if self.relays_left > 0 && *tag > 0 {
                    fp.sends_to_others(n, me)
                } else {
                    fp
                }
            }
        }
    }

    // Mixer is fully id-agnostic: broadcast-to-others topology, id-free
    // payloads, no pids in local state, messages or outputs (so the
    // permute hooks stay the default no-ops).
    fn symmetry(_n: usize) -> Symmetry {
        Symmetry::Full
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Fingerprint,
    ExactKey,
    DedupOff,
}

fn family_pattern(seed: u64) -> FailurePattern {
    if seed.is_multiple_of(4) {
        FailurePattern::failure_free(2).with_crash(ProcessId(1), (seed % 5) as Time)
    } else {
        FailurePattern::failure_free(2)
    }
}

fn family_cfg(seed: u64) -> ExploreConfig {
    ExploreConfig::new(4 + (seed as usize % 4)).with_max_states(500_000)
}

fn run_family(seed: u64, mode: Mode, cfg: ExploreConfig) -> ExploreReport {
    let pattern = family_pattern(seed);
    // A seed-dependent safety bar some families break and others respect.
    let bar = 20 + (seed % 30);
    let cfg = match mode {
        Mode::DedupOff => cfg.with_dedup(false),
        Mode::ExactKey => cfg.with_hasher(Hasher::ExactKey),
        Mode::Fingerprint => cfg.with_hasher(Hasher::Fingerprint),
    };
    let make = move || (0..2).map(|_| Mixer::family(seed)).collect::<Vec<_>>();
    let safety = move |_procs: &[Mixer], outputs: &[(ProcessId, u64)]| match outputs
        .iter()
        .find(|(_, acc)| *acc > bar)
    {
        Some((p, acc)) => Err(format!("{p} accumulated {acc} > {bar}")),
        None => Ok(()),
    };
    explore(cfg, make, vec![None, None], &pattern, NoDetector, safety)
}

#[test]
fn key_representation_and_dedup_never_change_the_verdict() {
    let mut violating_families = 0;
    let mut clean_families = 0;
    for seed in 0..40 {
        let fp = run_family(seed, Mode::Fingerprint, family_cfg(seed));
        let exact = run_family(seed, Mode::ExactKey, family_cfg(seed));
        let brute = run_family(seed, Mode::DedupOff, family_cfg(seed));
        assert!(
            !fp.states_capped && !brute.states_capped,
            "seed {seed}: state cap hit"
        );

        // Ladder 1 (strict): the fingerprint must be a drop-in for the
        // exact key — identical traversal, counts, flags, counterexample.
        assert!(
            fp.same_semantics(&exact),
            "seed {seed}: fingerprint diverged from exact key\n{fp:?}\nvs\n{exact:?}"
        );

        // Ladder 2: dedup on/off agree on the verdict and flags.
        assert_eq!(
            fp.violation.is_some(),
            brute.violation.is_some(),
            "seed {seed}: dedup changed the verdict\n{fp:?}\nvs\n{brute:?}"
        );
        // Dedup may *clear* the depth-bounded flag (a deep revisit that
        // would have hit the bound is pruned because its subtree was
        // already covered in full from a shallower visit), but it can
        // never introduce a bound-hit brute force does not see.
        assert!(
            !fp.depth_bounded || brute.depth_bounded,
            "seed {seed}: dedup invented a depth-bound hit"
        );

        match fp.violation {
            Some(_) => violating_families += 1,
            None => clean_families += 1,
        }
    }
    // The sweep is only meaningful if it actually exercises both outcomes.
    assert!(
        violating_families >= 5,
        "sweep too tame: {violating_families}"
    );
    assert!(clean_families >= 5, "sweep too strict: {clean_families}");
}

/// At `batch == 1` the traversal is the classic depth-first search, and
/// the PR 2 guarantee holds verbatim: sound dedup only prunes subtrees
/// already explored violation-free with at least as much remaining depth
/// budget, so even the *first* violation found is identical, message and
/// all.
#[test]
fn at_batch_one_dedup_preserves_the_exact_counterexample() {
    for seed in 0..40 {
        let dfs = |mode| run_family(seed, mode, family_cfg(seed).with_batch(1).with_threads(1));
        let with_dedup = dfs(Mode::Fingerprint);
        let without = dfs(Mode::DedupOff);
        assert_eq!(
            with_dedup.violation.map(|v| v.message),
            without.violation.map(|v| v.message),
            "seed {seed}: dedup changed the DFS counterexample"
        );
    }
}

/// Reports at 1, 2 and 4 worker threads must be byte-identical modulo the
/// informational `threads_used` field — across the whole seeded family,
/// violating and clean alike.
#[test]
fn thread_count_never_changes_the_report() {
    for seed in 0..40 {
        let one = run_family(seed, Mode::Fingerprint, family_cfg(seed).with_threads(1));
        for threads in [2, 4] {
            let many = run_family(
                seed,
                Mode::Fingerprint,
                family_cfg(seed).with_threads(threads),
            );
            assert_eq!(many.threads_used, threads);
            assert!(
                one.same_semantics(&many),
                "seed {seed}, {threads} threads: report diverged\n{one:?}\nvs\n{many:?}"
            );
            let normalize = |r: &ExploreReport| {
                let mut r = r.clone();
                r.threads_used = 0;
                format!("{r:?}")
            };
            assert_eq!(normalize(&one), normalize(&many), "seed {seed}");
        }
    }
}

/// Ladder 4 (reductions): DPOR, symmetry canonicalization, and their
/// combination must agree with the unreduced explorer on the *verdict*
/// for every seed — safe families stay safe, violating families stay
/// violating — and each reduced configuration must itself be
/// byte-identical across 1, 2 and 4 worker threads. (Counts legitimately
/// differ between reduced and unreduced runs: that is the point of the
/// reductions.)
#[test]
fn reductions_never_change_the_verdict() {
    let reduce = |cfg: ExploreConfig, dpor: bool, symmetry: bool| {
        cfg.with_dpor(dpor).with_symmetry(symmetry)
    };
    let mut violating_families = 0;
    let mut clean_families = 0;
    let mut dpor_pruned_somewhere = false;
    let mut symmetry_hit_somewhere = false;
    for seed in 0..40 {
        let base = run_family(seed, Mode::Fingerprint, family_cfg(seed));
        match base.violation {
            Some(_) => violating_families += 1,
            None => clean_families += 1,
        }
        for (dpor, symmetry) in [(true, false), (false, true), (true, true)] {
            let one = run_family(
                seed,
                Mode::Fingerprint,
                reduce(family_cfg(seed).with_threads(1), dpor, symmetry),
            );
            assert_eq!(
                one.violation.is_some(),
                base.violation.is_some(),
                "seed {seed}, dpor={dpor} symmetry={symmetry}: reduction changed the verdict\n\
                 {one:?}\nvs\n{base:?}"
            );
            assert!(one.reduction_enabled);
            dpor_pruned_somewhere |= one.states_pruned_dpor > 0;
            symmetry_hit_somewhere |= one.symmetry_canonical_hits > 0;
            for threads in [2, 4] {
                let many = run_family(
                    seed,
                    Mode::Fingerprint,
                    reduce(family_cfg(seed).with_threads(threads), dpor, symmetry),
                );
                assert!(
                    one.same_semantics(&many),
                    "seed {seed}, dpor={dpor} symmetry={symmetry}, {threads} threads: \
                     reduced report diverged\n{one:?}\nvs\n{many:?}"
                );
                let normalize = |r: &ExploreReport| {
                    let mut r = r.clone();
                    r.threads_used = 0;
                    format!("{r:?}")
                };
                assert_eq!(normalize(&one), normalize(&many), "seed {seed}");
            }
        }
    }
    // The sweep is only meaningful if it exercises both outcomes and both
    // reduction mechanisms.
    assert!(
        violating_families >= 5,
        "sweep too tame: {violating_families}"
    );
    assert!(clean_families >= 5, "sweep too strict: {clean_families}");
    assert!(dpor_pruned_somewhere, "DPOR never pruned anything");
    assert!(
        symmetry_hit_somewhere,
        "symmetry never canonicalized anything"
    );
}

/// Counterexamples found under full reduction must replay outside the
/// reduced search: decisions and violations stay in *original* process
/// ids (only the dedup key is canonicalized), so [`Replay::run`]
/// reproduces the exact message.
#[test]
fn reduced_violations_replay() {
    let mut replayed_some = false;
    for seed in 0..40 {
        let report = run_family(
            seed,
            Mode::Fingerprint,
            family_cfg(seed).with_dpor(true).with_symmetry(true),
        );
        let Some(violation) = report.violation else {
            continue;
        };
        let pattern = family_pattern(seed);
        let bar = 20 + (seed % 30);
        let checker = |_procs: &[Mixer], outputs: &[(ProcessId, u64)]| match outputs
            .iter()
            .find(|(_, acc)| *acc > bar)
        {
            Some((p, acc)) => Err(format!("{p} accumulated {acc} > {bar}")),
            None => Ok(()),
        };
        let replayed = Replay::explore(violation.decisions.clone()).run(
            move || (0..2).map(|_| Mixer::family(seed)).collect::<Vec<_>>(),
            vec![None, None],
            &pattern,
            NoDetector,
            checker,
        );
        assert_eq!(
            replayed,
            Err(violation.message.clone()),
            "seed {seed}: reduced counterexample did not replay"
        );
        replayed_some = true;
    }
    assert!(replayed_some, "no violating family to replay");
}

/// A counterexample found under full reduction survives the portable
/// repro artifact: package → JSON → parse → replay the recovered
/// decision list to the identical violation message.
#[test]
fn reduced_violations_round_trip_through_repro() {
    let mut round_tripped = false;
    for seed in 0..40 {
        let report = run_family(
            seed,
            Mode::Fingerprint,
            family_cfg(seed).with_dpor(true).with_symmetry(true),
        );
        let Some(violation) = report.violation else {
            continue;
        };
        let pattern = family_pattern(seed);
        let repro = Repro::from_explore(
            "mixer",
            "accumulator-bound",
            &violation,
            family_cfg(seed).max_depth,
            &pattern,
            OracleSpec::new("none"),
        );
        let parsed = Repro::from_json(&repro.to_json()).expect("repro JSON parses back");
        assert_eq!(parsed.pattern(), pattern, "seed {seed}: pattern survived");
        let bar = 20 + (seed % 30);
        let replayed = Replay::from_repro(&parsed)
            .expect("explore-sourced repro builds a machine replay")
            .run(
                move || (0..2).map(|_| Mixer::family(seed)).collect::<Vec<_>>(),
                vec![None, None],
                &pattern,
                NoDetector,
                |_procs: &[Mixer], outputs: &[(ProcessId, u64)]| match outputs
                    .iter()
                    .find(|(_, acc)| *acc > bar)
                {
                    Some((p, acc)) => Err(format!("{p} accumulated {acc} > {bar}")),
                    None => Ok(()),
                },
            );
        assert_eq!(
            replayed,
            Err(violation.message),
            "seed {seed}: repro round-trip lost the counterexample"
        );
        round_tripped = true;
        break; // one violating family suffices for the round-trip
    }
    assert!(round_tripped, "no violating family to round-trip");
}

/// The hand-traced regression fixture for the sleep-set stability guard.
///
/// Two processes, depth 2, no messages, honest all-local footprints — so
/// every pair of steps is *locally* independent. The detector, however,
/// transitions between `t = 0` and `t = 1` (`fd(p, t) = t`), and p1 arms
/// itself only when it starts while `fd == 0`. The single violating
/// state — p1 armed *and* p0 started — is reached by exactly one
/// interleaving: p1 first (arming at `t = 0`), then p0.
///
/// Trace the naive search (batch 1, LIFO frontier): the root enumerates
/// p0's start, then p1's start, so p1's child inherits sleep `{p0}` —
/// the footprints commute. The frontier pops p1's child *first*, skips
/// the sleeping p0 (pruning the armed-then-started state), and the
/// p0-first subtree can never arm p1 because its start runs at `t = 1`.
/// The naive explorer reports a clean space.
///
/// The real implementation certifies independence only at depths where
/// crash status and detector values are stable between `t` and `t + 1` —
/// nowhere in this scenario — so it builds no sleep sets and finds the
/// violation. `with_unstable_sleep` re-enables the naive behavior so
/// this fixture keeps the miss reproducible.
#[test]
fn naive_sleep_sets_would_miss_the_oracle_transition() {
    #[derive(Clone, Debug, PartialEq)]
    struct TimeBomb {
        started: bool,
        armed: bool,
    }

    impl Protocol for TimeBomb {
        type Msg = ();
        type Output = ();
        type Inv = ();
        type Fd = Time;

        fn on_start(&mut self, ctx: &mut Ctx<Self>) {
            self.started = true;
            if ctx.me() == ProcessId(1) && *ctx.fd() == 0 {
                self.armed = true;
            }
        }

        fn on_message(&mut self, _ctx: &mut Ctx<Self>, _from: ProcessId, _msg: ()) {}

        // Honest and exact: no handler ever sends or outputs.
        fn footprint(&self, _me: ProcessId, _n: usize, _step: StepKind<'_, Self>) -> Footprint {
            Footprint::local()
        }
    }

    let run = |unstable: bool| {
        explore(
            ExploreConfig::new(2)
                .with_threads(1)
                .with_batch(1)
                .with_dpor(true)
                .with_unstable_sleep(unstable),
            || {
                (0..2)
                    .map(|_| TimeBomb {
                        started: false,
                        armed: false,
                    })
                    .collect()
            },
            vec![None, None],
            &FailurePattern::failure_free(2),
            FnDetector::new(|_p: ProcessId, t: Time| t),
            |procs: &[TimeBomb], _: &[(ProcessId, ())]| {
                if procs[0].started && procs[1].armed {
                    Err("p1 armed at t = 0 and p0 started after it".into())
                } else {
                    Ok(())
                }
            },
        )
    };

    let sound = run(false);
    assert!(
        sound.violation.is_some(),
        "the stability guard must keep the armed interleaving reachable: {sound:?}"
    );
    let naive = run(true);
    assert!(
        naive.violation.is_none(),
        "fixture stale: naive sleep sets no longer prune the miss: {naive:?}"
    );
    assert!(
        naive.states_pruned_dpor > 0,
        "the naive miss must come from a sleep prune: {naive:?}"
    );
}

/// Regression fixture for the DPOR stability certificate's detector
/// comparison: it must be *structural* (`P::Fd: PartialEq`), never a
/// `Debug`-rendering fingerprint.
///
/// The scenario is [`naive_sleep_sets_would_miss_the_oracle_transition`]
/// verbatim except the detector value is wrapped in [`Opaque`], whose
/// handwritten `Debug` impl renders every value identically. The detector
/// still transitions between `t = 0` and `t = 1`, so independence is
/// *not* certifiable at depth 0 — but a fingerprint of the renderings
/// cannot see that: `{:?}` says `Opaque(·) == Opaque(·)`, the certificate
/// wrongly reports the detector stable, sleep sets get built, and the
/// single armed interleaving is pruned. The historical implementation
/// compared exactly those fingerprints, so this test fails on it
/// (`run(false)` reports a clean space); the structural comparison sees
/// `Opaque(0) != Opaque(1)` and keeps the violation reachable.
/// `with_unstable_sleep` reproduces the miss on demand — for this
/// scenario it builds the same sleep sets the fingerprint certificate
/// would have certified.
#[test]
fn debug_alike_fd_values_must_not_certify_independence() {
    /// Structurally distinct detector values sharing one `Debug` rendering.
    #[derive(Clone, PartialEq)]
    struct Opaque(Time);

    impl std::fmt::Debug for Opaque {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Opaque(·)")
        }
    }

    #[derive(Clone, Debug, PartialEq)]
    struct Sleeper {
        started: bool,
        armed: bool,
    }

    impl Protocol for Sleeper {
        type Msg = ();
        type Output = ();
        type Inv = ();
        type Fd = Opaque;

        fn on_start(&mut self, ctx: &mut Ctx<Self>) {
            self.started = true;
            if ctx.me() == ProcessId(1) && *ctx.fd() == Opaque(0) {
                self.armed = true;
            }
        }

        fn on_message(&mut self, _ctx: &mut Ctx<Self>, _from: ProcessId, _msg: ()) {}

        // Honest and exact: no handler ever sends or outputs.
        fn footprint(&self, _me: ProcessId, _n: usize, _step: StepKind<'_, Self>) -> Footprint {
            Footprint::local()
        }
    }

    let run = |unstable: bool| {
        explore(
            ExploreConfig::new(2)
                .with_threads(1)
                .with_batch(1)
                .with_dpor(true)
                .with_unstable_sleep(unstable),
            || {
                (0..2)
                    .map(|_| Sleeper {
                        started: false,
                        armed: false,
                    })
                    .collect()
            },
            vec![None, None],
            &FailurePattern::failure_free(2),
            FnDetector::new(|_p: ProcessId, t: Time| Opaque(t)),
            |procs: &[Sleeper], _: &[(ProcessId, ())]| {
                if procs[0].started && procs[1].armed {
                    Err("p1 armed behind an opaque rendering and p0 started after it".into())
                } else {
                    Ok(())
                }
            },
        )
    };

    let structural = run(false);
    assert!(
        structural.violation.is_some(),
        "a Debug-blind detector transition must still block the certificate: {structural:?}"
    );
    let fingerprint_alike = run(true);
    assert!(
        fingerprint_alike.violation.is_none(),
        "fixture stale: the rendering collision no longer prunes the miss: {fingerprint_alike:?}"
    );
    assert!(
        fingerprint_alike.states_pruned_dpor > 0,
        "the fingerprint miss must come from a sleep prune: {fingerprint_alike:?}"
    );
}

/// Dedup on a clean family may only *reduce* the states expanded, never
/// miss any verdict-relevant ones — sanity-check the count relation too.
#[test]
fn dedup_only_shrinks_the_search() {
    for seed in [1, 2, 3, 5, 6] {
        let count = |mode| {
            run_family(seed, mode, ExploreConfig::new(6).with_max_states(500_000)).states_visited
        };
        assert!(
            count(Mode::Fingerprint) <= count(Mode::DedupOff),
            "seed {seed}"
        );
    }
}
