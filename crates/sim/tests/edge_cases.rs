//! Engine edge cases: degenerate system sizes, crash/invocation
//! interleavings, fairness-bound extremes, and stop-condition priorities.

use wfd_sim::{
    Ctx, EventKind, FailurePattern, NoDetector, ProcessId, Protocol, RandomFair, RoundRobin, Sim,
    SimConfig, StopReason,
};

/// Echoes invocations as outputs and pings itself on start.
#[derive(Debug, Default)]
struct Loopback {
    ticks: u64,
}

impl Protocol for Loopback {
    type Msg = u32;
    type Output = u32;
    type Inv = u32;
    type Fd = ();

    fn on_start(&mut self, ctx: &mut Ctx<Self>) {
        ctx.send(ctx.me(), 1); // self-send goes through the network
    }

    fn on_message(&mut self, ctx: &mut Ctx<Self>, from: ProcessId, msg: u32) {
        assert_eq!(from, ctx.me(), "loopback only self-sends");
        ctx.output(msg);
    }

    fn on_tick(&mut self, _ctx: &mut Ctx<Self>) {
        self.ticks += 1;
    }

    fn on_invoke(&mut self, ctx: &mut Ctx<Self>, inv: u32) {
        ctx.output(inv * 10);
    }
}

#[test]
fn single_process_system_works() {
    let mut sim = Sim::new(
        SimConfig::new(1).with_horizon(100),
        vec![Loopback::default()],
        FailurePattern::failure_free(1),
        NoDetector,
        RoundRobin::new(),
    );
    sim.schedule_invoke(ProcessId(0), 5, 7);
    let out = sim.run();
    assert_eq!(out.reason, StopReason::Horizon);
    // Self-send delivered and invocation consumed.
    let outs: Vec<u32> = sim.trace().outputs().map(|(_, _, o)| *o).collect();
    assert!(outs.contains(&1), "self-send must be delivered");
    assert!(outs.contains(&70), "invocation must fire");
}

#[test]
fn invocation_for_crashed_process_never_fires() {
    let mut sim = Sim::new(
        SimConfig::new(2).with_horizon(500),
        vec![Loopback::default(), Loopback::default()],
        FailurePattern::failure_free(2).with_crash(ProcessId(1), 10),
        NoDetector,
        RoundRobin::new(),
    );
    sim.schedule_invoke(ProcessId(1), 50, 9); // after its crash
    sim.run();
    assert!(
        !sim.trace().outputs_of(ProcessId(1)).any(|(_, o)| *o == 90),
        "a crashed process cannot consume invocations"
    );
}

#[test]
fn crash_at_time_zero_prevents_start() {
    let mut sim = Sim::new(
        SimConfig::new(2).with_horizon(200),
        vec![Loopback::default(), Loopback::default()],
        FailurePattern::failure_free(2).with_crash(ProcessId(0), 0),
        NoDetector,
        RandomFair::new(1),
    );
    sim.run();
    let p0_started = sim
        .trace()
        .events()
        .iter()
        .any(|e| e.pid == ProcessId(0) && matches!(e.kind, EventKind::Start));
    assert!(!p0_started, "crash at t=0 means no steps at all");
    assert_eq!(sim.trace().crashes().count(), 1);
}

#[test]
fn tight_fairness_bounds_still_run() {
    let n = 3;
    let cfg = SimConfig::new(n)
        .with_horizon(300)
        .with_max_delay(1)
        .with_max_step_gap(1);
    let mut sim = Sim::new(
        cfg,
        (0..n).map(|_| Loopback::default()).collect(),
        FailurePattern::failure_free(n),
        NoDetector,
        RandomFair::new(2),
    );
    let out = sim.run();
    assert_eq!(out.steps, 300);
    for p in ProcessId::all(n) {
        assert!(sim.trace().steps_of(p) > 50, "{p} must step frequently");
    }
}

#[test]
fn predicate_beats_horizon() {
    let mut sim = Sim::new(
        SimConfig::new(1).with_horizon(1_000),
        vec![Loopback::default()],
        FailurePattern::failure_free(1),
        NoDetector,
        RoundRobin::new(),
    );
    let out = sim.run_until(|trace, _| trace.len() >= 3);
    assert_eq!(out.reason, StopReason::Predicate);
    assert!(out.steps < 1_000);
}

#[test]
fn in_flight_counts_undelivered_messages() {
    let mut sim = Sim::new(
        SimConfig::new(2).with_horizon(1),
        vec![Loopback::default(), Loopback::default()],
        FailurePattern::failure_free(2),
        NoDetector,
        RoundRobin::new(),
    );
    sim.step_once(); // p0 starts, self-sends
    assert_eq!(sim.in_flight(), 1);
}

#[test]
fn pattern_accessors_via_sim() {
    let pattern = FailurePattern::failure_free(2).with_crash(ProcessId(1), 42);
    let sim = Sim::new(
        SimConfig::new(2),
        vec![Loopback::default(), Loopback::default()],
        pattern.clone(),
        NoDetector,
        RoundRobin::new(),
    );
    assert_eq!(sim.pattern(), &pattern);
    assert_eq!(sim.now(), 0);
    assert_eq!(sim.config().n, 2);
}

#[test]
fn staggered_crashes_leave_exactly_the_survivors_stepping() {
    let n = 4;
    let pattern = FailurePattern::with_crashes(
        n,
        &[(ProcessId(0), 50), (ProcessId(1), 100), (ProcessId(2), 150)],
    );
    let mut sim = Sim::new(
        SimConfig::new(n).with_horizon(600),
        (0..n).map(|_| Loopback::default()).collect(),
        pattern,
        NoDetector,
        RandomFair::new(3),
    );
    sim.run();
    // After t = 150 only p3 may take steps.
    for e in sim.trace().events() {
        if e.time > 150 && !matches!(e.kind, EventKind::Crash) {
            assert_eq!(e.pid, ProcessId(3), "only the survivor may act after t=150");
        }
    }
}
