//! Integration tests for the liveness layer: verdict invariance under
//! every reduction/parallelism configuration, and the lasso-artifact
//! pipeline (emit → JSON → replay, byte-identically).

use wfd_sim::liveness::fixtures::{Decider, PingPong};
use wfd_sim::{
    check_liveness, FailurePattern, LivenessConfig, LivenessVerdict, Ltl, NoDetector, OracleSpec,
    ProcessId, Replay, Repro, ReproSource,
};

/// One scenario of the equivalence family, derived from a seed: protocol
/// choice (livelocking `PingPong` on even seeds, terminating `Decider`
/// on odd), system size, fairness bounds and an optional crash. The
/// family deliberately mixes verdicts so invariance is tested on both.
struct Family {
    n: usize,
    pattern: FailurePattern,
    max_step_gap: u64,
    max_delay: u64,
    livelock: bool,
}

fn family(seed: u64) -> Family {
    let n = 2 + (seed as usize % 2); // 2 or 3
    let mut pattern = FailurePattern::failure_free(n);
    if seed.is_multiple_of(4) {
        // Crash one process at t = 0 (never all of them: n ≥ 2).
        pattern = pattern.with_crash(ProcessId(seed as usize % n), 0);
    }
    Family {
        n,
        pattern,
        max_step_gap: 2 + (seed % 2),
        max_delay: 2 + ((seed / 2) % 2),
        livelock: seed.is_multiple_of(2),
    }
}

fn verdict(fam: &Family, cfg: LivenessConfig) -> LivenessVerdict {
    let n = fam.n;
    let report = if fam.livelock {
        check_liveness(
            cfg,
            || PingPong::fleet(n),
            vec![None; n],
            &fam.pattern,
            NoDetector,
            &Ltl::prop("decided").eventually(),
        )
    } else {
        check_liveness(
            cfg,
            || Decider::fleet(n),
            vec![None; n],
            &fam.pattern,
            NoDetector,
            &Ltl::prop("all-decided").eventually(),
        )
    };
    let report = report.expect("family scenarios are well-formed");
    assert!(
        !report.truncated,
        "family scenarios must fit the default inbox capacity"
    );
    report.verdict
}

/// The ladder: over 40 seeded scenarios, the verdict must be invariant
/// under symmetry canonicalization on/off and worker thread count 1/2/4.
/// Any divergence means a reduction or the parallel graph merge changed
/// the model, not just its cost. DPOR is *not* a rung: requesting it is
/// a configuration error (sleep-set reduction is unsound for cycle
/// detection), asserted per seed below.
#[test]
fn verdicts_are_invariant_under_reductions_and_threads() {
    for seed in 0..40u64 {
        let fam = family(seed);
        let base = LivenessConfig::new(fam.max_step_gap, fam.max_delay, 0);
        let expected = if fam.livelock {
            LivenessVerdict::Violated
        } else {
            LivenessVerdict::Holds
        };
        let baseline = verdict(&fam, base.clone().with_threads(1));
        assert_eq!(baseline, expected, "seed {seed}: baseline verdict");
        for symmetry in [false, true] {
            for threads in [1usize, 2, 4] {
                let cfg = base.clone().with_symmetry(symmetry).with_threads(threads);
                let got = verdict(&fam, cfg);
                assert_eq!(
                    got, baseline,
                    "seed {seed}: verdict changed under symmetry={symmetry} \
                     threads={threads}"
                );
            }
        }
        // The former dpor=true rung: the checker must refuse outright
        // rather than silently ignore the flag.
        let n = fam.n;
        let err = check_liveness(
            base.clone().with_dpor(true),
            || PingPong::fleet(n),
            vec![None; n],
            &fam.pattern,
            NoDetector,
            &Ltl::prop("decided").eventually(),
        )
        .expect_err("DPOR must be rejected, not ignored");
        assert!(err.contains("DPOR"), "seed {seed}: {err}");
    }
}

/// The graph build must be bit-stable across thread counts: not only the
/// verdict but the deduplicated model itself (state and edge counts) is
/// required to be identical, because the merge is deterministic.
#[test]
fn graph_shape_is_identical_across_thread_counts() {
    for seed in [1u64, 2, 6, 11] {
        let fam = family(seed);
        let reports: Vec<(usize, usize)> = [1usize, 2, 4]
            .into_iter()
            .map(|threads| {
                let cfg =
                    LivenessConfig::new(fam.max_step_gap, fam.max_delay, 0).with_threads(threads);
                let n = fam.n;
                let report = check_liveness(
                    cfg,
                    || PingPong::fleet(n),
                    vec![None; n],
                    &fam.pattern,
                    NoDetector,
                    &Ltl::prop("decided").eventually(),
                )
                .expect("well-formed");
                (report.states, report.edges)
            })
            .collect();
        assert_eq!(reports[0], reports[1], "seed {seed}: 1 vs 2 threads");
        assert_eq!(reports[0], reports[2], "seed {seed}: 1 vs 4 threads");
    }
}

/// The artifact pipeline: a found lasso serializes to `wfd-repro-v1`
/// JSON, parses back to an equal value whose re-serialization is
/// byte-identical, and the parsed decision lists replay as a fair
/// infinite run.
#[test]
fn lasso_repro_round_trips_byte_identically_and_replays() {
    let n = 2;
    let cfg = || LivenessConfig::new(3, 3, 0);
    let pattern = FailurePattern::failure_free(n);
    let report = check_liveness(
        cfg(),
        || PingPong::fleet(n),
        vec![None; n],
        &pattern,
        NoDetector,
        &Ltl::prop("decided").eventually(),
    )
    .expect("well-formed");
    assert_eq!(report.verdict, LivenessVerdict::Violated);
    let lasso = report.lasso.expect("a concrete witness");

    let repro = Repro::from_lasso(
        "fixtures::PingPong",
        "F \"decided\"",
        "no process ever decides on this fair cycle",
        lasso.stem.clone(),
        lasso.cycle.clone(),
        0,
        3,
        3,
        &pattern,
        OracleSpec::new("none"),
    );
    let json = repro.to_json();
    let parsed = Repro::from_json(&json).expect("artifact parses");
    assert_eq!(parsed, repro, "round-trip must be lossless");
    assert_eq!(
        parsed.to_json(),
        json,
        "re-serialization must be byte-identical"
    );
    assert_eq!(parsed.source, ReproSource::Liveness);

    let (stem, cycle) = parsed
        .decisions
        .as_lasso()
        .expect("liveness artifacts carry lasso decisions");
    assert_eq!(stem, lasso.stem.as_slice());
    assert_eq!(cycle, lasso.cycle.as_slice());
    let replay = Replay::from_repro(&parsed).expect("liveness artifacts build a lasso replay");
    assert!(replay.is_lasso());
    replay
        .run_fair(
            &cfg(),
            || PingPong::fleet(n),
            vec![None; n],
            &pattern,
            NoDetector,
        )
        .expect("parsed artifact replays as a fair run");
}

/// Corrupted artifacts must be rejected by the replayer, not panic it:
/// an unfair decision (a non-forced actor while another is overdue) and
/// a non-recurring cycle both return `Err`.
#[test]
fn hostile_lassos_are_rejected_gracefully() {
    let n = 2;
    let cfg = LivenessConfig::new(2, 2, 0);
    let pattern = FailurePattern::failure_free(n);
    // Empty cycle: not an infinite run.
    let err = Replay::lasso(vec![], vec![])
        .run_fair(
            &cfg,
            || PingPong::fleet(n),
            vec![None; n],
            &pattern,
            NoDetector,
        )
        .expect_err("empty cycle");
    assert!(err.contains("non-empty"), "{err}");
    // A cycle that exists but does not recur: one start step leaves the
    // initial configuration for good.
    let err = Replay::lasso(vec![], vec![(ProcessId(0), None)])
        .run_fair(
            &cfg,
            || PingPong::fleet(n),
            vec![None; n],
            &pattern,
            NoDetector,
        )
        .expect_err("non-recurring cycle");
    assert!(err.contains("return"), "{err}");
    // An unfair decision: with G = 2, stepping the same process three
    // times in a row leaves the other overdue and forced.
    let err = Replay::lasso(
        vec![
            (ProcessId(0), None),
            (ProcessId(0), None),
            (ProcessId(0), None),
        ],
        vec![(ProcessId(0), None)],
    )
    .run_fair(
        &cfg,
        || PingPong::fleet(n),
        vec![None; n],
        &pattern,
        NoDetector,
    )
    .expect_err("unfair stem");
    assert!(err.contains("fair"), "{err}");
}

/// Ill-formed scenarios are `Err`, not panics or wrong verdicts.
#[test]
fn scenario_validation_errors() {
    let cfg = || LivenessConfig::new(2, 2, 0);
    let check = |cfg: LivenessConfig, pattern: &FailurePattern, slots: usize| {
        check_liveness(
            cfg,
            || PingPong::fleet(2),
            vec![None; slots],
            pattern,
            NoDetector,
            &Ltl::prop("decided").eventually(),
        )
    };
    let ff = FailurePattern::failure_free(2);
    // Invocation arity.
    assert!(check(cfg(), &ff, 3).is_err());
    // All processes crashed: no fair infinite run exists.
    let dead = FailurePattern::failure_free(2)
        .with_crash(ProcessId(0), 0)
        .with_crash(ProcessId(1), 0);
    assert!(check(cfg(), &dead, 2).is_err());
    // Degenerate capacities.
    assert!(check(cfg().with_max_inbox(0), &ff, 2).is_err());
    assert!(check(LivenessConfig::new(0, 2, 0), &ff, 2).is_err());
    assert!(check(LivenessConfig::new(2, 0, 0), &ff, 2).is_err());
}
