//! `WFD_*` environment overrides, centralized.
//!
//! Before this module every binary read its own `std::env::var`s. All
//! knobs now resolve through [`EnvOverrides`], with one precedence rule
//! everywhere:
//!
//! > **explicit builder value > environment variable > built-in default**
//!
//! | Variable | Meaning | Default |
//! |---|---|---|
//! | `WFD_EXPLORE_THREADS` | worker threads for [`crate::explore()`] | available parallelism |
//! | `WFD_SWEEP_THREADS` (then `RAYON_NUM_THREADS`) | worker threads for `wfd_bench::sweep` | available parallelism |
//! | `WFD_EXPERIMENTS_DIR` | where bench artifacts are written | `target/experiments` |
//! | `WFD_METRICS` | observability: `0`/unset = off, `1`/`on` = on, `heartbeat[=SECS]` = on + stderr heartbeat | off |
//!
//! The `resolve_*` methods each take the *explicit* (builder/CLI) value
//! as an `Option` and apply that rule. [`EnvOverrides::from_lookup`]
//! exists so precedence is unit-testable without mutating the real
//! process environment (env mutation races under `cargo test`'s
//! threaded runner).

use crate::obs::Obs;
use std::path::PathBuf;
use std::time::Duration;

/// Heartbeat interval used by `WFD_METRICS=heartbeat` without `=SECS`.
const DEFAULT_HEARTBEAT_SECS: u64 = 5;

/// What `WFD_METRICS` asked for.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum MetricsMode {
    /// No metrics (the default): [`Obs::off`].
    #[default]
    Off,
    /// Collect metrics: [`Obs::on`].
    On,
    /// Collect metrics and print a progress heartbeat to stderr at most
    /// once per this many seconds: [`Obs::with_heartbeat`].
    Heartbeat(u64),
}

/// A parsed snapshot of the `WFD_*` environment knobs. See the
/// module docs ([`crate::env`]) for the variables and the precedence rule.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EnvOverrides {
    /// `WFD_EXPLORE_THREADS`, if set and a positive integer.
    pub explore_threads: Option<usize>,
    /// `WFD_SWEEP_THREADS` (or, failing that, `RAYON_NUM_THREADS`), if
    /// set and a positive integer.
    pub sweep_threads: Option<usize>,
    /// `WFD_EXPERIMENTS_DIR`, if set and non-empty.
    pub experiments_dir: Option<PathBuf>,
    /// Parsed `WFD_METRICS`.
    pub metrics: MetricsMode,
}

impl EnvOverrides {
    /// Read the real process environment.
    pub fn from_env() -> Self {
        Self::from_lookup(|key| std::env::var(key).ok())
    }

    /// Build from an arbitrary key → value function (deterministic and
    /// race-free for tests; [`EnvOverrides::from_env`] passes
    /// `std::env::var`).
    pub fn from_lookup(lookup: impl Fn(&str) -> Option<String>) -> Self {
        let positive = |key: &str| {
            lookup(key)
                .and_then(|v| v.trim().parse::<usize>().ok())
                .filter(|&n| n > 0)
        };
        EnvOverrides {
            explore_threads: positive("WFD_EXPLORE_THREADS"),
            sweep_threads: positive("WFD_SWEEP_THREADS").or_else(|| positive("RAYON_NUM_THREADS")),
            experiments_dir: lookup("WFD_EXPERIMENTS_DIR")
                .filter(|v| !v.is_empty())
                .map(PathBuf::from),
            metrics: parse_metrics(lookup("WFD_METRICS").as_deref()),
        }
    }

    /// Worker threads for the explorer: `explicit`, else
    /// `WFD_EXPLORE_THREADS`, else available parallelism (min 1).
    pub fn resolve_explore_threads(&self, explicit: Option<usize>) -> usize {
        explicit
            .or(self.explore_threads)
            .unwrap_or_else(available_parallelism)
            .max(1)
    }

    /// Worker threads for sweeps: `explicit`, else `WFD_SWEEP_THREADS`
    /// (then `RAYON_NUM_THREADS`), else available parallelism (min 1).
    pub fn resolve_sweep_threads(&self, explicit: Option<usize>) -> usize {
        explicit
            .or(self.sweep_threads)
            .unwrap_or_else(available_parallelism)
            .max(1)
    }

    /// Artifact directory: `explicit`, else `WFD_EXPERIMENTS_DIR`, else
    /// `target/experiments`.
    pub fn resolve_experiments_dir(&self, explicit: Option<PathBuf>) -> PathBuf {
        explicit
            .or_else(|| self.experiments_dir.clone())
            .unwrap_or_else(|| PathBuf::from("target/experiments"))
    }

    /// Observability handle: `explicit` (an `Obs` already chosen by a
    /// builder or CLI flag), else whatever `WFD_METRICS` asks for, else
    /// off. When the env decides, a **fresh** store is built per call.
    pub fn resolve_obs(&self, explicit: Option<Obs>) -> Obs {
        if let Some(obs) = explicit {
            return obs;
        }
        match self.metrics {
            MetricsMode::Off => Obs::off(),
            MetricsMode::On => Obs::on(),
            MetricsMode::Heartbeat(secs) => Obs::with_heartbeat(Duration::from_secs(secs)),
        }
    }
}

fn parse_metrics(raw: Option<&str>) -> MetricsMode {
    let Some(raw) = raw else {
        return MetricsMode::Off;
    };
    let raw = raw.trim();
    match raw.to_ascii_lowercase().as_str() {
        "" | "0" | "off" | "false" | "no" => MetricsMode::Off,
        "1" | "on" | "true" | "yes" => MetricsMode::On,
        "heartbeat" => MetricsMode::Heartbeat(DEFAULT_HEARTBEAT_SECS),
        other => match other.strip_prefix("heartbeat=") {
            Some(secs) => MetricsMode::Heartbeat(
                secs.parse::<u64>()
                    .ok()
                    .filter(|&s| s > 0)
                    .unwrap_or(DEFAULT_HEARTBEAT_SECS),
            ),
            // Unknown spellings collect metrics rather than silently
            // dropping them: the user clearly asked for *something*.
            None => MetricsMode::On,
        },
    }
}

fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env_of(pairs: &[(&str, &str)]) -> EnvOverrides {
        let owned: Vec<(String, String)> = pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        EnvOverrides::from_lookup(move |key| {
            owned.iter().find(|(k, _)| k == key).map(|(_, v)| v.clone())
        })
    }

    #[test]
    fn empty_environment_is_all_defaults() {
        let env = env_of(&[]);
        assert_eq!(env, EnvOverrides::default());
        assert_eq!(env.resolve_explore_threads(None), available_parallelism());
        assert_eq!(
            env.resolve_experiments_dir(None),
            PathBuf::from("target/experiments")
        );
        assert!(!env.resolve_obs(None).is_on());
    }

    #[test]
    fn explicit_beats_env_beats_default() {
        let env = env_of(&[
            ("WFD_EXPLORE_THREADS", "3"),
            ("WFD_SWEEP_THREADS", "2"),
            ("WFD_EXPERIMENTS_DIR", "custom/dir"),
        ]);
        // env beats default
        assert_eq!(env.resolve_explore_threads(None), 3);
        assert_eq!(env.resolve_sweep_threads(None), 2);
        assert_eq!(
            env.resolve_experiments_dir(None),
            PathBuf::from("custom/dir")
        );
        // explicit beats env
        assert_eq!(env.resolve_explore_threads(Some(8)), 8);
        assert_eq!(env.resolve_sweep_threads(Some(5)), 5);
        assert_eq!(
            env.resolve_experiments_dir(Some(PathBuf::from("cli/dir"))),
            PathBuf::from("cli/dir")
        );
    }

    #[test]
    fn sweep_threads_fall_back_to_rayon_convention() {
        assert_eq!(
            env_of(&[("RAYON_NUM_THREADS", "6")]).resolve_sweep_threads(None),
            6
        );
        assert_eq!(
            env_of(&[("WFD_SWEEP_THREADS", "2"), ("RAYON_NUM_THREADS", "6")])
                .resolve_sweep_threads(None),
            2
        );
    }

    #[test]
    fn garbage_numbers_are_ignored() {
        let env = env_of(&[("WFD_EXPLORE_THREADS", "zero"), ("WFD_SWEEP_THREADS", "0")]);
        assert_eq!(env.explore_threads, None);
        assert_eq!(env.sweep_threads, None);
    }

    #[test]
    fn metrics_spellings() {
        assert_eq!(env_of(&[]).metrics, MetricsMode::Off);
        for off in ["0", "off", "false", "no", ""] {
            assert_eq!(env_of(&[("WFD_METRICS", off)]).metrics, MetricsMode::Off);
        }
        for on in ["1", "on", "true", "YES"] {
            assert_eq!(env_of(&[("WFD_METRICS", on)]).metrics, MetricsMode::On);
        }
        assert_eq!(
            env_of(&[("WFD_METRICS", "heartbeat")]).metrics,
            MetricsMode::Heartbeat(DEFAULT_HEARTBEAT_SECS)
        );
        assert_eq!(
            env_of(&[("WFD_METRICS", "heartbeat=30")]).metrics,
            MetricsMode::Heartbeat(30)
        );
        assert_eq!(
            env_of(&[("WFD_METRICS", "heartbeat=bogus")]).metrics,
            MetricsMode::Heartbeat(DEFAULT_HEARTBEAT_SECS)
        );
    }

    #[test]
    fn resolve_obs_precedence() {
        let env = env_of(&[("WFD_METRICS", "1")]);
        // env beats default
        assert!(env.resolve_obs(None).is_on());
        // explicit beats env — even an explicit *off*.
        assert!(!env.resolve_obs(Some(Obs::off())).is_on());
        let explicit = Obs::on();
        let resolved = env.resolve_obs(Some(explicit.clone()));
        explicit.add(crate::obs::CounterId::SweepRuns, 1);
        // Same store, not a fresh one.
        assert_eq!(
            resolved
                .snapshot()
                .unwrap()
                .counter(crate::obs::CounterId::SweepRuns),
            1
        );
    }
}
