//! Temporal-property checking: LTL over the explorer's state graph.
//!
//! The bounded explorer answers safety questions ("no violation up to
//! depth 23"). This module answers *liveness* questions — "every fair
//! infinite run eventually decides", "the leader stabilizes" — over **all
//! fair infinite runs** of a finitized model:
//!
//! 1. **Formulas** are written in the [`Ltl`] AST over atomic
//!    propositions the protocol declares through
//!    [`Protocol::props`]/[`Protocol::eval_prop`].
//! 2. The *negation* of the formula is compiled to a Büchi automaton
//!    (GPVW expansion into a generalized automaton, then a counting
//!    degeneralization).
//! 3. A **fair state graph** is built whose infinite paths are exactly
//!    the engine's fair runs: the graph branches only over choices the
//!    engine's scheduler could make under its fairness forcing rules
//!    (`choose_actor` / `choose_message` in `engine.rs` — an overdue
//!    process is forced, an overdue front message is forced, otherwise
//!    any of the oldest `POLICY_WINDOW` messages or λ may be picked).
//!    Per-process step-gap counters and per-message ages are part of the
//!    node identity, so fairness is *structural*: no Büchi fairness
//!    constraints are needed, and every lasso found is a real fair run.
//! 4. The product of graph and automaton is searched for an **accepting
//!    lasso** by the CVWY nested depth-first search. A lasso (stem +
//!    cycle decision lists) is a replayable, shrinkable counterexample —
//!    it ships as a [`Repro`](crate::Repro) with
//!    [`ReproDecisions::Lasso`](crate::ReproDecisions::Lasso).
//!
//! # Finitization and its exactness
//!
//! The graph is finite because of four quotients, three of them exact:
//!
//! * **Step-gap counters** saturate nowhere: under the forcing rule a
//!   counter provably never exceeds `max_step_gap + n - 1` (an overdue
//!   process waits at most once for each process ahead of it, and the
//!   ahead-set only shrinks). A violated bound panics.
//! * **Message ages** saturate at `max_delay`: the engine forces the
//!   front message exactly when its age reaches the bound, so ages past
//!   the bound are behaviorally indistinguishable — an exact bisimulation
//!   quotient.
//! * **Time** advances with depth until [`LivenessConfig::t_stable`] and
//!   freezes there. This is exact when every crash happens at or before
//!   `t_stable` and the detector is stationary past it — both are
//!   validated (the latter by a spot check over a window).
//! * **Inbox capacity** ([`LivenessConfig::max_inbox`]) is the one lossy
//!   bound: edges that would overflow an inbox are dropped. Every
//!   remaining run is real, so `Violated` verdicts stand; a `Holds` over
//!   a truncated graph degrades to `Inconclusive`.
//!
//! # Symmetry
//!
//! With [`ReductionConfig::symmetry`](crate::ReductionConfig) on (via
//! [`LivenessConfig::reduction`]), nodes are canonicalized under the
//! scenario-preserving subgroup of [`Protocol::symmetry`] (the same
//! restriction the safety explorer applies). Propositions must then be
//! symmetric — invariant under the declared group — which is checked on
//! every canonicalization. The quotient preserves verdicts; to keep
//! counterexamples concrete, a violation found under symmetry is re-run
//! without it to extract the replayable lasso.
//!
//! # DPOR
//!
//! [`ReductionConfig::dpor`](crate::ReductionConfig) is **rejected** by
//! this checker at validation time rather than silently ignored:
//! sleep-set reduction is unsound for cycle detection without a cycle
//! proviso (an ignored transition may close the only accepting cycle),
//! and the fair graphs this checker targets are small enough not to
//! need it. A configuration sweep that flips the flag gets an explicit
//! error instead of a quietly identical verdict.

use crate::explore::{debug_fp, scenario_symmetry, SymPerm};
use crate::failure::FailurePattern;
use crate::id::{ProcessId, Time};
use crate::json::Json;
use crate::machine::{node_eq, ExploreDecision, FairMachine, LiveNode, ReductionConfig, State};
use crate::oracle::FdOracle;
use crate::par::{explore_threads, par_map_with};
use crate::protocol::{PropView, Protocol, SendBuf};
use std::collections::BTreeMap;
use std::fmt::{self, Debug, Display};

/// The most propositions a protocol may declare — valuations are packed
/// into a `u32` bitmask.
pub const MAX_PROPS: usize = 32;

// ---------------------------------------------------------------------------
// LTL formulas
// ---------------------------------------------------------------------------

/// A linear temporal logic formula over a protocol's declared atomic
/// propositions (referenced by name; see [`Protocol::props`]).
///
/// Build formulas with the combinator methods:
///
/// ```
/// use wfd_sim::liveness::Ltl;
/// // "the leader eventually stays agreed forever"
/// let f = Ltl::prop("leader-agreed").always().eventually();
/// assert_eq!(f.to_string(), "F(G(\"leader-agreed\"))");
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Ltl {
    /// Constant truth.
    True,
    /// Constant falsehood.
    False,
    /// An atomic proposition, by declared name.
    Prop(String),
    /// Negation.
    Not(Box<Ltl>),
    /// Conjunction.
    And(Box<Ltl>, Box<Ltl>),
    /// Disjunction.
    Or(Box<Ltl>, Box<Ltl>),
    /// Next: the argument holds one step from now.
    Next(Box<Ltl>),
    /// Until: the second argument eventually holds, and the first holds
    /// at every step before that.
    Until(Box<Ltl>, Box<Ltl>),
    /// Release: the dual of until — the second argument holds up to and
    /// including the step where the first holds (possibly forever).
    Release(Box<Ltl>, Box<Ltl>),
    /// Eventually (`F φ`).
    Eventually(Box<Ltl>),
    /// Always (`G φ`).
    Always(Box<Ltl>),
}

impl Ltl {
    /// The atomic proposition `name` (must appear in the checked
    /// protocol's [`Protocol::props`]).
    pub fn prop(name: &str) -> Ltl {
        Ltl::Prop(name.to_string())
    }

    /// `¬self`.
    #[allow(clippy::should_implement_trait)] // combinator naming, mirrors until/and
    pub fn not(self) -> Ltl {
        Ltl::Not(Box::new(self))
    }

    /// `self ∧ other`.
    pub fn and(self, other: Ltl) -> Ltl {
        Ltl::And(Box::new(self), Box::new(other))
    }

    /// `self ∨ other`.
    pub fn or(self, other: Ltl) -> Ltl {
        Ltl::Or(Box::new(self), Box::new(other))
    }

    /// `self → other`.
    pub fn implies(self, other: Ltl) -> Ltl {
        self.not().or(other)
    }

    /// `X self`.
    pub fn next(self) -> Ltl {
        Ltl::Next(Box::new(self))
    }

    /// `self U other`.
    pub fn until(self, other: Ltl) -> Ltl {
        Ltl::Until(Box::new(self), Box::new(other))
    }

    /// `self R other`.
    pub fn release(self, other: Ltl) -> Ltl {
        Ltl::Release(Box::new(self), Box::new(other))
    }

    /// `F self`.
    pub fn eventually(self) -> Ltl {
        Ltl::Eventually(Box::new(self))
    }

    /// `G self`.
    pub fn always(self) -> Ltl {
        Ltl::Always(Box::new(self))
    }
}

impl Display for Ltl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ltl::True => write!(f, "true"),
            Ltl::False => write!(f, "false"),
            Ltl::Prop(name) => write!(f, "\"{name}\""),
            Ltl::Not(a) => write!(f, "!{a}"),
            Ltl::And(a, b) => write!(f, "({a} & {b})"),
            Ltl::Or(a, b) => write!(f, "({a} | {b})"),
            Ltl::Next(a) => write!(f, "X({a})"),
            Ltl::Until(a, b) => write!(f, "({a} U {b})"),
            Ltl::Release(a, b) => write!(f, "({a} R {b})"),
            Ltl::Eventually(a) => write!(f, "F({a})"),
            Ltl::Always(a) => write!(f, "G({a})"),
        }
    }
}

// ---------------------------------------------------------------------------
// Negation normal form
// ---------------------------------------------------------------------------

/// A formula in negation normal form, with subformulas interned in an
/// arena (ids are arena indices). `F φ ≡ true U φ` and `G φ ≡ false R φ`
/// are rewritten away; negation survives only on propositions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum Nf {
    True,
    False,
    Prop(u32),
    NProp(u32),
    And(u32, u32),
    Or(u32, u32),
    Next(u32),
    Until(u32, u32),
    Release(u32, u32),
}

#[derive(Default)]
struct Arena {
    nodes: Vec<Nf>,
    dedup: BTreeMap<Nf, u32>,
}

impl Arena {
    fn intern(&mut self, nf: Nf) -> u32 {
        if let Some(&id) = self.dedup.get(&nf) {
            return id;
        }
        let id = self.nodes.len() as u32;
        self.nodes.push(nf);
        self.dedup.insert(nf, id);
        id
    }

    /// Translate `f` (or its negation, when `pos` is false) into the
    /// arena. Unknown proposition names are an error.
    fn nnf(&mut self, f: &Ltl, props: &BTreeMap<&str, u32>, pos: bool) -> Result<u32, String> {
        let nf = match (f, pos) {
            (Ltl::True, true) | (Ltl::False, false) => Nf::True,
            (Ltl::True, false) | (Ltl::False, true) => Nf::False,
            (Ltl::Prop(name), _) => {
                let Some(&i) = props.get(name.as_str()) else {
                    let known: Vec<&str> = props.keys().copied().collect();
                    return Err(format!(
                        "unknown proposition \"{name}\" (protocol declares: {})",
                        known.join(", ")
                    ));
                };
                if pos {
                    Nf::Prop(i)
                } else {
                    Nf::NProp(i)
                }
            }
            (Ltl::Not(a), _) => return self.nnf(a, props, !pos),
            (Ltl::And(a, b), true) | (Ltl::Or(a, b), false) => {
                Nf::And(self.nnf(a, props, pos)?, self.nnf(b, props, pos)?)
            }
            (Ltl::And(a, b), false) | (Ltl::Or(a, b), true) => {
                Nf::Or(self.nnf(a, props, pos)?, self.nnf(b, props, pos)?)
            }
            (Ltl::Next(a), _) => Nf::Next(self.nnf(a, props, pos)?),
            (Ltl::Until(a, b), true) | (Ltl::Release(a, b), false) => {
                Nf::Until(self.nnf(a, props, pos)?, self.nnf(b, props, pos)?)
            }
            (Ltl::Until(a, b), false) | (Ltl::Release(a, b), true) => {
                Nf::Release(self.nnf(a, props, pos)?, self.nnf(b, props, pos)?)
            }
            (Ltl::Eventually(a), true) | (Ltl::Always(a), false) => {
                let t = self.intern(Nf::True);
                Nf::Until(t, self.nnf(a, props, pos)?)
            }
            (Ltl::Eventually(a), false) | (Ltl::Always(a), true) => {
                let fls = self.intern(Nf::False);
                Nf::Release(fls, self.nnf(a, props, pos)?)
            }
        };
        Ok(self.intern(nf))
    }
}

// ---------------------------------------------------------------------------
// GPVW tableau → Büchi automaton
// ---------------------------------------------------------------------------

/// Sentinel "incoming" id marking automaton-initial tableau nodes.
const INIT: usize = usize::MAX;

#[derive(Clone)]
struct TabNode {
    incoming: Vec<usize>,
    new: Vec<u32>,
    old: Vec<u32>,
    next: Vec<u32>,
}

fn set_insert(set: &mut Vec<u32>, v: u32) -> bool {
    match set.binary_search(&v) {
        Ok(_) => false,
        Err(pos) => {
            set.insert(pos, v);
            true
        }
    }
}

fn set_contains(set: &[u32], v: u32) -> bool {
    set.binary_search(&v).is_ok()
}

/// The GPVW expansion: turn the NNF formula `root` into a generalized
/// Büchi automaton's node set (Gerth–Peled–Vardi–Wolper 1995). Each
/// returned node carries its incoming edges; node `q`'s label is the set
/// of literals in `old(q)`.
fn gpvw(arena: &Arena, root: u32) -> Vec<TabNode> {
    let mut done: Vec<TabNode> = Vec::new();
    let start = TabNode {
        incoming: vec![INIT],
        new: vec![root],
        old: Vec::new(),
        next: Vec::new(),
    };
    expand(arena, start, &mut done);
    done
}

fn expand(arena: &Arena, mut node: TabNode, done: &mut Vec<TabNode>) {
    let Some(&f) = node.new.first() else {
        // Fully processed: merge with an existing node over (old, next),
        // or allocate and expand the temporal successor.
        if let Some(existing) = done
            .iter_mut()
            .find(|nd| nd.old == node.old && nd.next == node.next)
        {
            for inc in node.incoming {
                if !existing.incoming.contains(&inc) {
                    existing.incoming.push(inc);
                }
            }
            return;
        }
        let id = done.len();
        let succ = TabNode {
            incoming: vec![id],
            new: node.next.clone(),
            old: Vec::new(),
            next: Vec::new(),
        };
        done.push(node);
        expand(arena, succ, done);
        return;
    };
    node.new.retain(|&g| g != f);
    if set_contains(&node.old, f) {
        return expand(arena, node, done);
    }
    match arena.nodes[f as usize] {
        Nf::False => { /* contradiction: drop this node */ }
        Nf::True => expand(arena, node, done),
        Nf::Prop(i) => {
            let neg = arena.dedup.get(&Nf::NProp(i)).copied();
            if neg.is_some_and(|n| set_contains(&node.old, n)) {
                return; // p ∧ ¬p: drop
            }
            set_insert(&mut node.old, f);
            expand(arena, node, done);
        }
        Nf::NProp(i) => {
            let pos = arena.dedup.get(&Nf::Prop(i)).copied();
            if pos.is_some_and(|p| set_contains(&node.old, p)) {
                return;
            }
            set_insert(&mut node.old, f);
            expand(arena, node, done);
        }
        Nf::And(a, b) => {
            set_insert(&mut node.old, f);
            set_insert(&mut node.new, a);
            set_insert(&mut node.new, b);
            expand(arena, node, done);
        }
        Nf::Or(a, b) => {
            set_insert(&mut node.old, f);
            let mut left = node.clone();
            set_insert(&mut left.new, a);
            expand(arena, left, done);
            set_insert(&mut node.new, b);
            expand(arena, node, done);
        }
        Nf::Next(a) => {
            set_insert(&mut node.old, f);
            set_insert(&mut node.next, a);
            expand(arena, node, done);
        }
        Nf::Until(a, b) => {
            set_insert(&mut node.old, f);
            // a U b  ≡  b ∨ (a ∧ X(a U b))
            let mut left = node.clone();
            set_insert(&mut left.new, a);
            set_insert(&mut left.next, f);
            expand(arena, left, done);
            set_insert(&mut node.new, b);
            expand(arena, node, done);
        }
        Nf::Release(a, b) => {
            set_insert(&mut node.old, f);
            // a R b  ≡  (a ∧ b) ∨ (b ∧ X(a R b))
            let mut left = node.clone();
            set_insert(&mut left.new, b);
            set_insert(&mut left.next, f);
            expand(arena, left, done);
            set_insert(&mut node.new, a);
            set_insert(&mut node.new, b);
            expand(arena, node, done);
        }
    }
}

/// A degeneralized Büchi automaton over proposition bitmask labels.
///
/// `k` acceptance counters are folded in at the *product* level (the
/// counter is part of the product state, advanced by the source state's
/// membership in the current acceptance set), so the automaton itself
/// stays at GPVW size.
struct Buchi {
    /// Number of tableau states.
    n_states: usize,
    /// Degeneralization modulus (≥ 1).
    k: usize,
    /// Per-state positive-literal mask: these propositions must hold in
    /// the graph node consumed at this state.
    label_pos: Vec<u32>,
    /// Per-state negative-literal mask: these propositions must be false.
    label_neg: Vec<u32>,
    /// Per-state successor lists, ascending.
    succ: Vec<Vec<u32>>,
    /// Initial states, ascending.
    init: Vec<u32>,
    /// `in_acc[j][q]`: state `q` belongs to acceptance set `j`.
    in_acc: Vec<Vec<bool>>,
}

impl Buchi {
    /// Whether automaton state `q` may consume a graph node whose
    /// proposition valuation is `val`.
    fn sat(&self, val: u32, q: u32) -> bool {
        let q = q as usize;
        val & self.label_pos[q] == self.label_pos[q] && val & self.label_neg[q] == 0
    }
}

fn build_buchi(arena: &Arena, nodes: &[TabNode]) -> Buchi {
    let n = nodes.len();
    let mut label_pos = vec![0u32; n];
    let mut label_neg = vec![0u32; n];
    let mut succ: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut init: Vec<u32> = Vec::new();
    for (q, nd) in nodes.iter().enumerate() {
        for &f in &nd.old {
            match arena.nodes[f as usize] {
                Nf::Prop(i) => label_pos[q] |= 1 << i,
                Nf::NProp(i) => label_neg[q] |= 1 << i,
                _ => {}
            }
        }
        for &r in &nd.incoming {
            if r == INIT {
                if !init.contains(&(q as u32)) {
                    init.push(q as u32);
                }
            } else {
                succ[r].push(q as u32);
            }
        }
    }
    for s in &mut succ {
        s.sort_unstable();
        s.dedup();
    }
    init.sort_unstable();
    // One acceptance set per distinct Until subformula: state q is in
    // F_(a U b) unless it promises (a U b) without certifying b.
    let untils: Vec<(u32, u32)> = arena
        .nodes
        .iter()
        .enumerate()
        .filter_map(|(id, nf)| match nf {
            Nf::Until(_, b) => Some((id as u32, *b)),
            _ => None,
        })
        .collect();
    let k = untils.len().max(1);
    let mut in_acc: Vec<Vec<bool>> = Vec::with_capacity(k);
    if untils.is_empty() {
        in_acc.push(vec![true; n]);
    } else {
        for &(u, b) in &untils {
            in_acc.push(
                nodes
                    .iter()
                    .map(|nd| !set_contains(&nd.old, u) || set_contains(&nd.old, b))
                    .collect(),
            );
        }
    }
    Buchi {
        n_states: n,
        k,
        label_pos,
        label_neg,
        succ,
        init,
        in_acc,
    }
}

// ---------------------------------------------------------------------------
// Configuration, report
// ---------------------------------------------------------------------------

/// Parameters of a liveness check. `new(max_step_gap, max_delay,
/// t_stable)` gives usable defaults for the rest.
#[derive(Clone, Debug)]
pub struct LivenessConfig {
    /// Fairness bound `G`: an alive process takes a step at least every
    /// `G` steps (mirrors [`SimConfig::max_step_gap`](crate::SimConfig)).
    pub max_step_gap: Time,
    /// Fairness bound `D`: a message to an alive process is delivered
    /// within `D` steps of being sent.
    pub max_delay: Time,
    /// The time after which the model is stationary: every crash has
    /// happened (validated) and the detector answers the same value it
    /// answers at `t_stable` forever after (spot-checked). Graph time
    /// freezes here.
    pub t_stable: Time,
    /// Node budget; exceeding it yields `Inconclusive` unless a
    /// violation was already found.
    pub max_states: usize,
    /// Per-inbox message capacity; edges that would overflow are dropped
    /// (`Holds` then degrades to `Inconclusive`).
    pub max_inbox: usize,
    /// The shared reduction knobs (see [`ReductionConfig`]). Only
    /// `symmetry` is usable here; a configuration with `dpor` set is
    /// **rejected** at validation time (see the module docs' DPOR
    /// section).
    pub reduction: ReductionConfig,
    /// Worker threads for the graph build; `0` uses
    /// [`explore_threads`] (the `WFD_EXPLORE_THREADS` override or
    /// available parallelism).
    pub threads: usize,
}

impl LivenessConfig {
    /// A configuration with the given fairness bounds and stabilization
    /// time, default budgets, reductions off.
    pub fn new(max_step_gap: Time, max_delay: Time, t_stable: Time) -> Self {
        LivenessConfig {
            max_step_gap,
            max_delay,
            t_stable,
            max_states: 250_000,
            max_inbox: 8,
            reduction: ReductionConfig::none(),
            threads: 0,
        }
    }

    /// Set the node budget.
    pub fn with_max_states(mut self, max_states: usize) -> Self {
        self.max_states = max_states;
        self
    }

    /// Set the per-inbox capacity.
    pub fn with_max_inbox(mut self, max_inbox: usize) -> Self {
        self.max_inbox = max_inbox;
        self
    }

    /// Replace the reduction configuration wholesale.
    pub fn with_reduction(mut self, reduction: ReductionConfig) -> Self {
        self.reduction = reduction;
        self
    }

    /// Toggle symmetry canonicalization.
    pub fn with_symmetry(mut self, on: bool) -> Self {
        self.reduction.symmetry = on;
        self
    }

    /// Toggle the DPOR flag. Note that a liveness check **rejects** a
    /// configuration with DPOR on (unsound for cycle detection — see the
    /// module docs); the builder exists so sweeps constructing one
    /// [`ReductionConfig`] per run get a clear error instead of a
    /// silently unreduced check.
    pub fn with_dpor(mut self, on: bool) -> Self {
        self.reduction.dpor = on;
        self
    }

    /// Set the worker thread count (`0` = environment default).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }
}

/// The outcome of a liveness check.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LivenessVerdict {
    /// The property holds over every fair infinite run of the (complete)
    /// finite model.
    Holds,
    /// A fair infinite run violating the property exists; see the lasso.
    Violated,
    /// The model was truncated (inbox capacity or node budget) before a
    /// verdict could be certified.
    Inconclusive,
}

impl LivenessVerdict {
    /// Stable lowercase tag (used in JSON reports).
    pub fn as_str(&self) -> &'static str {
        match self {
            LivenessVerdict::Holds => "holds",
            LivenessVerdict::Violated => "violated",
            LivenessVerdict::Inconclusive => "inconclusive",
        }
    }
}

/// A concrete violating run: `stem · cycleʷ` in explorer decision
/// vocabulary. Replay with
/// [`Replay::lasso`](crate::Replay::lasso) +
/// [`Replay::run_fair`](crate::Replay::run_fair); ship as a
/// [`Repro`](crate::Repro) via [`Repro::from_lasso`](crate::Repro::from_lasso).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LassoWitness {
    /// Decisions from the initial configuration to the loop head.
    pub stem: Vec<ExploreDecision>,
    /// Decisions around the loop (non-empty).
    pub cycle: Vec<ExploreDecision>,
}

/// The result of [`check_liveness`], with model-size statistics.
#[derive(Clone, Debug)]
pub struct LivenessReport {
    /// The verdict.
    pub verdict: LivenessVerdict,
    /// The violating lasso, when one was found (a violation detected
    /// under symmetry whose witness extraction hit the state budget may
    /// report `Violated` with no lasso).
    pub lasso: Option<LassoWitness>,
    /// The checked formula, rendered.
    pub formula: String,
    /// Why the verdict is `Inconclusive`, when it is.
    pub reason: Option<String>,
    /// Fair-graph nodes built.
    pub states: usize,
    /// Fair-graph edges built.
    pub edges: usize,
    /// Büchi automaton states (for ¬φ, before degeneralization).
    pub buchi_states: usize,
    /// Product states visited by the nested DFS.
    pub product_states: usize,
    /// Whether the inbox capacity dropped at least one edge.
    pub truncated: bool,
}

impl LivenessReport {
    /// A machine-readable JSON rendering (used by experiment binaries).
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("verdict".to_string(), Json::str(self.verdict.as_str())),
            ("formula".to_string(), Json::str(&self.formula)),
            ("states".to_string(), Json::usize(self.states)),
            ("edges".to_string(), Json::usize(self.edges)),
            ("buchi_states".to_string(), Json::usize(self.buchi_states)),
            (
                "product_states".to_string(),
                Json::usize(self.product_states),
            ),
            ("truncated".to_string(), Json::bool(self.truncated)),
        ];
        if let Some(reason) = &self.reason {
            fields.push(("reason".to_string(), Json::str(reason)));
        }
        if let Some(lasso) = &self.lasso {
            fields.push((
                "lasso".to_string(),
                Json::Obj(vec![
                    ("stem_len".to_string(), Json::usize(lasso.stem.len())),
                    ("cycle_len".to_string(), Json::usize(lasso.cycle.len())),
                ]),
            ));
        }
        Json::Obj(fields)
    }
}

// ---------------------------------------------------------------------------
// The fair state graph
// ---------------------------------------------------------------------------

// `LiveNode` (the graph node: machine state + fairness bookkeeping) and
// its structural equality live in [`crate::machine`], shared with the
// lasso replayer; the fingerprint stays here with the other
// `debug_fp`-based hashing.
fn node_fp<P: Protocol + Debug>(node: &LiveNode<P>) -> u128 {
    debug_fp(&(
        &node.state.procs,
        &node.state.inboxes,
        &node.state.started,
        &node.state.pending_inv,
        node.state.depth,
        &node.since,
        &node.ages,
    ))
}

/// Everything the expansion workers share read-only.
struct GraphEnv<'a, P: Protocol> {
    pattern: &'a FailurePattern,
    cfg: &'a LivenessConfig,
    /// `fd[p * stride + t]` for `t ≤ t_stable`, `None` when crashed.
    fd: Vec<Option<P::Fd>>,
    stride: usize,
    /// `alive[t][p]` for `t ≤ t_stable`.
    alive: Vec<Vec<bool>>,
    correct: Vec<bool>,
    perms: Vec<SymPerm>,
    prop_count: usize,
}

impl<P: Protocol> GraphEnv<'_, P> {
    fn fd_at(&self, p: usize, t: Time) -> &P::Fd {
        self.fd[p * self.stride + t as usize]
            .as_ref()
            .expect("fair decisions never step a crashed process")
    }

    fn eval(&self, procs: &[P], t: Time) -> u32 {
        let view = PropView {
            alive: &self.alive[t as usize],
            correct: &self.correct,
        };
        let mut val = 0u32;
        for i in 0..self.prop_count {
            if P::eval_prop(i, procs, &view) {
                val |= 1 << i;
            }
        }
        val
    }
}

// Fair decision enumeration and fair stepping live on
// [`FairMachine`] in [`crate::machine`] (`enabled_fair` / `step_with`),
// shared between this graph builder and `Replay::run_fair`.

/// Rebuild `node` with every process renamed through `sp` (canonical
/// slot `j` is filled from original slot `inverse[j]`, embedded ids
/// rewritten forward). Invocation payloads are moved, not rewritten,
/// matching the safety explorer (scenario symmetry already requires
/// orbit slots to hold `Debug`-equal invocations).
fn permute_node<P: Protocol + Clone>(node: &LiveNode<P>, sp: &SymPerm) -> LiveNode<P> {
    let n = node.state.procs.len();
    let mut state = State::blank();
    state.depth = node.state.depth;
    let mut since = Vec::with_capacity(n);
    let mut ages = Vec::with_capacity(n);
    for j in 0..n {
        let src = sp.inverse[j];
        let mut proc = node.state.procs[src].clone();
        proc.permute(&sp.perm);
        state.procs.push(proc);
        state.started.push(node.state.started[src]);
        state.pending_inv.push(node.state.pending_inv[src].clone());
        state.inboxes.push(
            node.state.inboxes[src]
                .iter()
                .map(|(from, msg)| {
                    let mut msg = msg.clone();
                    P::permute_msg(&mut msg, &sp.perm);
                    (sp.perm.apply(*from), msg)
                })
                .collect(),
        );
        since.push(node.since[src]);
        ages.push(node.ages[src].clone());
    }
    LiveNode { state, since, ages }
}

/// Canonicalize under the scenario symmetry group: the permuted variant
/// with the least fingerprint wins (identity on ties, then the earlier
/// group element). Checks that the proposition valuation is invariant —
/// the soundness obligation symmetric protocols take on.
fn canonicalize<P>(env: &GraphEnv<'_, P>, node: LiveNode<P>) -> Result<LiveNode<P>, String>
where
    P: Protocol + Clone + Debug,
{
    if env.perms.is_empty() {
        return Ok(node);
    }
    let t = node.state.depth as Time;
    let val = env.eval(&node.state.procs, t);
    let mut best_fp = node_fp(&node);
    let mut best: Option<LiveNode<P>> = None;
    for sp in &env.perms {
        let permuted = permute_node(&node, sp);
        if env.eval(&permuted.state.procs, t) != val {
            return Err(format!(
                "propositions of {} are not invariant under its declared \
                 symmetry group; liveness props must be symmetric \
                 (quantify over processes instead of naming one)",
                std::any::type_name::<P>()
            ));
        }
        let fp = node_fp(&permuted);
        if fp < best_fp {
            best_fp = fp;
            best = Some(permuted);
        }
    }
    Ok(best.unwrap_or(node))
}

struct LiveGraph<P: Protocol> {
    nodes: Vec<LiveNode<P>>,
    succs: Vec<Vec<(u32, ExploreDecision)>>,
    vals: Vec<u32>,
    truncated: bool,
    capped: bool,
}

/// Build the deduplicated fair state graph, breadth-first in parallel
/// batches with a sequential deterministic merge (identical graphs at
/// any thread count).
fn build_graph<P>(
    env: &GraphEnv<'_, P>,
    procs: Vec<P>,
    invocations: Vec<Option<P::Inv>>,
) -> Result<LiveGraph<P>, String>
where
    P: Protocol + Clone + Debug + PartialEq + Send + Sync,
    P::Msg: PartialEq + Send + Sync,
    P::Inv: PartialEq + Send + Sync,
    P::Output: Send + Sync,
    P::Fd: Send + Sync,
{
    let threads = if env.cfg.threads == 0 {
        explore_threads()
    } else {
        env.cfg.threads
    };
    // The fair semantics: enumeration and stepping both come from the
    // shared machine layer. Workers sample the pre-computed detector
    // table themselves (the machine's own sampler is the same lookup),
    // so the hot path reuses per-worker buffers via `step_with`.
    let machine = FairMachine::<P, _>::new(
        env.pattern,
        env.cfg.max_step_gap,
        env.cfg.max_delay,
        env.cfg.t_stable,
        |p: ProcessId, t: Time| env.fd_at(p.index(), t).clone(),
    );
    let root = canonicalize(env, machine.initial(procs, invocations))?;
    let root_fp = node_fp(&root);
    let root_val = env.eval(&root.state.procs, 0);
    let mut nodes = vec![root];
    let mut vals = vec![root_val];
    let mut succs: Vec<Vec<(u32, ExploreDecision)>> = vec![Vec::new()];
    let mut buckets: BTreeMap<u128, Vec<u32>> = BTreeMap::new();
    buckets.insert(root_fp, vec![0]);
    let mut frontier: Vec<u32> = vec![0];
    let mut truncated = false;
    let mut capped = false;
    while !frontier.is_empty() && !capped {
        type Expanded<P> = Result<(Vec<(ExploreDecision, LiveNode<P>, u128, u32)>, bool), String>;
        let results: Vec<Expanded<P>> = par_map_with(&frontier, threads, |_, &id| {
            let node = &nodes[id as usize];
            let mut decisions = Vec::new();
            machine.enabled_fair(node, &mut decisions);
            let mut bufs: (SendBuf<P>, Vec<P::Output>) = (Vec::new(), Vec::new());
            let mut out = Vec::with_capacity(decisions.len());
            let mut trunc = false;
            for dec in decisions {
                let t = node.state.depth as Time;
                let fd = env.fd_at(dec.0.index(), t).clone();
                let succ = machine.step_with(node, dec, fd, &mut bufs);
                if succ
                    .state
                    .inboxes
                    .iter()
                    .any(|ib| ib.len() > env.cfg.max_inbox)
                {
                    trunc = true;
                    continue;
                }
                let succ = canonicalize(env, succ)?;
                let fp = node_fp(&succ);
                let val = env.eval(&succ.state.procs, succ.state.depth as Time);
                out.push((dec, succ, fp, val));
            }
            Ok((out, trunc))
        });
        let batch = std::mem::take(&mut frontier);
        for (src, res) in batch.iter().zip(results) {
            let (edges, trunc) = res?;
            truncated |= trunc;
            for (dec, succ, fp, val) in edges {
                let bucket = buckets.entry(fp).or_default();
                let found = bucket
                    .iter()
                    .copied()
                    .find(|&id| node_eq(&nodes[id as usize], &succ));
                let id = match found {
                    Some(id) => id,
                    None => {
                        if nodes.len() >= env.cfg.max_states {
                            capped = true;
                            continue;
                        }
                        let id = nodes.len() as u32;
                        nodes.push(succ);
                        vals.push(val);
                        succs.push(Vec::new());
                        bucket.push(id);
                        frontier.push(id);
                        id
                    }
                };
                succs[*src as usize].push((id, dec));
            }
        }
    }
    Ok(LiveGraph {
        nodes,
        succs,
        vals,
        truncated,
        capped,
    })
}

// ---------------------------------------------------------------------------
// Product construction and nested DFS
// ---------------------------------------------------------------------------

/// CVWY nested depth-first search for an accepting lasso in the product
/// of the fair graph and the (degeneralized) Büchi automaton for ¬φ.
/// Returns the lasso and the number of product states visited.
fn find_lasso<P: Protocol>(graph: &LiveGraph<P>, ba: &Buchi) -> (Option<LassoWitness>, usize) {
    if graph.nodes.is_empty() || ba.n_states == 0 {
        return (None, 0);
    }
    // Product state = (graph node, automaton state, acceptance counter).
    let mut index: BTreeMap<(u32, u32, u32), u32> = BTreeMap::new();
    // Product state: (graph node, Büchi state, acceptance counter).
    type Key = (u32, u32, u32);
    // Interner threaded into `succs_of` by mutable reference: it must
    // also borrow the state tables, so those travel as arguments.
    type Intern<'a> = dyn FnMut(&mut Vec<Key>, &mut Vec<u8>, &mut Vec<bool>, Key) -> u32 + 'a;
    let mut states: Vec<Key> = Vec::new();
    let mut colors: Vec<u8> = Vec::new(); // 0 white, 1 cyan, 2 blue
    let mut red: Vec<bool> = Vec::new();
    let mut intern =
        |states: &mut Vec<Key>, colors: &mut Vec<u8>, red: &mut Vec<bool>, key: Key| {
            *index.entry(key).or_insert_with(|| {
                let id = states.len() as u32;
                states.push(key);
                colors.push(0);
                red.push(false);
                id
            })
        };
    // Successors of a product state, in deterministic order. The
    // acceptance counter advances on leaving a state that belongs to the
    // current acceptance set; accepting product states are those about
    // to complete a full counter cycle at set 0.
    let succs_of = |states: &mut Vec<Key>,
                    colors: &mut Vec<u8>,
                    red: &mut Vec<bool>,
                    intern: &mut Intern<'_>,
                    pid: u32| {
        let (g, q, c) = states[pid as usize];
        let c_next = if ba.in_acc[c as usize][q as usize] {
            (c + 1) % ba.k as u32
        } else {
            c
        };
        let mut out: Vec<(u32, ExploreDecision)> = Vec::new();
        for &(g2, dec) in &graph.succs[g as usize] {
            for &q2 in &ba.succ[q as usize] {
                if ba.sat(graph.vals[g2 as usize], q2) {
                    let id = intern(states, colors, red, (g2, q2, c_next));
                    out.push((id, dec));
                }
            }
        }
        out
    };
    let accepting = |states: &[Key], pid: u32| -> bool {
        let (_, q, c) = states[pid as usize];
        c == 0 && ba.in_acc[0][q as usize]
    };

    struct Frame {
        pid: u32,
        entered: Option<ExploreDecision>,
        succs: Vec<(u32, ExploreDecision)>,
        next: usize,
    }

    let mut roots: Vec<u32> = Vec::new();
    for &q in &ba.init {
        if ba.sat(graph.vals[0], q) {
            let id = intern(&mut states, &mut colors, &mut red, (0, q, 0));
            roots.push(id);
        }
    }
    let mut intern_box: Box<Intern<'_>> = Box::new(intern);
    for root in roots {
        if colors[root as usize] != 0 {
            continue;
        }
        let mut blue: Vec<Frame> = Vec::new();
        colors[root as usize] = 1;
        let root_succs = succs_of(&mut states, &mut colors, &mut red, &mut *intern_box, root);
        blue.push(Frame {
            pid: root,
            entered: None,
            succs: root_succs,
            next: 0,
        });
        while let Some(top) = blue.last_mut() {
            if top.next < top.succs.len() {
                let (child, dec) = top.succs[top.next];
                top.next += 1;
                if colors[child as usize] == 0 {
                    colors[child as usize] = 1;
                    let child_succs =
                        succs_of(&mut states, &mut colors, &mut red, &mut *intern_box, child);
                    blue.push(Frame {
                        pid: child,
                        entered: Some(dec),
                        succs: child_succs,
                        next: 0,
                    });
                }
                continue;
            }
            // Post-order on top.pid: nested red search from accepting
            // states, while the blue stack (cyan states) is intact.
            let seed = top.pid;
            if accepting(&states, seed) && !red[seed as usize] {
                let mut red_stack: Vec<Frame> = Vec::new();
                red[seed as usize] = true;
                let seed_succs =
                    succs_of(&mut states, &mut colors, &mut red, &mut *intern_box, seed);
                red_stack.push(Frame {
                    pid: seed,
                    entered: None,
                    succs: seed_succs,
                    next: 0,
                });
                let mut hit: Option<(u32, ExploreDecision)> = None;
                'red: while let Some(rtop) = red_stack.last_mut() {
                    if rtop.next < rtop.succs.len() {
                        let (child, dec) = rtop.succs[rtop.next];
                        rtop.next += 1;
                        if colors[child as usize] == 1 {
                            // Reached a state on the blue stack: the
                            // cycle seed → … → child → (stack) → seed
                            // closes an accepting loop through seed.
                            hit = Some((child, dec));
                            break 'red;
                        }
                        if !red[child as usize] {
                            red[child as usize] = true;
                            let child_succs = succs_of(
                                &mut states,
                                &mut colors,
                                &mut red,
                                &mut *intern_box,
                                child,
                            );
                            red_stack.push(Frame {
                                pid: child,
                                entered: Some(dec),
                                succs: child_succs,
                                next: 0,
                            });
                        }
                        continue;
                    }
                    red_stack.pop();
                }
                if let Some((cyan, closing)) = hit {
                    // Stem: blue-stack path root → seed.
                    let stem: Vec<ExploreDecision> =
                        blue.iter().filter_map(|f| f.entered).collect();
                    // Cycle: red path seed → … → cyan, then the blue
                    // stack segment cyan → seed.
                    let mut cycle: Vec<ExploreDecision> =
                        red_stack.iter().filter_map(|f| f.entered).collect();
                    cycle.push(closing);
                    let pos = blue
                        .iter()
                        .position(|f| f.pid == cyan)
                        .expect("a cyan state is on the blue stack");
                    cycle.extend(blue[pos + 1..].iter().filter_map(|f| f.entered));
                    return (Some(LassoWitness { stem, cycle }), states.len());
                }
            }
            colors[seed as usize] = 2;
            blue.pop();
        }
    }
    (None, states.len())
}

// ---------------------------------------------------------------------------
// Validation and entry points
// ---------------------------------------------------------------------------

fn resolve_props<P: Protocol>() -> Result<BTreeMap<&'static str, u32>, String> {
    let names = P::props();
    if names.len() > MAX_PROPS {
        return Err(format!(
            "{} declares {} propositions; at most {MAX_PROPS} are supported",
            std::any::type_name::<P>(),
            names.len()
        ));
    }
    let mut map = BTreeMap::new();
    for (i, &name) in names.iter().enumerate() {
        if map.insert(name, i as u32).is_some() {
            return Err(format!(
                "{} declares proposition \"{name}\" twice",
                std::any::type_name::<P>()
            ));
        }
    }
    Ok(map)
}

/// Reject ill-formed scenarios and unsound reduction requests before any
/// graph work. Shared with [`Replay::run_fair`](crate::Replay::run_fair),
/// so replayed artifacts face exactly the checker's preconditions.
pub(crate) fn validate<P, D>(
    cfg: &LivenessConfig,
    pattern: &FailurePattern,
    n: usize,
    detector: &mut D,
) -> Result<(), String>
where
    P: Protocol,
    P::Fd: PartialEq,
    D: FdOracle<Value = P::Fd>,
{
    if cfg.reduction.dpor {
        return Err(
            "LivenessConfig requests DPOR, but sleep-set reduction is unsound for \
             cycle detection without a cycle proviso (an ignored transition may \
             close the only accepting cycle); clear ReductionConfig::dpor for \
             liveness checks"
                .to_string(),
        );
    }
    if n == 0 {
        return Err("a system needs at least one process".to_string());
    }
    if pattern.n() != n {
        return Err(format!(
            "failure pattern is over {} processes, the system has {n}",
            pattern.n()
        ));
    }
    if cfg.max_step_gap == 0 || cfg.max_delay == 0 {
        return Err("fairness bounds must be at least 1".to_string());
    }
    if cfg.max_inbox == 0 {
        return Err("max_inbox must be at least 1".to_string());
    }
    let correct: Vec<ProcessId> = (0..n)
        .map(ProcessId)
        .filter(|&p| pattern.is_correct(p))
        .collect();
    if correct.is_empty() {
        return Err(
            "at least one process must be correct (infinite fair runs need an actor)".into(),
        );
    }
    for p in (0..n).map(ProcessId) {
        if let Some(t) = pattern.crash_time(p) {
            if t > cfg.t_stable {
                return Err(format!(
                    "process {p} crashes at t={t}, after t_stable={}: raise t_stable \
                     so the frozen-time region is stationary",
                    cfg.t_stable
                ));
            }
        }
    }
    // Stationarity spot check: past t_stable the detector must keep
    // answering its t_stable value, or frozen-time graph steps would
    // diverge from real replays. A window bounded by the fairness
    // constants catches every oracle whose schedule is still moving.
    let window = 2 * (cfg.max_step_gap + cfg.max_delay) + n as Time + 2;
    for &p in &correct {
        let frozen = detector.query(p, cfg.t_stable);
        for dt in 1..=window {
            if detector.query(p, cfg.t_stable + dt) != frozen {
                return Err(format!(
                    "detector is not stationary at t_stable={}: process {p} sees a \
                     different value at t={} (stabilize the oracle or raise t_stable)",
                    cfg.t_stable,
                    cfg.t_stable + dt
                ));
            }
        }
    }
    Ok(())
}

/// Check an LTL property over **all fair infinite runs** of the finite
/// model defined by `cfg` and the scenario.
///
/// Returns `Err` for ill-formed scenarios (no correct process, crashes
/// after `t_stable`, a non-stationary detector, unknown propositions,
/// asymmetric propositions under symmetry); otherwise a
/// [`LivenessReport`] whose verdict is `Holds`, `Violated` (with a
/// replayable [`LassoWitness`]) or `Inconclusive` (budget/capacity hit).
pub fn check_liveness<P, D>(
    cfg: LivenessConfig,
    make_procs: impl Fn() -> Vec<P>,
    invocations: Vec<Option<P::Inv>>,
    pattern: &FailurePattern,
    mut detector: D,
    formula: &Ltl,
) -> Result<LivenessReport, String>
where
    P: Protocol + Clone + Debug + PartialEq + Send + Sync,
    P::Msg: PartialEq + Send + Sync,
    P::Inv: PartialEq + Send + Sync,
    P::Output: Send + Sync,
    P::Fd: Send + Sync,
    D: FdOracle<Value = P::Fd>,
{
    let procs = make_procs();
    let n = procs.len();
    if invocations.len() != n {
        return Err(format!(
            "{} invocation slots for {n} processes",
            invocations.len()
        ));
    }
    validate::<P, D>(&cfg, pattern, n, &mut detector)?;
    let props = resolve_props::<P>()?;

    // Compile ¬φ: an accepting lasso of the product is a fair run
    // violating φ.
    let mut arena = Arena::default();
    let neg_root = arena.nnf(formula, &props, false)?;
    let tableau = gpvw(&arena, neg_root);
    let ba = build_buchi(&arena, &tableau);

    // Pre-sample the detector for every alive (p, t) in the non-frozen
    // region — workers cannot query the (mutable) oracle.
    let stride = cfg.t_stable as usize + 1;
    let mut fd: Vec<Option<P::Fd>> = vec![None; n * stride];
    let mut alive: Vec<Vec<bool>> = Vec::with_capacity(stride);
    for t in 0..stride {
        let t = t as Time;
        alive.push(
            (0..n)
                .map(|q| !pattern.is_crashed(ProcessId(q), t))
                .collect(),
        );
        for q in 0..n {
            if !pattern.is_crashed(ProcessId(q), t) {
                fd[q * stride + t as usize] = Some(detector.query(ProcessId(q), t));
            }
        }
    }
    let correct: Vec<bool> = (0..n).map(|q| pattern.is_correct(ProcessId(q))).collect();
    let perms = if cfg.reduction.symmetry {
        scenario_symmetry::<P, _>(n, stride, pattern, &invocations, &mut detector)
    } else {
        Vec::new()
    };
    let used_symmetry = !perms.is_empty();
    let env = GraphEnv::<P> {
        pattern,
        cfg: &cfg,
        fd,
        stride,
        alive,
        correct,
        perms,
        prop_count: P::props().len(),
    };
    let graph = build_graph(&env, procs, invocations.clone())?;
    let (lasso, product_states) = find_lasso(&graph, &ba);
    let edges = graph.succs.iter().map(Vec::len).sum();
    let mut report = LivenessReport {
        verdict: LivenessVerdict::Holds,
        lasso: None,
        formula: formula.to_string(),
        reason: None,
        states: graph.nodes.len(),
        edges,
        buchi_states: ba.n_states,
        product_states,
        truncated: graph.truncated,
    };
    match lasso {
        Some(witness) => {
            report.verdict = LivenessVerdict::Violated;
            if used_symmetry {
                // The lasso's decisions reference canonicalized nodes and
                // need not replay concretely; re-run without symmetry to
                // extract a concrete witness (the verdict itself is
                // already sound — the quotient preserves lassos).
                let concrete = check_liveness(
                    cfg.with_symmetry(false),
                    make_procs,
                    invocations,
                    pattern,
                    detector,
                    formula,
                )?;
                report.lasso = concrete.lasso;
                if report.lasso.is_none() {
                    report.reason = Some(
                        "violated under symmetry; concrete witness extraction \
                         exceeded the state budget"
                            .to_string(),
                    );
                }
            } else {
                report.lasso = Some(witness);
            }
        }
        None => {
            if graph.truncated || graph.capped {
                report.verdict = LivenessVerdict::Inconclusive;
                report.reason = Some(if graph.capped {
                    format!("state budget of {} exhausted", cfg.max_states)
                } else {
                    format!(
                        "inbox capacity {} dropped at least one edge; no violation \
                         found on the remaining (real) runs",
                        cfg.max_inbox
                    )
                });
            }
        }
    }
    Ok(report)
}

// ---------------------------------------------------------------------------
// Fixtures
// ---------------------------------------------------------------------------

/// Tiny protocols exercising the liveness checker: a planted livelock
/// the nested DFS must catch, and a terminating counterpart.
pub mod fixtures {
    use super::*;
    use crate::protocol::{Ctx, Symmetry};

    /// The planted livelock: on start every process sends one token to
    /// every other; every token is bounced straight back to its sender,
    /// forever. Nobody ever decides, so `F "decided"` is violated by the
    /// bounce cycle — the accepting lasso the checker must find. Fully
    /// symmetric (reply-to-sender structure, id-free state).
    #[derive(Clone, Debug, PartialEq)]
    pub struct PingPong {
        /// Never set — the planted bug.
        pub decided: bool,
    }

    impl PingPong {
        /// `n` fresh processes.
        pub fn fleet(n: usize) -> Vec<PingPong> {
            (0..n).map(|_| PingPong { decided: false }).collect()
        }
    }

    impl Protocol for PingPong {
        type Msg = u8;
        type Output = ();
        type Inv = ();
        type Fd = ();

        fn on_start(&mut self, ctx: &mut Ctx<Self>) {
            ctx.broadcast_others(0);
        }

        fn on_message(&mut self, ctx: &mut Ctx<Self>, from: ProcessId, msg: u8) {
            ctx.send(from, msg);
        }

        fn symmetry(_n: usize) -> Symmetry {
            Symmetry::Full
        }

        fn props() -> &'static [&'static str] {
            &["decided"]
        }

        fn eval_prop(_prop: usize, procs: &[Self], _view: &PropView<'_>) -> bool {
            procs.iter().any(|p| p.decided)
        }
    }

    /// The terminating counterpart: every process decides on its first
    /// step, so `F "all-decided"` holds over every fair run.
    #[derive(Clone, Debug, PartialEq)]
    pub struct Decider {
        /// Set on the first step.
        pub decided: bool,
    }

    impl Decider {
        /// `n` fresh processes.
        pub fn fleet(n: usize) -> Vec<Decider> {
            (0..n).map(|_| Decider { decided: false }).collect()
        }
    }

    impl Protocol for Decider {
        type Msg = u8;
        type Output = ();
        type Inv = ();
        type Fd = ();

        fn on_start(&mut self, _ctx: &mut Ctx<Self>) {
            self.decided = true;
        }

        fn on_message(&mut self, _ctx: &mut Ctx<Self>, _from: ProcessId, _msg: u8) {}

        fn symmetry(_n: usize) -> Symmetry {
            Symmetry::Full
        }

        fn props() -> &'static [&'static str] {
            &["all-decided"]
        }

        fn eval_prop(_prop: usize, procs: &[Self], view: &PropView<'_>) -> bool {
            procs
                .iter()
                .zip(view.correct)
                .all(|(p, &c)| !c || p.decided)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::fixtures::{Decider, PingPong};
    use super::*;
    use crate::machine::Replay;
    use crate::oracle::NoDetector;

    fn cfg() -> LivenessConfig {
        LivenessConfig::new(3, 3, 0).with_threads(1)
    }

    #[test]
    fn ltl_renders_in_standard_notation() {
        let f = Ltl::prop("a").until(Ltl::prop("b")).always();
        assert_eq!(f.to_string(), "G((\"a\" U \"b\"))");
        let g = Ltl::prop("a").not().implies(Ltl::prop("b").next());
        assert_eq!(g.to_string(), "(!!\"a\" | X(\"b\"))");
    }

    #[test]
    fn planted_livelock_is_caught_with_a_replayable_lasso() {
        let report = check_liveness(
            cfg(),
            || PingPong::fleet(2),
            vec![None, None],
            &FailurePattern::failure_free(2),
            NoDetector,
            &Ltl::prop("decided").eventually(),
        )
        .expect("valid scenario");
        assert_eq!(report.verdict, LivenessVerdict::Violated);
        let lasso = report.lasso.expect("a concrete witness");
        assert!(!lasso.cycle.is_empty());
        Replay::lasso(lasso.stem.clone(), lasso.cycle.clone())
            .run_fair(
                &cfg(),
                || PingPong::fleet(2),
                vec![None, None],
                &FailurePattern::failure_free(2),
                NoDetector,
            )
            .expect("the witness must replay");
    }

    #[test]
    fn livelock_never_decides_so_never_decided_holds() {
        let report = check_liveness(
            cfg(),
            || PingPong::fleet(2),
            vec![None, None],
            &FailurePattern::failure_free(2),
            NoDetector,
            &Ltl::prop("decided").not().always(),
        )
        .expect("valid scenario");
        assert_eq!(report.verdict, LivenessVerdict::Holds);
        assert!(report.lasso.is_none());
    }

    #[test]
    fn decider_terminates_under_all_fair_schedules() {
        let report = check_liveness(
            cfg(),
            || Decider::fleet(2),
            vec![None, None],
            &FailurePattern::failure_free(2),
            NoDetector,
            &Ltl::prop("all-decided").eventually(),
        )
        .expect("valid scenario");
        assert_eq!(report.verdict, LivenessVerdict::Holds);
    }

    #[test]
    fn next_and_until_operators_work_end_to_end() {
        // From the initial configuration nobody has decided, and one step
        // cannot make everyone decided when n = 2 — but eventually all
        // decide: ¬p ∧ X ¬p ∧ (¬p U p) holds on every fair run.
        let p = || Ltl::prop("all-decided");
        let f = p().not().and(p().not().next()).and(p().not().until(p()));
        let report = check_liveness(
            cfg(),
            || Decider::fleet(2),
            vec![None, None],
            &FailurePattern::failure_free(2),
            NoDetector,
            &f,
        )
        .expect("valid scenario");
        assert_eq!(report.verdict, LivenessVerdict::Holds);
        // And the converse — X "all-decided" — is violated (two starts
        // are needed).
        let report = check_liveness(
            cfg(),
            || Decider::fleet(2),
            vec![None, None],
            &FailurePattern::failure_free(2),
            NoDetector,
            &p().next(),
        )
        .expect("valid scenario");
        assert_eq!(report.verdict, LivenessVerdict::Violated);
    }

    #[test]
    fn crashes_after_t_stable_are_rejected() {
        let pattern = FailurePattern::failure_free(2).with_crash(ProcessId(1), 5);
        let err = check_liveness(
            cfg(),
            || PingPong::fleet(2),
            vec![None, None],
            &pattern,
            NoDetector,
            &Ltl::prop("decided").eventually(),
        )
        .expect_err("crash at 5 > t_stable 0");
        assert!(err.contains("t_stable"), "unexpected error: {err}");
    }

    #[test]
    fn dpor_requests_are_rejected_not_ignored() {
        let err = check_liveness(
            cfg().with_dpor(true),
            || PingPong::fleet(2),
            vec![None, None],
            &FailurePattern::failure_free(2),
            NoDetector,
            &Ltl::prop("decided").eventually(),
        )
        .expect_err("dpor is unsound for cycle detection");
        assert!(err.contains("DPOR"), "unexpected error: {err}");
    }

    #[test]
    fn unknown_propositions_are_rejected_with_the_known_list() {
        let err = check_liveness(
            cfg(),
            || PingPong::fleet(2),
            vec![None, None],
            &FailurePattern::failure_free(2),
            NoDetector,
            &Ltl::prop("nope").eventually(),
        )
        .expect_err("unknown prop");
        assert!(err.contains("nope") && err.contains("decided"), "{err}");
    }

    #[test]
    fn symmetry_preserves_the_verdict_and_still_ships_a_witness() {
        for (symmetric, threads) in [(false, 1), (true, 1), (false, 2), (true, 2)] {
            let report = check_liveness(
                cfg().with_symmetry(symmetric).with_threads(threads),
                || PingPong::fleet(3),
                vec![None, None, None],
                &FailurePattern::failure_free(3),
                NoDetector,
                &Ltl::prop("decided").eventually(),
            )
            .expect("valid scenario");
            assert_eq!(report.verdict, LivenessVerdict::Violated);
            let lasso = report.lasso.expect("witness extraction re-runs concretely");
            Replay::lasso(lasso.stem.clone(), lasso.cycle.clone())
                .run_fair(
                    &cfg(),
                    || PingPong::fleet(3),
                    vec![None, None, None],
                    &FailurePattern::failure_free(3),
                    NoDetector,
                )
                .expect("witness replays");
        }
    }

    #[test]
    fn a_crashed_majority_still_leaves_a_fair_model() {
        let pattern = FailurePattern::failure_free(3)
            .with_crash(ProcessId(1), 0)
            .with_crash(ProcessId(2), 0);
        let report = check_liveness(
            cfg(),
            || Decider::fleet(3),
            vec![None, None, None],
            &pattern,
            NoDetector,
            &Ltl::prop("all-decided").eventually(),
        )
        .expect("valid scenario");
        // Only p0 is correct; it decides on its first (forced) step.
        assert_eq!(report.verdict, LivenessVerdict::Holds);
    }

    #[test]
    fn tight_inbox_capacity_reports_inconclusive_not_holds() {
        let report = check_liveness(
            cfg().with_max_inbox(1),
            || PingPong::fleet(3),
            vec![None, None, None],
            &FailurePattern::failure_free(3),
            NoDetector,
            &Ltl::prop("decided").not().always(),
        )
        .expect("valid scenario");
        // The property actually holds, but edges were dropped: the
        // checker must not overclaim.
        assert_ne!(report.verdict, LivenessVerdict::Violated);
        if report.truncated {
            assert_eq!(report.verdict, LivenessVerdict::Inconclusive);
        }
    }
}
