//! Scheduling policies: who steps next and what they receive.
//!
//! The engine guarantees *fairness* (correct processes keep stepping,
//! messages are eventually delivered) regardless of the policy, by forcing
//! overdue choices; within those bounds the policy is free — including free
//! to be adversarial, which is how we exercise the "asynchrony" in the
//! paper's model.

use crate::id::{ProcessId, Time};
use crate::rng::SimRng;

/// Metadata about a deliverable in-flight message, shown to policies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MsgMeta {
    /// Engine-assigned id, unique per run and increasing in send order.
    pub id: u64,
    /// Sender.
    pub from: ProcessId,
    /// Time the message was sent.
    pub sent_at: Time,
}

/// A scheduling policy.
///
/// The engine calls [`pick_actor`](Scheduler::pick_actor) with the
/// non-empty list of alive processes that are *not* overdue (if some process
/// is overdue for a step, the engine schedules it directly), then
/// [`pick_message`](Scheduler::pick_message) with the actor's deliverable
/// messages (`None` means a λ step; again, overdue messages are forced by
/// the engine before the policy is consulted).
pub trait Scheduler {
    /// Choose which of `candidates` steps next; returns an index into
    /// `candidates` (which is non-empty and sorted by id).
    fn pick_actor(&mut self, now: Time, candidates: &[ProcessId]) -> usize;

    /// Choose which message the actor receives in this step; `None` ⇒ λ.
    /// `deliverable` is in send order and may be empty (then the return
    /// value is ignored and the step is λ).
    fn pick_message(
        &mut self,
        now: Time,
        actor: ProcessId,
        deliverable: &[MsgMeta],
    ) -> Option<usize>;
}

/// Deterministic round-robin over processes, FIFO message delivery.
///
/// The most synchronous-looking admissible schedule; good default for
/// latency measurements.
#[derive(Clone, Debug, Default)]
pub struct RoundRobin {
    next: usize,
}

impl RoundRobin {
    /// Create a round-robin scheduler. The cursor starts at the lowest
    /// process id, so in a fresh system `p0` steps first.
    pub fn new() -> Self {
        RoundRobin { next: 0 }
    }
}

impl Scheduler for RoundRobin {
    fn pick_actor(&mut self, _now: Time, candidates: &[ProcessId]) -> usize {
        // Pick the first candidate with id >= the round-robin cursor,
        // wrapping around; then advance the cursor past it.
        let idx = candidates
            .iter()
            .position(|p| p.index() >= self.next)
            .unwrap_or(0);
        self.next = candidates[idx].index() + 1;
        idx
    }

    fn pick_message(
        &mut self,
        _now: Time,
        _actor: ProcessId,
        deliverable: &[MsgMeta],
    ) -> Option<usize> {
        if deliverable.is_empty() {
            None
        } else {
            Some(0) // FIFO
        }
    }
}

/// Seeded uniformly-random fair scheduling — the workhorse for sweeping
/// over "all runs" in property tests.
#[derive(Clone, Debug)]
pub struct RandomFair {
    rng: SimRng,
    /// Probability (in percent) of taking a λ step even when messages are
    /// deliverable; keeps `on_tick`-driven protocols making progress.
    lambda_pct: u32,
}

impl RandomFair {
    /// Create a random-fair scheduler from a seed, with the default 25%
    /// λ-step probability (see [`RandomFair::with_lambda_pct`]).
    pub fn new(seed: u64) -> Self {
        RandomFair {
            rng: SimRng::new(seed),
            lambda_pct: 25,
        }
    }

    /// Override the probability (percent, 0–100) of λ steps when messages
    /// are available.
    pub fn with_lambda_pct(mut self, pct: u32) -> Self {
        assert!(pct <= 100, "lambda_pct must be a percentage");
        self.lambda_pct = pct;
        self
    }
}

impl Scheduler for RandomFair {
    fn pick_actor(&mut self, _now: Time, candidates: &[ProcessId]) -> usize {
        self.rng.pick(candidates.len())
    }

    fn pick_message(
        &mut self,
        _now: Time,
        _actor: ProcessId,
        deliverable: &[MsgMeta],
    ) -> Option<usize> {
        if deliverable.is_empty() || self.rng.chance(self.lambda_pct) {
            None
        } else {
            Some(self.rng.pick(deliverable.len()))
        }
    }
}

/// An adversarial policy: starves the lowest-id processes as long as the
/// fairness bounds allow, delays every message to the brink of its bound,
/// and reorders deliveries newest-first.
///
/// This is the schedule family under which asynchronous consensus is
/// impossible without a detector, so it is the right stress test for the
/// detector-based algorithms.
#[derive(Clone, Debug)]
pub struct Adversarial {
    rng: SimRng,
}

impl Adversarial {
    /// Create an adversarial scheduler from a seed. The starvation and
    /// delay strategy is systematic; the seed drives the occasional random
    /// deviations that let different seeds explore different starvation
    /// orders.
    pub fn new(seed: u64) -> Self {
        Adversarial {
            rng: SimRng::new(seed),
        }
    }
}

impl Scheduler for Adversarial {
    fn pick_actor(&mut self, _now: Time, candidates: &[ProcessId]) -> usize {
        // Prefer the highest-id candidate (starving low ids until the
        // engine forces them), with occasional random deviation so seeds
        // explore different starvation orders.
        if self.rng.gen_range(4) == 0 {
            self.rng.pick(candidates.len())
        } else {
            candidates.len() - 1
        }
    }

    fn pick_message(
        &mut self,
        _now: Time,
        _actor: ProcessId,
        deliverable: &[MsgMeta],
    ) -> Option<usize> {
        if deliverable.is_empty() {
            return None;
        }
        // Delay messages as long as allowed: usually take a λ step; when a
        // message is taken, take the *newest* one (maximal reordering).
        if self.rng.gen_range(4) == 0 {
            Some(deliverable.len() - 1)
        } else {
            None
        }
    }
}

impl<S: Scheduler + ?Sized> Scheduler for Box<S> {
    fn pick_actor(&mut self, now: Time, candidates: &[ProcessId]) -> usize {
        (**self).pick_actor(now, candidates)
    }

    fn pick_message(
        &mut self,
        now: Time,
        actor: ProcessId,
        deliverable: &[MsgMeta],
    ) -> Option<usize> {
        (**self).pick_message(now, actor, deliverable)
    }
}

/// One recorded scheduling choice.
///
/// Actors are recorded by process id and messages by their engine-assigned
/// `MsgMeta::id` (not by index), so a decision log stays meaningful when
/// a shrinker deletes entries and the candidate lists shift underneath it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Decision {
    /// `pick_actor` chose this process.
    Actor(ProcessId),
    /// `pick_message` chose this message id, or λ (`None`).
    Deliver(Option<u64>),
}

/// A scheduler wrapper that logs every `pick_actor` / `pick_message`
/// decision of the inner policy.
///
/// Because [`Sim`](crate::Sim) runs are deterministic functions of their
/// inputs, replaying the log with [`ReplaySchedule`] over the same
/// configuration reproduces the run byte-identically — that is the
/// foundation of the repro artifacts in [`crate::repro`].
///
/// ```
/// use wfd_sim::{RecordedSchedule, RandomFair, Scheduler, ProcessId};
/// let mut s = RecordedSchedule::new(RandomFair::new(7));
/// let cands = [ProcessId(0), ProcessId(1)];
/// let idx = s.pick_actor(0, &cands);
/// assert_eq!(s.log().len(), 1);
/// assert_eq!(s.log()[0], wfd_sim::Decision::Actor(cands[idx]));
/// ```
#[derive(Clone, Debug)]
pub struct RecordedSchedule<S> {
    inner: S,
    log: Vec<Decision>,
}

impl<S: Scheduler> RecordedSchedule<S> {
    /// Wrap `inner`, recording its decisions.
    pub fn new(inner: S) -> Self {
        RecordedSchedule {
            inner,
            log: Vec::new(),
        }
    }

    /// The decisions recorded so far, in consultation order.
    pub fn log(&self) -> &[Decision] {
        &self.log
    }

    /// The wrapped policy — e.g. to read a replaying inner scheduler's
    /// divergence count while the wrapper re-records the effective run.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Consume the wrapper, returning the decision log.
    pub fn into_log(self) -> Vec<Decision> {
        self.log
    }

    /// Consume the wrapper, returning `(inner policy, decision log)`.
    pub fn into_parts(self) -> (S, Vec<Decision>) {
        (self.inner, self.log)
    }
}

impl<S: Scheduler> Scheduler for RecordedSchedule<S> {
    fn pick_actor(&mut self, now: Time, candidates: &[ProcessId]) -> usize {
        let idx = self.inner.pick_actor(now, candidates);
        self.log.push(Decision::Actor(candidates[idx]));
        idx
    }

    fn pick_message(
        &mut self,
        now: Time,
        actor: ProcessId,
        deliverable: &[MsgMeta],
    ) -> Option<usize> {
        let choice = self.inner.pick_message(now, actor, deliverable);
        self.log
            .push(Decision::Deliver(choice.map(|k| deliverable[k].id)));
        choice
    }
}

/// A scheduler that replays a recorded decision log.
///
/// On an unmodified log over the same simulation inputs every consultation
/// matches exactly and the run is byte-identical to the recorded one. On a
/// *shrunk* log (entries deleted or the tail truncated) decisions may stop
/// matching the current candidates; the replayer then falls back
/// deterministically — lowest-id actor, oldest message — and counts the
/// divergence, so mutated logs still define a unique run.
#[derive(Clone, Debug)]
pub struct ReplaySchedule {
    decisions: Vec<Decision>,
    cursor: usize,
    divergences: usize,
}

impl ReplaySchedule {
    /// Create a replayer over a decision log.
    pub fn new(decisions: Vec<Decision>) -> Self {
        ReplaySchedule {
            decisions,
            cursor: 0,
            divergences: 0,
        }
    }

    /// How many decisions have been consumed.
    pub fn position(&self) -> usize {
        self.cursor
    }

    /// Whether the whole log has been consumed.
    pub fn exhausted(&self) -> bool {
        self.cursor >= self.decisions.len()
    }

    /// How many consultations did not match their recorded decision (0 on
    /// a faithful replay).
    pub fn divergences(&self) -> usize {
        self.divergences
    }

    fn next(&mut self) -> Option<Decision> {
        let d = self.decisions.get(self.cursor).copied();
        if d.is_some() {
            self.cursor += 1;
        }
        d
    }
}

impl Scheduler for ReplaySchedule {
    fn pick_actor(&mut self, _now: Time, candidates: &[ProcessId]) -> usize {
        match self.next() {
            Some(Decision::Actor(p)) => match candidates.iter().position(|&c| c == p) {
                Some(idx) => idx,
                None => {
                    self.divergences += 1;
                    0
                }
            },
            Some(Decision::Deliver(_)) | None => {
                self.divergences += 1;
                0
            }
        }
    }

    fn pick_message(
        &mut self,
        _now: Time,
        _actor: ProcessId,
        deliverable: &[MsgMeta],
    ) -> Option<usize> {
        if deliverable.is_empty() {
            // The engine ignores the choice on an empty window and does not
            // consult the policy at all in that case, but stay safe.
            return None;
        }
        match self.next() {
            Some(Decision::Deliver(None)) => None,
            Some(Decision::Deliver(Some(id))) => {
                match deliverable.iter().position(|m| m.id == id) {
                    Some(idx) => Some(idx),
                    None => {
                        self.divergences += 1;
                        Some(0)
                    }
                }
            }
            Some(Decision::Actor(_)) | None => {
                self.divergences += 1;
                Some(0)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pids(ids: &[usize]) -> Vec<ProcessId> {
        ids.iter().copied().map(ProcessId).collect()
    }

    fn metas(k: usize) -> Vec<MsgMeta> {
        (0..k)
            .map(|i| MsgMeta {
                id: i as u64,
                from: ProcessId(0),
                sent_at: i as Time,
            })
            .collect()
    }

    #[test]
    fn round_robin_cycles_all_candidates() {
        let mut s = RoundRobin::new();
        let cands = pids(&[0, 1, 2]);
        let picks: Vec<usize> = (0..6).map(|_| s.pick_actor(0, &cands)).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn round_robin_skips_missing_candidates() {
        let mut s = RoundRobin::new();
        // p1 crashed: candidates are {p0, p2}.
        let cands = pids(&[0, 2]);
        let picks: Vec<ProcessId> = (0..4).map(|_| cands[s.pick_actor(0, &cands)]).collect();
        assert_eq!(picks, pids(&[0, 2, 0, 2]));
    }

    #[test]
    fn round_robin_delivers_fifo() {
        let mut s = RoundRobin::new();
        assert_eq!(s.pick_message(0, ProcessId(0), &metas(3)), Some(0));
        assert_eq!(s.pick_message(0, ProcessId(0), &metas(0)), None);
    }

    #[test]
    fn random_fair_is_deterministic_per_seed() {
        let cands = pids(&[0, 1, 2, 3]);
        let run = |seed| {
            let mut s = RandomFair::new(seed);
            (0..32).map(|_| s.pick_actor(0, &cands)).collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6), "different seeds should diverge");
    }

    #[test]
    fn random_fair_lambda_pct_zero_always_delivers() {
        let mut s = RandomFair::new(1).with_lambda_pct(0);
        for _ in 0..20 {
            assert!(s.pick_message(0, ProcessId(0), &metas(2)).is_some());
        }
    }

    #[test]
    #[should_panic(expected = "percentage")]
    fn random_fair_rejects_bad_pct() {
        let _ = RandomFair::new(0).with_lambda_pct(101);
    }

    #[test]
    fn recorded_schedule_logs_choices_transparently() {
        let cands = pids(&[0, 1, 2]);
        let msgs = metas(3);
        let mut plain = RandomFair::new(11);
        let mut recorded = RecordedSchedule::new(RandomFair::new(11));
        for t in 0..20 {
            assert_eq!(
                plain.pick_actor(t, &cands),
                recorded.pick_actor(t, &cands),
                "recording must not change the policy"
            );
            assert_eq!(
                plain.pick_message(t, ProcessId(0), &msgs),
                recorded.pick_message(t, ProcessId(0), &msgs)
            );
        }
        let log = recorded.into_log();
        assert_eq!(log.len(), 40);
        assert!(matches!(log[0], Decision::Actor(_)));
        assert!(matches!(log[1], Decision::Deliver(_)));
    }

    #[test]
    fn replay_reproduces_recorded_choices() {
        let cands = pids(&[0, 1, 2]);
        let msgs = metas(4);
        let mut recorded = RecordedSchedule::new(Adversarial::new(5));
        let picks: Vec<(usize, Option<usize>)> = (0..16)
            .map(|t| {
                (
                    recorded.pick_actor(t, &cands),
                    recorded.pick_message(t, ProcessId(1), &msgs),
                )
            })
            .collect();
        let mut replay = ReplaySchedule::new(recorded.into_log());
        for (t, (actor, msg)) in picks.iter().enumerate() {
            assert_eq!(replay.pick_actor(t as Time, &cands), *actor);
            assert_eq!(replay.pick_message(t as Time, ProcessId(1), &msgs), *msg);
        }
        assert!(replay.exhausted());
        assert_eq!(replay.divergences(), 0);
    }

    #[test]
    fn replay_falls_back_deterministically_on_divergence() {
        // Log says p5, but p5 is not a candidate: fall back to index 0.
        let mut r = ReplaySchedule::new(vec![
            Decision::Actor(ProcessId(5)),
            Decision::Deliver(Some(99)),
        ]);
        assert_eq!(r.pick_actor(0, &pids(&[0, 1])), 0);
        // Message id 99 is not deliverable: fall back to the oldest.
        assert_eq!(r.pick_message(0, ProcessId(0), &metas(2)), Some(0));
        assert_eq!(r.divergences(), 2);
        // Log exhausted: keep falling back.
        assert_eq!(r.pick_actor(1, &pids(&[0, 1])), 0);
        assert_eq!(r.pick_message(1, ProcessId(0), &metas(1)), Some(0));
        assert_eq!(r.divergences(), 4);
        assert!(r.exhausted());
    }

    #[test]
    fn boxed_scheduler_delegates() {
        let mut boxed: Box<dyn Scheduler> = Box::new(RoundRobin::new());
        let cands = pids(&[0, 1]);
        assert_eq!(boxed.pick_actor(0, &cands), 0);
        assert_eq!(boxed.pick_actor(0, &cands), 1);
        assert_eq!(boxed.pick_message(0, ProcessId(0), &metas(2)), Some(0));
    }

    #[test]
    fn adversarial_mostly_starves_low_ids_and_delays() {
        let mut s = Adversarial::new(3);
        let cands = pids(&[0, 1, 2]);
        let high_picks = (0..100)
            .filter(|_| s.pick_actor(0, &cands) == cands.len() - 1)
            .count();
        assert!(
            high_picks > 50,
            "adversary should usually pick the last candidate"
        );
        let delays = (0..100)
            .filter(|_| s.pick_message(0, ProcessId(0), &metas(2)).is_none())
            .count();
        assert!(delays > 50, "adversary should usually delay messages");
    }
}
