//! Scheduling policies: who steps next and what they receive.
//!
//! The engine guarantees *fairness* (correct processes keep stepping,
//! messages are eventually delivered) regardless of the policy, by forcing
//! overdue choices; within those bounds the policy is free — including free
//! to be adversarial, which is how we exercise the "asynchrony" in the
//! paper's model.

use crate::id::{ProcessId, Time};
use crate::rng::SimRng;

/// Metadata about a deliverable in-flight message, shown to policies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MsgMeta {
    /// Engine-assigned id, unique per run and increasing in send order.
    pub id: u64,
    /// Sender.
    pub from: ProcessId,
    /// Time the message was sent.
    pub sent_at: Time,
}

/// A scheduling policy.
///
/// The engine calls [`pick_actor`](Scheduler::pick_actor) with the
/// non-empty list of alive processes that are *not* overdue (if some process
/// is overdue for a step, the engine schedules it directly), then
/// [`pick_message`](Scheduler::pick_message) with the actor's deliverable
/// messages (`None` means a λ step; again, overdue messages are forced by
/// the engine before the policy is consulted).
pub trait Scheduler {
    /// Choose which of `candidates` steps next; returns an index into
    /// `candidates` (which is non-empty and sorted by id).
    fn pick_actor(&mut self, now: Time, candidates: &[ProcessId]) -> usize;

    /// Choose which message the actor receives in this step; `None` ⇒ λ.
    /// `deliverable` is in send order and may be empty (then the return
    /// value is ignored and the step is λ).
    fn pick_message(
        &mut self,
        now: Time,
        actor: ProcessId,
        deliverable: &[MsgMeta],
    ) -> Option<usize>;
}

/// Deterministic round-robin over processes, FIFO message delivery.
///
/// The most synchronous-looking admissible schedule; good default for
/// latency measurements.
#[derive(Clone, Debug, Default)]
pub struct RoundRobin {
    next: usize,
}

impl RoundRobin {
    /// Create a round-robin scheduler starting at `p0`.
    pub fn new() -> Self {
        RoundRobin { next: 0 }
    }
}

impl Scheduler for RoundRobin {
    fn pick_actor(&mut self, _now: Time, candidates: &[ProcessId]) -> usize {
        // Pick the first candidate with id >= the round-robin cursor,
        // wrapping around; then advance the cursor past it.
        let idx = candidates
            .iter()
            .position(|p| p.index() >= self.next)
            .unwrap_or(0);
        self.next = candidates[idx].index() + 1;
        idx
    }

    fn pick_message(
        &mut self,
        _now: Time,
        _actor: ProcessId,
        deliverable: &[MsgMeta],
    ) -> Option<usize> {
        if deliverable.is_empty() {
            None
        } else {
            Some(0) // FIFO
        }
    }
}

/// Seeded uniformly-random fair scheduling — the workhorse for sweeping
/// over "all runs" in property tests.
#[derive(Clone, Debug)]
pub struct RandomFair {
    rng: SimRng,
    /// Probability (in percent) of taking a λ step even when messages are
    /// deliverable; keeps `on_tick`-driven protocols making progress.
    lambda_pct: u32,
}

impl RandomFair {
    /// Create a random-fair scheduler from a seed.
    pub fn new(seed: u64) -> Self {
        RandomFair {
            rng: SimRng::new(seed),
            lambda_pct: 25,
        }
    }

    /// Override the probability (percent, 0–100) of λ steps when messages
    /// are available.
    pub fn with_lambda_pct(mut self, pct: u32) -> Self {
        assert!(pct <= 100, "lambda_pct must be a percentage");
        self.lambda_pct = pct;
        self
    }
}

impl Scheduler for RandomFair {
    fn pick_actor(&mut self, _now: Time, candidates: &[ProcessId]) -> usize {
        self.rng.pick(candidates.len())
    }

    fn pick_message(
        &mut self,
        _now: Time,
        _actor: ProcessId,
        deliverable: &[MsgMeta],
    ) -> Option<usize> {
        if deliverable.is_empty() || self.rng.chance(self.lambda_pct) {
            None
        } else {
            Some(self.rng.pick(deliverable.len()))
        }
    }
}

/// An adversarial policy: starves the lowest-id processes as long as the
/// fairness bounds allow, delays every message to the brink of its bound,
/// and reorders deliveries newest-first.
///
/// This is the schedule family under which asynchronous consensus is
/// impossible without a detector, so it is the right stress test for the
/// detector-based algorithms.
#[derive(Clone, Debug)]
pub struct Adversarial {
    rng: SimRng,
}

impl Adversarial {
    /// Create an adversarial scheduler from a seed (the seed only breaks
    /// ties, the adversary itself is systematic).
    pub fn new(seed: u64) -> Self {
        Adversarial {
            rng: SimRng::new(seed),
        }
    }
}

impl Scheduler for Adversarial {
    fn pick_actor(&mut self, _now: Time, candidates: &[ProcessId]) -> usize {
        // Prefer the highest-id candidate (starving low ids until the
        // engine forces them), with occasional random deviation so seeds
        // explore different starvation orders.
        if self.rng.gen_range(4) == 0 {
            self.rng.pick(candidates.len())
        } else {
            candidates.len() - 1
        }
    }

    fn pick_message(
        &mut self,
        _now: Time,
        _actor: ProcessId,
        deliverable: &[MsgMeta],
    ) -> Option<usize> {
        if deliverable.is_empty() {
            return None;
        }
        // Delay messages as long as allowed: usually take a λ step; when a
        // message is taken, take the *newest* one (maximal reordering).
        if self.rng.gen_range(4) == 0 {
            Some(deliverable.len() - 1)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pids(ids: &[usize]) -> Vec<ProcessId> {
        ids.iter().copied().map(ProcessId).collect()
    }

    fn metas(k: usize) -> Vec<MsgMeta> {
        (0..k)
            .map(|i| MsgMeta {
                id: i as u64,
                from: ProcessId(0),
                sent_at: i as Time,
            })
            .collect()
    }

    #[test]
    fn round_robin_cycles_all_candidates() {
        let mut s = RoundRobin::new();
        let cands = pids(&[0, 1, 2]);
        let picks: Vec<usize> = (0..6).map(|_| s.pick_actor(0, &cands)).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn round_robin_skips_missing_candidates() {
        let mut s = RoundRobin::new();
        // p1 crashed: candidates are {p0, p2}.
        let cands = pids(&[0, 2]);
        let picks: Vec<ProcessId> = (0..4).map(|_| cands[s.pick_actor(0, &cands)]).collect();
        assert_eq!(picks, pids(&[0, 2, 0, 2]));
    }

    #[test]
    fn round_robin_delivers_fifo() {
        let mut s = RoundRobin::new();
        assert_eq!(s.pick_message(0, ProcessId(0), &metas(3)), Some(0));
        assert_eq!(s.pick_message(0, ProcessId(0), &metas(0)), None);
    }

    #[test]
    fn random_fair_is_deterministic_per_seed() {
        let cands = pids(&[0, 1, 2, 3]);
        let run = |seed| {
            let mut s = RandomFair::new(seed);
            (0..32).map(|_| s.pick_actor(0, &cands)).collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6), "different seeds should diverge");
    }

    #[test]
    fn random_fair_lambda_pct_zero_always_delivers() {
        let mut s = RandomFair::new(1).with_lambda_pct(0);
        for _ in 0..20 {
            assert!(s.pick_message(0, ProcessId(0), &metas(2)).is_some());
        }
    }

    #[test]
    #[should_panic(expected = "percentage")]
    fn random_fair_rejects_bad_pct() {
        let _ = RandomFair::new(0).with_lambda_pct(101);
    }

    #[test]
    fn adversarial_mostly_starves_low_ids_and_delays() {
        let mut s = Adversarial::new(3);
        let cands = pids(&[0, 1, 2]);
        let high_picks = (0..100)
            .filter(|_| s.pick_actor(0, &cands) == cands.len() - 1)
            .count();
        assert!(
            high_picks > 50,
            "adversary should usually pick the last candidate"
        );
        let delays = (0..100)
            .filter(|_| s.pick_message(0, ProcessId(0), &metas(2)).is_none())
            .count();
        assert!(delays > 50, "adversary should usually delay messages");
    }
}
