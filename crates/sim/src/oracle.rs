//! Failure detector oracles: the engine-side source of the value `d` that a
//! process sees in a step `⟨p, m, d⟩`.
//!
//! An oracle is the *executable* counterpart of a failure detector history
//! `H : Π × T → R` drawn from `D(F)`. Concrete detectors (Ω, Σ, FS, Ψ, …)
//! live in `wfd-detectors`; this module only defines the interface plus the
//! trivial oracles every crate needs.

use crate::id::{ProcessId, Time};
use std::fmt::Debug;

/// A failure detector history generator, queried by the engine on every
/// step.
///
/// Implementations must be **functional**: repeated queries for the same
/// `(p, t)` must return the same value, because the paper's histories are
/// functions of process and time. Implementations may lazily materialise
/// and cache their choices (hence `&mut self`).
pub trait FdOracle {
    /// The range `R` of the failure detector.
    type Value: Clone + Debug;

    /// The history value `H(p, t)`.
    fn query(&mut self, p: ProcessId, t: Time) -> Self::Value;
}

/// The "no failure detector" oracle for purely asynchronous algorithms.
///
/// ```
/// use wfd_sim::{FdOracle, NoDetector, ProcessId};
/// let mut d = NoDetector;
/// d.query(ProcessId(0), 42);
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct NoDetector;

impl FdOracle for NoDetector {
    type Value = ();

    fn query(&mut self, _p: ProcessId, _t: Time) {}
}

/// An oracle that returns the same value at every process and time.
///
/// ```
/// use wfd_sim::{ConstDetector, FdOracle, ProcessId};
/// let mut d = ConstDetector::new(7u32);
/// assert_eq!(d.query(ProcessId(1), 0), 7);
/// assert_eq!(d.query(ProcessId(0), 99), 7);
/// ```
#[derive(Clone, Debug)]
pub struct ConstDetector<V> {
    value: V,
}

impl<V: Clone + Debug> ConstDetector<V> {
    /// Create a constant oracle.
    pub fn new(value: V) -> Self {
        ConstDetector { value }
    }
}

impl<V: Clone + Debug> FdOracle for ConstDetector<V> {
    type Value = V;

    fn query(&mut self, _p: ProcessId, _t: Time) -> V {
        self.value.clone()
    }
}

/// An oracle defined by an arbitrary pure function of `(p, t)` — handy for
/// tests and for hand-written histories.
///
/// ```
/// use wfd_sim::{FdOracle, FnDetector, ProcessId};
/// let mut d = FnDetector::new(|p: ProcessId, t| (p.index() as u64) + t);
/// assert_eq!(d.query(ProcessId(2), 10), 12);
/// ```
pub struct FnDetector<V, F> {
    f: F,
    _marker: std::marker::PhantomData<fn() -> V>,
}

impl<V, F> FnDetector<V, F>
where
    V: Clone + Debug,
    F: FnMut(ProcessId, Time) -> V,
{
    /// Wrap a function as an oracle. The function must be pure in `(p, t)`.
    pub fn new(f: F) -> Self {
        FnDetector {
            f,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<V, F> Debug for FnDetector<V, F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnDetector").finish_non_exhaustive()
    }
}

impl<V, F> FdOracle for FnDetector<V, F>
where
    V: Clone + Debug,
    F: FnMut(ProcessId, Time) -> V,
{
    type Value = V;

    fn query(&mut self, p: ProcessId, t: Time) -> V {
        (self.f)(p, t)
    }
}

impl<O: FdOracle + ?Sized> FdOracle for Box<O> {
    type Value = O::Value;

    fn query(&mut self, p: ProcessId, t: Time) -> Self::Value {
        (**self).query(p, t)
    }
}

impl<O: FdOracle + ?Sized> FdOracle for &mut O {
    type Value = O::Value;

    fn query(&mut self, p: ProcessId, t: Time) -> Self::Value {
        (**self).query(p, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn const_detector_is_uniform() {
        let mut d = ConstDetector::new("x");
        for p in 0..3 {
            for t in 0..3 {
                assert_eq!(d.query(ProcessId(p), t), "x");
            }
        }
    }

    #[test]
    fn fn_detector_computes() {
        let mut d = FnDetector::new(|p: ProcessId, t: Time| p.index().is_multiple_of(2) && t > 5);
        assert!(!d.query(ProcessId(0), 5));
        assert!(d.query(ProcessId(0), 6));
        assert!(!d.query(ProcessId(1), 6));
    }

    #[test]
    fn boxed_and_borrowed_oracles_delegate() {
        let mut boxed: Box<dyn FdOracle<Value = u32>> = Box::new(ConstDetector::new(3));
        assert_eq!(boxed.query(ProcessId(0), 0), 3);
        let mut inner = ConstDetector::new(4);
        let mut borrowed = &mut inner;
        assert_eq!(FdOracle::query(&mut borrowed, ProcessId(0), 0), 4);
    }

    #[test]
    fn fn_detector_debug_is_nonempty() {
        let d = FnDetector::new(|_p: ProcessId, _t: Time| 0u8);
        assert!(!format!("{d:?}").is_empty());
    }
}
