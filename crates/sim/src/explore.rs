//! Exhaustive schedule exploration — a bounded model checker for small
//! systems.
//!
//! Random schedules sample the paper's "for all runs" quantifier;
//! [`explore`] *enumerates* it, bounded: starting from the initial
//! configuration it branches over every choice the adversary has at each
//! step — which alive process acts, and which of its pending messages it
//! receives (λ only when its inbox is empty, so runs cannot stutter
//! forever) — and evaluates a safety predicate in every reachable state.
//!
//! The exploration is sound for safety bug-hunting (every explored
//! interleaving is an admissible prefix of a fair run) and exhaustive up
//! to the depth bound over message-delivery orders. Liveness is out of
//! scope by construction.
//!
//! A violation comes back as an [`ExploreViolation`] carrying the full
//! decision list `(actor, message choice)` of the counterexample branch;
//! [`Replay`](crate::Replay) re-executes such a list deterministically,
//! and [`crate::repro`] packages it as a portable artifact.
//!
//! The step semantics itself — how one decision becomes `Protocol`
//! callbacks, sends and outputs — is not defined here: the explorer
//! drives the shared [`crate::machine`] layer
//! ([`enabled_decisions`](crate::machine)/`apply_step_into`), the same
//! transition system the engine, the liveness checker and [`Replay`]
//! execute.
//!
//! [`Replay`]: crate::Replay
//!
//! ## Performance model
//!
//! The inner loop is built for throughput, SPIN-style:
//!
//! * **Fingerprinted dedup** — visited states are keyed by a 128-bit
//!   structural fingerprint ([`FingerprintHasher`]) streamed directly off
//!   the state's `Debug` rendering, instead of storing the rendering
//!   itself. [`ExactKeyHasher`] keeps the full `String` key and exists to
//!   property-test that the fingerprint never changes a verdict; select
//!   between them with [`ExploreConfig::with_hasher`], or plug any
//!   [`StateHasher`] in via [`explore_custom`].
//! * **Shared-prefix states** — the per-branch decision and output
//!   histories are `Arc`-linked cons-lists sharing their prefix with the
//!   parent state, materialized into flat vectors only when the safety
//!   predicate, a violation report, or a replay needs them. Popped states
//!   are recycled through a free-list arena, so steady-state expansion
//!   performs no `Vec` growth.
//! * **Parallel frontier exploration** — states are processed in frontier
//!   batches fanned across [`crate::par::par_map_with`] workers
//!   (`WFD_EXPLORE_THREADS`, or [`ExploreConfig::with_threads`]) against
//!   a sharded seen-table. Batch size and traversal order are independent
//!   of the worker count, revisit pruning is resolved sequentially in
//!   batch order, and the reported counterexample is the
//!   lexicographically-least decision list among the batch's violations —
//!   so 1 thread and N threads produce identical reports (modulo the
//!   informational [`ExploreReport::threads_used`]).
//!
//! ## State-space reduction
//!
//! On top of the per-state machinery, two opt-in reductions shrink the
//! space itself — they prune *interleavings*, not soundness:
//!
//! * **Dynamic partial-order reduction** ([`ExploreConfig::with_dpor`]) —
//!   sleep sets over an explicit independence relation. Protocols declare
//!   per-step [`Footprint`]s (which inboxes a step may append to, whether
//!   it may output); two enabled steps of different processes are
//!   *independent* when their footprints are disjoint, neither both
//!   output, neither sends into the other's pending λ step, and the
//!   failure pattern and detector are stable across the two adjacent step
//!   times. Once a step has been explored from a state, equivalent
//!   interleavings that merely commute it with independent steps are
//!   skipped ([`ExploreReport::states_pruned_dpor`]). Sleep sets thread
//!   through the frontier entries, survive batching, and are stored in
//!   the seen-table: a revisit is pruned only when the recorded
//!   exploration covered at least as many steps (a depth- and sleep-aware
//!   cover check) — the naive "prune any revisit" composition of sleep
//!   sets with state caching is unsound, and a regression fixture keeps
//!   it that way. Declared footprints are validated against every
//!   executed step, so an under-declaration panics instead of silently
//!   pruning a reachable violation.
//! * **Process-symmetry canonicalization**
//!   ([`ExploreConfig::with_symmetry`]) — protocols declare a symmetry
//!   group ([`Symmetry`], with [`Permutation`] hooks for ids embedded in
//!   state, messages and outputs); before a state is fingerprinted it is
//!   streamed through the hasher once per group element (restricted to
//!   elements preserving the failure pattern and the invocation vector)
//!   and keyed by the least fingerprint. Two states that are renamings of
//!   each other then dedup to one
//!   ([`ExploreReport::symmetry_canonical_hits`]). Decisions and
//!   violations always stay in *original* ids — only the dedup key is
//!   canonicalized — so counterexamples found under reduction replay
//!   through [`Replay`](crate::Replay) and [`crate::repro`] unchanged. Symmetry
//!   is sound only when the safety predicate is itself invariant under
//!   the declared group.
//!
//! Both reductions are deterministic and thread-count-invariant, and both
//! are differentially anchored against the unreduced explorer by the
//! 40-seed equivalence ladders in `tests/explore_dedup.rs`.
//!
//! ```
//! use wfd_sim::{explore, Ctx, ExploreConfig, FailurePattern, NoDetector,
//!               ProcessId, Protocol};
//!
//! #[derive(Clone, Debug)]
//! struct Flood;
//! impl Protocol for Flood {
//!     type Msg = ();
//!     type Output = ();
//!     type Inv = ();
//!     type Fd = ();
//!     fn on_start(&mut self, ctx: &mut Ctx<Self>) { ctx.broadcast_others(()); }
//!     fn on_message(&mut self, _: &mut Ctx<Self>, _: ProcessId, _: ()) {}
//! }
//!
//! let report = explore(
//!     ExploreConfig::new(6),
//!     || vec![Flood, Flood],
//!     vec![None, None],
//!     &FailurePattern::failure_free(2),
//!     NoDetector,
//!     |_procs, _outputs| Ok(()),
//! );
//! assert!(report.violation.is_none());
//! assert!(report.states_visited > 2);
//! ```

use crate::failure::FailurePattern;
use crate::id::{ProcessId, Time};
use crate::json::Json;
use crate::machine::{
    apply_step_into, enabled_decisions, initial_state, materialize_decisions, materialize_outputs,
    ReductionConfig, State, StepEnv,
};
use crate::obs::{CounterId, HistId, Obs, PhaseId};
use crate::oracle::FdOracle;
use crate::par::par_map_with;
use crate::protocol::{Footprint, Permutation, Protocol, SendBuf, StepKind, Symmetry};
use std::collections::hash_map::Entry;
use std::collections::HashMap; // wfd-lint: allow(d1-hash-collections, imported only for the sharded seen-table, which is keyed insert/lookup; nothing iterates it)
use std::fmt::Debug;
use std::hash::{Hash, Hasher as _};
use std::sync::atomic::{AtomicBool, Ordering}; // wfd-lint: allow(d3-atomics, the halt flag is an expansion-skip hint only; the merge step resolves every batch deterministically regardless of timing)
use std::sync::Mutex;
use std::time::Instant; // wfd-lint: allow(d2-wall-clock, feeds obs phase timers only, a side table nothing on the decision path reads; proven by obs_invariance.rs)

/// Upper bound on seen-table shards (the historical fixed width).
const MAX_SHARD_COUNT: usize = 64;

/// How many seen-table shards an exploration with `threads` workers
/// uses; workers pick a shard from the fingerprint prefix, so concurrent
/// pre-reads rarely contend. A single worker gets a single shard — a
/// 1-CPU host has no contention to spread, and 64 mutex-wrapped maps are
/// pure overhead there — and each additional worker buys 8× its own
/// width, capped at the historical fixed width of 64. Sharding only
/// partitions the table; it never changes what is explored, so every
/// width produces the same [`ExploreReport`].
pub fn seen_shard_width(threads: usize) -> usize {
    if threads <= 1 {
        1
    } else {
        (threads * 8).next_power_of_two().min(MAX_SHARD_COUNT)
    }
}

/// Cap on the free-list arena (recycled `State` allocations).
const POOL_CAP: usize = 2048;

/// Default frontier batch size. Fixed — and in particular independent of
/// the worker count — because the batch boundaries are part of the
/// deterministic traversal order.
const DEFAULT_BATCH: usize = 256;

/// Which built-in [`StateHasher`] keys the dedup seen-table. Selected on
/// [`ExploreConfig::with_hasher`]; custom implementations go through
/// [`explore_custom`] instead.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Hasher {
    /// 128-bit structural fingerprint ([`FingerprintHasher`]) — the
    /// default: no allocation, collision-checked by the property suite.
    #[default]
    Fingerprint,
    /// Full `String` key ([`ExactKeyHasher`]): collision-free but slow.
    ExactKey,
}

/// Bounds for an exploration.
#[derive(Clone, Debug)]
pub struct ExploreConfig {
    /// Maximum schedule depth (steps along one branch).
    pub max_depth: usize,
    /// Cap on state expansions (safety net for the caller).
    pub max_states: usize,
    /// Deduplicate states by structural fingerprint (collapses converging
    /// interleavings). A state is pruned only when it was already expanded
    /// at an equal-or-lower depth *with the same output history*, so dedup
    /// never hides a reachable violation within the depth bound.
    pub dedup: bool,
    /// Worker threads for frontier batches. `None` (the default) resolves
    /// `WFD_EXPLORE_THREADS`, falling back to the machine's available
    /// parallelism. Every value produces the same report, modulo the
    /// informational [`ExploreReport::threads_used`] field.
    pub threads: Option<usize>,
    /// Frontier batch size: how many pending states are deduplicated and
    /// expanded per round. Part of the deterministic traversal order (and
    /// therefore *not* derived from the thread count); `1` reproduces a
    /// plain depth-first search exactly.
    pub batch: usize,
    /// The budget-aware revisit rule: a revisited state is re-expanded
    /// when the new visit is strictly shallower (it has more remaining
    /// depth budget than the expansion the seen-table remembers). Enabled
    /// by default — disabling it reintroduces a historical soundness bug
    /// and exists only so regression tests can prove the fixtures still
    /// catch it.
    pub budget_aware: bool,
    /// Which built-in hasher keys the seen-table (default:
    /// [`Hasher::Fingerprint`]).
    pub hasher: Hasher,
    /// The state-space reductions ([`ReductionConfig`], shared with
    /// [`LivenessConfig`](crate::LivenessConfig); default: none). DPOR
    /// requires honest [`Protocol::footprint`] declarations — the default
    /// opaque footprint is sound but prunes nothing; symmetry requires
    /// dedup and a group-invariant safety predicate. See the
    /// [module docs](self#state-space-reduction).
    pub reduction: ReductionConfig,
    /// Build sleep sets even at depths where the failure pattern or the
    /// detector oracle changes between `t` and `t + 1` — **test-only**:
    /// reintroduces the naive (unsound) sleep-set implementation that
    /// commutes steps across an oracle transition, so the regression
    /// fixture can prove the stability guard is load-bearing. Meaningless
    /// without [`ReductionConfig::dpor`].
    pub unstable_sleep: bool,
    /// Observability handle (default: [`Obs::off`], which costs nothing).
    /// Metrics never influence the traversal or the report.
    pub obs: Obs,
}

impl ExploreConfig {
    /// Defaults: the given depth, one million states, dedup on, automatic
    /// thread count, batch size 256, fingerprint keys, metrics off.
    pub fn new(max_depth: usize) -> Self {
        ExploreConfig {
            max_depth,
            max_states: 1_000_000,
            dedup: true,
            threads: None,
            batch: DEFAULT_BATCH,
            budget_aware: true,
            hasher: Hasher::Fingerprint,
            reduction: ReductionConfig::none(),
            unstable_sleep: false,
            obs: Obs::off(),
        }
    }

    /// Override the state cap.
    pub fn with_max_states(mut self, cap: usize) -> Self {
        self.max_states = cap;
        self
    }

    /// Override deduplication (on by default).
    pub fn with_dedup(mut self, dedup: bool) -> Self {
        self.dedup = dedup;
        self
    }

    /// Pin the worker count (default: `WFD_EXPLORE_THREADS`, else all
    /// cores). The report is identical for every choice.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// Override the frontier batch size (`1` ⇒ plain DFS order).
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch.max(1);
        self
    }

    /// Disable the budget-aware revisit rule — **test-only**: this
    /// deliberately reintroduces the historical "prune shallower revisits"
    /// dedup bug so regression fixtures can prove they still detect it.
    pub fn with_budget_aware(mut self, budget_aware: bool) -> Self {
        self.budget_aware = budget_aware;
        self
    }

    /// Select which built-in hasher keys the seen-table (default:
    /// [`Hasher::Fingerprint`]).
    pub fn with_hasher(mut self, hasher: Hasher) -> Self {
        self.hasher = hasher;
        self
    }

    /// Replace the whole reduction configuration (the struct shared with
    /// [`LivenessConfig`](crate::LivenessConfig)).
    pub fn with_reduction(mut self, reduction: ReductionConfig) -> Self {
        self.reduction = reduction;
        self
    }

    /// Enable sleep-set dynamic partial-order reduction (default: off;
    /// shorthand for toggling [`ExploreConfig::reduction`]). Prunes
    /// interleavings that merely commute independent steps, as proven by
    /// the protocol's declared [`Protocol::footprint`]s; with the default
    /// opaque footprints it is a sound no-op. The verdict is unchanged;
    /// the traversal-shaped counters legitimately shrink.
    pub fn with_dpor(mut self, dpor: bool) -> Self {
        self.reduction.dpor = dpor;
        self
    }

    /// Enable process-symmetry canonicalization of dedup keys (default:
    /// off; shorthand for toggling [`ExploreConfig::reduction`]).
    /// Effective only with dedup on and a non-trivial declared
    /// [`Protocol::symmetry`] group; **sound only when the safety
    /// predicate is invariant under that group** (restricted to elements
    /// preserving the failure pattern and invocation vector — the
    /// explorer enforces the restriction itself).
    pub fn with_symmetry(mut self, symmetry: bool) -> Self {
        self.reduction.symmetry = symmetry;
        self
    }

    /// Skip the oracle-stability guard when building sleep sets —
    /// **test-only**: this deliberately reintroduces the naive (unsound)
    /// sleep-set implementation that treats locally-independent steps as
    /// commutable even across a detector transition, so the regression
    /// fixture in `tests/explore_dedup.rs` can prove the guard is
    /// load-bearing (the analogue of
    /// [`ExploreConfig::with_budget_aware`]).
    pub fn with_unstable_sleep(mut self, unstable: bool) -> Self {
        self.unstable_sleep = unstable;
        self
    }

    /// Attach an observability handle (see [`crate::obs`]). Like the
    /// other builders this is an *explicit* choice and therefore beats
    /// the `WFD_METRICS` environment toggle — binaries that want env
    /// control resolve via [`crate::EnvOverrides::resolve_obs`] first.
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }
}

pub use crate::machine::ExploreDecision;

/// A safety violation found by [`explore`]: the predicate's message plus
/// the complete decision list of the branch that produced it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExploreViolation {
    /// The safety predicate's error message.
    pub message: String,
    /// The counterexample branch, one `(actor, message choice)` per step,
    /// materialized from the explorer's shared-prefix chain into a flat
    /// vector. Replayable with [`Replay`](crate::Replay).
    pub decisions: Vec<ExploreDecision>,
}

impl ExploreViolation {
    /// The actor sequence of the counterexample (the legacy, ambiguous
    /// rendering — prefer [`ExploreViolation::decisions`]).
    pub fn schedule(&self) -> Vec<ProcessId> {
        self.decisions.iter().map(|(p, _)| *p).collect()
    }
}

/// Outcome of an exploration.
#[derive(Clone, Debug)]
pub struct ExploreReport {
    /// States expanded in full (post-dedup; a state revisited at a
    /// strictly lower depth is re-expanded and counted again). Revisits
    /// re-expanded only on a restricted decision subset — partial cache
    /// hits under the reductions — count in [`dedup_hits`] instead.
    ///
    /// [`dedup_hits`]: ExploreReport::dedup_hits
    pub states_visited: usize,
    /// Whether some branch hit the depth bound (the space is bigger than
    /// what was explored).
    pub depth_bounded: bool,
    /// Whether the exploration stopped early because `max_states` was
    /// reached (the space was truncated *independently* of the depth
    /// bound).
    pub states_capped: bool,
    /// The safety violation, if one was found: the lexicographically-least
    /// decision list among the violations of the first frontier batch that
    /// contained any (so the counterexample does not depend on the worker
    /// count).
    pub violation: Option<ExploreViolation>,
    /// Distinct keys committed to the dedup seen-table (0 with dedup off).
    pub dedup_entries: usize,
    /// States pruned as already-covered revisits (0 with dedup off).
    /// Under the reductions this also counts partial cache hits —
    /// revisits re-expanded only on the decisions the seen-table does
    /// not yet cover — and the individual child states a restriction
    /// skipped.
    pub dedup_hits: usize,
    /// High-water mark of the pending-state frontier, in states.
    pub max_frontier_len: usize,
    /// Child states skipped by sleep-set partial-order reduction. 0
    /// unless [`ReductionConfig::dpor`] is on — and 0 with it on when the
    /// protocol declares only the opaque default footprint.
    pub states_pruned_dpor: usize,
    /// Keyed states whose canonical form used a non-identity permutation
    /// (a renaming of an already-seen state was collapsed onto it). 0
    /// unless [`ReductionConfig::symmetry`] found a usable group.
    pub symmetry_canonical_hits: usize,
    /// Whether a state-space reduction ([`ReductionConfig::dpor`] or
    /// [`ReductionConfig::symmetry`]) was requested for this run.
    pub reduction_enabled: bool,
    /// The resolved worker count. Informational: it is the one field that
    /// legitimately differs between otherwise identical reports.
    pub threads_used: usize,
}

impl ExploreReport {
    /// Whether two reports agree on every semantic field — everything
    /// except [`ExploreReport::threads_used`], which records how the work
    /// was scheduled rather than what was found. The parallel-determinism
    /// guarantee is exactly: reports from any two worker counts satisfy
    /// `same_semantics`.
    pub fn same_semantics(&self, other: &ExploreReport) -> bool {
        self.states_visited == other.states_visited
            && self.depth_bounded == other.depth_bounded
            && self.states_capped == other.states_capped
            && self.dedup_entries == other.dedup_entries
            && self.dedup_hits == other.dedup_hits
            && self.max_frontier_len == other.max_frontier_len
            && self.states_pruned_dpor == other.states_pruned_dpor
            && self.symmetry_canonical_hits == other.symmetry_canonical_hits
            && self.reduction_enabled == other.reduction_enabled
            && self.violation == other.violation
    }

    /// The report as a JSON object (decision lists in the same
    /// `{"step": pid, "msg": index|null}` shape as [`crate::repro`]
    /// artifacts) — used by experiment binaries to make capped or bounded
    /// runs diagnosable from their artifacts.
    pub fn to_json(&self) -> Json {
        let violation = match &self.violation {
            None => Json::Null,
            Some(v) => Json::Obj(vec![
                ("message".to_string(), Json::str(&v.message)),
                (
                    "decisions".to_string(),
                    Json::Arr(
                        v.decisions
                            .iter()
                            .map(|(p, c)| {
                                Json::Obj(vec![
                                    ("step".to_string(), Json::usize(p.index())),
                                    ("msg".to_string(), c.map_or(Json::Null, Json::usize)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        };
        Json::Obj(vec![
            (
                "states_visited".to_string(),
                Json::usize(self.states_visited),
            ),
            ("depth_bounded".to_string(), Json::bool(self.depth_bounded)),
            ("states_capped".to_string(), Json::bool(self.states_capped)),
            ("dedup_entries".to_string(), Json::usize(self.dedup_entries)),
            ("dedup_hits".to_string(), Json::usize(self.dedup_hits)),
            (
                "max_frontier_len".to_string(),
                Json::usize(self.max_frontier_len),
            ),
            (
                "states_pruned_dpor".to_string(),
                Json::usize(self.states_pruned_dpor),
            ),
            (
                "symmetry_canonical_hits".to_string(),
                Json::usize(self.symmetry_canonical_hits),
            ),
            (
                "reduction_enabled".to_string(),
                Json::bool(self.reduction_enabled),
            ),
            ("threads_used".to_string(), Json::usize(self.threads_used)),
            ("violation".to_string(), violation),
        ])
    }
}

// ---------------------------------------------------------------------------
// State fingerprinting
// ---------------------------------------------------------------------------

/// How the explorer keys a state for deduplication.
///
/// The key must be a pure function of the four arguments — which together
/// determine everything the safety predicate and the expansion can observe
/// (`pending_inv` is determined by `started` plus the fixed initial
/// invocation vector, so it needs no key component).
///
/// Two implementations ship: [`FingerprintHasher`] (the default — a
/// 128-bit structural fingerprint, no allocation) and [`ExactKeyHasher`]
/// (the full rendering as a `String`; collision-free but slow, selected by
/// equivalence tests to prove the fingerprint never changes a verdict).
pub trait StateHasher: Sync {
    /// The dedup key type. `Ord` so symmetry canonicalization can take
    /// the least key over the candidate permutations deterministically.
    type Key: Eq + Ord + Hash + Clone + Send;

    /// Key the given state components.
    fn key<P: Protocol + Debug>(
        &self,
        procs: &[P],
        inboxes: &[Vec<(ProcessId, P::Msg)>],
        started: &[bool],
        outputs: &[(ProcessId, P::Output)],
    ) -> Self::Key;

    /// Which of `shards` seen-table shards a key lives in. The default
    /// hashes the key; [`FingerprintHasher`] overrides it with the
    /// fingerprint's top bits.
    fn shard(key: &Self::Key, shards: usize) -> usize {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() as usize) % shards.max(1)
    }
}

/// Two independent 64-bit multiply-xor streams over the same byte
/// stream, mixed one 64-bit word at a time and finalized into a 128-bit
/// fingerprint. Implements [`std::fmt::Write`] so the state's `Debug`
/// rendering is hashed as it is produced, without ever materializing the
/// string; bytes are buffered into words *across* fragment boundaries, so
/// the fingerprint depends only on the rendered byte stream, never on how
/// the formatter chose to chunk it.
#[derive(Debug)]
struct Fingerprint128 {
    a: u64,
    b: u64,
    /// Partial word being filled, little-endian; `buf_len` bytes valid.
    buf: u64,
    buf_len: u32,
    len: u64,
}

impl Fingerprint128 {
    // FNV-64 offset basis / golden ratio as the two stream seeds; the
    // word mixer below is the MurmurHash3-x64 inner round (multiply,
    // rotate, multiply, fold), whose rotations diffuse differences
    // downward as well as upward — a plain multiply-xor stream only
    // carries differences toward the high bits, and correlated high-bit
    // differences in two words can then cancel in *both* streams at once
    // (observed as real collisions on structured `Debug` renderings).
    const SEED_A: u64 = 0xcbf2_9ce4_8422_2325;
    const SEED_B: u64 = 0x9e37_79b9_7f4a_7c15;
    const C1: u64 = 0x87c3_7b91_1142_53d5;
    const C2: u64 = 0x4cf5_ad43_2745_937f;

    fn new() -> Self {
        Fingerprint128 {
            a: Self::SEED_A,
            b: Self::SEED_B,
            buf: 0,
            buf_len: 0,
            len: 0,
        }
    }

    #[inline]
    fn mix_word(&mut self, w: u64) {
        let ka = w
            .wrapping_mul(Self::C1)
            .rotate_left(31)
            .wrapping_mul(Self::C2);
        self.a ^= ka;
        self.a = self
            .a
            .rotate_left(27)
            .wrapping_mul(5)
            .wrapping_add(0x52dc_e729);
        let kb = w
            .wrapping_mul(Self::C2)
            .rotate_left(33)
            .wrapping_mul(Self::C1);
        self.b ^= kb;
        self.b = self
            .b
            .rotate_left(31)
            .wrapping_mul(5)
            .wrapping_add(0x3855_4107);
    }

    fn finish(mut self) -> u128 {
        if self.buf_len > 0 {
            let w = self.buf;
            self.mix_word(w);
        }
        // Fold in the total byte count: a zero-padded final word must not
        // collide with explicit trailing NULs or an empty tail.
        let len = self.len;
        self.mix_word(len);
        // splitmix64-style finalizer on each stream so nearby inputs
        // spread across the whole key space (the top bits pick the shard).
        fn avalanche(mut x: u64) -> u64 {
            x ^= x >> 30;
            x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
            x ^= x >> 27;
            x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
            x ^ (x >> 31)
        }
        (u128::from(avalanche(self.a)) << 64) | u128::from(avalanche(self.b))
    }
}

impl std::fmt::Write for Fingerprint128 {
    fn write_str(&mut self, s: &str) -> std::fmt::Result {
        let mut bytes = s.as_bytes();
        self.len += bytes.len() as u64;
        // Top up a partial word left by the previous fragment.
        while self.buf_len > 0 {
            let Some((&byte, rest)) = bytes.split_first() else {
                return Ok(());
            };
            bytes = rest;
            self.buf |= u64::from(byte) << (8 * self.buf_len);
            self.buf_len += 1;
            if self.buf_len == 8 {
                let w = self.buf;
                self.mix_word(w);
                self.buf = 0;
                self.buf_len = 0;
            }
        }
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let w = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            self.mix_word(w);
        }
        for &byte in chunks.remainder() {
            self.buf |= u64::from(byte) << (8 * self.buf_len);
            self.buf_len += 1;
        }
        Ok(())
    }
}

/// The default [`StateHasher`]: a 128-bit structural fingerprint of the
/// state's `Debug` rendering, computed streaming (no `String` is ever
/// allocated or stored). Collisions are possible in principle
/// (2⁻¹²⁸-ish); the `explore_dedup` property suite continuously checks
/// verdict equivalence against [`ExactKeyHasher`].
#[derive(Clone, Copy, Debug, Default)]
pub struct FingerprintHasher;

impl StateHasher for FingerprintHasher {
    type Key = u128;

    fn key<P: Protocol + Debug>(
        &self,
        procs: &[P],
        inboxes: &[Vec<(ProcessId, P::Msg)>],
        started: &[bool],
        outputs: &[(ProcessId, P::Output)],
    ) -> u128 {
        use std::fmt::Write;
        let mut w = Fingerprint128::new();
        write!(w, "{procs:?}|{inboxes:?}|{started:?}|{outputs:?}")
            .expect("fingerprint writer is infallible");
        w.finish()
    }

    fn shard(key: &u128, shards: usize) -> usize {
        ((key >> 96) as usize) % shards.max(1)
    }
}

/// The exact (collision-free) [`StateHasher`]: the full `Debug` rendering
/// as a heap `String` — the PR 2 dedup key, byte for byte. Slow and
/// memory-hungry; selected by equivalence tests (and available to callers
/// that want certainty over speed) to cross-check [`FingerprintHasher`].
#[derive(Clone, Copy, Debug, Default)]
pub struct ExactKeyHasher;

impl StateHasher for ExactKeyHasher {
    type Key = String;

    fn key<P: Protocol + Debug>(
        &self,
        procs: &[P],
        inboxes: &[Vec<(ProcessId, P::Msg)>],
        started: &[bool],
        outputs: &[(ProcessId, P::Output)],
    ) -> String {
        format!("{procs:?}|{inboxes:?}|{started:?}|{outputs:?}")
    }
}

// ---------------------------------------------------------------------------
// State-space reduction machinery: sleep sets, seen-covers, symmetry
// ---------------------------------------------------------------------------

/// Membership in a sorted sleep set.
fn sleep_contains(sleep: &[ExploreDecision], d: ExploreDecision) -> bool {
    sleep.binary_search(&d).is_ok()
}

/// `a ⊆ b` over sorted decision sets (merge scan).
fn sleep_subset(a: &[ExploreDecision], b: &[ExploreDecision]) -> bool {
    let mut b_iter = b.iter();
    'outer: for x in a {
        for y in b_iter.by_ref() {
            match y.cmp(x) {
                std::cmp::Ordering::Less => continue,
                std::cmp::Ordering::Equal => continue 'outer,
                std::cmp::Ordering::Greater => return false,
            }
        }
        return false;
    }
    true
}

/// One recorded expansion of a seen key: the depth it ran from and the
/// enabled decisions it *slept* (skipped). A revisit is covered — safely
/// prunable — only by an entry that had at least as much remaining depth
/// budget (`depth ≤` the revisit's) and slept at most what the revisit
/// would sleep (`sleep ⊆` the revisit's): the recorded subtree then
/// contains every run the revisit could contribute. This is the
/// sleep-aware caching rule from Godefroid's state-space caching work:
/// pruning any revisit regardless of its sleep set is unsound in
/// general, because the earlier visit may have skipped exactly the
/// direction the revisit still needs. The entries of one key form a
/// small Pareto front: no entry dominates another. A revisit no single
/// entry covers is not necessarily re-expanded in full: the resolution
/// pass restricts it to the intersection of the valid entries' sleeps —
/// everything outside that intersection is covered by *some* entry (see
/// [`State::restrict`]).
struct SeenCover {
    depth: usize,
    sleep: Vec<ExploreDecision>,
}

/// Whether the recorded covers of a key cover a visit at `depth` that
/// would sleep `sleep`. Coverage only ever *grows* as entries are pushed,
/// which is what keeps the parallel pre-read sound: a pre-read prune
/// verdict can never be invalidated by the sequential resolution pass.
fn covered_by(
    covers: &[SeenCover],
    depth: usize,
    sleep: &[ExploreDecision],
    budget_aware: bool,
) -> bool {
    covers
        .iter()
        .any(|c| (!budget_aware || c.depth <= depth) && sleep_subset(&c.sleep, sleep))
}

/// Record a kept (re-)expansion: push its cover and drop entries it
/// dominates. Without reductions every sleep is empty, so this degenerates
/// to the historical single min-depth entry per key.
fn push_cover(entry: &mut Vec<SeenCover>, depth: usize, sleep: Vec<ExploreDecision>) {
    entry.retain(|c| !(depth <= c.depth && sleep_subset(&sleep, &c.sleep)));
    entry.push(SeenCover { depth, sleep });
}

/// Fingerprint one `Debug` rendering — used to compare detector values
/// and invocation slots for equality, since `Fd`/`Inv` only promise
/// `Debug` (the same representation choice the state keys make).
pub(crate) fn debug_fp<T: Debug>(v: &T) -> u128 {
    use std::fmt::Write;
    let mut w = Fingerprint128::new();
    write!(w, "{v:?}").expect("fingerprint writer is infallible");
    w.finish()
}

/// Dense per-batch cache of one detector value per `(process, time)`
/// pair, with a touched-slot list so clearing between batches costs
/// O(entries written), not O(capacity). Replaces a `HashMap` keyed by
/// `(usize, Time)`: the cache sits on determinism-scoped code, and dense
/// indexing leaves no iteration-order question for wfd-lint to audit.
struct FdTable<F> {
    slots: Vec<Option<F>>,
    touched: Vec<usize>,
    stride: usize,
}

impl<F> FdTable<F> {
    /// One slot per `(p, t)` with `p < n` and `t <= max_depth`.
    fn new(n: usize, max_depth: usize) -> Self {
        let stride = max_depth + 1;
        FdTable {
            slots: (0..n * stride).map(|_| None).collect(),
            touched: Vec::new(),
            stride,
        }
    }

    fn clear(&mut self) {
        for &i in &self.touched {
            self.slots[i] = None;
        }
        self.touched.clear();
    }

    fn fill_with(&mut self, p: usize, t: Time, f: impl FnOnce() -> F) {
        let i = p * self.stride + t as usize;
        if self.slots[i].is_none() {
            self.slots[i] = Some(f());
            self.touched.push(i);
        }
    }

    fn get(&self, p: usize, t: Time) -> &F {
        self.slots[p * self.stride + t as usize]
            .as_ref()
            .expect("oracle phase fills every alive (p, t) in the batch")
    }
}

/// Dense per-batch map from a survivor depth to the DPOR stability
/// verdict at that depth (same touched-list clearing discipline as
/// [`FdTable`], same `HashMap`-replacement rationale).
struct DepthTable {
    slots: Vec<Option<bool>>,
    touched: Vec<usize>,
}

impl DepthTable {
    fn new(max_depth: usize) -> Self {
        DepthTable {
            slots: vec![None; max_depth + 1],
            touched: Vec::new(),
        }
    }

    fn clear(&mut self) {
        for &i in &self.touched {
            self.slots[i] = None;
        }
        self.touched.clear();
    }

    fn contains(&self, t: Time) -> bool {
        self.slots[t as usize].is_some()
    }

    fn insert(&mut self, t: Time, v: bool) {
        let i = t as usize;
        if self.slots[i].is_none() {
            self.touched.push(i);
        }
        self.slots[i] = Some(v);
    }

    fn get(&self, t: Time) -> Option<bool> {
        self.slots[t as usize]
    }
}

/// Whether two enabled decisions at the same state are *independent* —
/// executing them in either order yields the same state, and neither
/// order hides the other's enabledness. Requires (checked by the caller)
/// that the failure pattern and detector are stable across the two
/// adjacent step times. `fa`/`fb` are the decisions' declared footprints;
/// `started` is the state's started vector.
fn independent(
    (p, ca): ExploreDecision,
    fa: &Footprint,
    (q, cb): ExploreDecision,
    fb: &Footprint,
    started: &[bool],
) -> bool {
    // A process's own steps always conflict (they share its local state
    // and inbox); two outputs conflict (the output history is ordered and
    // safety-visible); two sends to a common inbox conflict (the append
    // order is part of the state); a send into a process whose decision
    // is a λ step disables that step (λ requires an empty inbox) — start
    // steps are immune, they read no inbox.
    p != q
        && !(fa.may_output() && fb.may_output())
        && !fa.sends_intersect(fb)
        && !(fa.may_send_to(q) && cb.is_none() && started[q.index()])
        && !(fb.may_send_to(p) && ca.is_none() && started[p.index()])
}

/// The declared footprint of one enabled decision at `state`.
fn decision_footprint<P: Protocol>(state: &State<P>, d: ExploreDecision, n: usize) -> Footprint {
    let (p, choice) = d;
    let idx = p.index();
    if !state.started[idx] {
        let kind = StepKind::Start {
            inv: state.pending_inv[idx].as_ref(),
        };
        return state.procs[idx].footprint(p, n, kind);
    }
    let kind = match choice {
        Some(i) if !state.inboxes[idx].is_empty() => {
            let i = i.min(state.inboxes[idx].len() - 1);
            let (from, msg) = &state.inboxes[idx][i];
            StepKind::Deliver { from: *from, msg }
        }
        _ => StepKind::Tick,
    };
    state.procs[idx].footprint(p, n, kind)
}

/// A usable non-identity symmetry group element, with its inverse image
/// table cached for state rebuilding (`inverse[j]` = the original slot
/// canonical slot `j` is filled from).
pub(crate) struct SymPerm {
    pub(crate) perm: Permutation,
    pub(crate) inverse: Vec<usize>,
}

/// Restrict the protocol's declared symmetry group to the elements this
/// *scenario* cannot distinguish: preserving the failure pattern at every
/// step time, mapping invocation slots onto `Debug`-equal ones, and
/// seeing a structurally equal detector value at every alive `(p, t)`
/// (`P::Fd: PartialEq`; invocations only promise `Debug`). Asymmetric
/// scenarios thus never inherit a symmetric protocol's full group. The
/// identity is excluded — it is the implicit first candidate of every
/// canonicalization.
pub(crate) fn scenario_symmetry<P, D>(
    n: usize,
    max_depth: usize,
    pattern: &FailurePattern,
    invocations: &[Option<P::Inv>],
    detector: &mut D,
) -> Vec<SymPerm>
where
    P: Protocol,
    D: FdOracle<Value = P::Fd>,
{
    let declared: Symmetry = P::symmetry(n);
    let group = declared.permutations(n);
    if group.len() <= 1 {
        return Vec::new();
    }
    let inv_fps: Vec<u128> = invocations.iter().map(debug_fp).collect();
    // One detector sample per (p, t) — oracles are pure in (p, t), so
    // sampling here cannot perturb the exploration's own queries.
    let fd_samples: Vec<Vec<Option<P::Fd>>> = ProcessId::all(n)
        .map(|p| {
            (0..max_depth)
                .map(|t| {
                    let t = t as Time;
                    (!pattern.is_crashed(p, t)).then(|| detector.query(p, t))
                })
                .collect()
        })
        .collect();
    group
        .into_iter()
        .filter(|perm| !perm.is_identity())
        .filter(|perm| {
            ProcessId::all(n).all(|p| {
                let q = perm.apply(p);
                inv_fps[p.index()] == inv_fps[q.index()]
                    && (0..max_depth).all(|t| {
                        pattern.is_crashed(p, t as Time) == pattern.is_crashed(q, t as Time)
                            && fd_samples[p.index()][t] == fd_samples[q.index()][t]
                    })
            })
        })
        .map(|perm| {
            let inverse = perm.inverse_map();
            SymPerm { perm, inverse }
        })
        .collect()
}

/// Per-worker scratch for building permuted state views (allocations are
/// reused across the states and permutations of one key-phase chunk).
struct SymScratch<P: Protocol> {
    procs: Vec<P>,
    inboxes: Vec<Vec<(ProcessId, P::Msg)>>,
    started: Vec<bool>,
    outputs: Vec<(ProcessId, P::Output)>,
}

impl<P: Protocol> SymScratch<P> {
    fn new(n: usize) -> Self {
        SymScratch {
            procs: Vec::with_capacity(n),
            inboxes: vec![Vec::new(); n],
            started: vec![false; n],
            outputs: Vec::new(),
        }
    }
}

/// The canonical dedup key of a state under the scenario's symmetry
/// group: the least key over the identity and every usable permutation,
/// plus the index of the permutation that realized it (`None` when the
/// identity is least — ties break toward the identity, then toward the
/// earlier group element, so the choice is deterministic).
fn canonical_key<H, P>(
    hasher: &H,
    state: &State<P>,
    outputs: &[(ProcessId, P::Output)],
    perms: &[SymPerm],
    scratch: &mut SymScratch<P>,
) -> (H::Key, Option<usize>)
where
    H: StateHasher,
    P: Protocol + Clone + Debug,
{
    let mut best = hasher.key(&state.procs, &state.inboxes, &state.started, outputs);
    let mut best_perm = None;
    let n = state.procs.len();
    for (pi, sp) in perms.iter().enumerate() {
        // Canonical slot j is original slot inverse[j], with every
        // embedded id rewritten forward through the permutation. Inbox
        // order is preserved — appends are order-sensitive state.
        scratch.procs.clear();
        for j in 0..n {
            let mut proc = state.procs[sp.inverse[j]].clone();
            proc.permute(&sp.perm);
            scratch.procs.push(proc);
            scratch.started[j] = state.started[sp.inverse[j]];
            let inbox = &mut scratch.inboxes[j];
            inbox.clear();
            inbox.extend(state.inboxes[sp.inverse[j]].iter().map(|(from, msg)| {
                let mut msg = msg.clone();
                P::permute_msg(&mut msg, &sp.perm);
                (sp.perm.apply(*from), msg)
            }));
        }
        scratch.outputs.clear();
        scratch.outputs.extend(outputs.iter().map(|(p, out)| {
            let mut out = out.clone();
            P::permute_output(&mut out, &sp.perm);
            (sp.perm.apply(*p), out)
        }));
        let key = hasher.key(
            &scratch.procs,
            &scratch.inboxes,
            &scratch.started,
            &scratch.outputs,
        );
        if key < best {
            best = key;
            best_perm = Some(pi);
        }
    }
    (best, best_perm)
}

// ---------------------------------------------------------------------------
// The explorer
// ---------------------------------------------------------------------------

/// Return a no-longer-needed state to the arena (dropping its shared
/// history links so unshared chain segments are freed promptly).
fn recycle<P: Protocol>(mut s: State<P>, pool: &mut Vec<State<P>>) {
    if pool.len() >= POOL_CAP {
        return;
    }
    s.outputs = None;
    s.decisions = None;
    s.sleep.clear();
    s.restrict = None;
    pool.push(s);
}

/// A violation as collected inside a batch, pre-materialized.
struct FoundViolation {
    message: String,
    decisions: Vec<ExploreDecision>,
}

/// What one expansion chunk hands back to the merge step.
struct ChunkOut<P: Protocol> {
    children: Vec<State<P>>,
    violations: Vec<FoundViolation>,
    depth_bounded: bool,
    /// Children skipped because their decision was asleep. Only merged
    /// from violation-free batches (a violating batch's expansion is
    /// racily short-circuited, so its count is not deterministic — and it
    /// never contributes children either).
    dpor_pruned: usize,
    /// Children skipped because their decision fell outside a partially
    /// covered revisit's [`State::restrict`] set — i.e. the seen-table
    /// already covers their subtree. Merged into `dedup_hits`, under the
    /// same violation-free-batch guard as `dpor_pruned`.
    restricted: usize,
}

/// Contiguous, near-even, in-order split of `0..len` into at most
/// `chunks` non-empty ranges.
fn chunk_ranges(len: usize, chunks: usize) -> Vec<std::ops::Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let chunks = chunks.clamp(1, len);
    let base = len / chunks;
    let extra = len % chunks;
    let mut out = Vec::with_capacity(chunks);
    let mut start = 0;
    for i in 0..chunks {
        let size = base + usize::from(i < extra);
        out.push(start..start + size);
        start += size;
    }
    out
}

/// Exhaustively explore message-delivery interleavings. This is *the*
/// entry point: every knob — including the dedup key representation
/// ([`ExploreConfig::with_hasher`]) — lives on [`ExploreConfig`]. See
/// [`explore_custom`] for the traversal mechanics (and for plugging in a
/// user-defined [`StateHasher`]).
///
/// * `make_procs` builds the initial configuration (fresh per call).
/// * `invocations[p]` is consumed at `p`'s first step (with `on_start`).
/// * `detector` must be a pure function of `(p, t)` (as all oracles are);
///   the step's time is its depth.
/// * `safety` is evaluated in every reachable state over the protocol
///   states and all outputs emitted so far; returning `Err` stops the
///   exploration with a replayable counterexample.
pub fn explore<P, D>(
    cfg: ExploreConfig,
    make_procs: impl Fn() -> Vec<P>,
    invocations: Vec<Option<P::Inv>>,
    pattern: &FailurePattern,
    detector: D,
    safety: impl Fn(&[P], &[(ProcessId, P::Output)]) -> Result<(), String> + Sync,
) -> ExploreReport
where
    P: Protocol + Clone + Debug + Send + Sync,
    P::Msg: Send + Sync,
    P::Output: Send + Sync,
    P::Inv: Send + Sync,
    P::Fd: Sync,
    D: FdOracle<Value = P::Fd>,
{
    match cfg.hasher {
        Hasher::Fingerprint => explore_custom(
            cfg,
            FingerprintHasher,
            make_procs,
            invocations,
            pattern,
            detector,
            safety,
        ),
        Hasher::ExactKey => explore_custom(
            cfg,
            ExactKeyHasher,
            make_procs,
            invocations,
            pattern,
            detector,
            safety,
        ),
    }
}

/// [`explore`] with an explicit, possibly user-defined, [`StateHasher`]
/// instance (which takes precedence over [`ExploreConfig::hasher`]). For
/// the two shipped hashers prefer [`explore`] +
/// [`ExploreConfig::with_hasher`].
///
/// Traversal: batched depth-first. Each round pops up to
/// [`ExploreConfig::batch`] states off the frontier stack (`batch == 1` is
/// bit-for-bit the classic DFS), fingerprints them in parallel against
/// the sharded seen-table, resolves the budget-aware revisit rule
/// *sequentially in batch order* (the rule is order-dependent), then
/// pre-samples the batch's detector answers sequentially (oracles are
/// pure in `(p, t)`, so the workers read them from a lock-free map), then
/// fans the survivors across the workers for safety checking and
/// expansion. Children are merged back onto the stack in survivor order,
/// and a batch with violations reports the lexicographically-least
/// decision list among them — every step is either order-independent or
/// resolved in a fixed order, which is why the worker count cannot
/// change the report.
pub fn explore_custom<H, P, D>(
    cfg: ExploreConfig,
    hasher: H,
    make_procs: impl Fn() -> Vec<P>,
    invocations: Vec<Option<P::Inv>>,
    pattern: &FailurePattern,
    mut detector: D,
    safety: impl Fn(&[P], &[(ProcessId, P::Output)]) -> Result<(), String> + Sync,
) -> ExploreReport
where
    H: StateHasher,
    P: Protocol + Clone + Debug + Send + Sync,
    P::Msg: Send + Sync,
    P::Output: Send + Sync,
    P::Inv: Send + Sync,
    P::Fd: Sync,
    D: FdOracle<Value = P::Fd>,
{
    let threads = cfg
        .threads
        .unwrap_or_else(crate::par::explore_threads)
        .max(1);
    let batch_cap = cfg.batch.max(1);
    // Metrics (side table only — nothing below reads them back, so the
    // traversal and the report are byte-identical with metrics on or
    // off). The clock is read once per *phase*, never per state, and
    // only when the handle is on.
    let obs = cfg.obs.clone();
    let t_start = obs.is_on().then(Instant::now); // wfd-lint: allow(d2-wall-clock, read once per phase for obs metrics only; never compared on the decision path)
                                                  // Resolve the scenario's usable symmetry group before the invocation
                                                  // vector is consumed by the initial state (the filter compares its
                                                  // slots). Without dedup there is no key to canonicalize.
    let sym_perms: Vec<SymPerm> = if cfg.reduction.symmetry && cfg.dedup {
        scenario_symmetry::<P, D>(
            invocations.len(),
            cfg.max_depth,
            pattern,
            &invocations,
            &mut detector,
        )
    } else {
        Vec::new()
    };
    let use_symmetry = !sym_perms.is_empty();
    let root = initial_state(make_procs(), invocations);
    let n = root.procs.len();
    let env = StepEnv { pattern, n };

    // Seen-table: state key → the Pareto front of recorded expansions
    // (depth, sleep set) — see [`SeenCover`]. A revisit is pruned only
    // when some recorded expansion had at least as much remaining depth
    // budget *and* slept no more than the revisit would; without
    // reductions this degenerates to the historical "lowest expanded
    // depth" rule. The key includes the output history: the safety
    // predicate reads outputs, so two branches that converge in
    // `(procs, inboxes, started)` but emitted different outputs are
    // *different* states to the checker.
    let shard_count = seen_shard_width(threads);
    let shards: Vec<Mutex<HashMap<H::Key, Vec<SeenCover>>>> = (0..shard_count) // wfd-lint: allow(d1-hash-collections, keyed insert/lookup only; the dedup_entries sum reads len(), never iterates entries)
        .map(|_| Mutex::new(HashMap::new())) // wfd-lint: allow(d1-hash-collections, constructor for the seen-table excused above)
        .collect();

    let mut stack = vec![root];
    // Free-list arena and child buffers, one slot per worker, persistent
    // across batches. All hand-offs move `Vec` *headers* (O(1)), never
    // elements — shuffling states between a shared arena and per-chunk
    // lists element-wise costs more than the allocations it saves.
    let free_pools: Vec<Mutex<Vec<State<P>>>> =
        (0..threads).map(|_| Mutex::new(Vec::new())).collect();
    let child_bufs: Vec<Mutex<Vec<State<P>>>> =
        (0..threads).map(|_| Mutex::new(Vec::new())).collect();
    let mut next_pool = 0usize;
    let mut survivors: Vec<State<P>> = Vec::new();
    let mut fd_cache: FdTable<P::Fd> = FdTable::new(n, cfg.max_depth);
    // Per-batch map: survivor depth `t` → whether the failure pattern and
    // the detector are stable across times `t` and `t + 1` (the
    // precondition for certifying independence at that depth).
    let mut dpor_stable = DepthTable::new(cfg.max_depth);

    let mut states_visited = 0usize;
    let mut depth_bounded = false;
    let mut states_capped = false;
    let mut dedup_hits = 0usize;
    let mut max_frontier_len = 0usize;
    let mut states_pruned_dpor = 0usize;
    let mut symmetry_canonical_hits = 0usize;
    let halt = AtomicBool::new(false); // wfd-lint: allow(d3-atomics, benign race: may only skip expansion work; violations and flags stay exact and the merge is deterministic)

    let found = loop {
        max_frontier_len = max_frontier_len.max(stack.len());
        if stack.is_empty() {
            break None;
        }
        if states_visited >= cfg.max_states {
            states_capped = true;
            break None;
        }

        // The batch is the top `take` states of the stack; batch index
        // `j` is stack slot `len - 1 - j`, so batch order is pop order
        // and `batch == 1` reproduces the depth-first order exactly. The
        // states are keyed *in place* — they move at most once, straight
        // into `survivors`.
        let take = batch_cap.min(stack.len());
        let top = stack.len();
        obs.add(CounterId::ExploreBatches, 1);
        obs.record(HistId::ExploreFrontierLen, stack.len() as u64);
        obs.record(HistId::ExploreBatchSize, take as u64);

        survivors.clear();
        let mut recycle_rr = |s: State<P>| {
            recycle(
                s,
                &mut free_pools[next_pool % threads]
                    .lock()
                    .expect("free pool poisoned"),
            );
            next_pool = next_pool.wrapping_add(1);
        };
        if cfg.dedup {
            // Key phase (parallel): fingerprint every batch state and
            // pre-read the committed table. Committed depths only ever
            // decrease, so a pre-read prune verdict can never be
            // invalidated by the sequential pass below — pre-reads are a
            // pure early-out that moves lookup work into the parallel
            // section, so with one worker they are skipped outright (the
            // resolution pass below is authoritative either way).
            let pre_read = threads > 1;
            let ranges = chunk_ranges(take, threads);
            let key_phase = obs.phase(PhaseId::ExploreKey);
            let keyed = par_map_with(&ranges, threads, |_, range| {
                let mut keys = Vec::with_capacity(range.len());
                let mut canon_sleeps = Vec::with_capacity(range.len());
                let mut arg_perms = Vec::with_capacity(range.len());
                let mut pre_pruned = Vec::with_capacity(range.len());
                let mut sym_hits = 0usize;
                let mut outputs = Vec::new();
                let mut scratch = use_symmetry.then(|| SymScratch::<P>::new(n));
                for j in range.clone() {
                    let state = &stack[top - 1 - j];
                    materialize_outputs(&state.outputs, state.outputs_len, &mut outputs);
                    let (key, arg_perm) = match &mut scratch {
                        Some(scratch) => {
                            let (key, arg) =
                                canonical_key(&hasher, state, &outputs, &sym_perms, scratch);
                            sym_hits += usize::from(arg.is_some());
                            (key, arg)
                        }
                        None => (
                            hasher.key(&state.procs, &state.inboxes, &state.started, &outputs),
                            None,
                        ),
                    };
                    // The sleep set enters the seen-table in the *same*
                    // coordinates as the key: mapped through the
                    // canonicalizing permutation (inbox indices survive
                    // unchanged — permutation preserves inbox order).
                    let canon_sleep = match arg_perm {
                        None => state.sleep.clone(),
                        Some(pi) => {
                            let perm = &sym_perms[pi].perm;
                            let mut sl: Vec<ExploreDecision> = state
                                .sleep
                                .iter()
                                .map(|&(p, c)| (perm.apply(p), c))
                                .collect();
                            sl.sort_unstable();
                            sl
                        }
                    };
                    let pruned = pre_read && {
                        let shard = shards[H::shard(&key, shard_count)]
                            .lock()
                            .expect("shard poisoned");
                        match shard.get(&key) {
                            Some(entry) => {
                                covered_by(entry, state.depth, &canon_sleep, cfg.budget_aware)
                            }
                            None => false,
                        }
                    };
                    keys.push(key);
                    canon_sleeps.push(canon_sleep);
                    arg_perms.push(arg_perm);
                    pre_pruned.push(pruned);
                }
                (keys, canon_sleeps, arg_perms, pre_pruned, sym_hits)
            });
            drop(key_phase);

            // Resolution phase (sequential, batch order): the revisit
            // rule is order-dependent *within* a batch, so it runs in the
            // one fixed order every thread count shares.
            let _revisit_phase = obs.phase(PhaseId::ExploreRevisit);
            for (keys, canon_sleeps, arg_perms, pre_pruned, sym_hits) in keyed {
                symmetry_canonical_hits += sym_hits;
                for (((key, canon_sleep), arg_perm), pre) in keys
                    .into_iter()
                    .zip(canon_sleeps)
                    .zip(arg_perms)
                    .zip(pre_pruned)
                {
                    let mut state = stack.pop().expect("batch within stack");
                    let keep = !pre && {
                        let mut shard = shards[H::shard(&key, shard_count)]
                            .lock()
                            .expect("shard poisoned");
                        match shard.entry(key) {
                            Entry::Occupied(mut e) => {
                                if covered_by(e.get(), state.depth, &canon_sleep, cfg.budget_aware)
                                {
                                    false
                                } else {
                                    // Partial cover — restricted re-expansion
                                    // (Godefroid's state-space caching). Every
                                    // decision some *valid* cover (one with at
                                    // least as much remaining depth budget)
                                    // did not sleep already has an explored
                                    // subtree; only the intersection of the
                                    // valid covers' sleeps may still hide
                                    // unexplored runs. When that intersection
                                    // is asleep here too, the covers jointly
                                    // subsume this visit even though no single
                                    // one does — prune, after strengthening
                                    // the front with this visit's cover (its
                                    // claim is backed by the same union).
                                    // Otherwise keep the state, restricted to
                                    // the intersection mapped back from the
                                    // table's canonical coordinates into this
                                    // state's own ids (inbox positions
                                    // survive — permutations preserve inbox
                                    // order). `restrict` stays `None` exactly
                                    // when no cover is valid, or when DPOR is
                                    // off (all sleeps empty then, so any
                                    // valid cover is a full cover).
                                    let mut valid = e
                                        .get()
                                        .iter()
                                        .filter(|c| !cfg.budget_aware || c.depth <= state.depth);
                                    let mandatory = valid.next().map(|first| {
                                        let mut m = first.sleep.clone();
                                        for c in valid {
                                            m.retain(|d| sleep_contains(&c.sleep, *d));
                                        }
                                        m
                                    });
                                    // The cover this visit records claims
                                    // only what is actually backed: with a
                                    // restriction, everything outside
                                    // `mandatory ∩ canon_sleep` is explored —
                                    // either expanded now (in `mandatory`,
                                    // awake) or by the cover union (outside
                                    // `mandatory`). Recording that smaller
                                    // sleep makes the front converge: repeat
                                    // revisits with fresh sleeps shrink the
                                    // recorded sleep toward the intersection
                                    // until full prunes take over.
                                    match mandatory {
                                        Some(m)
                                            if m.iter()
                                                .all(|d| sleep_contains(&canon_sleep, *d)) =>
                                        {
                                            push_cover(e.get_mut(), state.depth, m);
                                            false
                                        }
                                        Some(mut m) => {
                                            let cover_sleep: Vec<ExploreDecision> = m
                                                .iter()
                                                .copied()
                                                .filter(|d| sleep_contains(&canon_sleep, *d))
                                                .collect();
                                            if let Some(pi) = arg_perm {
                                                let inv = &sym_perms[pi].inverse;
                                                for (p, _) in m.iter_mut() {
                                                    *p = ProcessId(inv[p.index()]);
                                                }
                                                m.sort_unstable();
                                            }
                                            state.restrict = Some(m);
                                            push_cover(e.get_mut(), state.depth, cover_sleep);
                                            true
                                        }
                                        None => {
                                            push_cover(e.get_mut(), state.depth, canon_sleep);
                                            true
                                        }
                                    }
                                }
                            }
                            Entry::Vacant(v) => {
                                v.insert(vec![SeenCover {
                                    depth: state.depth,
                                    sleep: canon_sleep,
                                }]);
                                true
                            }
                        }
                    };
                    if keep {
                        survivors.push(state);
                    } else {
                        dedup_hits += 1;
                        recycle_rr(state);
                    }
                }
            }
        } else {
            survivors.extend(stack.drain(top - take..).rev());
        }

        // Enforce the state cap mid-batch, in batch order, so the set of
        // expanded states is identical at every thread count. Restricted
        // revisits (partial cache hits — see [`State::restrict`]) count
        // neither toward the cap nor toward `states_visited`: the state
        // itself was already visited in full; only its residual decisions
        // are expanded. They land in `dedup_hits` with the fully covered
        // revisits.
        let remaining = cfg.max_states - states_visited;
        let mut full_visits = 0usize;
        let mut cut = survivors.len();
        for (i, s) in survivors.iter().enumerate() {
            if s.restrict.is_none() {
                if full_visits == remaining {
                    cut = i;
                    break;
                }
                full_visits += 1;
            }
        }
        if cut < survivors.len() {
            states_capped = true;
            for s in survivors.drain(cut..) {
                recycle_rr(s);
            }
        }
        states_visited += full_visits;
        dedup_hits += survivors.len() - full_visits;
        if survivors.is_empty() {
            continue;
        }

        // Oracle phase (sequential): detector answers are pure functions
        // of `(p, t)` (the FdOracle contract), so one query per distinct
        // pair serves the whole batch from a read-only map — the
        // expansion workers never contend on the detector.
        let oracle_phase = obs.phase(PhaseId::ExploreOracle);
        fd_cache.clear();
        dpor_stable.clear();
        for state in &survivors {
            obs.record(HistId::ExploreStateDepth, state.depth as u64);
            if state.depth >= cfg.max_depth {
                continue;
            }
            let t = state.depth as Time;
            for p in ProcessId::all(n) {
                if !pattern.is_crashed(p, t) {
                    fd_cache.fill_with(p.index(), t, || detector.query(p, t));
                }
            }
            if cfg.reduction.dpor && !dpor_stable.contains(t) {
                // Independence at depth `t` commutes a step between times
                // `t` and `t + 1`; that is only behavior-preserving when
                // no process's crash status changes and every alive
                // process sees the same detector value at both times.
                // The comparison is structural (`P::Fd: PartialEq`): a
                // `Debug`-fingerprint proxy would wrongly certify
                // independence for distinct values that print alike.
                let stable = ProcessId::all(n).all(|p| {
                    let crashed = pattern.is_crashed(p, t);
                    crashed == pattern.is_crashed(p, t + 1)
                        && (crashed || *fd_cache.get(p.index(), t) == detector.query(p, t + 1))
                });
                dpor_stable.insert(t, stable);
            }
        }
        drop(oracle_phase);

        // Expansion phase (parallel): safety-check and expand each
        // survivor chunk; each chunk draws from (and returns to) its own
        // slot of the free-list arena.
        let expand_phase = obs.phase(PhaseId::ExploreExpand);
        let ranges = chunk_ranges(survivors.len(), threads);
        let outs = par_map_with(&ranges, threads, |slot, range| {
            let mut free = std::mem::take(&mut *free_pools[slot].lock().expect("pool poisoned"));
            let mut out = ChunkOut {
                children: std::mem::take(
                    &mut *child_bufs[slot].lock().expect("child buf poisoned"),
                ),
                violations: Vec::new(),
                depth_bounded: false,
                dpor_pruned: 0,
                restricted: 0,
            };
            let mut outputs = Vec::new();
            let mut bufs: (SendBuf<P>, Vec<P::Output>) = (Vec::new(), Vec::new());
            // The machine-layer enabled set of the current state, reused
            // across the chunk.
            let mut enabled: Vec<ExploreDecision> = Vec::new();
            // DPOR scratch, reused across the chunk's states: the sleeping
            // decisions' footprints and the decisions already executed at
            // the current state (with theirs).
            let mut sleep_fps: Vec<(ExploreDecision, Footprint)> = Vec::new();
            let mut executed: Vec<(ExploreDecision, Footprint)> = Vec::new();
            for state in &survivors[range.clone()] {
                // A restricted revisit's safety verdict is fixed by its
                // first visit — the key covers the procs and the output
                // history, and a violation there would have ended the
                // exploration — so only full visits are checked.
                if state.restrict.is_none() {
                    materialize_outputs(&state.outputs, state.outputs_len, &mut outputs);
                    if let Err(message) = safety(&state.procs, &outputs) {
                        out.violations.push(FoundViolation {
                            message,
                            decisions: materialize_decisions(&state.decisions),
                        });
                        halt.store(true, Ordering::Relaxed); // wfd-lint: allow(d3-atomics, publishes the expansion-skip hint; relaxed is enough because no result depends on when it lands)
                        continue;
                    }
                }
                if state.depth >= cfg.max_depth {
                    out.depth_bounded = true;
                    continue;
                }
                // Any violation in this batch ends the exploration before
                // any of the batch's children reach the stack (see the
                // merge step), so *expansion* — and only expansion; flags
                // and violations above stay exact — may be skipped once
                // one is seen, even though which children get skipped is
                // timing-dependent.
                // wfd-lint: allow(d3-atomics, racy read only skips child expansion; the batch's violations are already recorded exactly)
                if halt.load(Ordering::Relaxed) {
                    continue;
                }
                let t = state.depth as Time;
                // The branching rule is the machine layer's enabled set —
                // the same enumeration, in the same order, that
                // `ProtocolMachine` exposes and the baseline explorer
                // walks.
                enabled.clear();
                enabled_decisions(state, pattern, n, &mut enabled);
                if cfg.reduction.dpor {
                    // Sleep-set expansion (Godefroid): skip sleeping
                    // decisions; a child's sleep is the still-independent
                    // part of the parent's sleep plus the earlier-executed
                    // independent decisions — certified only when the
                    // pattern and detector are stable at this depth.
                    let stable = cfg.unstable_sleep || dpor_stable.get(t).unwrap_or(false);
                    sleep_fps.clear();
                    sleep_fps.extend(
                        state
                            .sleep
                            .iter()
                            .map(|&d| (d, decision_footprint(state, d, n))),
                    );
                    executed.clear();
                    for &d in &enabled {
                        let (p, choice) = d;
                        if sleep_contains(&state.sleep, d) {
                            out.dpor_pruned += 1;
                            continue;
                        }
                        if let Some(mandatory) = &state.restrict {
                            if !sleep_contains(mandatory, d) {
                                // Outside the restriction: an earlier
                                // visit's recorded expansion already
                                // covers this subtree (see the
                                // resolution pass). Skip it, and — when
                                // independence is certified at this
                                // depth — let later siblings' children
                                // sleep it, exactly as if it had been
                                // executed first.
                                out.restricted += 1;
                                if stable {
                                    sleep_fps.push((d, decision_footprint(state, d, n)));
                                }
                                continue;
                            }
                        }
                        let fd = fd_cache.get(p.index(), t);
                        let fp = decision_footprint(state, d, n);
                        let mut dst = free.pop().unwrap_or_else(State::blank);
                        apply_step_into(
                            &env,
                            state,
                            &mut dst,
                            p,
                            fd.clone(),
                            choice,
                            &mut bufs,
                            Some(&fp),
                        );
                        if stable {
                            dst.sleep.extend(
                                sleep_fps
                                    .iter()
                                    .chain(executed.iter())
                                    .filter(|(e, efp)| independent(*e, efp, d, &fp, &state.started))
                                    .map(|(e, _)| *e),
                            );
                            dst.sleep.sort_unstable();
                        }
                        out.children.push(dst);
                        executed.push((d, fp));
                    }
                } else {
                    for &(p, choice) in &enabled {
                        let fd = fd_cache.get(p.index(), t);
                        let mut dst = free.pop().unwrap_or_else(State::blank);
                        apply_step_into(
                            &env,
                            state,
                            &mut dst,
                            p,
                            fd.clone(),
                            choice,
                            &mut bufs,
                            None,
                        );
                        out.children.push(dst);
                    }
                }
            }
            // Hand the (possibly drained) free list back — a Vec-header
            // move, not an element copy.
            *free_pools[slot].lock().expect("pool poisoned") = free;
            out
        });
        drop(expand_phase);
        let _merge_phase = obs.phase(PhaseId::ExploreMerge);

        // Merge (sequential, chunk order — so the stack layout, flags and
        // the chosen counterexample are independent of scheduling). Flags
        // and violations are exact at every thread count (the `halt`
        // early-out skips only expansion), so they merge first; a batch
        // with violations then ends the exploration *before* its children
        // touch the stack or the frontier high-water mark. Those children
        // would be discarded at the break anyway, and how many of them got
        // expanded is the one thing the racy `halt` flag makes
        // timing-dependent — merging them would leak that nondeterminism
        // into `max_frontier_len` and break the thread-count-invariant
        // report guarantee.
        let mut outs = outs;
        let mut violations: Vec<FoundViolation> = Vec::new();
        let mut batch_dpor_pruned = 0usize;
        let mut batch_restricted = 0usize;
        for out in &mut outs {
            depth_bounded |= out.depth_bounded;
            batch_dpor_pruned += out.dpor_pruned;
            batch_restricted += out.restricted;
            violations.append(&mut out.violations);
        }
        if let Some(best) = violations
            .into_iter()
            .min_by(|a, b| a.decisions.cmp(&b.decisions))
        {
            break Some(best);
        }
        // Committed only for violation-free batches: in a violating batch
        // the racy `halt` hint makes the prune counts (like the discarded
        // children) timing-dependent. Restricted-out children are
        // seen-table economies, so they land in `dedup_hits`.
        states_pruned_dpor += batch_dpor_pruned;
        dedup_hits += batch_restricted;
        for (slot, mut out) in outs.into_iter().enumerate() {
            stack.append(&mut out.children);
            // `append` left `children` empty but with its capacity — hand
            // it back so the next batch reuses the allocation.
            *child_bufs[slot].lock().expect("child buf poisoned") = out.children;
        }
        for s in survivors.drain(..) {
            recycle_rr(s);
        }
        // No `max_frontier_len` update here: the loop top re-reads
        // `stack.len()` before anything can break, so the post-merge
        // length is always captured there.
        obs.heartbeat(|| {
            let secs = t_start
                .expect("heartbeat implies on")
                .elapsed()
                .as_secs_f64();
            let attempted = states_visited + dedup_hits;
            format!(
                "explore: {} states ({:.0}/s), dedup {:.1}% of {} keyed, frontier {} (hw {})",
                states_visited,
                states_visited as f64 / secs.max(1e-9),
                100.0 * dedup_hits as f64 / attempted.max(1) as f64,
                attempted,
                stack.len(),
                max_frontier_len,
            )
        });
    };

    let dedup_entries = shards
        .iter()
        .map(|s| s.lock().expect("shard poisoned").len())
        .sum();
    if obs.is_on() {
        obs.add(CounterId::ExploreRuns, 1);
        obs.add(CounterId::ExploreStatesVisited, states_visited as u64);
        obs.add(CounterId::ExploreDedupHits, dedup_hits as u64);
        obs.add(CounterId::ExploreDedupEntries, dedup_entries as u64);
        obs.add(CounterId::ExploreDporPruned, states_pruned_dpor as u64);
        obs.add(
            CounterId::ExploreSymmetryHits,
            symmetry_canonical_hits as u64,
        );
    }
    ExploreReport {
        states_visited,
        depth_bounded,
        states_capped,
        violation: found.map(|v| ExploreViolation {
            message: v.message,
            decisions: v.decisions,
        }),
        dedup_entries,
        dedup_hits,
        max_frontier_len,
        states_pruned_dpor,
        symmetry_canonical_hits,
        reduction_enabled: cfg.reduction.any(),
        threads_used: threads,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{DecisionNode, OutputNode, Replay};
    use crate::oracle::NoDetector;
    use crate::protocol::Ctx;
    use std::sync::Arc;

    /// Each process outputs every message payload it receives.
    #[derive(Clone, Debug)]
    struct Tag {
        sent: bool,
    }

    impl Protocol for Tag {
        type Msg = u8;
        type Output = u8;
        type Inv = u8;
        type Fd = ();

        fn on_invoke(&mut self, ctx: &mut Ctx<Self>, inv: u8) {
            if !self.sent {
                self.sent = true;
                ctx.broadcast_others(inv);
            }
        }

        fn on_message(&mut self, ctx: &mut Ctx<Self>, _from: ProcessId, msg: u8) {
            ctx.output(msg);
        }
    }

    fn two_taggers() -> Vec<Tag> {
        vec![Tag { sent: false }, Tag { sent: false }]
    }

    #[test]
    fn explores_all_delivery_orders() {
        let report = explore(
            ExploreConfig::new(8),
            two_taggers,
            vec![Some(1), Some(2)],
            &FailurePattern::failure_free(2),
            NoDetector,
            |_, _| Ok(()),
        );
        assert!(report.violation.is_none());
        assert!(report.states_visited >= 6, "got {}", report.states_visited);
    }

    #[test]
    fn finds_a_planted_violation_with_counterexample() {
        // "Nobody ever outputs 2" is violated on the branch where p1's
        // broadcast is delivered.
        let report = explore(
            ExploreConfig::new(8),
            two_taggers,
            vec![Some(1), Some(2)],
            &FailurePattern::failure_free(2),
            NoDetector,
            |_, outputs| {
                if outputs.iter().any(|(_, o)| *o == 2) {
                    Err("saw a 2".into())
                } else {
                    Ok(())
                }
            },
        );
        let violation = report.violation.expect("must find the violation");
        assert_eq!(violation.message, "saw a 2");
        assert!(
            !violation.decisions.is_empty(),
            "counterexample decisions provided"
        );
        assert!(
            violation.schedule().contains(&ProcessId(1)),
            "p1 must have acted"
        );
    }

    #[test]
    fn violations_replay_to_the_same_message() {
        let safety = |_: &[Tag], outputs: &[(ProcessId, u8)]| {
            if outputs.iter().any(|(_, o)| *o == 2) {
                Err("saw a 2".to_string())
            } else {
                Ok(())
            }
        };
        let pattern = FailurePattern::failure_free(2);
        let report = explore(
            ExploreConfig::new(8),
            two_taggers,
            vec![Some(1), Some(2)],
            &pattern,
            NoDetector,
            safety,
        );
        let violation = report.violation.expect("must find the violation");
        let replayed = Replay::explore(violation.decisions.clone()).run(
            two_taggers,
            vec![Some(1), Some(2)],
            &pattern,
            NoDetector,
            safety,
        );
        assert_eq!(replayed, Err(violation.message));
    }

    #[test]
    fn replay_of_safe_decision_list_is_ok() {
        // A single p0 step cannot produce any output.
        let pattern = FailurePattern::failure_free(2);
        let replayed = Replay::explore(vec![(ProcessId(0), None)]).run(
            two_taggers,
            vec![Some(1), Some(2)],
            &pattern,
            NoDetector,
            |_, outputs| {
                if outputs.is_empty() {
                    Ok(())
                } else {
                    Err("unexpected output".into())
                }
            },
        );
        assert_eq!(replayed, Ok(()));
    }

    #[test]
    fn replay_tolerates_mutated_decision_lists() {
        // Out-of-range pids, crashed actors and wild message indices must
        // not panic — they are skipped or clamped deterministically.
        let pattern = FailurePattern::failure_free(2).with_crash(ProcessId(1), 0);
        let decisions = vec![
            (ProcessId(7), None),
            (ProcessId(1), Some(3)), // crashed: skipped
            (ProcessId(0), None),
            (ProcessId(0), Some(42)), // empty inbox: λ
        ];
        let replayed = Replay::explore(decisions).run(
            two_taggers,
            vec![Some(1), Some(2)],
            &pattern,
            NoDetector,
            |_, _| Ok(()),
        );
        assert_eq!(replayed, Ok(()));
    }

    #[test]
    fn crashed_processes_do_not_branch() {
        let report = explore(
            ExploreConfig::new(6),
            two_taggers,
            vec![Some(1), Some(2)],
            &FailurePattern::failure_free(2).with_crash(ProcessId(1), 0),
            NoDetector,
            |_, outputs| {
                // p1 never starts, so nobody can ever receive its 2.
                if outputs.iter().any(|(_, o)| *o == 2) {
                    Err("impossible output".into())
                } else {
                    Ok(())
                }
            },
        );
        assert!(report.violation.is_none());
    }

    #[test]
    fn depth_bound_is_reported() {
        let report = explore(
            ExploreConfig::new(2),
            two_taggers,
            vec![Some(1), Some(2)],
            &FailurePattern::failure_free(2),
            NoDetector,
            |_, _| Ok(()),
        );
        assert!(report.depth_bounded);
        assert!(!report.states_capped);
    }

    #[test]
    fn state_cap_is_reported_separately_from_depth_bound() {
        let report = explore(
            ExploreConfig::new(50).with_max_states(3),
            two_taggers,
            vec![Some(1), Some(2)],
            &FailurePattern::failure_free(2),
            NoDetector,
            |_, _| Ok(()),
        );
        assert!(report.states_visited <= 3);
        assert!(report.states_capped, "hitting the cap must be reported");
        assert!(
            !report.depth_bounded,
            "3 expansions cannot reach depth 50 — the cap must not \
             masquerade as a depth bound"
        );
    }

    #[test]
    fn thread_count_is_invisible_to_the_report() {
        // Acceptance shape: identical reports for 1, 2 and 4 threads on
        // both a safe and a planted-violation workload — byte-identical
        // modulo the informational `threads_used` field.
        for plant in [false, true] {
            let run = |threads: usize| {
                explore(
                    ExploreConfig::new(8).with_threads(threads),
                    two_taggers,
                    vec![Some(1), Some(2)],
                    &FailurePattern::failure_free(2),
                    NoDetector,
                    move |_, outputs: &[(ProcessId, u8)]| {
                        if plant && outputs.iter().any(|(_, o)| *o == 2) {
                            Err("saw a 2".into())
                        } else {
                            Ok(())
                        }
                    },
                )
            };
            let normalized = |mut r: ExploreReport| {
                r.threads_used = 0;
                format!("{r:?}")
            };
            let one = run(1);
            assert_eq!(one.threads_used, 1);
            assert_eq!(one.violation.is_some(), plant);
            for threads in [2, 4] {
                let many = run(threads);
                assert_eq!(many.threads_used, threads);
                assert!(one.same_semantics(&many), "{one:?} vs {many:?}");
                assert_eq!(normalized(one.clone()), normalized(many));
            }
        }
    }

    #[test]
    fn fingerprint_and_exact_key_produce_identical_reports() {
        let run = |hasher: Hasher| {
            let cfg = ExploreConfig::new(8).with_threads(2).with_hasher(hasher);
            let safety = |_: &[Tag], outputs: &[(ProcessId, u8)]| {
                if outputs.iter().any(|(_, o)| *o == 2) {
                    Err("saw a 2".to_string())
                } else {
                    Ok(())
                }
            };
            let pattern = FailurePattern::failure_free(2);
            explore(
                cfg,
                two_taggers,
                vec![Some(1), Some(2)],
                &pattern,
                NoDetector,
                safety,
            )
        };
        let fp = run(Hasher::Fingerprint);
        let exact = run(Hasher::ExactKey);
        assert!(fp.same_semantics(&exact), "{fp:?} vs {exact:?}");
    }

    #[test]
    fn observability_fields_are_populated() {
        let report = explore(
            ExploreConfig::new(8),
            two_taggers,
            vec![Some(1), Some(2)],
            &FailurePattern::failure_free(2),
            NoDetector,
            |_, _| Ok(()),
        );
        assert!(report.dedup_entries > 0);
        assert!(report.dedup_entries <= report.states_visited);
        assert!(report.dedup_hits > 0, "delivery orders converge on Tag");
        assert!(report.max_frontier_len >= 1);
        assert!(report.threads_used >= 1);
        assert!(!report.reduction_enabled, "reductions are opt-in");
        let json = report.to_json();
        for field in [
            "states_visited",
            "dedup_entries",
            "dedup_hits",
            "max_frontier_len",
            "threads_used",
            "violation",
            "states_pruned_dpor",
            "symmetry_canonical_hits",
            "reduction_enabled",
        ] {
            assert!(json.get(field).is_some(), "missing {field}");
        }

        let off = explore(
            ExploreConfig::new(8).with_dedup(false),
            two_taggers,
            vec![Some(1), Some(2)],
            &FailurePattern::failure_free(2),
            NoDetector,
            |_, _| Ok(()),
        );
        assert_eq!(off.dedup_entries, 0);
        assert_eq!(off.dedup_hits, 0);
    }

    #[test]
    fn shared_prefix_chains_drop_iteratively() {
        // A depth-200k chain must unlink without recursing (one stack
        // frame per node would overflow long before that).
        let mut decisions: Option<Arc<DecisionNode>> = None;
        let mut outputs: Option<Arc<OutputNode<Tag>>> = None;
        for i in 0..200_000usize {
            decisions = Some(Arc::new(DecisionNode {
                decision: (ProcessId(i % 2), None),
                parent: decisions,
            }));
            outputs = Some(Arc::new(OutputNode {
                output: (ProcessId(i % 2), i as u8),
                parent: outputs,
            }));
        }
        drop(decisions);
        drop(outputs);
    }

    /// Regression fixture for the depth-budget dedup bug: p0 must receive
    /// p1's hello and then tick three times to emit the forbidden output.
    /// DFS reaches the post-hello state first via a depth-wasting branch
    /// (p1 tick-cycles with period 2 before p0 starts); the old dedup then
    /// suppressed the shallower revisit that still had budget to violate.
    #[derive(Clone, Debug, Default)]
    struct DepthBug {
        ready: bool,
        c0: u8,
        c1: u8,
    }

    impl Protocol for DepthBug {
        type Msg = ();
        type Output = ();
        type Inv = ();
        type Fd = ();

        fn on_start(&mut self, ctx: &mut Ctx<Self>) {
            if ctx.me() == ProcessId(1) {
                ctx.send(ProcessId(0), ());
            }
        }

        fn on_message(&mut self, _ctx: &mut Ctx<Self>, _from: ProcessId, _msg: ()) {
            self.ready = true;
        }

        fn on_tick(&mut self, ctx: &mut Ctx<Self>) {
            if ctx.me() == ProcessId(0) {
                if self.ready {
                    self.c0 += 1;
                    if self.c0 == 3 {
                        ctx.output(());
                    }
                }
            } else {
                self.c1 = (self.c1 + 1) % 2;
            }
        }
    }

    fn depth_bug_report(cfg: ExploreConfig) -> ExploreReport {
        explore(
            cfg,
            || vec![DepthBug::default(), DepthBug::default()],
            vec![None, None],
            &FailurePattern::failure_free(2),
            NoDetector,
            |_, outputs| {
                if outputs.is_empty() {
                    Ok(())
                } else {
                    Err("forbidden output emitted".into())
                }
            },
        )
    }

    #[test]
    fn dedup_must_not_prune_shallower_revisits_with_remaining_budget() {
        // The violation needs depth 6 exactly; without dedup it is found.
        let no_dedup = depth_bug_report(ExploreConfig::new(6).with_dedup(false));
        assert!(
            no_dedup.violation.is_some(),
            "sanity: the violation is reachable within the depth bound"
        );
        // With dedup on, the first visit of the pre-violation state happens
        // at depth 4 (via p1's tick cycle); the depth-2 revisit must be
        // re-expanded, not pruned, or the violation is missed.
        let dedup = depth_bug_report(ExploreConfig::new(6));
        assert!(
            dedup.violation.is_some(),
            "dedup pruned a shallower revisit that still had budget \
             (the documented exhaustive-up-to-depth guarantee is broken)"
        );
    }

    #[test]
    fn weakened_budget_rule_still_reproduces_the_historical_bug() {
        // The fixture is only trustworthy if it *fails* when the budget
        // rule is deliberately weakened back to "prune any revisit"
        // (batch 1 pins the original DFS visit order the bug needs).
        let weakened =
            depth_bug_report(ExploreConfig::new(6).with_batch(1).with_budget_aware(false));
        assert!(
            weakened.violation.is_none(),
            "the weakened rule unexpectedly found the violation — the \
             regression fixture no longer exercises the budget rule"
        );
    }

    /// Regression fixture for the outputs-omitted-from-key dedup bug: both
    /// delivery orders of p0's two messages converge to identical
    /// `(procs, inboxes, started)` but different output histories.
    #[derive(Clone, Debug)]
    struct EmitBug;

    impl Protocol for EmitBug {
        type Msg = u8;
        type Output = u8;
        type Inv = ();
        type Fd = ();

        fn on_start(&mut self, ctx: &mut Ctx<Self>) {
            if ctx.me() == ProcessId(0) {
                ctx.send(ProcessId(1), 1);
                ctx.send(ProcessId(1), 2);
            }
        }

        fn on_message(&mut self, ctx: &mut Ctx<Self>, _from: ProcessId, msg: u8) {
            ctx.output(msg);
        }
    }

    fn emit_bug_safety(_: &[EmitBug], outputs: &[(ProcessId, u8)]) -> Result<(), String> {
        if outputs.len() == 2 && outputs[0].1 == 1 && outputs[1].1 == 2 {
            Err("delivered 1 before 2".to_string())
        } else {
            Ok(())
        }
    }

    #[test]
    fn dedup_key_must_distinguish_output_histories() {
        // DFS explores the "deliver 2 first" order first, so the branch
        // with output history [1, 2] is the one the old dedup merged away
        // before the predicate ever saw it.
        let report = explore(
            ExploreConfig::new(6),
            || vec![EmitBug, EmitBug],
            vec![None, None],
            &FailurePattern::failure_free(2),
            NoDetector,
            emit_bug_safety,
        );
        let violation = report
            .violation
            .expect("dedup merged two states with different output histories");
        assert_eq!(violation.message, "delivered 1 before 2");
        // Both orders sit at the same depth, so this is caught only by the
        // outputs component of the key — and the counterexample replays.
        let replayed = Replay::explore(violation.decisions.clone()).run(
            || vec![EmitBug, EmitBug],
            vec![None, None],
            &FailurePattern::failure_free(2),
            NoDetector,
            emit_bug_safety,
        );
        assert_eq!(replayed, Err(violation.message));
    }

    /// A deliberately output-blind key — the historical EmitBug dedup,
    /// expressed as a [`StateHasher`] to prove the fixture still bites on
    /// a weakened key and passes on the real fingerprint path.
    struct OutputBlindHasher;

    impl StateHasher for OutputBlindHasher {
        type Key = String;

        fn key<P: Protocol + Debug>(
            &self,
            procs: &[P],
            inboxes: &[Vec<(ProcessId, P::Msg)>],
            started: &[bool],
            _outputs: &[(ProcessId, P::Output)],
        ) -> String {
            format!("{procs:?}|{inboxes:?}|{started:?}")
        }
    }

    #[test]
    fn output_blind_hasher_still_reproduces_the_historical_bug() {
        let report = explore_custom(
            ExploreConfig::new(6).with_batch(1),
            OutputBlindHasher,
            || vec![EmitBug, EmitBug],
            vec![None, None],
            &FailurePattern::failure_free(2),
            NoDetector,
            emit_bug_safety,
        );
        assert!(
            report.violation.is_none(),
            "the output-blind key unexpectedly found the violation — the \
             regression fixture no longer exercises the outputs key component"
        );
    }

    /// Invocation broadcasts to the others; deliveries are absorbed
    /// silently — so two deliveries at different processes are genuinely
    /// independent. Declares precise footprints and full symmetry.
    #[derive(Clone, Debug, Default)]
    struct Quiet {
        seen: Vec<u8>,
    }

    impl Protocol for Quiet {
        type Msg = u8;
        type Output = u8;
        type Inv = u8;
        type Fd = ();

        fn on_invoke(&mut self, ctx: &mut Ctx<Self>, inv: u8) {
            ctx.broadcast_others(inv);
        }

        fn on_message(&mut self, _ctx: &mut Ctx<Self>, _from: ProcessId, msg: u8) {
            self.seen.push(msg);
        }

        fn footprint(&self, me: ProcessId, n: usize, step: StepKind<'_, Self>) -> Footprint {
            match step {
                StepKind::Start { inv: Some(_) } => Footprint::local().sends_to_others(n, me),
                StepKind::Start { inv: None } | StepKind::Tick | StepKind::Deliver { .. } => {
                    Footprint::local()
                }
            }
        }

        fn symmetry(_n: usize) -> Symmetry {
            Symmetry::Full
        }
    }

    fn quiet_explore(cfg: ExploreConfig, invs: Vec<Option<u8>>) -> ExploreReport {
        let n = invs.len();
        explore(
            cfg,
            move || (0..n).map(|_| Quiet::default()).collect(),
            invs,
            &FailurePattern::failure_free(n),
            NoDetector,
            |_, _| Ok(()),
        )
    }

    #[test]
    fn dpor_with_opaque_footprints_is_a_no_op() {
        // Tag keeps the default `Footprint::opaque`, so every step pair is
        // dependent and sleep sets never fill: same space, nothing pruned.
        let run = |dpor: bool| {
            explore(
                ExploreConfig::new(8).with_dpor(dpor),
                two_taggers,
                vec![Some(1), Some(2)],
                &FailurePattern::failure_free(2),
                NoDetector,
                |_, _| Ok(()),
            )
        };
        let base = run(false);
        let dpor = run(true);
        assert_eq!(dpor.states_pruned_dpor, 0);
        assert_eq!(dpor.states_visited, base.states_visited);
        assert_eq!(dpor.violation, base.violation);
        assert!(dpor.reduction_enabled);
    }

    #[test]
    fn trivial_symmetry_is_a_no_op() {
        // Tag keeps the default `Symmetry::Trivial`: only the identity is
        // ever tried, so canonicalization can never hit.
        let run = |sym: bool| {
            explore(
                ExploreConfig::new(8).with_symmetry(sym),
                two_taggers,
                vec![Some(1), Some(1)],
                &FailurePattern::failure_free(2),
                NoDetector,
                |_, _| Ok(()),
            )
        };
        let base = run(false);
        let sym = run(true);
        assert_eq!(sym.symmetry_canonical_hits, 0);
        assert_eq!(sym.states_visited, base.states_visited);
        assert!(sym.reduction_enabled);
    }

    #[test]
    fn precise_footprints_let_dpor_prune() {
        // Dedup off isolates the sleep sets' own effect: with it on, a
        // pruned interleaving can also *weaken* a cover (smaller sleep
        // sets cover fewer revisits), so raw interleavings — not the
        // dedup'd state count — are the honest measure here.
        let base = quiet_explore(
            ExploreConfig::new(10).with_dedup(false),
            vec![Some(1), Some(2)],
        );
        let dpor = quiet_explore(
            ExploreConfig::new(10).with_dedup(false).with_dpor(true),
            vec![Some(1), Some(2)],
        );
        assert!(dpor.states_pruned_dpor > 0, "{dpor:?}");
        assert!(dpor.states_visited < base.states_visited);
        assert_eq!(dpor.violation, base.violation);
    }

    #[test]
    fn symmetric_scenarios_canonicalize_asymmetric_ones_do_not() {
        // Equal invocations: swapping the two processes maps reachable
        // states onto each other, so canonicalization collapses mirrored
        // branches.
        let sym = quiet_explore(
            ExploreConfig::new(10).with_symmetry(true),
            vec![Some(7), Some(7)],
        );
        let base = quiet_explore(ExploreConfig::new(10), vec![Some(7), Some(7)]);
        assert!(sym.symmetry_canonical_hits > 0, "{sym:?}");
        assert!(sym.states_visited <= base.states_visited);
        assert_eq!(sym.violation, base.violation);

        // Distinct invocations: no non-identity permutation preserves the
        // invocation vector, so the protocol's Full group is cut down to
        // the identity and canonicalization never fires.
        let asym = quiet_explore(
            ExploreConfig::new(10).with_symmetry(true),
            vec![Some(1), Some(2)],
        );
        assert_eq!(asym.symmetry_canonical_hits, 0, "{asym:?}");
    }
}
