//! Exhaustive schedule exploration — a bounded model checker for small
//! systems.
//!
//! Random schedules sample the paper's "for all runs" quantifier;
//! [`explore`] *enumerates* it, bounded: starting from the initial
//! configuration it branches over every choice the adversary has at each
//! step — which alive process acts, and which of its pending messages it
//! receives (λ only when its inbox is empty, so runs cannot stutter
//! forever) — and evaluates a safety predicate in every reachable state.
//!
//! The exploration is sound for safety bug-hunting (every explored
//! interleaving is an admissible prefix of a fair run) and exhaustive up
//! to the depth bound over message-delivery orders. Liveness is out of
//! scope by construction.
//!
//! ```
//! use wfd_sim::{explore, Ctx, ExploreConfig, FailurePattern, NoDetector,
//!               ProcessId, Protocol};
//!
//! #[derive(Clone, Debug)]
//! struct Flood;
//! impl Protocol for Flood {
//!     type Msg = ();
//!     type Output = ();
//!     type Inv = ();
//!     type Fd = ();
//!     fn on_start(&mut self, ctx: &mut Ctx<Self>) { ctx.broadcast_others(()); }
//!     fn on_message(&mut self, _: &mut Ctx<Self>, _: ProcessId, _: ()) {}
//! }
//!
//! let report = explore(
//!     ExploreConfig::new(6),
//!     || vec![Flood, Flood],
//!     vec![None, None],
//!     &FailurePattern::failure_free(2),
//!     NoDetector,
//!     |_procs, _outputs| Ok(()),
//! );
//! assert!(report.violation.is_none());
//! assert!(report.states_visited > 2);
//! ```

use crate::failure::FailurePattern;
use crate::id::{ProcessId, Time};
use crate::oracle::FdOracle;
use crate::protocol::{Ctx, Protocol};
use std::collections::HashSet;
use std::fmt::Debug;

/// Bounds for an exploration.
#[derive(Clone, Copy, Debug)]
pub struct ExploreConfig {
    /// Maximum schedule depth (steps along one branch).
    pub max_depth: usize,
    /// Cap on distinct states visited (safety net for the caller).
    pub max_states: usize,
    /// Deduplicate states by their `Debug` rendering (costs memory,
    /// collapses converging interleavings).
    pub dedup: bool,
}

impl ExploreConfig {
    /// Defaults: the given depth, one million states, dedup on.
    pub fn new(max_depth: usize) -> Self {
        ExploreConfig {
            max_depth,
            max_states: 1_000_000,
            dedup: true,
        }
    }

    /// Override the state cap.
    pub fn with_max_states(mut self, cap: usize) -> Self {
        self.max_states = cap;
        self
    }
}

/// Outcome of an exploration.
#[derive(Clone, Debug)]
pub struct ExploreReport {
    /// Distinct states visited (post-dedup).
    pub states_visited: usize,
    /// Whether some branch hit the depth bound (the space is bigger than
    /// what was explored).
    pub depth_bounded: bool,
    /// The first safety violation found: the predicate's message plus the
    /// schedule (process ids in step order) that produced it.
    pub violation: Option<(String, Vec<ProcessId>)>,
}

#[derive(Clone)]
struct State<P: Protocol> {
    procs: Vec<P>,
    inboxes: Vec<Vec<(ProcessId, P::Msg)>>,
    started: Vec<bool>,
    pending_inv: Vec<Option<P::Inv>>,
    outputs: Vec<(ProcessId, P::Output)>,
    depth: usize,
    schedule: Vec<ProcessId>,
}

/// Exhaustively explore message-delivery interleavings.
///
/// * `make_procs` builds the initial configuration (fresh per call).
/// * `invocations[p]` is consumed at `p`'s first step (with `on_start`).
/// * `detector` must be a pure function of `(p, t)` (as all oracles are);
///   the step's time is its depth.
/// * `safety` is evaluated in every reachable state over the protocol
///   states and all outputs emitted so far; returning `Err` stops the
///   exploration with a counterexample schedule.
pub fn explore<P, D>(
    cfg: ExploreConfig,
    make_procs: impl Fn() -> Vec<P>,
    invocations: Vec<Option<P::Inv>>,
    pattern: &FailurePattern,
    mut detector: D,
    mut safety: impl FnMut(&[P], &[(ProcessId, P::Output)]) -> Result<(), String>,
) -> ExploreReport
where
    P: Protocol + Clone + Debug,
    P::Msg: PartialEq,
    D: FdOracle<Value = P::Fd>,
{
    let procs = make_procs();
    let n = procs.len();
    assert_eq!(invocations.len(), n, "one invocation slot per process");
    let root = State::<P> {
        procs,
        inboxes: vec![Vec::new(); n],
        started: vec![false; n],
        pending_inv: invocations,
        outputs: Vec::new(),
        depth: 0,
        schedule: Vec::new(),
    };

    let mut seen: HashSet<String> = HashSet::new();
    let mut stack = vec![root];
    let mut states_visited = 0usize;
    let mut depth_bounded = false;

    while let Some(state) = stack.pop() {
        if states_visited >= cfg.max_states {
            depth_bounded = true;
            break;
        }
        if cfg.dedup {
            let key = format!("{:?}|{:?}|{:?}", state.procs, state.inboxes, state.started);
            if !seen.insert(key) {
                continue;
            }
        }
        states_visited += 1;

        if let Err(msg) = safety(&state.procs, &state.outputs) {
            return ExploreReport {
                states_visited,
                depth_bounded,
                violation: Some((msg, state.schedule)),
            };
        }
        if state.depth >= cfg.max_depth {
            depth_bounded = true;
            continue;
        }

        let t = state.depth as Time;
        for p in ProcessId::all(n) {
            if pattern.is_crashed(p, t) {
                continue;
            }
            // Branch over the step kinds available to p.
            // First step (start + invocation) and λ steps are both the
            // single `None` choice; otherwise branch over every pending
            // message.
            let choices: Vec<Option<usize>> =
                if !state.started[p.index()] || state.inboxes[p.index()].is_empty() {
                    vec![None]
                } else {
                    (0..state.inboxes[p.index()].len()).map(Some).collect()
                };
            for choice in choices {
                let mut next = state.clone();
                next.depth += 1;
                next.schedule.push(p);
                let fd = detector.query(p, t);
                let mut ctx = Ctx::<P>::detached(p, n, t, fd);
                if !next.started[p.index()] {
                    next.started[p.index()] = true;
                    next.procs[p.index()].on_start(&mut ctx);
                    if let Some(inv) = next.pending_inv[p.index()].take() {
                        next.procs[p.index()].on_invoke(&mut ctx, inv);
                    }
                } else {
                    match choice {
                        Some(i) => {
                            let (from, msg) = next.inboxes[p.index()].remove(i);
                            next.procs[p.index()].on_message(&mut ctx, from, msg);
                        }
                        None => next.procs[p.index()].on_tick(&mut ctx),
                    }
                }
                for (to, msg) in ctx.take_sends() {
                    if !pattern.is_crashed(to, t) {
                        next.inboxes[to.index()].push((p, msg));
                    }
                }
                for out in ctx.take_outputs() {
                    next.outputs.push((p, out));
                }
                stack.push(next);
            }
        }
    }

    ExploreReport {
        states_visited,
        depth_bounded,
        violation: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::NoDetector;

    /// Each process outputs every message payload it receives.
    #[derive(Clone, Debug)]
    struct Tag {
        sent: bool,
    }

    impl Protocol for Tag {
        type Msg = u8;
        type Output = u8;
        type Inv = u8;
        type Fd = ();

        fn on_invoke(&mut self, ctx: &mut Ctx<Self>, inv: u8) {
            if !self.sent {
                self.sent = true;
                ctx.broadcast_others(inv);
            }
        }

        fn on_message(&mut self, ctx: &mut Ctx<Self>, _from: ProcessId, msg: u8) {
            ctx.output(msg);
        }
    }

    fn two_taggers() -> Vec<Tag> {
        vec![Tag { sent: false }, Tag { sent: false }]
    }

    #[test]
    fn explores_all_delivery_orders() {
        let report = explore(
            ExploreConfig::new(8),
            two_taggers,
            vec![Some(1), Some(2)],
            &FailurePattern::failure_free(2),
            NoDetector,
            |_, _| Ok(()),
        );
        assert!(report.violation.is_none());
        assert!(report.states_visited >= 6, "got {}", report.states_visited);
    }

    #[test]
    fn finds_a_planted_violation_with_counterexample() {
        // "Nobody ever outputs 2" is violated on the branch where p1's
        // broadcast is delivered.
        let report = explore(
            ExploreConfig::new(8),
            two_taggers,
            vec![Some(1), Some(2)],
            &FailurePattern::failure_free(2),
            NoDetector,
            |_, outputs| {
                if outputs.iter().any(|(_, o)| *o == 2) {
                    Err("saw a 2".into())
                } else {
                    Ok(())
                }
            },
        );
        let (msg, schedule) = report.violation.expect("must find the violation");
        assert_eq!(msg, "saw a 2");
        assert!(!schedule.is_empty(), "counterexample schedule provided");
        assert!(schedule.contains(&ProcessId(1)), "p1 must have acted");
    }

    #[test]
    fn crashed_processes_do_not_branch() {
        let report = explore(
            ExploreConfig::new(6),
            two_taggers,
            vec![Some(1), Some(2)],
            &FailurePattern::failure_free(2).with_crash(ProcessId(1), 0),
            NoDetector,
            |_, outputs| {
                // p1 never starts, so nobody can ever receive its 2.
                if outputs.iter().any(|(_, o)| *o == 2) {
                    Err("impossible output".into())
                } else {
                    Ok(())
                }
            },
        );
        assert!(report.violation.is_none());
    }

    #[test]
    fn depth_bound_is_reported() {
        let report = explore(
            ExploreConfig::new(2),
            two_taggers,
            vec![Some(1), Some(2)],
            &FailurePattern::failure_free(2),
            NoDetector,
            |_, _| Ok(()),
        );
        assert!(report.depth_bounded);
    }

    #[test]
    fn state_cap_is_respected() {
        let report = explore(
            ExploreConfig::new(50).with_max_states(3),
            two_taggers,
            vec![Some(1), Some(2)],
            &FailurePattern::failure_free(2),
            NoDetector,
            |_, _| Ok(()),
        );
        assert!(report.states_visited <= 3);
        assert!(report.depth_bounded, "hitting the cap must be reported");
    }
}
