//! Exhaustive schedule exploration — a bounded model checker for small
//! systems.
//!
//! Random schedules sample the paper's "for all runs" quantifier;
//! [`explore`] *enumerates* it, bounded: starting from the initial
//! configuration it branches over every choice the adversary has at each
//! step — which alive process acts, and which of its pending messages it
//! receives (λ only when its inbox is empty, so runs cannot stutter
//! forever) — and evaluates a safety predicate in every reachable state.
//!
//! The exploration is sound for safety bug-hunting (every explored
//! interleaving is an admissible prefix of a fair run) and exhaustive up
//! to the depth bound over message-delivery orders. Liveness is out of
//! scope by construction.
//!
//! A violation comes back as an [`ExploreViolation`] carrying the full
//! decision list `(actor, message choice)` of the counterexample branch;
//! [`replay_explore`] re-executes such a list deterministically, and
//! [`crate::repro`] packages it as a portable artifact.
//!
//! ```
//! use wfd_sim::{explore, Ctx, ExploreConfig, FailurePattern, NoDetector,
//!               ProcessId, Protocol};
//!
//! #[derive(Clone, Debug)]
//! struct Flood;
//! impl Protocol for Flood {
//!     type Msg = ();
//!     type Output = ();
//!     type Inv = ();
//!     type Fd = ();
//!     fn on_start(&mut self, ctx: &mut Ctx<Self>) { ctx.broadcast_others(()); }
//!     fn on_message(&mut self, _: &mut Ctx<Self>, _: ProcessId, _: ()) {}
//! }
//!
//! let report = explore(
//!     ExploreConfig::new(6),
//!     || vec![Flood, Flood],
//!     vec![None, None],
//!     &FailurePattern::failure_free(2),
//!     NoDetector,
//!     |_procs, _outputs| Ok(()),
//! );
//! assert!(report.violation.is_none());
//! assert!(report.states_visited > 2);
//! ```

use crate::failure::FailurePattern;
use crate::id::{ProcessId, Time};
use crate::oracle::FdOracle;
use crate::protocol::{Ctx, Protocol};
use std::collections::HashMap;
use std::fmt::Debug;

/// Bounds for an exploration.
#[derive(Clone, Copy, Debug)]
pub struct ExploreConfig {
    /// Maximum schedule depth (steps along one branch).
    pub max_depth: usize,
    /// Cap on state expansions (safety net for the caller).
    pub max_states: usize,
    /// Deduplicate states by their `Debug` rendering (costs memory,
    /// collapses converging interleavings). A state is pruned only when it
    /// was already expanded at an equal-or-lower depth *with the same
    /// output history*, so dedup never hides a reachable violation within
    /// the depth bound.
    pub dedup: bool,
}

impl ExploreConfig {
    /// Defaults: the given depth, one million states, dedup on.
    pub fn new(max_depth: usize) -> Self {
        ExploreConfig {
            max_depth,
            max_states: 1_000_000,
            dedup: true,
        }
    }

    /// Override the state cap.
    pub fn with_max_states(mut self, cap: usize) -> Self {
        self.max_states = cap;
        self
    }

    /// Override deduplication (on by default).
    pub fn with_dedup(mut self, dedup: bool) -> Self {
        self.dedup = dedup;
        self
    }
}

/// One exploration step: which process acted, and which of its pending
/// messages it received (`None` ⇒ the first step of the process or a λ
/// step; `Some(i)` ⇒ the message at inbox position `i` at that moment).
pub type ExploreDecision = (ProcessId, Option<usize>);

/// A safety violation found by [`explore`]: the predicate's message plus
/// the complete decision list of the branch that produced it.
#[derive(Clone, Debug)]
pub struct ExploreViolation {
    /// The safety predicate's error message.
    pub message: String,
    /// The counterexample branch, one `(actor, message choice)` per step.
    /// Replayable with [`replay_explore`].
    pub decisions: Vec<ExploreDecision>,
}

impl ExploreViolation {
    /// The actor sequence of the counterexample (the legacy, ambiguous
    /// rendering — prefer [`ExploreViolation::decisions`]).
    pub fn schedule(&self) -> Vec<ProcessId> {
        self.decisions.iter().map(|(p, _)| *p).collect()
    }
}

/// Outcome of an exploration.
#[derive(Clone, Debug)]
pub struct ExploreReport {
    /// States expanded (post-dedup; a state revisited at a strictly lower
    /// depth is re-expanded and counted again).
    pub states_visited: usize,
    /// Whether some branch hit the depth bound (the space is bigger than
    /// what was explored).
    pub depth_bounded: bool,
    /// Whether the exploration stopped early because `max_states` was
    /// reached (the space was truncated *independently* of the depth
    /// bound).
    pub states_capped: bool,
    /// The first safety violation found.
    pub violation: Option<ExploreViolation>,
}

#[derive(Clone)]
struct State<P: Protocol> {
    procs: Vec<P>,
    inboxes: Vec<Vec<(ProcessId, P::Msg)>>,
    started: Vec<bool>,
    pending_inv: Vec<Option<P::Inv>>,
    outputs: Vec<(ProcessId, P::Output)>,
    depth: usize,
    decisions: Vec<ExploreDecision>,
}

/// Apply one step to `state`, producing the successor configuration.
///
/// `choice` follows the [`ExploreDecision`] convention: `None` for a first
/// step or λ, `Some(i)` for delivery of the message at inbox position `i`.
/// Out-of-range choices are clamped deterministically (oldest message), so
/// shrunk decision lists still define a unique run.
fn apply_step<P, D>(
    state: &State<P>,
    p: ProcessId,
    choice: Option<usize>,
    pattern: &FailurePattern,
    detector: &mut D,
    n: usize,
) -> State<P>
where
    P: Protocol + Clone,
    D: FdOracle<Value = P::Fd>,
{
    let t = state.depth as Time;
    let mut next = state.clone();
    next.depth += 1;
    let fd = detector.query(p, t);
    let mut ctx = Ctx::<P>::detached(p, n, t, fd);
    if !next.started[p.index()] {
        next.started[p.index()] = true;
        next.decisions.push((p, None));
        next.procs[p.index()].on_start(&mut ctx);
        if let Some(inv) = next.pending_inv[p.index()].take() {
            next.procs[p.index()].on_invoke(&mut ctx, inv);
        }
    } else {
        let inbox_len = next.inboxes[p.index()].len();
        match choice {
            Some(i) if inbox_len > 0 => {
                let i = i.min(inbox_len - 1);
                next.decisions.push((p, Some(i)));
                let (from, msg) = next.inboxes[p.index()].remove(i);
                next.procs[p.index()].on_message(&mut ctx, from, msg);
            }
            _ => {
                next.decisions.push((p, None));
                next.procs[p.index()].on_tick(&mut ctx);
            }
        }
    }
    for (to, msg) in ctx.take_sends() {
        if !pattern.is_crashed(to, t) {
            next.inboxes[to.index()].push((p, msg));
        }
    }
    for out in ctx.take_outputs() {
        next.outputs.push((p, out));
    }
    next
}

fn initial_state<P: Protocol>(procs: Vec<P>, invocations: Vec<Option<P::Inv>>) -> State<P> {
    let n = procs.len();
    assert_eq!(invocations.len(), n, "one invocation slot per process");
    State {
        procs,
        inboxes: vec![Vec::new(); n],
        started: vec![false; n],
        pending_inv: invocations,
        outputs: Vec::new(),
        depth: 0,
        decisions: Vec::new(),
    }
}

/// Exhaustively explore message-delivery interleavings.
///
/// * `make_procs` builds the initial configuration (fresh per call).
/// * `invocations[p]` is consumed at `p`'s first step (with `on_start`).
/// * `detector` must be a pure function of `(p, t)` (as all oracles are);
///   the step's time is its depth.
/// * `safety` is evaluated in every reachable state over the protocol
///   states and all outputs emitted so far; returning `Err` stops the
///   exploration with a replayable counterexample.
pub fn explore<P, D>(
    cfg: ExploreConfig,
    make_procs: impl Fn() -> Vec<P>,
    invocations: Vec<Option<P::Inv>>,
    pattern: &FailurePattern,
    mut detector: D,
    mut safety: impl FnMut(&[P], &[(ProcessId, P::Output)]) -> Result<(), String>,
) -> ExploreReport
where
    P: Protocol + Clone + Debug,
    P::Msg: PartialEq,
    D: FdOracle<Value = P::Fd>,
{
    let root = initial_state(make_procs(), invocations);
    let n = root.procs.len();

    // Dedup map: state key → lowest depth at which it was expanded. A
    // revisit is pruned only when the previous expansion had an
    // equal-or-lower depth (i.e. at least as much remaining budget); a
    // strictly shallower revisit re-expands, because it can reach states
    // the deeper visit could not before hitting `max_depth`. The key
    // includes the output history: the safety predicate reads outputs, so
    // two branches that converge in `(procs, inboxes, started)` but
    // emitted different outputs are *different* states to the checker.
    // (`pending_inv` is determined by `started` plus the fixed initial
    // invocation vector, so it needs no key component.)
    let mut seen: HashMap<String, usize> = HashMap::new();
    let mut stack = vec![root];
    let mut states_visited = 0usize;
    let mut depth_bounded = false;
    let mut states_capped = false;

    while let Some(state) = stack.pop() {
        if states_visited >= cfg.max_states {
            states_capped = true;
            break;
        }
        if cfg.dedup {
            let key = format!(
                "{:?}|{:?}|{:?}|{:?}",
                state.procs, state.inboxes, state.started, state.outputs
            );
            match seen.get_mut(&key) {
                Some(prev_depth) if *prev_depth <= state.depth => continue,
                Some(prev_depth) => *prev_depth = state.depth,
                None => {
                    seen.insert(key, state.depth);
                }
            }
        }
        states_visited += 1;

        if let Err(message) = safety(&state.procs, &state.outputs) {
            return ExploreReport {
                states_visited,
                depth_bounded,
                states_capped,
                violation: Some(ExploreViolation {
                    message,
                    decisions: state.decisions,
                }),
            };
        }
        if state.depth >= cfg.max_depth {
            depth_bounded = true;
            continue;
        }

        let t = state.depth as Time;
        for p in ProcessId::all(n) {
            if pattern.is_crashed(p, t) {
                continue;
            }
            // Branch over the step kinds available to p.
            // First step (start + invocation) and λ steps are both the
            // single `None` choice; otherwise branch over every pending
            // message.
            let choices: Vec<Option<usize>> =
                if !state.started[p.index()] || state.inboxes[p.index()].is_empty() {
                    vec![None]
                } else {
                    (0..state.inboxes[p.index()].len()).map(Some).collect()
                };
            for choice in choices {
                stack.push(apply_step(&state, p, choice, pattern, &mut detector, n));
            }
        }
    }

    ExploreReport {
        states_visited,
        depth_bounded,
        states_capped,
        violation: None,
    }
}

/// Re-execute one decision list under [`explore`]'s step semantics.
///
/// Runs the single branch described by `decisions` from the initial
/// configuration, evaluating `safety` in the initial state and after every
/// step, and returns the first violation (`Err`) or `Ok(())` if the branch
/// completes safely. Replaying the decision list of an
/// [`ExploreViolation`] over the same inputs reproduces its violation
/// message exactly.
///
/// The replay is deterministic even for *mutated* decision lists (as
/// produced by [`crate::shrink`]): steps by crashed processes are skipped
/// and out-of-range message choices are clamped to the oldest message.
pub fn replay_explore<P, D>(
    decisions: &[ExploreDecision],
    make_procs: impl Fn() -> Vec<P>,
    invocations: Vec<Option<P::Inv>>,
    pattern: &FailurePattern,
    mut detector: D,
    mut safety: impl FnMut(&[P], &[(ProcessId, P::Output)]) -> Result<(), String>,
) -> Result<(), String>
where
    P: Protocol + Clone + Debug,
    D: FdOracle<Value = P::Fd>,
{
    let mut state = initial_state(make_procs(), invocations);
    let n = state.procs.len();
    safety(&state.procs, &state.outputs)?;
    for &(p, choice) in decisions {
        if p.index() >= n || pattern.is_crashed(p, state.depth as Time) {
            continue;
        }
        state = apply_step(&state, p, choice, pattern, &mut detector, n);
        safety(&state.procs, &state.outputs)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::NoDetector;

    /// Each process outputs every message payload it receives.
    #[derive(Clone, Debug)]
    struct Tag {
        sent: bool,
    }

    impl Protocol for Tag {
        type Msg = u8;
        type Output = u8;
        type Inv = u8;
        type Fd = ();

        fn on_invoke(&mut self, ctx: &mut Ctx<Self>, inv: u8) {
            if !self.sent {
                self.sent = true;
                ctx.broadcast_others(inv);
            }
        }

        fn on_message(&mut self, ctx: &mut Ctx<Self>, _from: ProcessId, msg: u8) {
            ctx.output(msg);
        }
    }

    fn two_taggers() -> Vec<Tag> {
        vec![Tag { sent: false }, Tag { sent: false }]
    }

    #[test]
    fn explores_all_delivery_orders() {
        let report = explore(
            ExploreConfig::new(8),
            two_taggers,
            vec![Some(1), Some(2)],
            &FailurePattern::failure_free(2),
            NoDetector,
            |_, _| Ok(()),
        );
        assert!(report.violation.is_none());
        assert!(report.states_visited >= 6, "got {}", report.states_visited);
    }

    #[test]
    fn finds_a_planted_violation_with_counterexample() {
        // "Nobody ever outputs 2" is violated on the branch where p1's
        // broadcast is delivered.
        let report = explore(
            ExploreConfig::new(8),
            two_taggers,
            vec![Some(1), Some(2)],
            &FailurePattern::failure_free(2),
            NoDetector,
            |_, outputs| {
                if outputs.iter().any(|(_, o)| *o == 2) {
                    Err("saw a 2".into())
                } else {
                    Ok(())
                }
            },
        );
        let violation = report.violation.expect("must find the violation");
        assert_eq!(violation.message, "saw a 2");
        assert!(
            !violation.decisions.is_empty(),
            "counterexample decisions provided"
        );
        assert!(
            violation.schedule().contains(&ProcessId(1)),
            "p1 must have acted"
        );
    }

    #[test]
    fn violations_replay_to_the_same_message() {
        let safety = |_: &[Tag], outputs: &[(ProcessId, u8)]| {
            if outputs.iter().any(|(_, o)| *o == 2) {
                Err("saw a 2".to_string())
            } else {
                Ok(())
            }
        };
        let pattern = FailurePattern::failure_free(2);
        let report = explore(
            ExploreConfig::new(8),
            two_taggers,
            vec![Some(1), Some(2)],
            &pattern,
            NoDetector,
            safety,
        );
        let violation = report.violation.expect("must find the violation");
        let replayed = replay_explore(
            &violation.decisions,
            two_taggers,
            vec![Some(1), Some(2)],
            &pattern,
            NoDetector,
            safety,
        );
        assert_eq!(replayed, Err(violation.message));
    }

    #[test]
    fn replay_of_safe_decision_list_is_ok() {
        // A single p0 step cannot produce any output.
        let pattern = FailurePattern::failure_free(2);
        let replayed = replay_explore(
            &[(ProcessId(0), None)],
            two_taggers,
            vec![Some(1), Some(2)],
            &pattern,
            NoDetector,
            |_, outputs| {
                if outputs.is_empty() {
                    Ok(())
                } else {
                    Err("unexpected output".into())
                }
            },
        );
        assert_eq!(replayed, Ok(()));
    }

    #[test]
    fn replay_tolerates_mutated_decision_lists() {
        // Out-of-range pids, crashed actors and wild message indices must
        // not panic — they are skipped or clamped deterministically.
        let pattern = FailurePattern::failure_free(2).with_crash(ProcessId(1), 0);
        let decisions = vec![
            (ProcessId(7), None),
            (ProcessId(1), Some(3)), // crashed: skipped
            (ProcessId(0), None),
            (ProcessId(0), Some(42)), // empty inbox: λ
        ];
        let replayed = replay_explore(
            &decisions,
            two_taggers,
            vec![Some(1), Some(2)],
            &pattern,
            NoDetector,
            |_, _| Ok(()),
        );
        assert_eq!(replayed, Ok(()));
    }

    #[test]
    fn crashed_processes_do_not_branch() {
        let report = explore(
            ExploreConfig::new(6),
            two_taggers,
            vec![Some(1), Some(2)],
            &FailurePattern::failure_free(2).with_crash(ProcessId(1), 0),
            NoDetector,
            |_, outputs| {
                // p1 never starts, so nobody can ever receive its 2.
                if outputs.iter().any(|(_, o)| *o == 2) {
                    Err("impossible output".into())
                } else {
                    Ok(())
                }
            },
        );
        assert!(report.violation.is_none());
    }

    #[test]
    fn depth_bound_is_reported() {
        let report = explore(
            ExploreConfig::new(2),
            two_taggers,
            vec![Some(1), Some(2)],
            &FailurePattern::failure_free(2),
            NoDetector,
            |_, _| Ok(()),
        );
        assert!(report.depth_bounded);
        assert!(!report.states_capped);
    }

    #[test]
    fn state_cap_is_reported_separately_from_depth_bound() {
        let report = explore(
            ExploreConfig::new(50).with_max_states(3),
            two_taggers,
            vec![Some(1), Some(2)],
            &FailurePattern::failure_free(2),
            NoDetector,
            |_, _| Ok(()),
        );
        assert!(report.states_visited <= 3);
        assert!(report.states_capped, "hitting the cap must be reported");
        assert!(
            !report.depth_bounded,
            "3 expansions cannot reach depth 50 — the cap must not \
             masquerade as a depth bound"
        );
    }

    /// Regression fixture for the depth-budget dedup bug: p0 must receive
    /// p1's hello and then tick three times to emit the forbidden output.
    /// DFS reaches the post-hello state first via a depth-wasting branch
    /// (p1 tick-cycles with period 2 before p0 starts); the old dedup then
    /// suppressed the shallower revisit that still had budget to violate.
    #[derive(Clone, Debug, Default)]
    struct DepthBug {
        ready: bool,
        c0: u8,
        c1: u8,
    }

    impl Protocol for DepthBug {
        type Msg = ();
        type Output = ();
        type Inv = ();
        type Fd = ();

        fn on_start(&mut self, ctx: &mut Ctx<Self>) {
            if ctx.me() == ProcessId(1) {
                ctx.send(ProcessId(0), ());
            }
        }

        fn on_message(&mut self, _ctx: &mut Ctx<Self>, _from: ProcessId, _msg: ()) {
            self.ready = true;
        }

        fn on_tick(&mut self, ctx: &mut Ctx<Self>) {
            if ctx.me() == ProcessId(0) {
                if self.ready {
                    self.c0 += 1;
                    if self.c0 == 3 {
                        ctx.output(());
                    }
                }
            } else {
                self.c1 = (self.c1 + 1) % 2;
            }
        }
    }

    fn depth_bug_report(dedup: bool) -> ExploreReport {
        explore(
            ExploreConfig::new(6).with_dedup(dedup),
            || vec![DepthBug::default(), DepthBug::default()],
            vec![None, None],
            &FailurePattern::failure_free(2),
            NoDetector,
            |_, outputs| {
                if outputs.is_empty() {
                    Ok(())
                } else {
                    Err("forbidden output emitted".into())
                }
            },
        )
    }

    #[test]
    fn dedup_must_not_prune_shallower_revisits_with_remaining_budget() {
        // The violation needs depth 6 exactly; without dedup it is found.
        let no_dedup = depth_bug_report(false);
        assert!(
            no_dedup.violation.is_some(),
            "sanity: the violation is reachable within the depth bound"
        );
        // With dedup on, the first visit of the pre-violation state happens
        // at depth 4 (via p1's tick cycle); the depth-2 revisit must be
        // re-expanded, not pruned, or the violation is missed.
        let dedup = depth_bug_report(true);
        assert!(
            dedup.violation.is_some(),
            "dedup pruned a shallower revisit that still had budget \
             (the documented exhaustive-up-to-depth guarantee is broken)"
        );
    }

    /// Regression fixture for the outputs-omitted-from-key dedup bug: both
    /// delivery orders of p0's two messages converge to identical
    /// `(procs, inboxes, started)` but different output histories.
    #[derive(Clone, Debug)]
    struct EmitBug;

    impl Protocol for EmitBug {
        type Msg = u8;
        type Output = u8;
        type Inv = ();
        type Fd = ();

        fn on_start(&mut self, ctx: &mut Ctx<Self>) {
            if ctx.me() == ProcessId(0) {
                ctx.send(ProcessId(1), 1);
                ctx.send(ProcessId(1), 2);
            }
        }

        fn on_message(&mut self, ctx: &mut Ctx<Self>, _from: ProcessId, msg: u8) {
            ctx.output(msg);
        }
    }

    #[test]
    fn dedup_key_must_distinguish_output_histories() {
        // DFS explores the "deliver 2 first" order first, so the branch
        // with output history [1, 2] is the one the old dedup merged away
        // before the predicate ever saw it.
        let safety = |_: &[EmitBug], outputs: &[(ProcessId, u8)]| {
            if outputs.len() == 2 && outputs[0].1 == 1 && outputs[1].1 == 2 {
                Err("delivered 1 before 2".to_string())
            } else {
                Ok(())
            }
        };
        let report = explore(
            ExploreConfig::new(6),
            || vec![EmitBug, EmitBug],
            vec![None, None],
            &FailurePattern::failure_free(2),
            NoDetector,
            safety,
        );
        let violation = report
            .violation
            .expect("dedup merged two states with different output histories");
        assert_eq!(violation.message, "delivered 1 before 2");
        // Both orders sit at the same depth, so this is caught only by the
        // outputs component of the key — and the counterexample replays.
        let replayed = replay_explore(
            &violation.decisions,
            || vec![EmitBug, EmitBug],
            vec![None, None],
            &FailurePattern::failure_free(2),
            NoDetector,
            safety,
        );
        assert_eq!(replayed, Err(violation.message));
    }
}
