//! Process identifiers, the global clock, and sets of processes.

use std::collections::BTreeSet;
use std::fmt;

/// The discrete global clock of the model.
///
/// The clock exists "for presentational convenience" only (it indexes
/// failure patterns and detector histories); processes can never read it.
pub type Time = u64;

/// Identifier of one of the `n` processes `p0 .. p{n-1}` of the system `Π`.
///
/// Process ids are dense indices, which lets per-process state live in plain
/// vectors throughout the workspace.
///
/// ```
/// use wfd_sim::ProcessId;
/// let p = ProcessId(2);
/// assert_eq!(p.to_string(), "p2");
/// assert_eq!(p.index(), 2);
/// ```
#[derive(Copy, Clone, Eq, PartialEq, Ord, PartialOrd, Hash, Debug, Default)]
pub struct ProcessId(pub usize);

impl ProcessId {
    /// The dense index of this process in `0..n`.
    pub fn index(self) -> usize {
        self.0
    }

    /// Iterate over all process ids of a system of size `n`.
    ///
    /// ```
    /// use wfd_sim::ProcessId;
    /// let ids: Vec<_> = ProcessId::all(3).collect();
    /// assert_eq!(ids, vec![ProcessId(0), ProcessId(1), ProcessId(2)]);
    /// ```
    pub fn all(n: usize) -> impl DoubleEndedIterator<Item = ProcessId> + Clone {
        (0..n).map(ProcessId)
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<usize> for ProcessId {
    fn from(i: usize) -> Self {
        ProcessId(i)
    }
}

/// An ordered set of processes — quorums, participant sets, correct sets.
///
/// `ProcessSet` is the value type of the quorum failure detector Σ and is
/// used pervasively by the extraction algorithms, so it carries the set
/// operations the paper's proofs rely on (intersection tests, subset tests).
///
/// ```
/// use wfd_sim::{ProcessId, ProcessSet};
/// let a: ProcessSet = [0, 1].into_iter().map(ProcessId).collect();
/// let b: ProcessSet = [1, 2].into_iter().map(ProcessId).collect();
/// assert!(a.intersects(&b));
/// assert!(!a.is_subset(&b));
/// assert_eq!(a.to_string(), "{p0, p1}");
/// ```
#[derive(Clone, Eq, PartialEq, Ord, PartialOrd, Hash, Debug, Default)]
pub struct ProcessSet(BTreeSet<ProcessId>);

impl ProcessSet {
    /// The empty set.
    pub fn new() -> Self {
        ProcessSet(BTreeSet::new())
    }

    /// The full system `Π = {p0, …, p{n-1}}`.
    pub fn full(n: usize) -> Self {
        ProcessId::all(n).collect()
    }

    /// A singleton set.
    pub fn singleton(p: ProcessId) -> Self {
        let mut s = BTreeSet::new();
        s.insert(p);
        ProcessSet(s)
    }

    /// Insert a process; returns `true` if it was not already present.
    pub fn insert(&mut self, p: ProcessId) -> bool {
        self.0.insert(p)
    }

    /// Remove a process; returns `true` if it was present.
    pub fn remove(&mut self, p: ProcessId) -> bool {
        self.0.remove(&p)
    }

    /// Whether `p` belongs to the set.
    pub fn contains(&self, p: ProcessId) -> bool {
        self.0.contains(&p)
    }

    /// Number of processes in the set.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Whether the two sets share at least one process — the heart of Σ's
    /// *intersection* property.
    pub fn intersects(&self, other: &ProcessSet) -> bool {
        let (small, big) = if self.len() <= other.len() {
            (self, other)
        } else {
            (other, self)
        };
        small.iter().any(|p| big.contains(p))
    }

    /// Whether `self ⊆ other` — used by Σ's *completeness* property
    /// (`quorum ⊆ correct(F)`).
    pub fn is_subset(&self, other: &ProcessSet) -> bool {
        self.0.is_subset(&other.0)
    }

    /// Set union.
    pub fn union(&self, other: &ProcessSet) -> ProcessSet {
        ProcessSet(self.0.union(&other.0).copied().collect())
    }

    /// Set intersection.
    pub fn intersection(&self, other: &ProcessSet) -> ProcessSet {
        ProcessSet(self.0.intersection(&other.0).copied().collect())
    }

    /// Set difference `self − other`.
    pub fn difference(&self, other: &ProcessSet) -> ProcessSet {
        ProcessSet(self.0.difference(&other.0).copied().collect())
    }

    /// Iterate over members in increasing id order.
    pub fn iter(&self) -> impl Iterator<Item = ProcessId> + '_ {
        self.0.iter().copied()
    }

    /// The smallest member, if any — a convenient deterministic
    /// representative (e.g. for leader extraction).
    pub fn first(&self) -> Option<ProcessId> {
        self.0.iter().next().copied()
    }
}

impl fmt::Display for ProcessSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, p) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<ProcessId> for ProcessSet {
    fn from_iter<I: IntoIterator<Item = ProcessId>>(iter: I) -> Self {
        ProcessSet(iter.into_iter().collect())
    }
}

impl Extend<ProcessId> for ProcessSet {
    fn extend<I: IntoIterator<Item = ProcessId>>(&mut self, iter: I) {
        self.0.extend(iter)
    }
}

impl<'a> IntoIterator for &'a ProcessSet {
    type Item = ProcessId;
    type IntoIter = std::iter::Copied<std::collections::btree_set::Iter<'a, ProcessId>>;

    fn into_iter(self) -> Self::IntoIter {
        self.0.iter().copied()
    }
}

impl IntoIterator for ProcessSet {
    type Item = ProcessId;
    type IntoIter = std::collections::btree_set::IntoIter<ProcessId>;

    fn into_iter(self) -> Self::IntoIter {
        self.0.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[usize]) -> ProcessSet {
        ids.iter().copied().map(ProcessId).collect()
    }

    #[test]
    fn process_id_display_and_order() {
        assert_eq!(ProcessId(0).to_string(), "p0");
        assert!(ProcessId(0) < ProcessId(1));
        assert_eq!(ProcessId::from(7).index(), 7);
    }

    #[test]
    fn all_enumerates_in_order() {
        assert_eq!(ProcessId::all(0).count(), 0);
        let v: Vec<_> = ProcessId::all(4).map(|p| p.index()).collect();
        assert_eq!(v, vec![0, 1, 2, 3]);
    }

    #[test]
    fn full_set_has_n_members() {
        let s = ProcessSet::full(5);
        assert_eq!(s.len(), 5);
        assert!(ProcessId::all(5).all(|p| s.contains(p)));
    }

    #[test]
    fn intersects_is_symmetric_and_correct() {
        let a = set(&[0, 1]);
        let b = set(&[1, 2]);
        let c = set(&[3, 4]);
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        assert!(!a.intersects(&c));
        assert!(!ProcessSet::new().intersects(&a));
        assert!(!ProcessSet::new().intersects(&ProcessSet::new()));
    }

    #[test]
    fn subset_union_intersection_difference() {
        let a = set(&[0, 1]);
        let b = set(&[0, 1, 2]);
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        assert_eq!(a.union(&b), b);
        assert_eq!(a.intersection(&b), a);
        assert_eq!(b.difference(&a), set(&[2]));
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = ProcessSet::new();
        assert!(s.insert(ProcessId(3)));
        assert!(!s.insert(ProcessId(3)));
        assert!(s.contains(ProcessId(3)));
        assert!(s.remove(ProcessId(3)));
        assert!(!s.remove(ProcessId(3)));
        assert!(s.is_empty());
    }

    #[test]
    fn first_is_deterministic_representative() {
        assert_eq!(set(&[4, 2, 7]).first(), Some(ProcessId(2)));
        assert_eq!(ProcessSet::new().first(), None);
    }

    #[test]
    fn display_formats_sorted() {
        assert_eq!(set(&[2, 0]).to_string(), "{p0, p2}");
        assert_eq!(ProcessSet::new().to_string(), "{}");
    }

    #[test]
    fn iteration_round_trips() {
        let s = set(&[1, 3]);
        let t: ProcessSet = (&s).into_iter().collect();
        assert_eq!(s, t);
        let u: ProcessSet = s.clone().into_iter().collect();
        assert_eq!(s, u);
    }
}
