//! Run traces: a faithful record of every step, send, output and crash,
//! used by the property checkers of the downstream crates.

use crate::id::{ProcessId, Time};
use std::fmt::Debug;

/// How much of a run the engine records.
///
/// Sweeps that only inspect end-state (process fields, decision getters,
/// aggregate counters) should run with [`TraceMode::Off`]: the engine
/// then pays zero tracing cost — no event pushes, no per-event message
/// clones — while executing the byte-identical schedule. Outputs-driven
/// checkers (history validators) need [`TraceMode::OutputsOnly`]; only
/// message-level analyses need [`TraceMode::Full`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TraceMode {
    /// Record every event (steps, sends, deliveries, outputs, crashes).
    #[default]
    Full,
    /// Record only [`EventKind::Output`] and [`EventKind::Crash`] events —
    /// enough for every history-based spec checker in the workspace.
    OutputsOnly,
    /// Record nothing; aggregate counters (see `Sim::stats`) stay exact.
    Off,
}

impl TraceMode {
    /// Whether step/send/deliver events are recorded (and their message
    /// payloads cloned into the trace).
    pub fn records_messages(self) -> bool {
        matches!(self, TraceMode::Full)
    }

    /// Whether output and crash events are recorded.
    pub fn records_outputs(self) -> bool {
        !matches!(self, TraceMode::Off)
    }
}

/// What happened in one trace event.
#[derive(Clone, Debug, PartialEq)]
pub enum EventKind<M, O> {
    /// The process took its first step.
    Start,
    /// The process took a step receiving `msg` from `from`.
    Deliver {
        /// Sender of the delivered message.
        from: ProcessId,
        /// The delivered message.
        msg: M,
    },
    /// The process took a step receiving the empty message λ.
    Lambda,
    /// The process took a step consuming an injected invocation.
    Invoke,
    /// The process sent `msg` to `to` during its step.
    Send {
        /// Recipient.
        to: ProcessId,
        /// The sent message.
        msg: M,
    },
    /// The process emitted an observable output.
    Output(O),
    /// The process crashed (takes no further steps).
    Crash,
}

/// One timestamped event of a run.
#[derive(Clone, Debug, PartialEq)]
pub struct Event<M, O> {
    /// Global time of the event.
    pub time: Time,
    /// The process concerned.
    pub pid: ProcessId,
    /// What happened.
    pub kind: EventKind<M, O>,
}

/// The full record of a run: an ordered list of [`Event`]s.
///
/// Traces are what the workspace's checkers consume: linearizability of
/// register histories, agreement/validity of consensus decisions, and the
/// defining predicates of extracted failure detectors are all evaluated
/// against traces.
#[derive(Clone, Debug)]
pub struct Trace<M, O> {
    n: usize,
    events: Vec<Event<M, O>>,
}

impl<M: Clone + Debug, O: Clone + Debug> Trace<M, O> {
    /// An empty trace for a system of `n` processes.
    pub fn new(n: usize) -> Self {
        Trace {
            n,
            events: Vec::new(),
        }
    }

    /// System size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Append an event (engine-internal, but public so custom runners can
    /// build traces too).
    pub fn push(&mut self, time: Time, pid: ProcessId, kind: EventKind<M, O>) {
        self.events.push(Event { time, pid, kind });
    }

    /// All events in order.
    pub fn events(&self) -> &[Event<M, O>] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Iterate over outputs as `(time, pid, &output)` in emission order.
    pub fn outputs(&self) -> impl Iterator<Item = (Time, ProcessId, &O)> {
        self.events.iter().filter_map(|e| match &e.kind {
            EventKind::Output(o) => Some((e.time, e.pid, o)),
            _ => None,
        })
    }

    /// Outputs emitted by one process, in order.
    pub fn outputs_of(&self, p: ProcessId) -> impl Iterator<Item = (Time, &O)> {
        self.outputs()
            .filter(move |(_, pid, _)| *pid == p)
            .map(|(t, _, o)| (t, o))
    }

    /// The last output of process `p`, if any.
    pub fn last_output_of(&self, p: ProcessId) -> Option<&O> {
        self.outputs_of(p).last().map(|(_, o)| o)
    }

    /// Crash events as `(time, pid)`.
    pub fn crashes(&self) -> impl Iterator<Item = (Time, ProcessId)> + '_ {
        self.events.iter().filter_map(|e| match e.kind {
            EventKind::Crash => Some((e.time, e.pid)),
            _ => None,
        })
    }

    /// Number of steps taken by process `p` (start + deliver + λ + invoke).
    pub fn steps_of(&self, p: ProcessId) -> usize {
        self.events
            .iter()
            .filter(|e| {
                e.pid == p
                    && matches!(
                        e.kind,
                        EventKind::Start
                            | EventKind::Deliver { .. }
                            | EventKind::Lambda
                            | EventKind::Invoke
                    )
            })
            .count()
    }

    /// Total number of messages sent during the run.
    pub fn messages_sent(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Send { .. }))
            .count()
    }

    /// Total number of messages delivered during the run.
    pub fn messages_delivered(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Deliver { .. }))
            .count()
    }

    /// A one-struct run summary (step/message/output counts), for
    /// reports and experiment tables.
    pub fn summary(&self) -> TraceSummary {
        TraceSummary {
            events: self.len(),
            steps: (0..self.n).map(|p| self.steps_of(ProcessId(p))).sum(),
            messages_sent: self.messages_sent(),
            messages_delivered: self.messages_delivered(),
            outputs: self.outputs().count(),
            crashes: self.crashes().count(),
        }
    }
}

/// Aggregate counts of a run, produced by [`Trace::summary`] (and
/// maintained exactly by the engine in every [`TraceMode`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceSummary {
    /// Total trace events.
    pub events: usize,
    /// Steps taken across all processes.
    pub steps: usize,
    /// Messages sent.
    pub messages_sent: usize,
    /// Messages delivered.
    pub messages_delivered: usize,
    /// Outputs emitted.
    pub outputs: usize,
    /// Crash events.
    pub crashes: usize,
}

impl std::fmt::Display for TraceSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} steps, {} sent / {} delivered, {} outputs, {} crashes",
            self.steps, self.messages_sent, self.messages_delivered, self.outputs, self.crashes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace<u8, &'static str> {
        let mut t = Trace::new(2);
        t.push(0, ProcessId(0), EventKind::Start);
        t.push(
            0,
            ProcessId(0),
            EventKind::Send {
                to: ProcessId(1),
                msg: 9,
            },
        );
        t.push(1, ProcessId(1), EventKind::Start);
        t.push(
            2,
            ProcessId(1),
            EventKind::Deliver {
                from: ProcessId(0),
                msg: 9,
            },
        );
        t.push(2, ProcessId(1), EventKind::Output("got"));
        t.push(3, ProcessId(0), EventKind::Lambda);
        t.push(4, ProcessId(0), EventKind::Crash);
        t
    }

    #[test]
    fn counts_and_queries() {
        let t = sample();
        assert_eq!(t.n(), 2);
        assert_eq!(t.len(), 7);
        assert!(!t.is_empty());
        assert_eq!(t.messages_sent(), 1);
        assert_eq!(t.messages_delivered(), 1);
        assert_eq!(t.steps_of(ProcessId(0)), 2); // start + lambda
        assert_eq!(t.steps_of(ProcessId(1)), 2); // start + deliver
        assert_eq!(t.crashes().collect::<Vec<_>>(), vec![(4, ProcessId(0))]);
    }

    #[test]
    fn output_queries() {
        let t = sample();
        let outs: Vec<_> = t.outputs().collect();
        assert_eq!(outs, vec![(2, ProcessId(1), &"got")]);
        assert_eq!(t.last_output_of(ProcessId(1)), Some(&"got"));
        assert_eq!(t.last_output_of(ProcessId(0)), None);
        assert_eq!(t.outputs_of(ProcessId(1)).count(), 1);
    }

    #[test]
    fn summary_counts() {
        let t = sample();
        let s = t.summary();
        assert_eq!(s.steps, 4);
        assert_eq!(s.messages_sent, 1);
        assert_eq!(s.messages_delivered, 1);
        assert_eq!(s.outputs, 1);
        assert_eq!(s.crashes, 1);
        assert!(s.to_string().contains("4 steps"));
    }

    #[test]
    fn empty_trace() {
        let t: Trace<(), ()> = Trace::new(3);
        assert!(t.is_empty());
        assert_eq!(t.outputs().count(), 0);
        assert_eq!(t.messages_sent(), 0);
    }
}
