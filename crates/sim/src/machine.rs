//! The pure transition-system layer every checker shares.
//!
//! The engine ([`Sim`](crate::Sim)), the bounded explorer
//! ([`explore`](crate::explore())), the liveness checker
//! ([`check_liveness`](crate::check_liveness())) and the replayers all
//! execute the *same* small-step semantics: a process takes an atomic
//! step `⟨p, m, d⟩` in which it receives one message (or λ), queries its
//! failure detector, sends messages and changes state. Historically each
//! consumer hand-rolled its own "apply one decision" loop; this module
//! factors that semantics out **once**, polestar-style, as a pure
//! [`Machine`]:
//!
//! * [`Machine`] — `transition(&State, &Action) -> StepResult<State>`
//!   plus an enabled-action enumeration. Pure: no `&mut self`, no hidden
//!   clocks, no I/O — which is what makes expansion shardable and the
//!   action space enumerable (state diagrams, Büchi products,
//!   independence relations all quantify over it).
//! * [`ProtocolMachine`] — the blanket implementation derived from any
//!   [`Protocol`]: crash/detector/inbox semantics in one place. Actions
//!   are [`ExploreDecision`]s; the enabled set follows the *explorer's*
//!   branching rule (λ only when the inbox is empty, so runs cannot
//!   stutter forever).
//! * [`FairMachine`] — the fairness wrapper the liveness checker
//!   composes on top (mirroring the `Checker<M: Machine>` layering of
//!   explicit-state model checkers): states carry step-gap counters and
//!   message ages, and the enabled set follows the *engine's* fair
//!   branching rule (an overdue actor or front message is forced; λ is
//!   always a policy option).
//! * [`Replay`] — the one replay entry point for recorded decision
//!   lists: explorer counterexamples ([`Replay::explore`]), liveness
//!   lassos ([`Replay::lasso`]) and [`Repro`](crate::Repro) artifacts
//!   ([`Replay::from_repro`]). The pre-0.7.0 free functions
//!   `replay_explore`/`replay_lasso` were shims over this type and have
//!   been removed.
//! * [`ReductionConfig`] — the shared state-space-reduction knobs
//!   consumed by both [`ExploreConfig`](crate::ExploreConfig) and
//!   [`LivenessConfig`](crate::LivenessConfig) (which *rejects* the
//!   combinations that are unsound for cycle detection instead of
//!   silently ignoring them).
//!
//! The two enabled-set semantics differ deliberately. The explorer elides
//! λ when messages are pending (a receive-agnostic reduction that is
//! complete for safety up to the depth bound), while the fair machine
//! always offers λ alongside the policy-window deliveries (the engine's
//! scheduler could pick it, and liveness must quantify over every fair
//! schedule). Both are deterministic enumerations — process id ascending,
//! then inbox position — so every consumer sees children in the same
//! order at any thread count.

use crate::failure::FailurePattern;
use crate::id::{ProcessId, Time};
use crate::oracle::FdOracle;
use crate::protocol::{Ctx, Footprint, Protocol, SendBuf};
use std::cell::RefCell;
use std::marker::PhantomData;
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Actions and results
// ---------------------------------------------------------------------------

/// One exploration step: which process acted, and which of its pending
/// messages it received (`None` ⇒ the first step of the process or a λ
/// step; `Some(i)` ⇒ the message at inbox position `i` at that moment).
pub type ExploreDecision = (ProcessId, Option<usize>);

/// The result of applying one action to a state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StepResult<S> {
    /// The action was enabled; here is the successor state.
    Next(S),
    /// The action is not enabled in this state (the actor is crashed or
    /// out of range, or — for [`FairMachine`] — the decision is not
    /// fair-feasible). Replays skip disabled actions, which is what keeps
    /// shrunk decision lists well-defined.
    Disabled,
}

impl<S> StepResult<S> {
    /// The successor state, if the action was enabled.
    pub fn next(self) -> Option<S> {
        match self {
            StepResult::Next(s) => Some(s),
            StepResult::Disabled => None,
        }
    }
}

/// A pure transition system: enabled-action enumeration plus a pure
/// transition function. See the [module docs](self) for the two shipped
/// implementations and who consumes them.
pub trait Machine {
    /// The state type.
    type State;
    /// The action type.
    type Action;

    /// Append every action enabled in `state` to `out` (not cleared), in
    /// the machine's deterministic order.
    fn enabled_into(&self, state: &Self::State, out: &mut Vec<Self::Action>);

    /// Apply `action` to `state`. Pure: same inputs, same successor.
    fn transition(&self, state: &Self::State, action: &Self::Action) -> StepResult<Self::State>;

    /// The enabled actions of `state`, as an iterator (allocating
    /// convenience over [`Machine::enabled_into`]).
    fn enabled_actions(&self, state: &Self::State) -> std::vec::IntoIter<Self::Action> {
        let mut out = Vec::new();
        self.enabled_into(state, &mut out);
        out.into_iter()
    }
}

// ---------------------------------------------------------------------------
// Shared-prefix state representation
// ---------------------------------------------------------------------------

/// One link of the persistent decision list. Children share their entire
/// prefix with the parent state; only the head differs.
pub(crate) struct DecisionNode {
    pub(crate) decision: ExploreDecision,
    pub(crate) parent: Option<Arc<DecisionNode>>,
}

impl Drop for DecisionNode {
    // Unlink iteratively: a naive recursive drop of a depth-D chain
    // overflows the stack for the deep explorations this layer exists
    // to make cheap.
    fn drop(&mut self) {
        let mut link = self.parent.take();
        while let Some(node) = link {
            match Arc::try_unwrap(node) {
                Ok(mut n) => link = n.parent.take(),
                Err(_) => break, // still shared: someone else keeps it alive
            }
        }
    }
}

/// One link of the persistent output-history list.
pub(crate) struct OutputNode<P: Protocol> {
    pub(crate) output: (ProcessId, P::Output),
    pub(crate) parent: Option<Arc<OutputNode<P>>>,
}

impl<P: Protocol> Drop for OutputNode<P> {
    fn drop(&mut self) {
        let mut link = self.parent.take();
        while let Some(node) = link {
            match Arc::try_unwrap(node) {
                Ok(mut n) => link = n.parent.take(),
                Err(_) => break,
            }
        }
    }
}

/// Materialize a decision chain (stored newest-first) into the flat,
/// oldest-first vector that counterexamples and replays use.
pub(crate) fn materialize_decisions(link: &Option<Arc<DecisionNode>>) -> Vec<ExploreDecision> {
    let mut out = Vec::new();
    let mut cur = link.as_deref();
    while let Some(node) = cur {
        out.push(node.decision);
        cur = node.parent.as_deref();
    }
    out.reverse();
    out
}

/// Materialize an output chain into `into` (cleared first), oldest-first.
pub(crate) fn materialize_outputs<P: Protocol>(
    link: &Option<Arc<OutputNode<P>>>,
    len: usize,
    into: &mut Vec<(ProcessId, P::Output)>,
) {
    into.clear();
    into.reserve(len);
    let mut cur = link.as_deref();
    while let Some(node) = cur {
        into.push(node.output.clone());
        cur = node.parent.as_deref();
    }
    into.reverse();
    debug_assert_eq!(into.len(), len);
}

/// One configuration of the transition system: the protocol instances,
/// their inboxes, and the branch bookkeeping (decision and output
/// histories as shared-prefix chains). This is the state type of
/// [`ProtocolMachine`] — the explorer, the replayers and the diagram
/// walker all traverse values of this type.
///
/// Fields are crate-internal (the explorer mutates them in place on its
/// hot path); external consumers read states through the accessors.
pub struct State<P: Protocol> {
    pub(crate) procs: Vec<P>,
    pub(crate) inboxes: Vec<Vec<(ProcessId, P::Msg)>>,
    pub(crate) started: Vec<bool>,
    pub(crate) pending_inv: Vec<Option<P::Inv>>,
    pub(crate) outputs: Option<Arc<OutputNode<P>>>,
    pub(crate) outputs_len: usize,
    pub(crate) depth: usize,
    pub(crate) decisions: Option<Arc<DecisionNode>>,
    /// DPOR sleep set: enabled decisions whose exploration from this
    /// state is provably redundant. Sorted; always empty unless
    /// [`ExploreConfig::dpor`](crate::ExploreConfig) is on. Not part of
    /// the dedup key — it feeds the seen-table cover check instead.
    pub(crate) sleep: Vec<ExploreDecision>,
    /// Restricted re-expansion (Godefroid's state-space caching): when a
    /// revisit is only *partially* covered by the seen-table, every
    /// decision some valid cover did **not** sleep already has a fully
    /// explored subtree with at least as much depth budget — only the
    /// intersection of the valid covers' sleeps may still hide unexplored
    /// runs. The resolution pass records that intersection here (sorted,
    /// in this state's own coordinates) and expansion is limited to it.
    /// `None` means unrestricted (a first visit, or no valid cover).
    pub(crate) restrict: Option<Vec<ExploreDecision>>,
}

impl<P: Protocol> State<P> {
    /// An empty shell, ready to be [`State::copy_from`]-ed into. Used as
    /// the free-list element when the explorer's arena runs dry.
    pub(crate) fn blank() -> Self {
        State {
            procs: Vec::new(),
            inboxes: Vec::new(),
            started: Vec::new(),
            pending_inv: Vec::new(),
            outputs: None,
            outputs_len: 0,
            depth: 0,
            decisions: None,
            sleep: Vec::new(),
            restrict: None,
        }
    }

    /// Overwrite `self` with a copy of `src`, reusing every allocation
    /// `self` already owns (`clone_from` down to the per-inbox vectors).
    /// The sleep set and the expansion restriction are *not* copied —
    /// they are properties of the visit that created a state, set
    /// explicitly by the explorer's expansion and resolution passes.
    // wfd-lint: allow(d8-machine-purity, mutates only the scratch successor the explorer is filling in; the source state is a shared borrow)
    pub(crate) fn copy_from(&mut self, src: &State<P>)
    where
        P: Clone,
    {
        self.procs.clone_from(&src.procs);
        self.inboxes.clone_from(&src.inboxes);
        self.started.clone_from(&src.started);
        self.pending_inv.clone_from(&src.pending_inv);
        self.outputs.clone_from(&src.outputs);
        self.outputs_len = src.outputs_len;
        self.depth = src.depth;
        self.decisions.clone_from(&src.decisions);
        self.sleep.clear();
        self.restrict = None;
    }

    /// The protocol instances, indexed by process.
    pub fn procs(&self) -> &[P] {
        &self.procs
    }

    /// Steps taken along this branch (the state's logical time).
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Whether process `p` has taken its first step.
    pub fn is_started(&self, p: ProcessId) -> bool {
        self.started[p.index()]
    }

    /// Number of messages pending in `p`'s inbox.
    pub fn inbox_len(&self, p: ProcessId) -> usize {
        self.inboxes[p.index()].len()
    }

    /// Materialize the branch's output history, oldest-first, into `into`
    /// (cleared first).
    pub fn collect_outputs(&self, into: &mut Vec<(ProcessId, P::Output)>) {
        materialize_outputs(&self.outputs, self.outputs_len, into);
    }

    /// Materialize the branch's decision list, oldest-first.
    pub fn collect_decisions(&self) -> Vec<ExploreDecision> {
        materialize_decisions(&self.decisions)
    }
}

/// The initial configuration: fresh processes, empty inboxes, one pending
/// invocation slot per process (consumed at the process's first step).
///
/// # Panics
///
/// Panics if the invocation vector's length differs from the process
/// count.
pub(crate) fn initial_state<P: Protocol>(
    procs: Vec<P>,
    invocations: Vec<Option<P::Inv>>,
) -> State<P> {
    let n = procs.len();
    assert_eq!(invocations.len(), n, "one invocation slot per process");
    State {
        procs,
        inboxes: vec![Vec::new(); n],
        started: vec![false; n],
        pending_inv: invocations,
        outputs: None,
        outputs_len: 0,
        depth: 0,
        decisions: None,
        sleep: Vec::new(),
        restrict: None,
    }
}

// ---------------------------------------------------------------------------
// Step application — the ONE place a decision becomes Protocol callbacks
// ---------------------------------------------------------------------------

/// A scheduling decision resolved against a concrete configuration: the
/// four step kinds of the model, ready to dispatch. The engine resolves
/// its scheduler's picks into this (keeping `Invoke` as a separate step
/// kind); the machine layer folds pending invocations into `Start`.
pub(crate) enum ResolvedStep<P: Protocol> {
    /// The process's first step (`on_start`, then `on_invoke` if an
    /// invocation was pending and folded in).
    Start {
        /// The folded-in pending invocation, if any.
        inv: Option<P::Inv>,
    },
    /// A stand-alone invocation step (engine semantics only).
    Invoke(P::Inv),
    /// Delivery of one message.
    Deliver {
        /// The sender.
        from: ProcessId,
        /// The payload.
        msg: P::Msg,
    },
    /// A λ step (the empty message).
    Tick,
}

/// Route one resolved step to the protocol's callbacks. Every consumer —
/// engine, explorer, liveness graph, replays, diagrams — funnels through
/// this single function, so "what does a step do" has exactly one
/// definition in the workspace.
pub(crate) fn dispatch<P: Protocol>(proc: &mut P, ctx: &mut Ctx<P>, step: ResolvedStep<P>) {
    match step {
        ResolvedStep::Start { inv } => {
            proc.on_start(ctx);
            if let Some(inv) = inv {
                proc.on_invoke(ctx, inv);
            }
        }
        ResolvedStep::Invoke(inv) => proc.on_invoke(ctx, inv),
        ResolvedStep::Deliver { from, msg } => proc.on_message(ctx, from, msg),
        ResolvedStep::Tick => proc.on_tick(ctx),
    }
}

/// Everything a step needs besides the two states: shared between the
/// parallel expansion workers and the sequential replays.
pub(crate) struct StepEnv<'a> {
    pub(crate) pattern: &'a FailurePattern,
    pub(crate) n: usize,
}

/// Apply one step of `src` into `dst` (overwritten; allocations reused).
///
/// `choice` follows the [`ExploreDecision`] convention: `None` for a first
/// step or λ, `Some(i)` for delivery of the message at inbox position `i`.
/// Out-of-range choices are clamped deterministically (oldest message), so
/// shrunk decision lists still define a unique run.
///
/// `fd` is the detector value for this step, sampled by the caller —
/// oracles are pure functions of `(p, t)` (the FdOracle contract), so
/// where the sample happens cannot change the step.
///
/// `bufs` is the recycled `Ctx` send/output buffer pair — one per worker,
/// so steady-state stepping allocates nothing.
///
/// `declared` is the step's declared [`Footprint`] when DPOR is active:
/// the executed sends and outputs are validated against it, and an
/// under-declaration panics — a too-tight footprint must never silently
/// prune a reachable violation.
#[allow(clippy::too_many_arguments)] // one hot-path fn, each arg documented above
                                     // wfd-lint: allow(d8-machine-purity, dst is the fresh clone being built into the successor; src stays a shared borrow for the whole step)
pub(crate) fn apply_step_into<P>(
    env: &StepEnv<'_>,
    src: &State<P>,
    dst: &mut State<P>,
    p: ProcessId,
    fd: P::Fd,
    choice: Option<usize>,
    bufs: &mut (SendBuf<P>, Vec<P::Output>),
    declared: Option<&Footprint>,
) where
    P: Protocol + Clone,
{
    let t = src.depth as Time;
    dst.copy_from(src);
    dst.depth += 1;
    let mut ctx = Ctx::<P>::with_buffers(
        p,
        env.n,
        t,
        fd,
        std::mem::take(&mut bufs.0),
        std::mem::take(&mut bufs.1),
    );
    let idx = p.index();
    // Resolve the decision against the configuration, then dispatch it —
    // the resolution (start-folding, clamping, inbox removal) lives here;
    // the callback routing lives in [`dispatch`], shared with the engine.
    let decision;
    let step: ResolvedStep<P> = if !dst.started[idx] {
        dst.started[idx] = true;
        decision = (p, None);
        ResolvedStep::Start {
            inv: dst.pending_inv[idx].take(),
        }
    } else {
        let inbox_len = dst.inboxes[idx].len();
        match choice {
            Some(i) if inbox_len > 0 => {
                let i = i.min(inbox_len - 1);
                decision = (p, Some(i));
                let (from, msg) = dst.inboxes[idx].remove(i);
                ResolvedStep::Deliver { from, msg }
            }
            _ => {
                decision = (p, None);
                ResolvedStep::Tick
            }
        }
    };
    dispatch(&mut dst.procs[idx], &mut ctx, step);
    dst.decisions = Some(Arc::new(DecisionNode {
        decision,
        parent: dst.decisions.take(),
    }));
    let (mut sends, mut outs) = ctx.into_buffers();
    if let Some(declared) = declared {
        for (to, _) in &sends {
            assert!(
                declared.may_send_to(*to),
                "footprint violation in {}: undeclared send {p} -> {to} at t={t} \
                 (an under-declared Protocol::footprint would make DPOR unsound)",
                std::any::type_name::<P>(),
            );
        }
        assert!(
            outs.is_empty() || declared.may_output(),
            "footprint violation in {}: undeclared output by {p} at t={t} \
             (an under-declared Protocol::footprint would make DPOR unsound)",
            std::any::type_name::<P>(),
        );
    }
    for (to, msg) in sends.drain(..) {
        if !env.pattern.is_crashed(to, t) {
            dst.inboxes[to.index()].push((p, msg));
        }
    }
    for out in outs.drain(..) {
        dst.outputs = Some(Arc::new(OutputNode {
            output: (p, out),
            parent: dst.outputs.take(),
        }));
        dst.outputs_len += 1;
    }
    bufs.0 = sends;
    bufs.1 = outs;
}

/// Append the decisions enabled at `state` under the *explorer's*
/// branching rule, in the canonical order every consumer shares: process
/// id ascending; per process, the single `None` decision when the process
/// has not started or its inbox is empty, else one `Some(i)` per pending
/// message (λ is elided while messages are pending — the explorer's
/// receive-agnostic reduction, complete for safety up to the depth
/// bound). Crashed processes contribute nothing.
pub(crate) fn enabled_decisions<P: Protocol>(
    state: &State<P>,
    pattern: &FailurePattern,
    n: usize,
    out: &mut Vec<ExploreDecision>,
) {
    let t = state.depth as Time;
    for p in ProcessId::all(n) {
        if pattern.is_crashed(p, t) {
            continue;
        }
        let idx = p.index();
        if !state.started[idx] || state.inboxes[idx].is_empty() {
            out.push((p, None));
        } else {
            for i in 0..state.inboxes[idx].len() {
                out.push((p, Some(i)));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The blanket Protocol machine
// ---------------------------------------------------------------------------

/// Wrap a (mutable, but contractually pure-in-`(p, t)`) detector oracle
/// as the pure per-step sampling function the machines take. The
/// `RefCell` is sound here precisely because of the [`FdOracle`]
/// contract: the answer depends only on `(p, t)`, never on call order.
pub fn oracle_fn<D: FdOracle>(detector: D) -> impl Fn(ProcessId, Time) -> D::Value {
    let cell = RefCell::new(detector);
    move |p, t| cell.borrow_mut().query(p, t)
}

/// The blanket [`Machine`] derived from any [`Protocol`]: crash,
/// detector and inbox semantics factored out of the engine into the
/// machine layer once. States are [`State`]s, actions are
/// [`ExploreDecision`]s, and the enabled set follows the explorer's
/// branching rule (see [module docs](self)).
pub struct ProtocolMachine<'a, P: Protocol, F> {
    pattern: &'a FailurePattern,
    n: usize,
    fd: F,
    _protocol: PhantomData<fn() -> P>,
}

impl<'a, P, F> ProtocolMachine<'a, P, F>
where
    P: Protocol + Clone,
    F: Fn(ProcessId, Time) -> P::Fd,
{
    /// A machine over the given failure pattern; `fd(p, t)` supplies the
    /// detector value for a step of `p` at time `t` (see [`oracle_fn`]).
    pub fn new(pattern: &'a FailurePattern, fd: F) -> Self {
        ProtocolMachine {
            n: pattern.n(),
            pattern,
            fd,
            _protocol: PhantomData,
        }
    }

    /// The initial configuration (see [`State`]); `invocations[p]` is
    /// consumed at `p`'s first step.
    ///
    /// # Panics
    ///
    /// Panics if the invocation vector's length differs from the process
    /// count.
    pub fn initial(&self, procs: Vec<P>, invocations: Vec<Option<P::Inv>>) -> State<P> {
        initial_state(procs, invocations)
    }

    /// The failure pattern this machine runs under.
    pub fn pattern(&self) -> &FailurePattern {
        self.pattern
    }

    /// System size.
    pub fn n(&self) -> usize {
        self.n
    }
}

impl<P, F> Machine for ProtocolMachine<'_, P, F>
where
    P: Protocol + Clone,
    F: Fn(ProcessId, Time) -> P::Fd,
{
    type State = State<P>;
    type Action = ExploreDecision;

    fn enabled_into(&self, state: &State<P>, out: &mut Vec<ExploreDecision>) {
        enabled_decisions(state, self.pattern, self.n, out);
    }

    fn transition(&self, state: &State<P>, action: &ExploreDecision) -> StepResult<State<P>> {
        let &(p, choice) = action;
        if p.index() >= self.n || self.pattern.is_crashed(p, state.depth as Time) {
            return StepResult::Disabled;
        }
        let fd = (self.fd)(p, state.depth as Time);
        let env = StepEnv {
            pattern: self.pattern,
            n: self.n,
        };
        let mut dst = State::blank();
        let mut bufs: (SendBuf<P>, Vec<P::Output>) = (Vec::new(), Vec::new());
        apply_step_into(&env, state, &mut dst, p, fd, choice, &mut bufs, None);
        StepResult::Next(dst)
    }
}

// ---------------------------------------------------------------------------
// The fairness wrapper
// ---------------------------------------------------------------------------

/// A fair-graph node: the machine state plus the fairness bookkeeping
/// that makes bounded fairness structural. `state.outputs` and
/// `state.decisions` are always cleared (outputs grow without bound over
/// an infinite run and propositions are state predicates) and
/// `state.depth` is clamped at the stabilization time.
pub struct LiveNode<P: Protocol> {
    pub(crate) state: State<P>,
    /// Steps since each process last stepped (or since the run started,
    /// for processes that never stepped); `0` once crashed.
    pub(crate) since: Vec<Time>,
    /// Per-message ages, aligned with `state.inboxes`, saturated at
    /// `max_delay`; zeroed once the owner crashes.
    pub(crate) ages: Vec<Vec<Time>>,
}

impl<P: Protocol> LiveNode<P> {
    /// The underlying machine state.
    pub fn state(&self) -> &State<P> {
        &self.state
    }
}

pub(crate) fn clone_state<P: Protocol + Clone>(src: &State<P>) -> State<P> {
    let mut s = State::blank();
    s.copy_from(src);
    s
}

impl<P: Protocol + Clone> Clone for LiveNode<P> {
    fn clone(&self) -> Self {
        LiveNode {
            state: clone_state(&self.state),
            since: self.since.clone(),
            ages: self.ages.clone(),
        }
    }
}

/// Structural equality of fair-graph nodes (state, counters and ages
/// alike) — the identity the liveness graph dedups on and the cycle
/// check of lasso replays compares with.
pub(crate) fn node_eq<P>(a: &LiveNode<P>, b: &LiveNode<P>) -> bool
where
    P: Protocol + PartialEq,
    P::Msg: PartialEq,
    P::Inv: PartialEq,
{
    a.state.depth == b.state.depth
        && a.since == b.since
        && a.ages == b.ages
        && a.state.started == b.state.started
        && a.state.procs == b.state.procs
        && a.state.inboxes == b.state.inboxes
        && a.state.pending_inv == b.state.pending_inv
}

/// The fairness wrapper around the protocol semantics: states are
/// [`LiveNode`]s (machine state + step-gap counters + message ages), the
/// enabled set is the *fair* decision set mirroring the engine's
/// `choose_actor`/`choose_message` forcing rules, and transitions
/// maintain the fairness bookkeeping. The liveness checker builds its
/// fair state graph by exhaustively walking this machine; lasso replays
/// walk it one recorded decision at a time.
pub struct FairMachine<'a, P: Protocol, F> {
    pattern: &'a FailurePattern,
    n: usize,
    /// Fairness bound `G`: an alive process steps at least every `G`.
    max_step_gap: Time,
    /// Fairness bound `D`: delivery within `D` steps of sending.
    max_delay: Time,
    /// Graph time freezes here (crashes and the detector must be
    /// stationary past it — validated by the liveness checker).
    t_stable: Time,
    fd: F,
    _protocol: PhantomData<fn() -> P>,
}

impl<'a, P, F> FairMachine<'a, P, F>
where
    P: Protocol + Clone,
{
    /// A fair machine with the given fairness bounds and stabilization
    /// time; `fd(p, t)` supplies detector values (see [`oracle_fn`]).
    pub fn new(
        pattern: &'a FailurePattern,
        max_step_gap: Time,
        max_delay: Time,
        t_stable: Time,
        fd: F,
    ) -> Self {
        FairMachine {
            n: pattern.n(),
            pattern,
            max_step_gap,
            max_delay,
            t_stable,
            fd,
            _protocol: PhantomData,
        }
    }

    /// The initial fair-graph node.
    ///
    /// # Panics
    ///
    /// Panics if the invocation vector's length differs from the process
    /// count.
    pub fn initial(&self, procs: Vec<P>, invocations: Vec<Option<P::Inv>>) -> LiveNode<P> {
        let n = procs.len();
        LiveNode {
            state: initial_state(procs, invocations),
            since: vec![0; n],
            ages: vec![Vec::new(); n],
        }
    }

    /// Append the fair decisions available at `node`, in the engine's
    /// deterministic order: a forced overdue actor (most overdue, lowest
    /// id on ties) or every alive actor; per actor, a forced overdue
    /// front message or every policy-window delivery plus λ.
    pub fn enabled_fair(&self, node: &LiveNode<P>, out: &mut Vec<ExploreDecision>) {
        let t = node.state.depth as Time;
        let n = self.n;
        let alive: Vec<usize> = (0..n)
            .filter(|&q| !self.pattern.is_crashed(ProcessId(q), t))
            .collect();
        let mut forced: Option<usize> = None;
        for &q in &alive {
            if node.since[q] >= self.max_step_gap
                && forced.is_none_or(|f| node.since[q] > node.since[f])
            {
                forced = Some(q);
            }
        }
        let actors: Vec<usize> = match forced {
            Some(f) => vec![f],
            None => alive,
        };
        for q in actors {
            let p = ProcessId(q);
            if !node.state.started[q] {
                out.push((p, None));
                continue;
            }
            let inbox_len = node.state.inboxes[q].len();
            if inbox_len == 0 {
                out.push((p, None));
                continue;
            }
            // The inbox is FIFO (deliveries remove, sends append), so
            // index 0 is the oldest message: overdue ⇒ forced, exactly as
            // the engine.
            if node.ages[q][0] >= self.max_delay {
                out.push((p, Some(0)));
                continue;
            }
            for i in 0..inbox_len.min(crate::engine::POLICY_WINDOW) {
                out.push((p, Some(i)));
            }
            out.push((p, None)); // λ is always a policy option
        }
    }

    /// Apply one fair step with a caller-supplied detector value and
    /// reusable buffers — the graph builder's hot path ([`Machine`]'s
    /// `transition` wraps this with the fair-feasibility check and the
    /// machine's own detector sampling).
    pub fn step_with(
        &self,
        node: &LiveNode<P>,
        decision: ExploreDecision,
        fd: P::Fd,
        bufs: &mut (SendBuf<P>, Vec<P::Output>),
    ) -> LiveNode<P> {
        let (p, choice) = decision;
        let idx = p.index();
        let env = StepEnv {
            pattern: self.pattern,
            n: self.n,
        };
        let mut dst = State::blank();
        apply_step_into(&env, &node.state, &mut dst, p, fd, choice, bufs, None);
        // Outputs and decision chains grow without bound over an infinite
        // run; propositions are state predicates, so both are dropped
        // from the node identity.
        dst.outputs = None;
        dst.outputs_len = 0;
        dst.decisions = None;
        dst.depth = dst.depth.min(self.t_stable as usize);
        let t_next = dst.depth as Time;
        let delivered = if node.state.started[idx] {
            match choice {
                Some(i) if !node.state.inboxes[idx].is_empty() => {
                    Some(i.min(node.state.inboxes[idx].len() - 1))
                }
                _ => None,
            }
        } else {
            None
        };
        let n = self.n;
        let since_bound = self.max_step_gap + n as Time;
        let mut since = Vec::with_capacity(n);
        for q in 0..n {
            let s = if self.pattern.is_crashed(ProcessId(q), t_next) {
                0
            } else if q == idx {
                1
            } else {
                node.since[q] + 1
            };
            // Under the forcing rule a counter provably stays below
            // G + n (see the liveness module docs); a violation here
            // means the decisions were not fairness-enumerated.
            assert!(s < since_bound, "step-gap counter exceeded its fair bound");
            since.push(s);
        }
        let mut ages = Vec::with_capacity(n);
        for q in 0..n {
            let mut a = node.ages[q].clone();
            if q == idx {
                if let Some(i) = delivered {
                    a.remove(i);
                }
            }
            let new_len = dst.inboxes[q].len();
            debug_assert!(a.len() <= new_len, "ages desynced from inbox");
            while a.len() < new_len {
                a.push(0);
            }
            if self.pattern.is_crashed(ProcessId(q), t_next) {
                // A crashed inbox is frozen and never forces anything;
                // zero ages keep the quotient canonical.
                a.fill(0);
            } else {
                for x in &mut a {
                    *x = (*x + 1).min(self.max_delay);
                }
            }
            ages.push(a);
        }
        LiveNode {
            state: dst,
            since,
            ages,
        }
    }
}

impl<P, F> Machine for FairMachine<'_, P, F>
where
    P: Protocol + Clone,
    F: Fn(ProcessId, Time) -> P::Fd,
{
    type State = LiveNode<P>;
    type Action = ExploreDecision;

    fn enabled_into(&self, node: &LiveNode<P>, out: &mut Vec<ExploreDecision>) {
        self.enabled_fair(node, out);
    }

    /// Fair-feasibility is part of enabledness here: a decision outside
    /// the fair set is `Disabled` even when the raw protocol step would
    /// be possible — which is exactly the check lasso replays need.
    fn transition(&self, node: &LiveNode<P>, action: &ExploreDecision) -> StepResult<LiveNode<P>> {
        let mut fair = Vec::new();
        self.enabled_fair(node, &mut fair);
        if !fair.contains(action) {
            return StepResult::Disabled;
        }
        let t = node.state.depth as Time;
        let fd = (self.fd)(action.0, t);
        let mut bufs: (SendBuf<P>, Vec<P::Output>) = (Vec::new(), Vec::new());
        StepResult::Next(self.step_with(node, *action, fd, &mut bufs))
    }
}

// ---------------------------------------------------------------------------
// Shared reduction configuration
// ---------------------------------------------------------------------------

/// The state-space reduction knobs shared by the safety explorer and the
/// liveness checker. [`ExploreConfig`](crate::ExploreConfig) consumes
/// both flags; [`LivenessConfig`](crate::LivenessConfig) consumes
/// `symmetry` and **rejects** `dpor` at validation time (sleep-set DPOR
/// is unsound for lasso detection without a cycle proviso — an ignored
/// transition may close the only accepting cycle).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReductionConfig {
    /// Sleep-set dynamic partial-order reduction (requires honest
    /// [`Protocol::footprint`] declarations; safety exploration only).
    pub dpor: bool,
    /// Process-symmetry canonicalization of dedup keys (sound only for
    /// group-invariant predicates/propositions).
    pub symmetry: bool,
}

impl ReductionConfig {
    /// No reductions (the default).
    pub fn none() -> Self {
        ReductionConfig::default()
    }

    /// Toggle sleep-set DPOR.
    pub fn with_dpor(mut self, on: bool) -> Self {
        self.dpor = on;
        self
    }

    /// Toggle symmetry canonicalization.
    pub fn with_symmetry(mut self, on: bool) -> Self {
        self.symmetry = on;
        self
    }

    /// Whether any reduction is requested.
    pub fn any(&self) -> bool {
        self.dpor || self.symmetry
    }
}

// ---------------------------------------------------------------------------
// The unified replay entry point
// ---------------------------------------------------------------------------

/// How a recorded decision list is to be re-executed.
enum ReplayMode {
    /// A flat explorer decision list (a safety counterexample branch).
    Explore(Vec<ExploreDecision>),
    /// A liveness lasso: `stem · cycleʷ`.
    Lasso {
        stem: Vec<ExploreDecision>,
        cycle: Vec<ExploreDecision>,
    },
}

/// The one replay entry point for recorded machine runs, subsuming the
/// removed pre-0.7.0 free functions `replay_explore`/`replay_lasso` and
/// the fuzz campaign's explore-replay path.
///
/// * [`Replay::explore`] + [`Replay::run`] re-execute a safety
///   counterexample branch under [`ProtocolMachine`] semantics,
///   evaluating a safety predicate in every state.
/// * [`Replay::lasso`] + [`Replay::run_fair`] verify a liveness lasso
///   against the fair model under [`FairMachine`] semantics (every
///   decision fair-feasible, cycle returns to its head).
/// * [`Replay::from_repro`] builds the right mode from a
///   [`Repro`](crate::Repro) artifact (fuzz-sourced artifacts replay
///   through the engine's [`Repro::replay_schedule`](crate::Repro::replay_schedule)
///   instead and are rejected here).
///
/// ```
/// use wfd_sim::{Replay, FailurePattern, NoDetector, ProcessId};
/// # use wfd_sim::{Ctx, Protocol};
/// # #[derive(Clone, Debug)]
/// # struct Noop;
/// # impl Protocol for Noop {
/// #     type Msg = (); type Output = (); type Inv = (); type Fd = ();
/// #     fn on_message(&mut self, _: &mut Ctx<Self>, _: ProcessId, _: ()) {}
/// # }
/// let replay = Replay::explore(vec![(ProcessId(0), None)]);
/// let ok = replay.run(
///     || vec![Noop, Noop],
///     vec![None, None],
///     &FailurePattern::failure_free(2),
///     NoDetector,
///     |_procs, _outputs| Ok(()),
/// );
/// assert_eq!(ok, Ok(()));
/// ```
pub struct Replay {
    mode: ReplayMode,
}

impl Replay {
    /// A replay of a flat explorer decision list (the format of
    /// [`ExploreViolation::decisions`](crate::ExploreViolation) and of
    /// explore-sourced [`Repro`](crate::Repro) artifacts).
    pub fn explore(decisions: Vec<ExploreDecision>) -> Self {
        Replay {
            mode: ReplayMode::Explore(decisions),
        }
    }

    /// A replay of a liveness lasso: a finite `stem` from the initial
    /// configuration to a recurrent configuration plus a non-empty
    /// `cycle` that returns to it.
    pub fn lasso(stem: Vec<ExploreDecision>, cycle: Vec<ExploreDecision>) -> Self {
        Replay {
            mode: ReplayMode::Lasso { stem, cycle },
        }
    }

    /// Build the right replay mode from a [`Repro`](crate::Repro)
    /// artifact. Errors on fuzz-sourced artifacts — engine decision logs
    /// replay through [`Repro::replay_schedule`](crate::Repro::replay_schedule),
    /// not the machine layer.
    pub fn from_repro(repro: &crate::repro::Repro) -> Result<Self, String> {
        match &repro.decisions {
            crate::repro::ReproDecisions::Explore(d) => Ok(Replay::explore(d.clone())),
            crate::repro::ReproDecisions::Lasso { stem, cycle } => {
                Ok(Replay::lasso(stem.clone(), cycle.clone()))
            }
            crate::repro::ReproDecisions::Engine(_) => Err(
                "fuzz-sourced artifacts replay through the engine (Repro::replay_schedule), \
                 not the machine layer"
                    .to_string(),
            ),
        }
    }

    /// The recorded decisions, flattened oldest-first (`stem ++ cycle`
    /// for lassos).
    pub fn decisions(&self) -> Vec<ExploreDecision> {
        match &self.mode {
            ReplayMode::Explore(d) => d.clone(),
            ReplayMode::Lasso { stem, cycle } => stem.iter().chain(cycle.iter()).copied().collect(),
        }
    }

    /// Whether this is a lasso replay (requiring [`Replay::run_fair`]).
    pub fn is_lasso(&self) -> bool {
        matches!(self.mode, ReplayMode::Lasso { .. })
    }

    /// Re-execute an explore-mode decision list under
    /// [`ProtocolMachine`] semantics.
    ///
    /// Runs the single branch described by the decisions from the
    /// initial configuration, evaluating `safety` in the initial state
    /// and after every step, and returns the first violation (`Err`) or
    /// `Ok(())` if the branch completes safely. The replay is
    /// deterministic even for *mutated* decision lists (as produced by
    /// [`shrink`](crate::shrink())): steps by out-of-range or crashed
    /// processes are skipped and out-of-range message choices are
    /// clamped to the oldest message.
    ///
    /// Errors on lasso mode — lassos denote infinite *fair* runs and
    /// replay through [`Replay::run_fair`] with the fairness bounds.
    pub fn run<P, D>(
        &self,
        make_procs: impl Fn() -> Vec<P>,
        invocations: Vec<Option<P::Inv>>,
        pattern: &FailurePattern,
        detector: D,
        mut safety: impl FnMut(&[P], &[(ProcessId, P::Output)]) -> Result<(), String>,
    ) -> Result<(), String>
    where
        P: Protocol + Clone + std::fmt::Debug,
        D: FdOracle<Value = P::Fd>,
    {
        let ReplayMode::Explore(decisions) = &self.mode else {
            return Err(
                "this replay is a liveness lasso: use Replay::run_fair with the checker's \
                 fairness bounds"
                    .to_string(),
            );
        };
        let machine = ProtocolMachine::<P, _>::new(pattern, oracle_fn(detector));
        let mut cur = machine.initial(make_procs(), invocations);
        let mut outputs = Vec::new();
        cur.collect_outputs(&mut outputs);
        safety(&cur.procs, &outputs)?;
        for d in decisions {
            match machine.transition(&cur, d) {
                StepResult::Next(next) => cur = next,
                StepResult::Disabled => continue,
            }
            cur.collect_outputs(&mut outputs);
            safety(&cur.procs, &outputs)?;
        }
        Ok(())
    }

    /// Verify a lasso against the fair model under [`FairMachine`]
    /// semantics: every decision must be one the engine's fairness rules
    /// allow at its node, and the cycle must return the model to the
    /// structurally identical configuration (state, step-gap counters
    /// and message ages alike), so `stem · cycleʷ` really denotes a fair
    /// infinite run.
    ///
    /// Errors on explore mode — finite safety branches carry no fairness
    /// obligations and replay through [`Replay::run`].
    pub fn run_fair<P, D>(
        &self,
        cfg: &crate::liveness::LivenessConfig,
        make_procs: impl Fn() -> Vec<P>,
        invocations: Vec<Option<P::Inv>>,
        pattern: &FailurePattern,
        mut detector: D,
    ) -> Result<(), String>
    where
        P: Protocol + Clone + std::fmt::Debug + PartialEq,
        P::Msg: PartialEq,
        P::Inv: PartialEq,
        D: FdOracle<Value = P::Fd>,
    {
        let ReplayMode::Lasso { stem, cycle } = &self.mode else {
            return Err(
                "this replay is a finite explorer branch: use Replay::run with a safety \
                 predicate"
                    .to_string(),
            );
        };
        if cycle.is_empty() {
            return Err("a lasso needs a non-empty cycle".to_string());
        }
        let procs = make_procs();
        let n = procs.len();
        crate::liveness::validate::<P, D>(cfg, pattern, n, &mut detector)?;
        let machine = FairMachine::<P, _>::new(
            pattern,
            cfg.max_step_gap,
            cfg.max_delay,
            cfg.t_stable,
            oracle_fn(detector),
        );
        let mut node = machine.initial(procs, invocations);
        let mut head: Option<LiveNode<P>> = None;
        for (i, &dec) in stem.iter().chain(cycle.iter()).enumerate() {
            if i == stem.len() {
                head = Some(node.clone());
            }
            match machine.transition(&node, &dec) {
                StepResult::Next(next) => node = next,
                StepResult::Disabled => {
                    let (p, _) = dec;
                    return Err(format!(
                        "decision #{i} (process {p}) is not fair-feasible at its \
                         configuration — the artifact does not denote a fair run"
                    ));
                }
            }
        }
        let head = head.expect("a non-empty cycle visits the loop head");
        if !node_eq(&head, &node) {
            return Err(
                "cycle does not return to its starting configuration — the artifact \
                 does not denote an infinite run"
                    .to_string(),
            );
        }
        Ok(())
    }
}
