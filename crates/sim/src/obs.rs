//! Zero-cost-when-off observability: counters, histograms and phase
//! timers for the engine, the explorer, the sweep harness and the
//! Figure 3 extraction host.
//!
//! The design mirrors [`crate::TraceMode::Off`]: an [`Obs`] handle is
//! carried by [`crate::SimConfig`] / [`crate::ExploreConfig`] (builders
//! [`crate::SimConfig::with_obs`] / [`crate::ExploreConfig::with_obs`])
//! and defaults to **off**, in which state every instrumentation call
//! inlines to a null-pointer check and returns — no clock reads, no
//! atomics, no allocation. Metrics can never change what a run computes:
//! they feed a side table that is only read by [`Obs::snapshot`].
//!
//! When on, the handle wraps one shared [`Arc`] of atomic cells:
//!
//! * **Counters** ([`CounterId`]) are monotonic `AtomicU64` sums. Workers
//!   write relaxed fetch-adds — lock-free, and since addition commutes the
//!   final totals are independent of thread interleaving, so metrics-on
//!   runs aggregate deterministically at any worker count.
//! * **Histograms** ([`HistId`]) bucket values by power of two (plus
//!   exact count / sum / min / max), same lock-free scheme.
//! * **Phase timers** ([`PhaseId`]) accumulate wall-clock nanoseconds per
//!   named phase via a drop guard ([`PhaseTimer`]); `Instant::now` is
//!   only ever called when the handle is on. (Timings are wall-clock and
//!   therefore *not* run-to-run deterministic — they are the one
//!   intentionally nondeterministic block of the snapshot.)
//!
//! [`Obs::snapshot`] freezes everything into a [`MetricsSnapshot`], whose
//! [`MetricsSnapshot::to_json`] is the `metrics` block the experiment
//! binaries append to their artifacts (`--metrics[=PATH]`).
//!
//! An opt-in **heartbeat** ([`Obs::with_heartbeat`], or
//! `WFD_METRICS=heartbeat` via [`crate::EnvOverrides`]) lets long
//! explorations report progress (states/sec, dedup hit rate, frontier
//! high-water) to stderr at a bounded rate.
//!
//! ```
//! use wfd_sim::{explore, ExploreConfig, FailurePattern, NoDetector, Obs,
//!               Ctx, ProcessId, Protocol};
//! # #[derive(Clone, Debug)]
//! # struct Flood;
//! # impl Protocol for Flood {
//! #     type Msg = (); type Output = (); type Inv = (); type Fd = ();
//! #     fn on_start(&mut self, ctx: &mut Ctx<Self>) { ctx.broadcast_others(()); }
//! #     fn on_message(&mut self, _: &mut Ctx<Self>, _: ProcessId, _: ()) {}
//! # }
//! let obs = Obs::on();
//! let report = explore(
//!     ExploreConfig::new(6).with_obs(obs.clone()),
//!     || vec![Flood, Flood],
//!     vec![None, None],
//!     &FailurePattern::failure_free(2),
//!     NoDetector,
//!     |_, _| Ok(()),
//! );
//! let metrics = obs.snapshot().expect("obs is on");
//! assert_eq!(metrics.counter(wfd_sim::CounterId::ExploreStatesVisited),
//!            report.states_visited as u64);
//! ```

use crate::json::Json;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Power-of-two histogram buckets: bucket `b` holds `0` (for `b == 0`)
/// or values `v` with `2^(b-1) <= v < 2^b`. `u64::BITS + 1` buckets
/// cover the whole domain.
const BUCKETS: usize = (u64::BITS + 1) as usize;

macro_rules! metric_ids {
    ($(#[$enum_meta:meta])* $vis:vis enum $name:ident {
        $($(#[$meta:meta])* $variant:ident => $label:literal,)*
    }) => {
        $(#[$enum_meta])*
        #[derive(Clone, Copy, Debug, PartialEq, Eq)]
        #[repr(usize)]
        $vis enum $name {
            $($(#[$meta])* $variant,)*
        }

        impl $name {
            /// Every id, in declaration (and snapshot) order.
            pub const ALL: &'static [$name] = &[$($name::$variant,)*];

            /// The id's snake_case label, as used in the metrics JSON.
            pub fn name(self) -> &'static str {
                match self {
                    $($name::$variant => $label,)*
                }
            }
        }
    };
}

metric_ids! {
    /// Monotonic counters the instrumented subsystems maintain.
    pub enum CounterId {
        /// Engine steps executed across all instrumented runs.
        EngineSteps => "engine_steps",
        /// Messages sent by protocol handlers under the engine.
        EngineMessagesSent => "engine_messages_sent",
        /// Messages delivered by the engine.
        EngineMessagesDelivered => "engine_messages_delivered",
        /// Outputs emitted by protocol handlers under the engine.
        EngineOutputs => "engine_outputs",
        /// Calls to [`crate::Sim::run`] / [`crate::Sim::run_until`].
        EngineRuns => "engine_runs",
        /// Explorer states expanded (post-dedup).
        ExploreStatesVisited => "explore_states_visited",
        /// Explorer states pruned as already-covered revisits.
        ExploreDedupHits => "explore_dedup_hits",
        /// Distinct keys committed to the explorer's seen-table.
        ExploreDedupEntries => "explore_dedup_entries",
        /// Frontier batches the explorer processed.
        ExploreBatches => "explore_batches",
        /// Child states skipped by sleep-set partial-order reduction.
        ExploreDporPruned => "explore_dpor_pruned",
        /// Keyed states whose canonical form used a non-identity
        /// permutation (symmetry canonicalization took effect).
        ExploreSymmetryHits => "explore_symmetry_hits",
        /// Completed [`explore`](crate::explore()) calls.
        ExploreRuns => "explore_runs",
        /// Runs completed by an instrumented sweep.
        SweepRuns => "sweep_runs",
        /// Forest evaluations served incrementally (prefix extension).
        ForestEvalsIncremental => "forest_evals_incremental",
        /// Forest evaluations that fell back to a full replay.
        ForestEvalsFullReplay => "forest_evals_full_replay",
        /// Samples fed to forest runners (delta on incremental paths,
        /// whole window on replays).
        ForestSamplesConsumed => "forest_samples_consumed",
    }
}

metric_ids! {
    /// Value distributions recorded as power-of-two histograms.
    pub enum HistId {
        /// Messages sent per engine step.
        EngineSendsPerStep => "engine_sends_per_step",
        /// Explorer frontier length at each batch boundary.
        ExploreFrontierLen => "explore_frontier_len",
        /// States taken per explorer batch.
        ExploreBatchSize => "explore_batch_size",
        /// Depth of each state the explorer expanded.
        ExploreStateDepth => "explore_state_depth",
        /// Fresh samples per incremental forest evaluation.
        ForestDeltaSamples => "forest_delta_samples",
    }
}

metric_ids! {
    /// Named phases accumulated by wall-clock span timers.
    pub enum PhaseId {
        /// The engine's step loop ([`crate::Sim::run_until`]).
        EngineRun => "engine_run",
        /// Explorer: parallel fingerprint/pre-read of a batch.
        ExploreKey => "explore_key",
        /// Explorer: sequential budget-aware revisit resolution.
        ExploreRevisit => "explore_revisit",
        /// Explorer: sequential per-batch detector pre-sampling.
        ExploreOracle => "explore_oracle",
        /// Explorer: parallel safety-check + expansion of survivors.
        ExploreExpand => "explore_expand",
        /// Explorer: sequential merge of children and violations.
        ExploreMerge => "explore_merge",
        /// One worker chunk of an instrumented sweep.
        SweepRun => "sweep_run",
        /// Incremental (delta-feed) forest evaluation.
        ForestEvalIncremental => "forest_eval_incremental",
        /// Full-replay forest evaluation.
        ForestEvalFullReplay => "forest_eval_full_replay",
    }
}

/// One histogram: exact count/sum/min/max plus power-of-two buckets.
struct Hist {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Hist {
    fn new() -> Self {
        Hist {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    fn record(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        let b = (u64::BITS - v.leading_zeros()) as usize;
        self.buckets[b].fetch_add(1, Ordering::Relaxed);
    }
}

struct PhaseStat {
    calls: AtomicU64,
    nanos: AtomicU64,
}

/// The shared metric store behind an on-handle.
struct ObsCore {
    counters: [AtomicU64; CounterId::ALL.len()],
    hists: [Hist; HistId::ALL.len()],
    phases: [PhaseStat; PhaseId::ALL.len()],
    /// Minimum interval between heartbeat lines; `None` = no heartbeat.
    heartbeat_every: Option<Duration>,
    /// Nanos-since-`started` of the last heartbeat actually printed.
    heartbeat_last: AtomicU64,
    started: Instant,
}

/// The observability handle: a cheap, cloneable reference to one shared
/// metric store — or nothing at all (the default), in which case every
/// instrumentation method is a no-op. See the [module docs](self).
#[derive(Clone, Default)]
pub struct Obs {
    core: Option<Arc<ObsCore>>,
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.core {
            None => write!(f, "Obs::Off"),
            Some(core) => write!(
                f,
                "Obs::On{}",
                if core.heartbeat_every.is_some() {
                    " (heartbeat)"
                } else {
                    ""
                }
            ),
        }
    }
}

impl Obs {
    /// The no-op handle (the default): all instrumentation compiles down
    /// to a pointer check.
    pub fn off() -> Self {
        Obs { core: None }
    }

    /// A fresh metric store. Clones of this handle share it, so one `Obs`
    /// can be threaded through a sim, an exploration and a sweep and
    /// snapshotted once.
    pub fn on() -> Self {
        Self::build(None)
    }

    /// Like [`Obs::on`], plus a progress heartbeat on stderr at most once
    /// per `every` (rate-limited inside [`Obs::heartbeat`]).
    pub fn with_heartbeat(every: Duration) -> Self {
        Self::build(Some(every))
    }

    /// The handle the environment asks for: `WFD_METRICS` ∈
    /// {`1`/`on`, `heartbeat[=SECS]`} — off otherwise. Explicit builder
    /// choices take precedence; see [`crate::EnvOverrides`].
    pub fn from_env() -> Self {
        crate::EnvOverrides::from_env().resolve_obs(None)
    }

    fn build(heartbeat_every: Option<Duration>) -> Self {
        Obs {
            core: Some(Arc::new(ObsCore {
                counters: std::array::from_fn(|_| AtomicU64::new(0)),
                hists: std::array::from_fn(|_| Hist::new()),
                phases: std::array::from_fn(|_| PhaseStat {
                    calls: AtomicU64::new(0),
                    nanos: AtomicU64::new(0),
                }),
                heartbeat_every,
                heartbeat_last: AtomicU64::new(0),
                started: Instant::now(),
            })),
        }
    }

    /// Whether metrics are being collected. Hot paths may use this to
    /// skip computing a value that only feeds [`Obs::record`].
    #[inline]
    pub fn is_on(&self) -> bool {
        self.core.is_some()
    }

    /// Add `n` to a counter. No-op (one branch) when off.
    #[inline]
    pub fn add(&self, id: CounterId, n: u64) {
        if let Some(core) = &self.core {
            core.counters[id as usize].fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Record one histogram sample. No-op (one branch) when off.
    #[inline]
    pub fn record(&self, id: HistId, value: u64) {
        if let Some(core) = &self.core {
            core.hists[id as usize].record(value);
        }
    }

    /// Start timing a phase; the elapsed wall-clock is accumulated when
    /// the returned guard drops. When off, no clock is read.
    #[inline]
    #[must_use = "the phase is timed until the guard drops"]
    pub fn phase(&self, id: PhaseId) -> PhaseTimer {
        PhaseTimer {
            active: self
                .core
                .as_ref()
                .map(|core| (Arc::clone(core), id, Instant::now())),
        }
    }

    /// Print `line()` to stderr if a heartbeat is configured and at least
    /// the configured interval passed since the last one. The closure is
    /// only invoked when a line will actually be printed, so callers can
    /// format freely.
    pub fn heartbeat(&self, line: impl FnOnce() -> String) {
        let Some(core) = &self.core else { return };
        let Some(every) = core.heartbeat_every else {
            return;
        };
        let now = core.started.elapsed().as_nanos() as u64;
        let last = core.heartbeat_last.load(Ordering::Relaxed);
        if now.saturating_sub(last) < every.as_nanos() as u64 {
            return;
        }
        // One winner per interval even if several threads race here.
        if core
            .heartbeat_last
            .compare_exchange(last, now, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
        {
            eprintln!("[obs {:>8.1}s] {}", now as f64 / 1e9, line());
        }
    }

    /// Freeze the current totals into an immutable snapshot (`None` when
    /// the handle is off). Counters keep accumulating afterwards; take
    /// the snapshot when the measured work is done.
    pub fn snapshot(&self) -> Option<MetricsSnapshot> {
        let core = self.core.as_ref()?;
        Some(MetricsSnapshot {
            counters: CounterId::ALL
                .iter()
                .map(|&id| (id, core.counters[id as usize].load(Ordering::Relaxed)))
                .collect(),
            hists: HistId::ALL
                .iter()
                .map(|&id| {
                    let h = &core.hists[id as usize];
                    let count = h.count.load(Ordering::Relaxed);
                    HistSnapshot {
                        id,
                        count,
                        sum: h.sum.load(Ordering::Relaxed),
                        min: if count == 0 {
                            0
                        } else {
                            h.min.load(Ordering::Relaxed)
                        },
                        max: h.max.load(Ordering::Relaxed),
                        buckets: h
                            .buckets
                            .iter()
                            .enumerate()
                            .filter_map(|(b, c)| {
                                let c = c.load(Ordering::Relaxed);
                                (c > 0).then_some((bucket_le(b), c))
                            })
                            .collect(),
                    }
                })
                .collect(),
            phases: PhaseId::ALL
                .iter()
                .map(|&id| {
                    let p = &core.phases[id as usize];
                    PhaseSnapshot {
                        id,
                        calls: p.calls.load(Ordering::Relaxed),
                        nanos: p.nanos.load(Ordering::Relaxed),
                    }
                })
                .collect(),
        })
    }
}

/// Inclusive upper bound of power-of-two bucket `b`.
fn bucket_le(b: usize) -> u64 {
    if b >= 64 {
        u64::MAX
    } else {
        (1u64 << b) - 1
    }
}

/// Drop guard returned by [`Obs::phase`]; accumulates the elapsed
/// wall-clock into the phase's totals when dropped.
pub struct PhaseTimer {
    active: Option<(Arc<ObsCore>, PhaseId, Instant)>,
}

impl Drop for PhaseTimer {
    fn drop(&mut self) {
        if let Some((core, id, t0)) = self.active.take() {
            let stat = &core.phases[id as usize];
            stat.calls.fetch_add(1, Ordering::Relaxed);
            stat.nanos
                .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
    }
}

/// One histogram, frozen: exact moments plus the non-empty power-of-two
/// buckets as `(inclusive upper bound, count)` pairs.
#[derive(Clone, Debug)]
pub struct HistSnapshot {
    /// Which histogram.
    pub id: HistId,
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Non-empty buckets, ascending by bound.
    pub buckets: Vec<(u64, u64)>,
}

/// One phase timer, frozen.
#[derive(Clone, Debug)]
pub struct PhaseSnapshot {
    /// Which phase.
    pub id: PhaseId,
    /// Times the phase ran.
    pub calls: u64,
    /// Total wall-clock nanoseconds across all calls.
    pub nanos: u64,
}

/// An immutable copy of every metric at one point in time — what
/// [`MetricsSnapshot::to_json`] serializes into the `metrics` block of
/// the experiment artifacts.
#[derive(Clone, Debug)]
pub struct MetricsSnapshot {
    /// All counters, in [`CounterId::ALL`] order.
    pub counters: Vec<(CounterId, u64)>,
    /// All histograms, in [`HistId::ALL`] order.
    pub hists: Vec<HistSnapshot>,
    /// All phase timers, in [`PhaseId::ALL`] order.
    pub phases: Vec<PhaseSnapshot>,
}

impl MetricsSnapshot {
    /// The value of one counter (0 if the id is somehow absent).
    pub fn counter(&self, id: CounterId) -> u64 {
        self.counters
            .iter()
            .find(|(i, _)| *i == id)
            .map_or(0, |(_, v)| *v)
    }

    /// The frozen histogram for `id`.
    pub fn hist(&self, id: HistId) -> Option<&HistSnapshot> {
        self.hists.iter().find(|h| h.id == id)
    }

    /// The frozen phase timer for `id`.
    pub fn phase(&self, id: PhaseId) -> Option<&PhaseSnapshot> {
        self.phases.iter().find(|p| p.id == id)
    }

    /// The snapshot as the `metrics` JSON block:
    /// `{"counters": {...}, "histograms": {...}, "phases": {...}}`.
    /// Every declared id appears (zeros included) so the schema is stable
    /// across workloads.
    pub fn to_json(&self) -> Json {
        let counters = Json::Obj(
            self.counters
                .iter()
                .map(|(id, v)| (id.name().to_string(), Json::u64(*v)))
                .collect(),
        );
        let hists = Json::Obj(
            self.hists
                .iter()
                .map(|h| {
                    (
                        h.id.name().to_string(),
                        Json::Obj(vec![
                            ("count".to_string(), Json::u64(h.count)),
                            ("sum".to_string(), Json::u64(h.sum)),
                            ("min".to_string(), Json::u64(h.min)),
                            ("max".to_string(), Json::u64(h.max)),
                            (
                                "buckets".to_string(),
                                Json::Arr(
                                    h.buckets
                                        .iter()
                                        .map(|(le, c)| {
                                            Json::Obj(vec![
                                                ("le".to_string(), Json::u64(*le)),
                                                ("count".to_string(), Json::u64(*c)),
                                            ])
                                        })
                                        .collect(),
                                ),
                            ),
                        ]),
                    )
                })
                .collect(),
        );
        let phases = Json::Obj(
            self.phases
                .iter()
                .map(|p| {
                    (
                        p.id.name().to_string(),
                        Json::Obj(vec![
                            ("calls".to_string(), Json::u64(p.calls)),
                            ("nanos".to_string(), Json::u64(p.nanos)),
                        ]),
                    )
                })
                .collect(),
        );
        Json::Obj(vec![
            ("counters".to_string(), counters),
            ("histograms".to_string(), hists),
            ("phases".to_string(), phases),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_is_inert() {
        let obs = Obs::off();
        assert!(!obs.is_on());
        obs.add(CounterId::EngineSteps, 5);
        obs.record(HistId::EngineSendsPerStep, 3);
        drop(obs.phase(PhaseId::EngineRun));
        obs.heartbeat(|| unreachable!("off handles never format"));
        assert!(obs.snapshot().is_none());
    }

    #[test]
    fn clones_share_one_store() {
        let obs = Obs::on();
        let clone = obs.clone();
        obs.add(CounterId::SweepRuns, 2);
        clone.add(CounterId::SweepRuns, 3);
        let snap = obs.snapshot().unwrap();
        assert_eq!(snap.counter(CounterId::SweepRuns), 5);
    }

    #[test]
    fn histogram_moments_and_buckets() {
        let obs = Obs::on();
        for v in [0, 1, 2, 3, 1024] {
            obs.record(HistId::ExploreBatchSize, v);
        }
        let snap = obs.snapshot().unwrap();
        let h = snap.hist(HistId::ExploreBatchSize).unwrap();
        assert_eq!((h.count, h.sum, h.min, h.max), (5, 1030, 0, 1024));
        // 0 → le 0; 1 → le 1; 2,3 → le 3; 1024 → le 2047.
        assert_eq!(h.buckets, vec![(0, 1), (1, 1), (3, 2), (2047, 1)]);
    }

    #[test]
    fn phase_timer_accumulates_on_drop() {
        let obs = Obs::on();
        {
            let _t = obs.phase(PhaseId::ExploreExpand);
            std::hint::black_box(());
        }
        let snap = obs.snapshot().unwrap();
        let p = snap.phase(PhaseId::ExploreExpand).unwrap();
        assert_eq!(p.calls, 1);
    }

    #[test]
    fn snapshot_json_is_parseable_and_complete() {
        let obs = Obs::on();
        obs.add(CounterId::ExploreStatesVisited, 7);
        obs.record(HistId::ExploreFrontierLen, 12);
        drop(obs.phase(PhaseId::ExploreMerge));
        let json = obs.snapshot().unwrap().to_json();
        let parsed = Json::parse(&json.to_string()).expect("metrics JSON parses");
        let counters = parsed.get("counters").expect("counters block");
        for id in CounterId::ALL {
            assert!(counters.get(id.name()).is_some(), "missing {}", id.name());
        }
        let hists = parsed.get("histograms").expect("histograms block");
        for id in HistId::ALL {
            assert!(hists.get(id.name()).is_some(), "missing {}", id.name());
        }
        let phases = parsed.get("phases").expect("phases block");
        for id in PhaseId::ALL {
            assert!(phases.get(id.name()).is_some(), "missing {}", id.name());
        }
        assert_eq!(
            counters
                .get("explore_states_visited")
                .and_then(Json::as_u64),
            Some(7)
        );
    }

    #[test]
    fn bucket_bounds() {
        assert_eq!(bucket_le(0), 0);
        assert_eq!(bucket_le(1), 1);
        assert_eq!(bucket_le(11), 2047);
        assert_eq!(bucket_le(64), u64::MAX);
    }
}
