//! The discrete-event simulation engine.

use crate::failure::FailurePattern;
use crate::id::{ProcessId, Time};
use crate::machine::{dispatch, ResolvedStep};
use crate::obs::{CounterId, HistId, Obs, PhaseId};
use crate::oracle::FdOracle;
use crate::protocol::{Ctx, Protocol};
#[cfg(debug_assertions)]
use crate::protocol::{Footprint, StepKind};
use crate::scheduler::{MsgMeta, Scheduler};
use crate::trace::{EventKind, Trace, TraceMode, TraceSummary};
use std::collections::VecDeque;

/// Schedulers choose among at most this many oldest messages per step (a
/// bounded window keeps per-step cost O(1) for flood-y protocols).
/// Shared with `crate::liveness`, whose fair state graph must branch on
/// exactly the deliveries a scheduler could pick.
pub(crate) const POLICY_WINDOW: usize = 32;

/// Static parameters of a simulation.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Number of processes `n = |Π|`.
    pub n: usize,
    /// Maximum number of steps to execute in [`Sim::run`].
    pub horizon: u64,
    /// Fairness bound: a message to a live process is delivered within this
    /// many time units of being sent (delays up to the bound are allowed).
    pub max_delay: Time,
    /// Fairness bound: a live process takes a step at least this often.
    pub max_step_gap: Time,
    /// How much of the run to record (default: everything).
    pub trace_mode: TraceMode,
    /// Observability handle (default: [`Obs::off`], which costs nothing).
    /// Metrics never influence the executed schedule or the trace.
    pub obs: Obs,
}

impl SimConfig {
    /// Defaults scaled to the system size: delay and step-gap bounds of
    /// `4·n`, horizon of 50 000 steps, full tracing, metrics off.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "a system needs at least one process");
        SimConfig {
            n,
            horizon: 50_000,
            max_delay: 4 * n as Time,
            max_step_gap: 4 * n as Time,
            trace_mode: TraceMode::Full,
            obs: Obs::off(),
        }
    }

    /// Override how much of the run is recorded. The executed schedule is
    /// identical in every mode; only the record (and its cost) changes.
    pub fn with_trace_mode(mut self, mode: TraceMode) -> Self {
        self.trace_mode = mode;
        self
    }

    /// Override the run horizon (total steps).
    pub fn with_horizon(mut self, horizon: u64) -> Self {
        self.horizon = horizon;
        self
    }

    /// Override the message-delay fairness bound.
    pub fn with_max_delay(mut self, d: Time) -> Self {
        assert!(d > 0, "max_delay must be positive");
        self.max_delay = d;
        self
    }

    /// Override the step-gap fairness bound.
    pub fn with_max_step_gap(mut self, g: Time) -> Self {
        assert!(g > 0, "max_step_gap must be positive");
        self.max_step_gap = g;
        self
    }

    /// Attach an observability handle (see [`crate::obs`]). Like the
    /// other builders this is an *explicit* choice and therefore beats
    /// the `WFD_METRICS` environment toggle — binaries that want env
    /// control resolve via [`crate::EnvOverrides::resolve_obs`] first.
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }
}

/// What [`Sim::into_parts`] returns: the protocol instances, the
/// detector, the scheduler, and the trace.
pub type SimParts<P, D, S> = (
    Vec<P>,
    D,
    S,
    Trace<<P as Protocol>::Msg, <P as Protocol>::Output>,
);

/// Why a run stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// The stop predicate returned true.
    Predicate,
    /// The step horizon was reached.
    Horizon,
    /// Every process has crashed.
    AllCrashed,
}

/// Result of running a simulation.
#[derive(Clone, Copy, Debug)]
pub struct RunOutcome {
    /// Steps executed in this call.
    pub steps: u64,
    /// Why execution stopped.
    pub reason: StopReason,
}

#[derive(Clone, Debug)]
struct Envelope<M> {
    id: u64,
    from: ProcessId,
    sent_at: Time,
    msg: M,
}

/// A simulation: `n` protocol instances + failure pattern + detector oracle
/// + scheduler, executed step by step on the discrete global clock.
///
/// Runs are deterministic functions of their inputs (including scheduler
/// seeds), which the test suites exploit heavily.
#[derive(Debug)]
pub struct Sim<P: Protocol, D, S> {
    cfg: SimConfig,
    procs: Vec<P>,
    pattern: FailurePattern,
    detector: D,
    sched: S,
    /// Per-receiver FIFO inboxes (scheduling may still reorder deliveries).
    inboxes: Vec<VecDeque<Envelope<P::Msg>>>,
    invocations: Vec<VecDeque<(Time, P::Inv)>>,
    trace: Trace<P::Msg, P::Output>,
    stats: TraceSummary,
    now: Time,
    started: Vec<bool>,
    crash_logged: Vec<bool>,
    last_step: Vec<Time>,
    next_msg_id: u64,
    // Reused per-step scratch buffers: the delivery loop allocates nothing.
    alive_buf: Vec<ProcessId>,
    metas_buf: Vec<MsgMeta>,
    send_buf: Vec<(ProcessId, P::Msg)>,
    out_buf: Vec<P::Output>,
}

impl<P, D, S> Sim<P, D, S>
where
    P: Protocol,
    D: FdOracle<Value = P::Fd>,
    S: Scheduler,
{
    /// Create a simulation.
    ///
    /// # Panics
    ///
    /// Panics if `procs.len()` or the pattern's size disagree with `cfg.n`.
    pub fn new(
        cfg: SimConfig,
        procs: Vec<P>,
        pattern: FailurePattern,
        detector: D,
        sched: S,
    ) -> Self {
        assert_eq!(procs.len(), cfg.n, "one protocol instance per process");
        assert_eq!(pattern.n(), cfg.n, "failure pattern size must match n");
        Sim {
            inboxes: (0..cfg.n).map(|_| VecDeque::new()).collect(),
            invocations: vec![VecDeque::new(); cfg.n],
            trace: Trace::new(cfg.n),
            stats: TraceSummary::default(),
            now: 0,
            started: vec![false; cfg.n],
            crash_logged: vec![false; cfg.n],
            last_step: vec![0; cfg.n],
            next_msg_id: 0,
            alive_buf: Vec::with_capacity(cfg.n),
            metas_buf: Vec::new(),
            send_buf: Vec::new(),
            out_buf: Vec::new(),
            cfg,
            procs,
            pattern,
            detector,
            sched,
        }
    }

    /// Schedule an operation invocation for process `p` at the first step
    /// it takes at or after time `t`. Invocations for the same process are
    /// consumed in scheduling order.
    pub fn schedule_invoke(&mut self, p: ProcessId, t: Time, inv: P::Inv) {
        let q = &mut self.invocations[p.index()];
        debug_assert!(
            q.back().is_none_or(|(bt, _)| *bt <= t),
            "invocations must be scheduled in nondecreasing time order per process"
        );
        q.push_back((t, inv));
    }

    /// The current global time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// The configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// The failure pattern of this run.
    pub fn pattern(&self) -> &FailurePattern {
        &self.pattern
    }

    /// The run trace so far. What it records depends on
    /// [`SimConfig::trace_mode`]; see [`Sim::stats`] for mode-independent
    /// aggregate counters.
    pub fn trace(&self) -> &Trace<P::Msg, P::Output> {
        &self.trace
    }

    /// Aggregate run counters (steps, messages, outputs, crashes),
    /// maintained exactly in every [`TraceMode`] — in
    /// [`TraceMode::Full`] they equal `trace().summary()` except for the
    /// event total, which counts recorded events only.
    pub fn stats(&self) -> TraceSummary {
        TraceSummary {
            events: self.trace.len(),
            ..self.stats
        }
    }

    /// The protocol instances (post-run state inspection).
    pub fn processes(&self) -> &[P] {
        &self.procs
    }

    /// Mutable access to the detector oracle (e.g. to extract a recorded
    /// history after the run).
    pub fn detector_mut(&mut self) -> &mut D {
        &mut self.detector
    }

    /// The scheduling policy (e.g. to read a recorded decision log after
    /// the run; see [`crate::RecordedSchedule`]).
    pub fn scheduler(&self) -> &S {
        &self.sched
    }

    /// Mutable access to the scheduling policy.
    pub fn scheduler_mut(&mut self) -> &mut S {
        &mut self.sched
    }

    /// Consume the simulation, returning
    /// `(processes, detector, scheduler, trace)` — everything a caller
    /// handed to [`Sim::new`] that carries post-run state worth
    /// inspecting (e.g. a [`crate::RecordedSchedule`] decision log).
    pub fn into_parts(self) -> SimParts<P, D, S> {
        (self.procs, self.detector, self.sched, self.trace)
    }

    /// Number of undelivered messages currently in flight.
    pub fn in_flight(&self) -> usize {
        self.inboxes.iter().map(|q| q.len()).sum()
    }

    /// Run until the horizon (or all processes crash).
    pub fn run(&mut self) -> RunOutcome {
        self.run_until(|_, _| false)
    }

    /// Run until `stop(trace, processes)` holds (checked after every step),
    /// the horizon is reached, or all processes have crashed.
    pub fn run_until(
        &mut self,
        mut stop: impl FnMut(&Trace<P::Msg, P::Output>, &[P]) -> bool,
    ) -> RunOutcome {
        let phase = self.cfg.obs.phase(PhaseId::EngineRun);
        let before = self.stats;
        let mut steps = 0u64;
        let outcome = loop {
            if steps >= self.cfg.horizon {
                break RunOutcome {
                    steps,
                    reason: StopReason::Horizon,
                };
            }
            if !self.step_once() {
                break RunOutcome {
                    steps,
                    reason: StopReason::AllCrashed,
                };
            }
            steps += 1;
            if stop(&self.trace, &self.procs) {
                break RunOutcome {
                    steps,
                    reason: StopReason::Predicate,
                };
            }
        };
        drop(phase);
        // Counters come from the engine's always-exact `stats` deltas, so
        // the step loop itself carries no per-step metric cost beyond the
        // one `is_on` branch in `step_once`.
        let obs = &self.cfg.obs;
        if obs.is_on() {
            obs.add(CounterId::EngineRuns, 1);
            obs.add(CounterId::EngineSteps, outcome.steps);
            obs.add(
                CounterId::EngineMessagesSent,
                (self.stats.messages_sent - before.messages_sent) as u64,
            );
            obs.add(
                CounterId::EngineMessagesDelivered,
                (self.stats.messages_delivered - before.messages_delivered) as u64,
            );
            obs.add(
                CounterId::EngineOutputs,
                (self.stats.outputs - before.outputs) as u64,
            );
        }
        outcome
    }

    /// Execute one step of one process. Returns `false` if no process is
    /// alive (nothing happened).
    ///
    /// The step schedule is a pure function of the inputs — the
    /// [`TraceMode`] never influences which process steps or which message
    /// it receives, only what gets recorded.
    pub fn step_once(&mut self) -> bool {
        self.log_new_crashes();
        let record_msgs = self.cfg.trace_mode.records_messages();
        let record_outs = self.cfg.trace_mode.records_outputs();

        let mut alive = std::mem::take(&mut self.alive_buf);
        alive.clear();
        alive.extend(ProcessId::all(self.cfg.n).filter(|&p| !self.pattern.is_crashed(p, self.now)));
        if alive.is_empty() {
            self.alive_buf = alive;
            return false;
        }

        let actor = self.choose_actor(&alive);
        self.alive_buf = alive;
        self.last_step[actor.index()] = self.now;
        self.stats.steps += 1;

        let fd = self.detector.query(actor, self.now);
        let mut ctx = Ctx::<P>::with_buffers(
            actor,
            self.cfg.n,
            self.now,
            fd,
            std::mem::take(&mut self.send_buf),
            std::mem::take(&mut self.out_buf),
        );

        // Debug builds validate every executed step against the declared
        // footprint: an undeclared send or output is a protocol bug that
        // would make the explorer's DPOR unsound, so it panics here too.
        // Invocation steps are exempt — `StepKind` has no invoke variant
        // (the explorer folds pending invocations into `Start`).
        #[cfg(debug_assertions)]
        let mut declared: Option<Footprint> = None;

        // Resolve the step kind: start > pending invocation > message/λ.
        // The resolution (scheduler picks, trace events, footprint
        // declarations) is the engine's own; the callback routing is the
        // shared [`dispatch`], so the engine executes the same step
        // semantics as the explorer and the liveness checker. Invocations
        // arrive over time here, so they stay stand-alone steps instead
        // of being folded into `Start` as the machine layer does.
        let step: ResolvedStep<P> = if !self.started[actor.index()] {
            self.started[actor.index()] = true;
            if record_msgs {
                self.trace.push(self.now, actor, EventKind::Start);
            }
            #[cfg(debug_assertions)]
            {
                declared = Some(self.procs[actor.index()].footprint(
                    actor,
                    self.cfg.n,
                    StepKind::Start { inv: None },
                ));
            }
            ResolvedStep::Start { inv: None }
        } else if self.invocations[actor.index()]
            .front()
            .is_some_and(|(t, _)| *t <= self.now)
        {
            let (_, inv) = self.invocations[actor.index()]
                .pop_front()
                .expect("checked");
            if record_msgs {
                self.trace.push(self.now, actor, EventKind::Invoke);
            }
            ResolvedStep::Invoke(inv)
        } else {
            match self.choose_message(actor) {
                Some(pos) => {
                    let env = self.inboxes[actor.index()]
                        .remove(pos)
                        .expect("chosen message position is valid");
                    self.stats.messages_delivered += 1;
                    if record_msgs {
                        self.trace.push(
                            self.now,
                            actor,
                            EventKind::Deliver {
                                from: env.from,
                                msg: env.msg.clone(),
                            },
                        );
                    }
                    #[cfg(debug_assertions)]
                    {
                        declared = Some(self.procs[actor.index()].footprint(
                            actor,
                            self.cfg.n,
                            StepKind::Deliver {
                                from: env.from,
                                msg: &env.msg,
                            },
                        ));
                    }
                    ResolvedStep::Deliver {
                        from: env.from,
                        msg: env.msg,
                    }
                }
                None => {
                    if record_msgs {
                        self.trace.push(self.now, actor, EventKind::Lambda);
                    }
                    #[cfg(debug_assertions)]
                    {
                        declared = Some(self.procs[actor.index()].footprint(
                            actor,
                            self.cfg.n,
                            StepKind::Tick,
                        ));
                    }
                    ResolvedStep::Tick
                }
            }
        };
        dispatch(&mut self.procs[actor.index()], &mut ctx, step);

        let (mut sends, mut outs) = ctx.into_buffers();
        #[cfg(debug_assertions)]
        if let Some(fp) = declared {
            for (to, _) in &sends {
                assert!(
                    fp.may_send_to(*to),
                    "footprint violation: {actor} sent to {to} without declaring it"
                );
            }
            assert!(
                outs.is_empty() || fp.may_output(),
                "footprint violation: {actor} emitted an output without declaring it"
            );
        }
        self.cfg
            .obs
            .record(HistId::EngineSendsPerStep, sends.len() as u64);
        self.stats.messages_sent += sends.len();
        for (to, msg) in sends.drain(..) {
            assert!(to.index() < self.cfg.n, "send to unknown process {to}");
            if record_msgs {
                self.trace.push(
                    self.now,
                    actor,
                    EventKind::Send {
                        to,
                        msg: msg.clone(),
                    },
                );
            }
            // Inboxes of already-crashed receivers are a black hole.
            if !self.pattern.is_crashed(to, self.now) {
                self.inboxes[to.index()].push_back(Envelope {
                    id: self.next_msg_id,
                    from: actor,
                    sent_at: self.now,
                    msg,
                });
            }
            self.next_msg_id += 1;
        }
        self.stats.outputs += outs.len();
        for out in outs.drain(..) {
            if record_outs {
                self.trace.push(self.now, actor, EventKind::Output(out));
            }
        }
        self.send_buf = sends;
        self.out_buf = outs;

        self.now += 1;
        true
    }

    fn log_new_crashes(&mut self) {
        for p in ProcessId::all(self.cfg.n) {
            if !self.crash_logged[p.index()] && self.pattern.is_crashed(p, self.now) {
                self.crash_logged[p.index()] = true;
                self.stats.crashes += 1;
                let t = self
                    .pattern
                    .crash_time(p)
                    .expect("crashed implies crash time");
                if self.cfg.trace_mode.records_outputs() {
                    self.trace.push(t, p, EventKind::Crash);
                }
                // Reliable links do not deliver to crashed processes — drop
                // their inbox so the fairness logic ignores those messages.
                self.inboxes[p.index()].clear();
            }
        }
    }

    /// Fairness-respecting actor choice: if some alive process is overdue
    /// (no step for `max_step_gap`), the most-overdue one is forced;
    /// otherwise the policy picks among all alive processes.
    fn choose_actor(&mut self, alive: &[ProcessId]) -> ProcessId {
        // NOTE: the liveness checker (`crate::liveness`) mirrors this rule
        // and `choose_message` exactly when it builds its fair state
        // graph. Any change to the forcing rules here must be reflected
        // there, or "all fair runs" stops meaning "all engine runs".
        let overdue = alive
            .iter()
            .copied()
            .filter(|p| {
                let last = self.last_step[p.index()];
                self.started[p.index()] && self.now.saturating_sub(last) >= self.cfg.max_step_gap
                    || !self.started[p.index()] && self.now >= self.cfg.max_step_gap
            })
            .min_by_key(|p| self.last_step[p.index()]);
        if let Some(p) = overdue {
            return p;
        }
        let idx = self.sched.pick_actor(self.now, alive);
        assert!(idx < alive.len(), "scheduler returned out-of-range actor");
        alive[idx]
    }

    /// Fairness-respecting message choice for `actor`: an overdue message
    /// (older than `max_delay`) is forced oldest-first; otherwise the
    /// policy chooses among deliverable messages or λ. Returns an index
    /// into the actor's inbox.
    fn choose_message(&mut self, actor: ProcessId) -> Option<usize> {
        let inbox = &self.inboxes[actor.index()];
        if inbox.is_empty() {
            return None;
        }
        // The inbox is FIFO, so the front message is the oldest: if it is
        // overdue it must be delivered now.
        if self
            .now
            .saturating_sub(inbox.front().expect("non-empty").sent_at)
            >= self.cfg.max_delay
        {
            return Some(0);
        }
        // Policies choose among the oldest messages only (a bounded window
        // keeps per-step cost O(1) for flood-y protocols); reordering
        // within the window plus the overdue rule above preserves
        // fairness.
        let mut metas = std::mem::take(&mut self.metas_buf);
        metas.clear();
        metas.extend(inbox.iter().take(POLICY_WINDOW).map(|e| MsgMeta {
            id: e.id,
            from: e.from,
            sent_at: e.sent_at,
        }));
        let choice = match self.sched.pick_message(self.now, actor, &metas) {
            Some(k) => {
                assert!(k < metas.len(), "scheduler returned out-of-range message");
                Some(k)
            }
            None => None,
        };
        self.metas_buf = metas;
        choice
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::NoDetector;
    use crate::scheduler::{Adversarial, RandomFair, RoundRobin};

    /// Each process repeatedly pings its successor; counts pongs.
    #[derive(Debug)]
    struct Ring {
        pings_seen: usize,
    }

    #[derive(Clone, Debug, PartialEq)]
    enum RingMsg {
        Ping,
    }

    impl Protocol for Ring {
        type Msg = RingMsg;
        type Output = usize;
        type Inv = ();
        type Fd = ();

        fn on_start(&mut self, ctx: &mut Ctx<Self>) {
            let next = ProcessId((ctx.me().index() + 1) % ctx.n());
            ctx.send(next, RingMsg::Ping);
        }

        fn on_message(&mut self, ctx: &mut Ctx<Self>, _from: ProcessId, _msg: RingMsg) {
            self.pings_seen += 1;
            ctx.output(self.pings_seen);
            let next = ProcessId((ctx.me().index() + 1) % ctx.n());
            ctx.send(next, RingMsg::Ping);
        }
    }

    fn ring_sim(n: usize, pattern: FailurePattern) -> Sim<Ring, NoDetector, RoundRobin> {
        Sim::new(
            SimConfig::new(n).with_horizon(2_000),
            (0..n).map(|_| Ring { pings_seen: 0 }).collect(),
            pattern,
            NoDetector,
            RoundRobin::new(),
        )
    }

    #[test]
    fn ring_makes_progress_under_every_policy() {
        let n = 3;
        let mk_procs = || (0..n).map(|_| Ring { pings_seen: 0 }).collect::<Vec<_>>();
        let cfg = SimConfig::new(n).with_horizon(2_000);
        let pat = FailurePattern::failure_free(n);

        fn check<D: FdOracle<Value = ()>, S: Scheduler>(
            name: &str,
            sim: &Sim<Ring, D, S>,
            n: usize,
        ) {
            for p in ProcessId::all(n) {
                assert!(
                    sim.trace().outputs_of(p).count() > 10,
                    "{name}: {p} should have made progress"
                );
            }
        }

        let mut s1 = Sim::new(
            cfg.clone(),
            mk_procs(),
            pat.clone(),
            NoDetector,
            RoundRobin::new(),
        );
        s1.run();
        check("rr", &s1, n);
        let mut s2 = Sim::new(
            cfg.clone(),
            mk_procs(),
            pat.clone(),
            NoDetector,
            RandomFair::new(9),
        );
        s2.run();
        check("rand", &s2, n);
        let mut s3 = Sim::new(cfg, mk_procs(), pat, NoDetector, Adversarial::new(9));
        s3.run();
        check("adv", &s3, n);
    }

    #[test]
    fn determinism_same_inputs_same_trace() {
        let n = 4;
        let run = || {
            let mut sim = Sim::new(
                SimConfig::new(n).with_horizon(500),
                (0..n).map(|_| Ring { pings_seen: 0 }).collect(),
                FailurePattern::failure_free(n).with_crash(ProcessId(2), 100),
                NoDetector,
                RandomFair::new(1234),
            );
            sim.run();
            sim.trace().events().to_vec()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn crashed_process_takes_no_steps_after_crash() {
        let n = 3;
        let crash_t = 50;
        let mut sim = ring_sim(
            n,
            FailurePattern::failure_free(n).with_crash(ProcessId(0), crash_t),
        );
        sim.run();
        let late_steps = sim
            .trace()
            .events()
            .iter()
            .filter(|e| {
                e.pid == ProcessId(0) && e.time >= crash_t && !matches!(e.kind, EventKind::Crash)
            })
            .count();
        assert_eq!(late_steps, 0, "no events from p0 at/after its crash time");
        assert_eq!(sim.trace().crashes().count(), 1);
    }

    #[test]
    fn all_crashed_stops_run() {
        let n = 2;
        let mut sim = ring_sim(
            n,
            FailurePattern::with_crashes(n, &[(ProcessId(0), 0), (ProcessId(1), 0)]),
        );
        let out = sim.run();
        assert_eq!(out.reason, StopReason::AllCrashed);
        assert_eq!(out.steps, 0);
    }

    #[test]
    fn horizon_stops_run() {
        let mut sim = ring_sim(2, FailurePattern::failure_free(2));
        let out = sim.run();
        assert_eq!(out.reason, StopReason::Horizon);
        assert_eq!(out.steps, 2_000);
    }

    #[test]
    fn predicate_stops_run() {
        let mut sim = ring_sim(3, FailurePattern::failure_free(3));
        let out = sim.run_until(|trace, _| trace.outputs().count() >= 5);
        assert_eq!(out.reason, StopReason::Predicate);
        assert_eq!(sim.trace().outputs().count(), 5);
    }

    #[test]
    fn fairness_every_correct_process_keeps_stepping_under_adversary() {
        let n = 4;
        let cfg = SimConfig::new(n).with_horizon(4_000);
        let mut sim = Sim::new(
            cfg,
            (0..n).map(|_| Ring { pings_seen: 0 }).collect(),
            FailurePattern::failure_free(n),
            NoDetector,
            Adversarial::new(0),
        );
        sim.run();
        for p in ProcessId::all(n) {
            let steps = sim.trace().steps_of(p);
            // With max_step_gap = 16 and 4000 steps, each process must step
            // at least every 16 time units.
            assert!(steps >= 4_000 / (16 + 1), "{p} starved: only {steps} steps");
        }
    }

    #[test]
    fn fairness_messages_are_delivered_within_bound_under_adversary() {
        let n = 3;
        let cfg = SimConfig::new(n).with_horizon(3_000);
        let mut sim = Sim::new(
            cfg,
            (0..n).map(|_| Ring { pings_seen: 0 }).collect(),
            FailurePattern::failure_free(n),
            NoDetector,
            Adversarial::new(7),
        );
        sim.run();
        // Every process keeps receiving pings: delivery can't be postponed
        // forever.
        for p in ProcessId::all(n) {
            assert!(
                sim.trace().outputs_of(p).count() > 20,
                "{p} should keep receiving pings under the adversary"
            );
        }
        // And nothing older than the bound lingers in flight for a live
        // receiver at the end of the run (receivers all alive here).
        let now = sim.now();
        let max_delay = sim.config().max_delay;
        // In-flight messages may be up to max_delay + max_step_gap old
        // because forcing happens when the receiver steps.
        let slack = 2 * (max_delay + sim.config().max_step_gap);
        for inbox in &sim.inboxes {
            for e in inbox {
                assert!(now - e.sent_at <= slack, "stale message in flight");
            }
        }
    }

    /// Invocation-driven protocol: outputs the doubled invocation payload.
    #[derive(Debug)]
    struct Doubler;

    impl Protocol for Doubler {
        type Msg = ();
        type Output = u32;
        type Inv = u32;
        type Fd = ();

        fn on_message(&mut self, _ctx: &mut Ctx<Self>, _from: ProcessId, _msg: ()) {}

        fn on_invoke(&mut self, ctx: &mut Ctx<Self>, inv: u32) {
            ctx.output(inv * 2);
        }
    }

    #[test]
    fn invocations_are_consumed_in_order_at_or_after_their_time() {
        let n = 2;
        let mut sim = Sim::new(
            SimConfig::new(n).with_horizon(200),
            vec![Doubler, Doubler],
            FailurePattern::failure_free(n),
            NoDetector,
            RoundRobin::new(),
        );
        sim.schedule_invoke(ProcessId(0), 0, 1);
        sim.schedule_invoke(ProcessId(0), 10, 2);
        sim.schedule_invoke(ProcessId(1), 5, 3);
        sim.run();
        let outs0: Vec<u32> = sim
            .trace()
            .outputs_of(ProcessId(0))
            .map(|(_, o)| *o)
            .collect();
        assert_eq!(outs0, vec![2, 4]);
        let (t, _) = sim
            .trace()
            .outputs_of(ProcessId(1))
            .next()
            .expect("p1 output");
        assert!(t >= 5, "invocation must not fire before its scheduled time");
    }

    #[test]
    fn messages_to_crashed_processes_are_dropped() {
        let n = 2;
        let mut sim = ring_sim(
            n,
            FailurePattern::failure_free(n).with_crash(ProcessId(1), 1),
        );
        sim.run_until(|trace, _| trace.events().len() > 100);
        assert!(
            sim.inboxes[1].is_empty(),
            "inbox of crashed p1 should be dropped"
        );
    }

    #[test]
    #[should_panic(expected = "one protocol instance per process")]
    fn mismatched_process_count_panics() {
        let _ = Sim::new(
            SimConfig::new(3),
            vec![Doubler],
            FailurePattern::failure_free(3),
            NoDetector,
            RoundRobin::new(),
        );
    }

    #[test]
    fn into_parts_returns_state() {
        let n = 2;
        let mut sim = ring_sim(n, FailurePattern::failure_free(n));
        sim.run_until(|t, _| t.outputs().count() >= 4);
        let (procs, _det, _sched, trace) = sim.into_parts();
        assert_eq!(procs.len(), 2);
        assert!(procs.iter().map(|p| p.pings_seen).sum::<usize>() >= 4);
        assert!(trace.outputs().count() >= 4);
    }
}
