//! The pre-optimization explorer, preserved verbatim as a benchmark
//! baseline and differential-testing oracle.
//!
//! This is the PR 2 inner loop: sequential depth-first search, a full
//! `State` clone (including the O(depth) decision and output vectors) per
//! branch, a per-(state, process) `choices` vector, and a single
//! `HashMap` seen-table — parametrized over [`StateHasher`] only so
//! `exp_explore_bench` can separate the two optimization axes
//! (string key → fingerprint vs. clone → shared-prefix).
//!
//! Not public API: it exists so the speedup claimed in
//! `BENCH_explore.json` is measured against the real former code rather
//! than a remembered approximation, and so tests can differentially check
//! [`crate::explore()`] against an independent implementation. It is
//! `#[doc(hidden)]` and may disappear once the trajectory has enough
//! history.

use crate::explore::{
    ExploreConfig, ExploreDecision, ExploreReport, ExploreViolation, StateHasher,
};
use crate::failure::FailurePattern;
use crate::id::{ProcessId, Time};
use crate::oracle::FdOracle;
use crate::protocol::{Ctx, Protocol};
use std::collections::HashMap;
use std::fmt::Debug;

#[derive(Clone)]
struct State<P: Protocol> {
    procs: Vec<P>,
    inboxes: Vec<Vec<(ProcessId, P::Msg)>>,
    started: Vec<bool>,
    pending_inv: Vec<Option<P::Inv>>,
    outputs: Vec<(ProcessId, P::Output)>,
    depth: usize,
    decisions: Vec<ExploreDecision>,
}

fn apply_step<P, D>(
    state: &State<P>,
    p: ProcessId,
    choice: Option<usize>,
    pattern: &FailurePattern,
    detector: &mut D,
    n: usize,
) -> State<P>
where
    P: Protocol + Clone,
    D: FdOracle<Value = P::Fd>,
{
    let t = state.depth as Time;
    let mut next = state.clone();
    next.depth += 1;
    let fd = detector.query(p, t);
    let mut ctx = Ctx::<P>::detached(p, n, t, fd);
    if !next.started[p.index()] {
        next.started[p.index()] = true;
        next.decisions.push((p, None));
        next.procs[p.index()].on_start(&mut ctx);
        if let Some(inv) = next.pending_inv[p.index()].take() {
            next.procs[p.index()].on_invoke(&mut ctx, inv);
        }
    } else {
        let inbox_len = next.inboxes[p.index()].len();
        match choice {
            Some(i) if inbox_len > 0 => {
                let i = i.min(inbox_len - 1);
                next.decisions.push((p, Some(i)));
                let (from, msg) = next.inboxes[p.index()].remove(i);
                next.procs[p.index()].on_message(&mut ctx, from, msg);
            }
            _ => {
                next.decisions.push((p, None));
                next.procs[p.index()].on_tick(&mut ctx);
            }
        }
    }
    for (to, msg) in ctx.take_sends() {
        if !pattern.is_crashed(to, t) {
            next.inboxes[to.index()].push((p, msg));
        }
    }
    for out in ctx.take_outputs() {
        next.outputs.push((p, out));
    }
    next
}

fn initial_state<P: Protocol>(procs: Vec<P>, invocations: Vec<Option<P::Inv>>) -> State<P> {
    let n = procs.len();
    assert_eq!(invocations.len(), n, "one invocation slot per process");
    State {
        procs,
        inboxes: vec![Vec::new(); n],
        started: vec![false; n],
        pending_inv: invocations,
        outputs: Vec::new(),
        depth: 0,
        decisions: Vec::new(),
    }
}

/// The PR 2 exploration loop, byte-for-byte — sequential DFS with
/// full-clone branching — except that the dedup key comes from `hasher`.
/// Only [`ExploreConfig::max_depth`], [`ExploreConfig::max_states`] and
/// [`ExploreConfig::dedup`] are honored (the loop predates the other
/// knobs); the report's observability counters are filled in so it can be
/// compared against [`crate::explore()`] with
/// [`ExploreReport::same_semantics`].
pub fn explore_baseline<H, P, D>(
    cfg: ExploreConfig,
    hasher: H,
    make_procs: impl Fn() -> Vec<P>,
    invocations: Vec<Option<P::Inv>>,
    pattern: &FailurePattern,
    mut detector: D,
    mut safety: impl FnMut(&[P], &[(ProcessId, P::Output)]) -> Result<(), String>,
) -> ExploreReport
where
    H: StateHasher,
    P: Protocol + Clone + Debug,
    D: FdOracle<Value = P::Fd>,
{
    let root = initial_state(make_procs(), invocations);
    let n = root.procs.len();

    let mut seen: HashMap<H::Key, usize> = HashMap::new();
    let mut stack = vec![root];
    let mut states_visited = 0usize;
    let mut depth_bounded = false;
    let mut states_capped = false;
    let mut dedup_hits = 0usize;
    let mut max_frontier_len = 0usize;

    let violation = loop {
        max_frontier_len = max_frontier_len.max(stack.len());
        let Some(state) = stack.pop() else { break None };
        if states_visited >= cfg.max_states {
            states_capped = true;
            break None;
        }
        if cfg.dedup {
            let key = hasher.key(&state.procs, &state.inboxes, &state.started, &state.outputs);
            match seen.get_mut(&key) {
                Some(prev_depth) if *prev_depth <= state.depth => {
                    dedup_hits += 1;
                    continue;
                }
                Some(prev_depth) => *prev_depth = state.depth,
                None => {
                    seen.insert(key, state.depth);
                }
            }
        }
        states_visited += 1;

        if let Err(message) = safety(&state.procs, &state.outputs) {
            break Some(ExploreViolation {
                message,
                decisions: state.decisions,
            });
        }
        if state.depth >= cfg.max_depth {
            depth_bounded = true;
            continue;
        }

        let t = state.depth as Time;
        for p in ProcessId::all(n) {
            if pattern.is_crashed(p, t) {
                continue;
            }
            let choices: Vec<Option<usize>> =
                if !state.started[p.index()] || state.inboxes[p.index()].is_empty() {
                    vec![None]
                } else {
                    (0..state.inboxes[p.index()].len()).map(Some).collect()
                };
            for choice in choices {
                stack.push(apply_step(&state, p, choice, pattern, &mut detector, n));
            }
        }
    };

    ExploreReport {
        states_visited,
        depth_bounded,
        states_capped,
        violation,
        dedup_entries: seen.len(),
        dedup_hits,
        max_frontier_len,
        states_pruned_dpor: 0,
        symmetry_canonical_hits: 0,
        reduction_enabled: false,
        threads_used: 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{explore_custom, ExactKeyHasher};
    use crate::oracle::NoDetector;

    /// Relays a hop-counted token; outputs every payload received.
    #[derive(Clone, Debug)]
    struct Relay;

    impl Protocol for Relay {
        type Msg = u8;
        type Output = u8;
        type Inv = u8;
        type Fd = ();

        fn on_invoke(&mut self, ctx: &mut Ctx<Self>, hops: u8) {
            ctx.broadcast_others(hops);
        }

        fn on_message(&mut self, ctx: &mut Ctx<Self>, _from: ProcessId, hops: u8) {
            ctx.output(hops);
            if hops > 0 {
                ctx.broadcast_others(hops - 1);
            }
        }
    }

    /// The optimized explorer at batch 1, single-thread, exact keys must
    /// reproduce the historical loop *exactly* — the differential anchor
    /// that ties the new code to PR 2 semantics.
    #[test]
    fn optimized_explorer_matches_the_baseline_bit_for_bit() {
        for (plant, depth) in [(false, 7), (true, 7), (false, 5)] {
            let safety = move |_: &[Relay], outputs: &[(ProcessId, u8)]| {
                if plant && outputs.iter().filter(|(_, h)| *h == 0).count() >= 2 {
                    Err("two zero-hop deliveries".to_string())
                } else {
                    Ok(())
                }
            };
            let mk = || vec![Relay, Relay];
            let inv = vec![Some(2), None];
            let pattern = FailurePattern::failure_free(2);
            let old = explore_baseline(
                ExploreConfig::new(depth),
                ExactKeyHasher,
                mk,
                inv.clone(),
                &pattern,
                NoDetector,
                safety,
            );
            let new = explore_custom(
                ExploreConfig::new(depth).with_threads(1).with_batch(1),
                ExactKeyHasher,
                mk,
                inv,
                &pattern,
                NoDetector,
                safety,
            );
            assert!(
                old.same_semantics(&new),
                "plant={plant} depth={depth}: {old:?} vs {new:?}"
            );
        }
    }
}
