//! Failure patterns `F : T → 2^Π` and environments `E ⊆ {failure patterns}`.

use crate::id::{ProcessId, ProcessSet, Time};
use crate::rng::SimRng;
use std::fmt;

/// A failure pattern: for each process, the time at which it crashes (if
/// ever).
///
/// This is the paper's `F : T → 2^Π` in its canonical compressed form —
/// crashes are permanent (`F(t) ⊆ F(t+1)`), so a pattern is fully described
/// by one optional crash time per process.
///
/// ```
/// use wfd_sim::{FailurePattern, ProcessId};
/// let f = FailurePattern::failure_free(3).with_crash(ProcessId(1), 10);
/// assert!(!f.is_crashed(ProcessId(1), 9));
/// assert!(f.is_crashed(ProcessId(1), 10));
/// assert_eq!(f.faulty().len(), 1);
/// assert_eq!(f.correct().len(), 2);
/// ```
#[derive(Clone, Eq, PartialEq, Hash, Debug)]
pub struct FailurePattern {
    crash: Vec<Option<Time>>,
}

impl FailurePattern {
    /// The failure-free pattern on `n` processes (nobody ever crashes).
    pub fn failure_free(n: usize) -> Self {
        FailurePattern {
            crash: vec![None; n],
        }
    }

    /// Builder-style: return a copy of this pattern in which `p`
    /// additionally crashes at time `t`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn with_crash(mut self, p: ProcessId, t: Time) -> Self {
        self.crash[p.index()] = Some(t);
        self
    }

    /// A pattern in which exactly the given `(process, time)` pairs crash.
    pub fn with_crashes(n: usize, crashes: &[(ProcessId, Time)]) -> Self {
        let mut f = Self::failure_free(n);
        for &(p, t) in crashes {
            f.crash[p.index()] = Some(t);
        }
        f
    }

    /// Number of processes in the system.
    pub fn n(&self) -> usize {
        self.crash.len()
    }

    /// The crash time of `p`, if `p` is faulty in this pattern.
    pub fn crash_time(&self, p: ProcessId) -> Option<Time> {
        self.crash[p.index()]
    }

    /// Whether `p` has crashed by time `t` (inclusive): `p ∈ F(t)`.
    pub fn is_crashed(&self, p: ProcessId, t: Time) -> bool {
        matches!(self.crash[p.index()], Some(ct) if ct <= t)
    }

    /// `F(t)`: the set of processes crashed through time `t`.
    pub fn crashed_at(&self, t: Time) -> ProcessSet {
        ProcessId::all(self.n())
            .filter(|&p| self.is_crashed(p, t))
            .collect()
    }

    /// The set of processes alive (not yet crashed) at time `t`.
    pub fn alive_at(&self, t: Time) -> ProcessSet {
        ProcessId::all(self.n())
            .filter(|&p| !self.is_crashed(p, t))
            .collect()
    }

    /// `faulty(F)`: processes that crash at some time in this pattern.
    pub fn faulty(&self) -> ProcessSet {
        ProcessId::all(self.n())
            .filter(|&p| self.crash[p.index()].is_some())
            .collect()
    }

    /// `correct(F) = Π − faulty(F)`.
    pub fn correct(&self) -> ProcessSet {
        ProcessId::all(self.n())
            .filter(|&p| self.crash[p.index()].is_none())
            .collect()
    }

    /// Whether `p` is correct (never crashes) in this pattern.
    pub fn is_correct(&self, p: ProcessId) -> bool {
        self.crash[p.index()].is_none()
    }

    /// Number of faulty processes.
    pub fn num_faulty(&self) -> usize {
        self.crash.iter().filter(|c| c.is_some()).count()
    }

    /// The earliest crash time, if any process is faulty. This is the time
    /// `t*` after which the failure-signal detector FS is allowed to turn
    /// red.
    pub fn first_crash_time(&self) -> Option<Time> {
        self.crash.iter().flatten().min().copied()
    }

    /// The latest crash time, if any — after this instant the set of alive
    /// processes equals `correct(F)` forever.
    pub fn last_crash_time(&self) -> Option<Time> {
        self.crash.iter().flatten().max().copied()
    }

    /// Whether no process ever crashes.
    pub fn is_failure_free(&self) -> bool {
        self.crash.iter().all(|c| c.is_none())
    }
}

impl fmt::Display for FailurePattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "F[n={}", self.n())?;
        for (i, c) in self.crash.iter().enumerate() {
            if let Some(t) = c {
                write!(f, ", p{i}@{t}")?;
            }
        }
        write!(f, "]")
    }
}

/// An environment `E`: a set of admissible failure patterns.
///
/// The paper's headline results hold *for all environments*; the named
/// variants here are the environments its discussion singles out, plus a
/// `Custom` escape hatch.
///
/// ```
/// use wfd_sim::{Environment, FailurePattern, ProcessId};
/// let f = FailurePattern::failure_free(4).with_crash(ProcessId(0), 5);
/// assert!(Environment::Any.contains(&f));
/// assert!(Environment::MajorityCorrect.contains(&f));
/// assert!(!Environment::TResilient(0).contains(&f));
/// ```
#[derive(Clone, Copy, Debug)]
pub enum Environment {
    /// Every failure pattern is admissible (any number of crashes, any
    /// timing) — the paper's most general setting.
    Any,
    /// A majority of processes are correct: `|faulty(F)| < ⌈n/2⌉` — the
    /// classical setting of Chandra–Hadzilacos–Toueg.
    MajorityCorrect,
    /// At most `t` processes crash.
    TResilient(usize),
    /// At least one process is correct (excludes the all-crash pattern).
    AtLeastOneCorrect,
    /// A named predicate over failure patterns.
    Custom(&'static str, fn(&FailurePattern) -> bool),
}

impl Environment {
    /// Whether the pattern belongs to this environment.
    pub fn contains(&self, f: &FailurePattern) -> bool {
        match self {
            Environment::Any => true,
            Environment::MajorityCorrect => f.correct().len() * 2 > f.n(),
            Environment::TResilient(t) => f.num_faulty() <= *t,
            Environment::AtLeastOneCorrect => !f.correct().is_empty(),
            Environment::Custom(_, pred) => pred(f),
        }
    }

    /// A short human-readable name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Environment::Any => "any",
            Environment::MajorityCorrect => "majority-correct",
            Environment::TResilient(_) => "t-resilient",
            Environment::AtLeastOneCorrect => "at-least-one-correct",
            Environment::Custom(name, _) => name,
        }
    }
}

impl fmt::Display for Environment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Environment::TResilient(t) => write!(f, "{}-resilient", t),
            other => f.write_str(other.name()),
        }
    }
}

/// Deterministic random sampler of failure patterns inside an environment.
///
/// Used by property tests and the experiment harness to sweep over many
/// admissible patterns reproducibly.
///
/// ```
/// use wfd_sim::{Environment, PatternSampler};
/// let mut sampler = PatternSampler::new(5, Environment::MajorityCorrect, 42);
/// for _ in 0..20 {
///     let f = sampler.sample(100);
///     assert!(Environment::MajorityCorrect.contains(&f));
/// }
/// ```
#[derive(Debug)]
pub struct PatternSampler {
    n: usize,
    env: Environment,
    rng: SimRng,
}

impl PatternSampler {
    /// Create a sampler for systems of size `n` restricted to `env`,
    /// seeded deterministically.
    pub fn new(n: usize, env: Environment, seed: u64) -> Self {
        PatternSampler {
            n,
            env,
            rng: SimRng::new(seed),
        }
    }

    /// Sample one admissible pattern with crash times drawn from
    /// `0..horizon`. Rejection-samples until the environment accepts; the
    /// failure-free pattern is always admissible for the built-in
    /// environments, so this terminates.
    pub fn sample(&mut self, horizon: Time) -> FailurePattern {
        loop {
            let mut f = FailurePattern::failure_free(self.n);
            // Bias the number of crashes towards the interesting low range
            // but allow up to n − 1 (and occasionally n for Environment::Any).
            let max_crashes = match self.env {
                Environment::Any => self.n,
                _ => self.n.saturating_sub(1),
            };
            let k = self.rng.gen_range(max_crashes as u64 + 1) as usize;
            let mut ids: Vec<usize> = (0..self.n).collect();
            for i in 0..k {
                let j = i + self.rng.pick(self.n - i);
                ids.swap(i, j);
                let t = self.rng.gen_range(horizon.max(1));
                f = f.with_crash(ProcessId(ids[i]), t);
            }
            if self.env.contains(&f) {
                return f;
            }
        }
    }

    /// Sample `count` admissible patterns.
    pub fn sample_many(&mut self, horizon: Time, count: usize) -> Vec<FailurePattern> {
        (0..count).map(|_| self.sample(horizon)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failure_free_pattern() {
        let f = FailurePattern::failure_free(3);
        assert!(f.is_failure_free());
        assert_eq!(f.n(), 3);
        assert_eq!(f.correct(), ProcessSet::full(3));
        assert!(f.faulty().is_empty());
        assert_eq!(f.first_crash_time(), None);
        assert_eq!(f.last_crash_time(), None);
    }

    #[test]
    fn crash_is_permanent_and_inclusive() {
        let f = FailurePattern::failure_free(2).with_crash(ProcessId(0), 5);
        assert!(!f.is_crashed(ProcessId(0), 4));
        assert!(f.is_crashed(ProcessId(0), 5));
        assert!(f.is_crashed(ProcessId(0), 1_000_000));
        assert!(!f.is_crashed(ProcessId(1), 1_000_000));
    }

    #[test]
    fn crashed_at_is_monotone() {
        let f = FailurePattern::with_crashes(4, &[(ProcessId(1), 3), (ProcessId(2), 7)]);
        let mut prev = ProcessSet::new();
        for t in 0..10 {
            let cur = f.crashed_at(t);
            assert!(prev.is_subset(&cur), "F(t) must be monotone");
            prev = cur;
        }
        assert_eq!(f.crashed_at(2).len(), 0);
        assert_eq!(f.crashed_at(3).len(), 1);
        assert_eq!(f.crashed_at(7).len(), 2);
    }

    #[test]
    fn faulty_correct_partition() {
        let f = FailurePattern::with_crashes(5, &[(ProcessId(0), 1), (ProcessId(4), 2)]);
        assert_eq!(f.num_faulty(), 2);
        assert_eq!(f.faulty().union(&f.correct()), ProcessSet::full(5));
        assert!(f.faulty().intersection(&f.correct()).is_empty());
        assert!(f.is_correct(ProcessId(2)));
        assert!(!f.is_correct(ProcessId(0)));
    }

    #[test]
    fn first_and_last_crash_times() {
        let f = FailurePattern::with_crashes(3, &[(ProcessId(0), 9), (ProcessId(1), 4)]);
        assert_eq!(f.first_crash_time(), Some(4));
        assert_eq!(f.last_crash_time(), Some(9));
        assert_eq!(f.crash_time(ProcessId(0)), Some(9));
        assert_eq!(f.crash_time(ProcessId(2)), None);
    }

    #[test]
    fn alive_at_complements_crashed_at() {
        let f = FailurePattern::with_crashes(4, &[(ProcessId(3), 2)]);
        for t in 0..5 {
            assert_eq!(f.alive_at(t).union(&f.crashed_at(t)), ProcessSet::full(4));
        }
    }

    #[test]
    fn environment_membership() {
        let n = 5;
        let one = FailurePattern::failure_free(n).with_crash(ProcessId(0), 0);
        let three = FailurePattern::with_crashes(
            n,
            &[(ProcessId(0), 0), (ProcessId(1), 0), (ProcessId(2), 0)],
        );
        assert!(Environment::Any.contains(&three));
        assert!(Environment::MajorityCorrect.contains(&one));
        assert!(!Environment::MajorityCorrect.contains(&three));
        assert!(Environment::TResilient(1).contains(&one));
        assert!(!Environment::TResilient(1).contains(&three));
        assert!(Environment::AtLeastOneCorrect.contains(&three));
    }

    #[test]
    fn custom_environment() {
        fn p0_never_fails(f: &FailurePattern) -> bool {
            f.is_correct(ProcessId(0))
        }
        let env = Environment::Custom("p0-correct", p0_never_fails);
        assert!(env.contains(&FailurePattern::failure_free(3)));
        assert!(!env.contains(&FailurePattern::failure_free(3).with_crash(ProcessId(0), 1)));
        assert_eq!(env.name(), "p0-correct");
    }

    #[test]
    fn display_formats() {
        let f = FailurePattern::with_crashes(3, &[(ProcessId(1), 4)]);
        assert_eq!(f.to_string(), "F[n=3, p1@4]");
        assert_eq!(Environment::TResilient(2).to_string(), "2-resilient");
        assert_eq!(Environment::Any.to_string(), "any");
    }

    #[test]
    fn sampler_respects_environment_and_is_deterministic() {
        let mut a = PatternSampler::new(6, Environment::TResilient(2), 7);
        let mut b = PatternSampler::new(6, Environment::TResilient(2), 7);
        for _ in 0..50 {
            let fa = a.sample(200);
            let fb = b.sample(200);
            assert_eq!(fa, fb, "same seed must give same pattern stream");
            assert!(fa.num_faulty() <= 2);
        }
    }

    #[test]
    fn sampler_any_environment_can_crash_everyone() {
        let mut s = PatternSampler::new(3, Environment::Any, 1);
        let saw_all_crash = (0..200).any(|_| s.sample(50).correct().is_empty());
        assert!(
            saw_all_crash,
            "Environment::Any should include all-crash patterns"
        );
    }
}
