//! Delta-debugging minimizer for [`Repro`] artifacts.
//!
//! A freshly recorded counterexample drags along everything the fuzz run
//! happened to do — hundreds of scheduler decisions, crashes that never
//! mattered, invocations the failure does not depend on. [`shrink`] applies
//! ddmin-style greedy mutations and keeps each one only if the caller's
//! `still_fails` oracle confirms the mutated artifact *still* violates the
//! checker:
//!
//! 1. drop each crash (make the process correct),
//! 2. lower surviving crash times (try `0`, then repeated halving),
//! 3. remove scheduled invocations one at a time,
//! 4. delete chunks of the decision log, halving the chunk size down
//!    to single decisions (classic ddmin granularity schedule),
//! 5. halve the horizon.
//!
//! Every accepted mutation strictly decreases a well-founded measure
//! (crash count, total crash time, invocation count, decision count,
//! horizon), so the pass loop terminates. Replay of a mutated decision
//! log is always well-defined: [`ReplaySchedule`](crate::ReplaySchedule)
//! and [`Replay::run`](crate::Replay::run) fall back
//! deterministically when the log no longer matches the run.
//!
//! Lasso artifacts (liveness counterexamples,
//! [`ReproDecisions::Lasso`](crate::ReproDecisions)) shrink through the
//! same passes: the chunk-deletion pass sees stem and cycle as one
//! concatenated log, and [`Replay::run_fair`](crate::Replay::run_fair) —
//! used as the `still_fails` oracle — *rejects* rather than repairs a
//! candidate whose decisions stop being a fair recurring cycle, so only
//! mutations preserving "this is a real fair infinite run" are kept.

use crate::repro::Repro;

/// The result of a [`shrink`] run.
#[derive(Clone, Debug)]
pub struct ShrinkReport {
    /// The minimized artifact (equal to the input if nothing shrank).
    pub repro: Repro,
    /// How many candidate mutations were tried.
    pub attempts: usize,
    /// How many of them still failed and were kept.
    pub accepted: usize,
}

/// Minimize `original`, preserving the property that `still_fails`
/// returns `Some(violation message)` for it.
///
/// `still_fails` re-runs the violated checker against a candidate
/// artifact and returns the (possibly updated) violation message if the
/// candidate still fails, or `None` if the mutation rescued the run. The
/// accepted artifact's [`Repro::violation`] is refreshed from the
/// oracle's message each time, so the final artifact describes its own
/// failure, not the original's.
///
/// The input is required to fail: if `still_fails(original)` is `None`
/// the function returns the original unchanged (zero accepted).
pub fn shrink(
    original: &Repro,
    mut still_fails: impl FnMut(&Repro) -> Option<String>,
) -> ShrinkReport {
    let mut report = ShrinkReport {
        repro: original.clone(),
        attempts: 1,
        accepted: 0,
    };
    // Establish the baseline; a non-failing input cannot be shrunk.
    match still_fails(&report.repro) {
        Some(msg) => report.repro.violation = msg,
        None => return report,
    }

    let mut try_candidate = |report: &mut ShrinkReport, candidate: Repro| -> bool {
        report.attempts += 1;
        if let Some(msg) = still_fails(&candidate) {
            report.repro = candidate;
            report.repro.violation = msg;
            report.accepted += 1;
            true
        } else {
            false
        }
    };

    loop {
        let mut improved = false;

        // Pass 1: drop crashes entirely.
        let mut i = 0;
        while i < report.repro.crashes.len() {
            if report.repro.crashes[i].is_some() {
                let mut candidate = report.repro.clone();
                candidate.crashes[i] = None;
                if try_candidate(&mut report, candidate) {
                    improved = true;
                    continue; // retry the same slot (now None, will skip)
                }
            }
            i += 1;
        }

        // Pass 2: lower surviving crash times — earlier crashes are
        // simpler runs (fewer steps by the crashed process). Try 0
        // outright, then binary-search downward by halving.
        for i in 0..report.repro.crashes.len() {
            let Some(t) = report.repro.crashes[i] else {
                continue;
            };
            if t == 0 {
                continue;
            }
            let mut candidate = report.repro.clone();
            candidate.crashes[i] = Some(0);
            if try_candidate(&mut report, candidate) {
                improved = true;
                continue;
            }
            let mut cur = t;
            while cur > 1 {
                let lower = cur / 2;
                let mut candidate = report.repro.clone();
                candidate.crashes[i] = Some(lower);
                if try_candidate(&mut report, candidate) {
                    improved = true;
                    cur = lower;
                } else {
                    break;
                }
            }
        }

        // Pass 3: remove invocations one at a time.
        let mut i = 0;
        while i < report.repro.invocations.len() {
            let mut candidate = report.repro.clone();
            candidate.invocations.remove(i);
            if try_candidate(&mut report, candidate) {
                improved = true;
                // Same index now names the next invocation; retry it.
            } else {
                i += 1;
            }
        }

        // Pass 4: ddmin over the decision log — delete chunks, halving the
        // chunk size until single decisions.
        let mut chunk = (report.repro.decisions.len() / 2).max(1);
        loop {
            let mut start = 0;
            while start < report.repro.decisions.len() {
                let end = (start + chunk).min(report.repro.decisions.len());
                let mut candidate = report.repro.clone();
                candidate.decisions = report.repro.decisions.without_range(start, end);
                if try_candidate(&mut report, candidate) {
                    improved = true;
                    // The log shifted left; the same start now names fresh
                    // decisions.
                } else {
                    start = end;
                }
            }
            if chunk == 1 {
                break;
            }
            chunk = (chunk / 2).max(1);
        }

        // Pass 5: halve the horizon while the failure still shows up.
        while report.repro.horizon > 1 {
            let mut candidate = report.repro.clone();
            candidate.horizon = report.repro.horizon / 2;
            if try_candidate(&mut report, candidate) {
                improved = true;
            } else {
                break;
            }
        }

        if !improved {
            break;
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::ProcessId;
    use crate::repro::{OracleSpec, ReproDecisions, ReproInvocation, ReproSource, SchedulerSpec};
    use crate::scheduler::Decision;

    fn bloated_repro() -> Repro {
        Repro {
            protocol: "toy".to_string(),
            checker: "toy-checker".to_string(),
            violation: "original message".to_string(),
            n: 4,
            horizon: 512,
            max_delay: 8,
            max_step_gap: 8,
            crashes: vec![Some(100), Some(7), None, Some(31)],
            oracle: OracleSpec::new("none"),
            scheduler: SchedulerSpec::RandomFair {
                seed: 1,
                lambda_pct: 25,
            },
            invocations: vec![
                ReproInvocation {
                    pid: 0,
                    at: 0,
                    payload: "1".to_string(),
                },
                ReproInvocation {
                    pid: 1,
                    at: 0,
                    payload: "2".to_string(),
                },
                ReproInvocation {
                    pid: 2,
                    at: 0,
                    payload: "3".to_string(),
                },
            ],
            decisions: ReproDecisions::Engine(
                (0..64).map(|i| Decision::Actor(ProcessId(i % 4))).collect(),
            ),
            source: ReproSource::Fuzz,
        }
    }

    /// The "checker": fails iff the log still schedules p1 at least once
    /// and p1's crash survives. Everything else is noise the shrinker
    /// should strip.
    fn toy_still_fails(r: &Repro) -> Option<String> {
        let schedules_p1 = r
            .decisions
            .as_engine()
            .unwrap()
            .contains(&Decision::Actor(ProcessId(1)));
        let p1_crashes = r.crashes.get(1).copied().flatten().is_some();
        if schedules_p1 && p1_crashes {
            Some("p1 stepped then crashed".to_string())
        } else {
            None
        }
    }

    #[test]
    fn shrink_strips_everything_the_failure_does_not_need() {
        let original = bloated_repro();
        let report = shrink(&original, toy_still_fails);
        let r = &report.repro;

        // Strictly smaller on both axes the issue requires.
        assert!(r.decisions.len() < original.decisions.len());
        assert!(r.crashes.iter().flatten().count() < original.crashes.iter().flatten().count());
        // And in fact minimal for this toy oracle:
        assert_eq!(r.decisions.len(), 1, "one Actor(p1) decision survives");
        assert_eq!(
            r.decisions.as_engine().unwrap()[0],
            Decision::Actor(ProcessId(1))
        );
        assert_eq!(r.crashes.iter().flatten().count(), 1);
        assert_eq!(r.crashes[1], Some(0), "crash time lowered to 0");
        assert!(r.invocations.is_empty());
        assert_eq!(r.horizon, 1);
        // Still fails, with the oracle's (refreshed) message.
        assert!(toy_still_fails(r).is_some());
        assert_eq!(r.violation, "p1 stepped then crashed");
        assert!(report.accepted > 0);
        assert!(report.attempts > report.accepted);
    }

    #[test]
    fn shrink_returns_non_failing_input_unchanged() {
        let original = bloated_repro();
        let report = shrink(&original, |_| None);
        assert_eq!(report.repro, original);
        assert_eq!(report.accepted, 0);
        assert_eq!(report.attempts, 1);
    }

    #[test]
    fn shrink_terminates_on_already_minimal_input() {
        let mut minimal = bloated_repro();
        minimal.crashes = vec![None, Some(0), None, None];
        minimal.invocations.clear();
        minimal.decisions = ReproDecisions::Engine(vec![Decision::Actor(ProcessId(1))]);
        minimal.horizon = 1;
        let report = shrink(&minimal, toy_still_fails);
        assert_eq!(report.repro.decisions.len(), 1);
        assert_eq!(report.accepted, 0);
    }

    #[test]
    fn shrink_works_on_explore_decisions_too() {
        let mut r = bloated_repro();
        r.source = ReproSource::Explore;
        r.scheduler = SchedulerSpec::Exhaustive;
        r.decisions = ReproDecisions::Explore((0..16).map(|i| (ProcessId(i % 4), None)).collect());
        let report = shrink(&r, |c| {
            c.decisions
                .as_explore()
                .unwrap()
                .iter()
                .any(|(p, _)| *p == ProcessId(3))
                .then(|| "p3 steps".to_string())
        });
        assert_eq!(report.repro.decisions.len(), 1);
        assert_eq!(
            report.repro.decisions.as_explore().unwrap()[0].0,
            ProcessId(3)
        );
    }
}
