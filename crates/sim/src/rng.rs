//! A small, fast, deterministic PRNG for schedulers and samplers.
//!
//! The workspace needs seeded pseudo-randomness in exactly two roles —
//! scheduling policies and failure-pattern samplers — and in both the only
//! requirements are determinism per seed, decent statistical mixing, and
//! speed (the scheduler consults it on every simulation step). A
//! splitmix64-seeded xoshiro256++ generator delivers all three with zero
//! dependencies; cryptographic strength is explicitly a non-goal.

/// splitmix64 finaliser, used to expand a 64-bit seed into generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded deterministic pseudo-random generator (xoshiro256++).
///
/// ```
/// use wfd_sim::SimRng;
/// let mut a = SimRng::new(42);
/// let mut b = SimRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// assert!(a.pick(5) < 5);
/// ```
#[derive(Clone, Debug)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Create a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        SimRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform value in `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Lemire-style widening multiply avoids modulo bias cheaply; the
        // slight residual bias (< 2⁻⁶⁴ per draw) is irrelevant here.
        (((self.next_u64() as u128) * (bound as u128)) >> 64) as u64
    }

    /// A uniform index in `0..len`, for picking from a slice.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn pick(&mut self, len: usize) -> usize {
        self.gen_range(len as u64) as usize
    }

    /// `true` with probability `pct`/100.
    ///
    /// # Panics
    ///
    /// Panics if `pct > 100`.
    pub fn chance(&mut self, pct: u32) -> bool {
        assert!(pct <= 100, "pct must be a percentage");
        (self.gen_range(100) as u32) < pct
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let seq = |seed| {
            let mut r = SimRng::new(seed);
            (0..64).map(|_| r.next_u64()).collect::<Vec<_>>()
        };
        assert_eq!(seq(7), seq(7));
        assert_ne!(seq(7), seq(8));
    }

    #[test]
    fn gen_range_respects_bound_and_covers() {
        let mut r = SimRng::new(1);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            let v = r.gen_range(7);
            assert!(v < 7);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should occur");
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(3);
        for _ in 0..50 {
            assert!(!r.chance(0));
            assert!(r.chance(100));
        }
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut r = SimRng::new(5);
        let hits = (0..10_000).filter(|_| r.chance(25)).count();
        assert!(
            (2_000..3_000).contains(&hits),
            "25% chance hit {hits}/10000"
        );
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn zero_bound_panics() {
        SimRng::new(0).gen_range(0);
    }

    #[test]
    #[should_panic(expected = "percentage")]
    fn bad_pct_panics() {
        SimRng::new(0).chance(101);
    }
}
