//! Serializable, replayable counterexample artifacts.
//!
//! When a checker fails — under a randomized schedule or inside the
//! bounded model checker — the run that produced the failure is worth
//! keeping: a [`Repro`] records everything needed to re-execute it
//! byte-identically (system size, fairness bounds, failure pattern,
//! oracle parameters, scheduled invocations and the full scheduler
//! decision log) in a single JSON document, with no external
//! dependencies (see [`crate::json`]).
//!
//! Three kinds of run share the format, distinguished by
//! [`Repro::source`]:
//!
//! * **fuzz** — a [`Sim`](crate::Sim) run recorded through
//!   [`RecordedSchedule`](crate::RecordedSchedule); replay builds a
//!   [`ReplaySchedule`] from the decision log.
//! * **explore** — a counterexample branch of
//!   [`explore`](crate::explore()); replay goes through the machine
//!   layer: [`Replay::from_repro`](crate::Replay::from_repro) then
//!   [`Replay::run`](crate::Replay::run).
//! * **liveness** — an accepting lasso of
//!   [`check_liveness`](crate::liveness::check_liveness); replay goes
//!   through [`Replay::run_fair`](crate::Replay::run_fair).
//!
//! The protocol, checker and oracle are recorded *by name* (plus numeric
//! oracle parameters): the artifact stays protocol-agnostic and the
//! harness that owns the named target reconstructs the concrete types
//! (see `wfd-bench`'s fuzz campaign). [`crate::shrink()`] minimizes failing
//! artifacts.

use crate::explore::ExploreDecision;
use crate::failure::FailurePattern;
use crate::id::{ProcessId, Time};
use crate::json::{Json, JsonError};
use crate::scheduler::{Adversarial, Decision, RandomFair, ReplaySchedule, RoundRobin, Scheduler};
use crate::SimConfig;
use std::path::{Path, PathBuf};

/// The format tag every artifact carries, bumped on breaking changes.
pub const REPRO_FORMAT: &str = "wfd-repro-v1";

/// A named, buildable scheduling policy.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SchedulerSpec {
    /// [`RoundRobin`].
    RoundRobin,
    /// [`RandomFair`] with its seed and λ-step percentage.
    RandomFair {
        /// PRNG seed.
        seed: u64,
        /// Probability (percent) of λ steps when messages are pending.
        lambda_pct: u32,
    },
    /// [`Adversarial`] with its tie-breaking seed.
    Adversarial {
        /// PRNG seed.
        seed: u64,
    },
    /// The exhaustive explorer — not an engine policy. Present so
    /// explore-sourced repros can state their provenance; replay goes
    /// through [`Replay`](crate::Replay).
    Exhaustive,
}

impl SchedulerSpec {
    /// Instantiate the policy.
    ///
    /// # Panics
    ///
    /// Panics for [`SchedulerSpec::Exhaustive`]: explore-sourced repros
    /// replay via the machine layer ([`Replay`](crate::Replay)), not the
    /// engine.
    pub fn build(&self) -> Box<dyn Scheduler> {
        match *self {
            SchedulerSpec::RoundRobin => Box::new(RoundRobin::new()),
            SchedulerSpec::RandomFair { seed, lambda_pct } => {
                Box::new(RandomFair::new(seed).with_lambda_pct(lambda_pct))
            }
            SchedulerSpec::Adversarial { seed } => Box::new(Adversarial::new(seed)),
            SchedulerSpec::Exhaustive => {
                panic!("explore-sourced repros replay via wfd_sim::Replay, not the engine")
            }
        }
    }

    /// A short human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            SchedulerSpec::RoundRobin => "round-robin",
            SchedulerSpec::RandomFair { .. } => "random-fair",
            SchedulerSpec::Adversarial { .. } => "adversarial",
            SchedulerSpec::Exhaustive => "exhaustive",
        }
    }

    fn to_json(&self) -> Json {
        let mut fields = vec![("name".to_string(), Json::str(self.name()))];
        match *self {
            SchedulerSpec::RandomFair { seed, lambda_pct } => {
                fields.push(("seed".to_string(), Json::u64(seed)));
                fields.push(("lambda_pct".to_string(), Json::u64(lambda_pct as u64)));
            }
            SchedulerSpec::Adversarial { seed } => {
                fields.push(("seed".to_string(), Json::u64(seed)));
            }
            SchedulerSpec::RoundRobin | SchedulerSpec::Exhaustive => {}
        }
        Json::Obj(fields)
    }

    fn from_json(v: &Json) -> Result<Self, String> {
        let name = v
            .get("name")
            .and_then(Json::as_str)
            .ok_or("scheduler.name missing")?;
        let seed = || {
            v.get("seed")
                .and_then(Json::as_u64)
                .ok_or("scheduler.seed missing")
        };
        match name {
            "round-robin" => Ok(SchedulerSpec::RoundRobin),
            "random-fair" => Ok(SchedulerSpec::RandomFair {
                seed: seed()?,
                lambda_pct: v
                    .get("lambda_pct")
                    .and_then(Json::as_u64)
                    .ok_or("scheduler.lambda_pct missing")? as u32,
            }),
            "adversarial" => Ok(SchedulerSpec::Adversarial { seed: seed()? }),
            "exhaustive" => Ok(SchedulerSpec::Exhaustive),
            other => Err(format!("unknown scheduler '{other}'")),
        }
    }
}

/// A named failure-detector oracle plus its numeric parameters.
///
/// The artifact does not embed oracle *state* — oracles are deterministic
/// functions of `(pattern, params)` — only what is needed to rebuild one.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct OracleSpec {
    /// Oracle family name (e.g. `"omega+sigma"`, `"none"`).
    pub name: String,
    /// Named numeric parameters (e.g. `stabilize_at`, `seed`).
    pub params: Vec<(String, u64)>,
}

impl OracleSpec {
    /// A spec with no parameters.
    pub fn new(name: &str) -> Self {
        OracleSpec {
            name: name.to_string(),
            params: Vec::new(),
        }
    }

    /// Builder-style: add a named parameter.
    pub fn with(mut self, key: &str, value: u64) -> Self {
        self.params.push((key.to_string(), value));
        self
    }

    /// Look up a parameter.
    pub fn param(&self, key: &str) -> Option<u64> {
        self.params.iter().find(|(k, _)| k == key).map(|(_, v)| *v)
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name".to_string(), Json::str(&self.name)),
            (
                "params".to_string(),
                Json::Obj(
                    self.params
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::u64(*v)))
                        .collect(),
                ),
            ),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, String> {
        let name = v
            .get("name")
            .and_then(Json::as_str)
            .ok_or("oracle.name missing")?
            .to_string();
        let params = match v.get("params") {
            Some(Json::Obj(fields)) => fields
                .iter()
                .map(|(k, v)| {
                    v.as_u64()
                        .map(|n| (k.clone(), n))
                        .ok_or_else(|| format!("oracle.params.{k} is not a u64"))
                })
                .collect::<Result<Vec<_>, _>>()?,
            _ => Vec::new(),
        };
        Ok(OracleSpec { name, params })
    }
}

/// Which kind of run produced the artifact.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReproSource {
    /// A recorded [`Sim`](crate::Sim) run (engine semantics).
    Fuzz,
    /// A counterexample branch of [`explore`](crate::explore()).
    Explore,
    /// An accepting lasso found by the liveness checker
    /// ([`check_liveness`](crate::liveness::check_liveness)).
    Liveness,
}

/// One scheduled operation invocation, payload rendered as a string (the
/// target protocol's harness knows how to parse it back).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReproInvocation {
    /// Invoked process.
    pub pid: usize,
    /// Earliest time the invocation may be consumed.
    pub at: Time,
    /// The invocation payload (e.g. a proposal value), stringly typed.
    pub payload: String,
}

/// The decision log of the recorded run, in the vocabulary of its source.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReproDecisions {
    /// Engine consultations ([`ReproSource::Fuzz`]): actor picks and
    /// message-id picks, in [`crate::RecordedSchedule`] order.
    Engine(Vec<Decision>),
    /// Explorer steps ([`ReproSource::Explore`]): `(actor, inbox index)`
    /// pairs, flat and oldest-first. This is the *materialized* form the
    /// explorer exports (internally it keeps decisions as shared-prefix
    /// chains); it is exactly what
    /// [`Replay::run`](crate::Replay::run) consumes.
    Explore(Vec<ExploreDecision>),
    /// A liveness lasso ([`ReproSource::Liveness`]): a finite `stem` from
    /// the initial configuration to a recurrent configuration, plus a
    /// non-empty `cycle` that returns to it — together denoting the
    /// infinite fair run `stem · cycleʷ`. Both halves use explorer
    /// decision vocabulary, so `stem ++ cycle` (and any number of further
    /// cycle repetitions) replays through
    /// [`Replay::run`](crate::Replay::run) — or, with the fairness bounds
    /// enforced, through [`Replay::run_fair`](crate::Replay::run_fair).
    Lasso {
        /// Decisions from the initial configuration to the loop head.
        stem: Vec<ExploreDecision>,
        /// Decisions around the loop, back to the same configuration.
        cycle: Vec<ExploreDecision>,
    },
}

impl ReproDecisions {
    /// Number of recorded decisions.
    pub fn len(&self) -> usize {
        match self {
            ReproDecisions::Engine(d) => d.len(),
            ReproDecisions::Explore(d) => d.len(),
            ReproDecisions::Lasso { stem, cycle } => stem.len() + cycle.len(),
        }
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The log with `[start, end)` removed — the shrinker's chunk-deletion
    /// primitive.
    pub fn without_range(&self, start: usize, end: usize) -> Self {
        fn cut<T: Clone>(d: &[T], start: usize, end: usize) -> Vec<T> {
            let mut out = Vec::with_capacity(d.len().saturating_sub(end - start));
            out.extend_from_slice(&d[..start]);
            out.extend_from_slice(&d[end.min(d.len())..]);
            out
        }
        match self {
            ReproDecisions::Engine(d) => ReproDecisions::Engine(cut(d, start, end)),
            ReproDecisions::Explore(d) => ReproDecisions::Explore(cut(d, start, end)),
            // Piecewise over the concatenation `stem ++ cycle`: indices
            // below `stem.len()` cut the stem, the rest cut the cycle.
            ReproDecisions::Lasso { stem, cycle } => {
                let clamp = |d: &[ExploreDecision], lo: usize| {
                    let s = start.saturating_sub(lo).min(d.len());
                    let e = end.saturating_sub(lo).min(d.len());
                    cut(d, s, e)
                };
                ReproDecisions::Lasso {
                    stem: clamp(stem, 0),
                    cycle: clamp(cycle, stem.len()),
                }
            }
        }
    }

    /// The engine decision log, if this is a fuzz-sourced artifact.
    pub fn as_engine(&self) -> Option<&[Decision]> {
        match self {
            ReproDecisions::Engine(d) => Some(d),
            _ => None,
        }
    }

    /// The explorer decision list, if this is an explore-sourced artifact.
    pub fn as_explore(&self) -> Option<&[ExploreDecision]> {
        match self {
            ReproDecisions::Explore(d) => Some(d),
            _ => None,
        }
    }

    /// The `(stem, cycle)` halves, if this is a liveness lasso.
    pub fn as_lasso(&self) -> Option<(&[ExploreDecision], &[ExploreDecision])> {
        match self {
            ReproDecisions::Lasso { stem, cycle } => Some((stem, cycle)),
            _ => None,
        }
    }

    fn to_json(&self) -> Json {
        match self {
            ReproDecisions::Engine(d) => Json::Arr(
                d.iter()
                    .map(|dec| match dec {
                        Decision::Actor(p) => {
                            Json::Obj(vec![("actor".to_string(), Json::usize(p.index()))])
                        }
                        Decision::Deliver(Some(id)) => {
                            Json::Obj(vec![("deliver".to_string(), Json::u64(*id))])
                        }
                        Decision::Deliver(None) => {
                            Json::Obj(vec![("deliver".to_string(), Json::Null)])
                        }
                    })
                    .collect(),
            ),
            ReproDecisions::Explore(d) => explore_steps_to_json(d),
            ReproDecisions::Lasso { stem, cycle } => Json::Obj(vec![
                ("stem".to_string(), explore_steps_to_json(stem)),
                ("cycle".to_string(), explore_steps_to_json(cycle)),
            ]),
        }
    }

    fn from_json(v: &Json, source: ReproSource) -> Result<Self, String> {
        match source {
            ReproSource::Fuzz => {
                let items = v.as_array().ok_or("decisions is not an array")?;
                let mut out = Vec::with_capacity(items.len());
                for d in items {
                    if let Some(actor) = d.get("actor") {
                        out.push(Decision::Actor(ProcessId(
                            actor.as_usize().ok_or("decision.actor is not an index")?,
                        )));
                    } else if let Some(deliver) = d.get("deliver") {
                        out.push(Decision::Deliver(if deliver.is_null() {
                            None
                        } else {
                            Some(deliver.as_u64().ok_or("decision.deliver is not a u64")?)
                        }));
                    } else {
                        return Err("engine decision without actor/deliver".to_string());
                    }
                }
                Ok(ReproDecisions::Engine(out))
            }
            ReproSource::Explore => Ok(ReproDecisions::Explore(explore_steps_from_json(v)?)),
            ReproSource::Liveness => Ok(ReproDecisions::Lasso {
                stem: explore_steps_from_json(v.get("stem").ok_or("decisions.stem missing")?)?,
                cycle: explore_steps_from_json(v.get("cycle").ok_or("decisions.cycle missing")?)?,
            }),
        }
    }
}

/// Encode explorer decisions as the `{"step": p, "msg": i|null}` array
/// shared by the explore and lasso variants.
fn explore_steps_to_json(d: &[ExploreDecision]) -> Json {
    Json::Arr(
        d.iter()
            .map(|(p, choice)| {
                Json::Obj(vec![
                    ("step".to_string(), Json::usize(p.index())),
                    (
                        "msg".to_string(),
                        match choice {
                            Some(i) => Json::usize(*i),
                            None => Json::Null,
                        },
                    ),
                ])
            })
            .collect(),
    )
}

fn explore_steps_from_json(v: &Json) -> Result<Vec<ExploreDecision>, String> {
    let items = v.as_array().ok_or("decisions is not an array")?;
    let mut out = Vec::with_capacity(items.len());
    for d in items {
        let p = d
            .get("step")
            .and_then(Json::as_usize)
            .ok_or("decision.step missing")?;
        let msg = match d.get("msg") {
            Some(v) if v.is_null() => None,
            Some(v) => Some(v.as_usize().ok_or("decision.msg is not an index")?),
            None => None,
        };
        out.push((ProcessId(p), msg));
    }
    Ok(out)
}

/// A deterministic, self-contained counterexample artifact.
#[derive(Clone, Debug, PartialEq)]
pub struct Repro {
    /// Name of the target protocol (harness-interpreted).
    pub protocol: String,
    /// Name of the violated checker (harness-interpreted).
    pub checker: String,
    /// The checker's violation message at recording time.
    pub violation: String,
    /// System size.
    pub n: usize,
    /// Run horizon (steps) for fuzz runs, depth bound for explore runs.
    pub horizon: u64,
    /// Message-delay fairness bound (engine runs).
    pub max_delay: Time,
    /// Step-gap fairness bound (engine runs).
    pub max_step_gap: Time,
    /// Per-process crash time (`None` = correct) — the failure pattern.
    pub crashes: Vec<Option<Time>>,
    /// How to rebuild the detector oracle.
    pub oracle: OracleSpec,
    /// The policy the run was recorded under (provenance; replay uses the
    /// decision log).
    pub scheduler: SchedulerSpec,
    /// Scheduled operation invocations.
    pub invocations: Vec<ReproInvocation>,
    /// The recorded decision log.
    pub decisions: ReproDecisions,
    /// Which kind of run produced this artifact.
    pub source: ReproSource,
}

impl Repro {
    /// Rebuild the failure pattern.
    pub fn pattern(&self) -> FailurePattern {
        let mut f = FailurePattern::failure_free(self.n);
        for (i, c) in self.crashes.iter().enumerate() {
            if let Some(t) = c {
                f = f.with_crash(ProcessId(i), *t);
            }
        }
        f
    }

    /// Record a failure pattern into the artifact's crash vector.
    pub fn set_pattern(&mut self, pattern: &FailurePattern) {
        self.crashes = (0..pattern.n())
            .map(|i| pattern.crash_time(ProcessId(i)))
            .collect();
    }

    /// The engine configuration of the recorded run (full tracing; trace
    /// mode is not part of the artifact because it never affects the
    /// schedule).
    pub fn sim_config(&self) -> SimConfig {
        SimConfig::new(self.n)
            .with_horizon(self.horizon)
            .with_max_delay(self.max_delay.max(1))
            .with_max_step_gap(self.max_step_gap.max(1))
    }

    /// A replayer over the recorded engine decision log.
    ///
    /// # Panics
    ///
    /// Panics on explore-sourced artifacts (their decisions follow
    /// explorer semantics; use [`Replay::from_repro`](crate::Replay::from_repro)
    /// with [`Replay::run`](crate::Replay::run)).
    pub fn replay_schedule(&self) -> ReplaySchedule {
        match &self.decisions {
            ReproDecisions::Engine(d) => ReplaySchedule::new(d.clone()),
            ReproDecisions::Explore(_) => {
                panic!("explore-sourced repro: replay via wfd_sim::Replay")
            }
            ReproDecisions::Lasso { .. } => {
                panic!("liveness-sourced repro: replay via wfd_sim::Replay::run_fair")
            }
        }
    }

    /// Build an artifact from an [`explore`](crate::explore())
    /// counterexample. `max_depth` becomes the horizon.
    pub fn from_explore(
        protocol: &str,
        checker: &str,
        violation: &crate::explore::ExploreViolation,
        max_depth: usize,
        pattern: &FailurePattern,
        oracle: OracleSpec,
    ) -> Self {
        let mut repro = Repro {
            protocol: protocol.to_string(),
            checker: checker.to_string(),
            violation: violation.message.clone(),
            n: pattern.n(),
            horizon: max_depth as u64,
            max_delay: 0,
            max_step_gap: 0,
            crashes: Vec::new(),
            oracle,
            scheduler: SchedulerSpec::Exhaustive,
            invocations: Vec::new(),
            decisions: ReproDecisions::Explore(violation.decisions.clone()),
            source: ReproSource::Explore,
        };
        repro.set_pattern(pattern);
        repro
    }

    /// Build an artifact from a liveness lasso counterexample.
    ///
    /// The artifact stores the checker's fairness bounds in `max_delay` /
    /// `max_step_gap` and the stabilization time in `horizon`, so a
    /// replayer can rebuild the exact fair model the lasso was found in.
    #[allow(clippy::too_many_arguments)] // flat artifact constructor, one field each
    pub fn from_lasso(
        protocol: &str,
        property: &str,
        violation: &str,
        stem: Vec<ExploreDecision>,
        cycle: Vec<ExploreDecision>,
        t_stable: Time,
        max_delay: Time,
        max_step_gap: Time,
        pattern: &FailurePattern,
        oracle: OracleSpec,
    ) -> Self {
        let mut repro = Repro {
            protocol: protocol.to_string(),
            checker: property.to_string(),
            violation: violation.to_string(),
            n: pattern.n(),
            horizon: t_stable,
            max_delay,
            max_step_gap,
            crashes: Vec::new(),
            oracle,
            scheduler: SchedulerSpec::Exhaustive,
            invocations: Vec::new(),
            decisions: ReproDecisions::Lasso { stem, cycle },
            source: ReproSource::Liveness,
        };
        repro.set_pattern(pattern);
        repro
    }

    /// Serialize to pretty-enough JSON (one logical field per line for the
    /// scalar header, compact arrays).
    pub fn to_json(&self) -> String {
        let obj = Json::Obj(vec![
            ("format".to_string(), Json::str(REPRO_FORMAT)),
            (
                "source".to_string(),
                Json::str(match self.source {
                    ReproSource::Fuzz => "fuzz",
                    ReproSource::Explore => "explore",
                    ReproSource::Liveness => "liveness",
                }),
            ),
            ("protocol".to_string(), Json::str(&self.protocol)),
            ("checker".to_string(), Json::str(&self.checker)),
            ("violation".to_string(), Json::str(&self.violation)),
            ("n".to_string(), Json::usize(self.n)),
            ("horizon".to_string(), Json::u64(self.horizon)),
            ("max_delay".to_string(), Json::u64(self.max_delay)),
            ("max_step_gap".to_string(), Json::u64(self.max_step_gap)),
            (
                "crashes".to_string(),
                Json::Arr(
                    self.crashes
                        .iter()
                        .map(|c| match c {
                            Some(t) => Json::u64(*t),
                            None => Json::Null,
                        })
                        .collect(),
                ),
            ),
            ("oracle".to_string(), self.oracle.to_json()),
            ("scheduler".to_string(), self.scheduler.to_json()),
            (
                "invocations".to_string(),
                Json::Arr(
                    self.invocations
                        .iter()
                        .map(|inv| {
                            Json::Obj(vec![
                                ("pid".to_string(), Json::usize(inv.pid)),
                                ("t".to_string(), Json::u64(inv.at)),
                                ("payload".to_string(), Json::str(&inv.payload)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("decisions".to_string(), self.decisions.to_json()),
        ]);
        // One top-level field per line keeps the artifact diffable while
        // leaving the (long) decision array compact.
        let Json::Obj(fields) = &obj else {
            unreachable!()
        };
        let mut out = String::from("{\n");
        for (i, (k, v)) in fields.iter().enumerate() {
            out.push_str(&format!("  {}: {v}", crate::json::escape(k)));
            out.push_str(if i + 1 == fields.len() { "\n" } else { ",\n" });
        }
        out.push('}');
        out
    }

    /// Parse an artifact back from JSON.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v = Json::parse(text).map_err(|e: JsonError| e.to_string())?;
        let format = v
            .get("format")
            .and_then(Json::as_str)
            .ok_or("format missing")?;
        if format != REPRO_FORMAT {
            return Err(format!("unsupported repro format '{format}'"));
        }
        let source = match v.get("source").and_then(Json::as_str) {
            Some("fuzz") => ReproSource::Fuzz,
            Some("explore") => ReproSource::Explore,
            Some("liveness") => ReproSource::Liveness,
            Some(other) => return Err(format!("bad source '{other}'")),
            None => return Err("source missing".to_string()),
        };
        let str_field = |key: &str| -> Result<String, String> {
            v.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or(format!("{key} missing"))
        };
        let u64_field = |key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(Json::as_u64)
                .ok_or(format!("{key} missing"))
        };
        let crashes = v
            .get("crashes")
            .and_then(Json::as_array)
            .ok_or("crashes missing")?
            .iter()
            .map(|c| {
                if c.is_null() {
                    Ok(None)
                } else {
                    c.as_u64().map(Some).ok_or("crash time is not a u64")
                }
            })
            .collect::<Result<Vec<_>, _>>()?;
        let invocations = match v.get("invocations").and_then(Json::as_array) {
            Some(items) => items
                .iter()
                .map(|inv| {
                    Ok(ReproInvocation {
                        pid: inv
                            .get("pid")
                            .and_then(Json::as_usize)
                            .ok_or("invocation.pid missing")?,
                        at: inv
                            .get("t")
                            .and_then(Json::as_u64)
                            .ok_or("invocation.t missing")?,
                        payload: inv
                            .get("payload")
                            .and_then(Json::as_str)
                            .ok_or("invocation.payload missing")?
                            .to_string(),
                    })
                })
                .collect::<Result<Vec<_>, String>>()?,
            None => Vec::new(),
        };
        let n = v.get("n").and_then(Json::as_usize).ok_or("n missing")?;
        if crashes.len() != n {
            return Err(format!("crashes has {} entries, n = {n}", crashes.len()));
        }
        Ok(Repro {
            protocol: str_field("protocol")?,
            checker: str_field("checker")?,
            violation: str_field("violation")?,
            n,
            horizon: u64_field("horizon")?,
            max_delay: u64_field("max_delay")?,
            max_step_gap: u64_field("max_step_gap")?,
            crashes,
            oracle: OracleSpec::from_json(v.get("oracle").ok_or("oracle missing")?)?,
            scheduler: SchedulerSpec::from_json(v.get("scheduler").ok_or("scheduler missing")?)?,
            invocations,
            decisions: ReproDecisions::from_json(
                v.get("decisions").ok_or("decisions missing")?,
                source,
            )?,
            source,
        })
    }

    /// A deterministic artifact file name:
    /// `repro-<protocol>-<content hash>.json`.
    pub fn file_name(&self) -> String {
        // FNV-1a over the serialized artifact: stable across runs, unique
        // enough to keep distinct counterexamples from clobbering each
        // other.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.to_json().bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        format!("repro-{}-{hash:016x}.json", self.protocol)
    }

    /// Write the artifact into `dir` (created if missing) under
    /// [`Repro::file_name`]; returns the full path.
    pub fn save(&self, dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(self.file_name());
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }

    /// Load an artifact from a file.
    pub fn load(path: &Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        Self::from_json(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_fuzz_repro() -> Repro {
        Repro {
            protocol: "consensus-omega-sigma".to_string(),
            checker: "agreement+validity".to_string(),
            violation: "agreement violated: [10, 20]".to_string(),
            n: 3,
            horizon: 500,
            max_delay: 12,
            max_step_gap: 12,
            crashes: vec![None, Some(17), None],
            oracle: OracleSpec::new("omega+sigma")
                .with("stabilize_at", 0)
                .with("seed", 9),
            scheduler: SchedulerSpec::RandomFair {
                seed: 42,
                lambda_pct: 25,
            },
            invocations: vec![
                ReproInvocation {
                    pid: 0,
                    at: 0,
                    payload: "10".to_string(),
                },
                ReproInvocation {
                    pid: 1,
                    at: 0,
                    payload: "20".to_string(),
                },
            ],
            decisions: ReproDecisions::Engine(vec![
                Decision::Actor(ProcessId(0)),
                Decision::Deliver(None),
                Decision::Actor(ProcessId(2)),
                Decision::Deliver(Some(5)),
            ]),
            source: ReproSource::Fuzz,
        }
    }

    #[test]
    fn fuzz_repro_round_trips_through_json() {
        let r = sample_fuzz_repro();
        let parsed = Repro::from_json(&r.to_json()).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn explore_repro_round_trips_through_json() {
        let pattern = FailurePattern::failure_free(2).with_crash(ProcessId(1), 3);
        let violation = crate::explore::ExploreViolation {
            message: "saw a 2".to_string(),
            decisions: vec![
                (ProcessId(0), None),
                (ProcessId(1), Some(0)),
                (ProcessId(1), None),
            ],
        };
        let r = Repro::from_explore(
            "tag",
            "no-2",
            &violation,
            8,
            &pattern,
            OracleSpec::new("none"),
        );
        assert_eq!(r.source, ReproSource::Explore);
        assert_eq!(r.scheduler, SchedulerSpec::Exhaustive);
        assert_eq!(r.pattern(), pattern);
        let parsed = Repro::from_json(&r.to_json()).unwrap();
        assert_eq!(parsed, r);
        assert_eq!(parsed.decisions.as_explore().unwrap().len(), 3);
    }

    #[test]
    fn pattern_and_config_rebuild() {
        let r = sample_fuzz_repro();
        let p = r.pattern();
        assert_eq!(p.n(), 3);
        assert_eq!(p.crash_time(ProcessId(1)), Some(17));
        assert!(p.is_correct(ProcessId(0)));
        let cfg = r.sim_config();
        assert_eq!(cfg.n, 3);
        assert_eq!(cfg.horizon, 500);
        assert_eq!(cfg.max_delay, 12);
    }

    #[test]
    fn replay_schedule_matches_decisions() {
        let r = sample_fuzz_repro();
        let mut replay = r.replay_schedule();
        assert_eq!(replay.pick_actor(0, &[ProcessId(0), ProcessId(1)]), 0);
        assert_eq!(replay.divergences(), 0);
    }

    #[test]
    #[should_panic(expected = "replay via wfd_sim::Replay")]
    fn explore_repro_refuses_engine_replay() {
        let violation = crate::explore::ExploreViolation {
            message: "m".to_string(),
            decisions: vec![],
        };
        let r = Repro::from_explore(
            "t",
            "c",
            &violation,
            4,
            &FailurePattern::failure_free(2),
            OracleSpec::new("none"),
        );
        let _ = r.replay_schedule();
    }

    #[test]
    fn scheduler_specs_build_and_round_trip() {
        for spec in [
            SchedulerSpec::RoundRobin,
            SchedulerSpec::RandomFair {
                seed: 7,
                lambda_pct: 10,
            },
            SchedulerSpec::Adversarial { seed: 3 },
            SchedulerSpec::Exhaustive,
        ] {
            let parsed = SchedulerSpec::from_json(&spec.to_json()).unwrap();
            assert_eq!(parsed, spec);
            if spec != SchedulerSpec::Exhaustive {
                let mut s = spec.build();
                let idx = s.pick_actor(0, &[ProcessId(0), ProcessId(1)]);
                assert!(idx < 2);
            }
        }
    }

    #[test]
    fn decisions_without_range() {
        let d = ReproDecisions::Engine(vec![
            Decision::Actor(ProcessId(0)),
            Decision::Actor(ProcessId(1)),
            Decision::Actor(ProcessId(2)),
            Decision::Actor(ProcessId(3)),
        ]);
        let cut = d.without_range(1, 3);
        assert_eq!(
            cut.as_engine().unwrap(),
            &[Decision::Actor(ProcessId(0)), Decision::Actor(ProcessId(3))]
        );
        assert_eq!(d.without_range(2, 99).len(), 2);
        assert!(!d.is_empty());
    }

    #[test]
    fn file_name_is_deterministic_and_distinct() {
        let a = sample_fuzz_repro();
        let mut b = sample_fuzz_repro();
        assert_eq!(a.file_name(), a.file_name());
        b.violation = "different".to_string();
        assert_ne!(a.file_name(), b.file_name());
        assert!(a.file_name().starts_with("repro-consensus-omega-sigma-"));
    }

    #[test]
    fn save_and_load_round_trip() {
        let dir = std::env::temp_dir().join("wfd-repro-test");
        let r = sample_fuzz_repro();
        let path = r.save(&dir).unwrap();
        let loaded = Repro::load(&path).unwrap();
        assert_eq!(loaded, r);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_malformed_artifacts() {
        assert!(Repro::from_json("{}").is_err());
        assert!(Repro::from_json("not json").is_err());
        let mut r = sample_fuzz_repro();
        r.crashes.pop();
        assert!(Repro::from_json(&r.to_json())
            .unwrap_err()
            .contains("entries"));
        let bad_format = sample_fuzz_repro()
            .to_json()
            .replace(REPRO_FORMAT, "wfd-repro-v999");
        assert!(Repro::from_json(&bad_format)
            .unwrap_err()
            .contains("unsupported"));
    }
}
