//! Exhaustive small-instance state-space diagrams.
//!
//! The [`Machine`] layer makes the action space enumerable, which is all
//! a figure-style state diagram needs: [`Diagram::walk`] breadth-first
//! walks a [`ProtocolMachine`] over a small scenario (2–3 processes,
//! bounded depth), dedups configurations, labels every node with the
//! protocol's declared propositions that hold there, flags the states
//! where a safety predicate fails, and renders the result as Graphviz
//! DOT ([`Diagram::to_dot`]) or Mermaid ([`Diagram::to_mermaid`]).
//!
//! The walk is exhaustive within its caps (`max_depth` × `max_states`)
//! and fully deterministic: nodes are numbered in BFS discovery order,
//! which the machine's canonical action order fixes — the same scenario
//! always yields byte-identical diagrams (the golden-file tests rely on
//! this).
//!
//! Rendering is for people; it deliberately has no influence on any
//! checker and nothing in the workspace parses it back.

use crate::failure::FailurePattern;
use crate::id::ProcessId;
use crate::machine::{oracle_fn, ExploreDecision, Machine, ProtocolMachine, State, StepResult};
use crate::oracle::FdOracle;
use crate::protocol::{PropView, Protocol};
use std::collections::{BTreeMap, VecDeque};
use std::fmt::Debug;

/// Caps and cosmetics of a diagram walk. `new(title)` gives defaults
/// sized for figure-style diagrams (128 states, depth 12).
#[derive(Clone, Debug)]
pub struct DiagramConfig {
    /// Diagram title (the DOT graph name / Mermaid heading comment).
    pub title: String,
    /// Stop discovering new nodes past this many (the diagram is then
    /// flagged [`Diagram::truncated`]).
    pub max_states: usize,
    /// Do not expand nodes at this depth (edges out of them are elided
    /// and the diagram is flagged truncated if any existed).
    pub max_depth: usize,
    /// Also render each node's protocol state (its `Debug` form) into
    /// the label. Off by default: labels stay proposition-only, which is
    /// what keeps diagrams readable past a handful of nodes.
    pub state_labels: bool,
}

impl DiagramConfig {
    /// Defaults: 128 states, depth 12, proposition-only labels.
    pub fn new(title: impl Into<String>) -> Self {
        DiagramConfig {
            title: title.into(),
            max_states: 128,
            max_depth: 12,
            state_labels: false,
        }
    }

    /// Set the node budget.
    pub fn with_max_states(mut self, max_states: usize) -> Self {
        self.max_states = max_states;
        self
    }

    /// Set the expansion depth bound.
    pub fn with_max_depth(mut self, max_depth: usize) -> Self {
        self.max_depth = max_depth;
        self
    }

    /// Toggle full protocol-state labels.
    pub fn with_state_labels(mut self, on: bool) -> Self {
        self.state_labels = on;
        self
    }
}

/// One diagram node: a reachable configuration.
#[derive(Clone, Debug)]
pub struct DiagramNode {
    /// BFS discovery index; node `0` is the initial configuration.
    pub id: usize,
    /// Steps from the initial configuration.
    pub depth: usize,
    /// The declared propositions that hold here, in declaration order.
    pub props: Vec<&'static str>,
    /// The safety violation at this configuration, if any (rendered
    /// highlighted).
    pub violation: Option<String>,
    /// The full protocol-state label, when
    /// [`DiagramConfig::state_labels`] asked for one.
    pub state_label: Option<String>,
}

/// A rendered-ready state-space diagram; build with [`Diagram::walk`].
#[derive(Clone, Debug)]
pub struct Diagram {
    /// The configured title.
    pub title: String,
    /// Nodes in BFS discovery order (`nodes[i].id == i`).
    pub nodes: Vec<DiagramNode>,
    /// `(from, to, label)` edges in discovery order.
    pub edges: Vec<(usize, usize, String)>,
    /// Whether a cap (states or depth) hid part of the space.
    pub truncated: bool,
}

/// The label of one action out of `src`: `p0·start`, `p0·λ` or `p0·m⟨i⟩`.
fn action_label<P: Protocol>(src: &State<P>, action: ExploreDecision) -> String {
    let (p, choice) = action;
    if !src.is_started(p) {
        return format!("{p}·start");
    }
    match choice {
        Some(i) => format!("{p}·m{i}"),
        None => format!("{p}·λ"),
    }
}

/// Escape a label for a double-quoted DOT string.
fn dot_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Escape a label for a Mermaid edge/state description (Mermaid treats
/// `:` as its own delimiter and `"` ends quoted spans).
fn mermaid_escape(s: &str) -> String {
    s.replace('"', "'").replace(':', ";")
}

impl Diagram {
    /// Exhaustively walk the [`ProtocolMachine`] of a scenario and build
    /// the diagram: breadth-first from the initial configuration, one
    /// node per distinct configuration, one edge per enabled action.
    /// `safety` is evaluated at every node (on the protocol states and
    /// the output history); an `Err` marks the node violating.
    ///
    /// Errors if the scenario is ill-formed (process count mismatch).
    pub fn walk<P, D>(
        cfg: &DiagramConfig,
        make_procs: impl Fn() -> Vec<P>,
        invocations: Vec<Option<P::Inv>>,
        pattern: &FailurePattern,
        detector: D,
        mut safety: impl FnMut(&[P], &[(ProcessId, P::Output)]) -> Result<(), String>,
    ) -> Result<Diagram, String>
    where
        P: Protocol + Clone + Debug,
        D: FdOracle<Value = P::Fd>,
    {
        let procs = make_procs();
        let n = procs.len();
        if n != pattern.n() {
            return Err(format!(
                "failure pattern is over {} processes, the system has {n}",
                pattern.n()
            ));
        }
        if invocations.len() != n {
            return Err(format!(
                "{} invocation slots for {n} processes",
                invocations.len()
            ));
        }
        let machine = ProtocolMachine::<P, _>::new(pattern, oracle_fn(detector));
        let prop_names = P::props();
        let correct: Vec<bool> = (0..n).map(|q| pattern.is_correct(ProcessId(q))).collect();
        let mut outputs: Vec<(ProcessId, P::Output)> = Vec::new();

        // A node is identified by its full configuration rendering —
        // exact (no fingerprint collisions) and deterministic, which is
        // all these tiny graphs need.
        let render = |s: &State<P>| {
            format!(
                // wfd-lint: allow(d4-debug-format, node identity of a figure walker; dedup only, never part of checker output)
                "{:?}",
                (&s.procs, &s.inboxes, &s.started, &s.pending_inv, s.depth)
            )
        };
        let mut describe = |s: &State<P>, outputs: &mut Vec<(ProcessId, P::Output)>| {
            let t = s.depth() as crate::id::Time;
            let alive: Vec<bool> = (0..n)
                .map(|q| !pattern.is_crashed(ProcessId(q), t))
                .collect();
            let view = PropView {
                alive: &alive,
                correct: &correct,
            };
            let props: Vec<&'static str> = prop_names
                .iter()
                .enumerate()
                .filter(|&(i, _)| P::eval_prop(i, &s.procs, &view))
                .map(|(_, &name)| name)
                .collect();
            s.collect_outputs(outputs);
            let violation = safety(&s.procs, outputs).err();
            let state_label = cfg.state_labels.then(|| {
                // wfd-lint: allow(d4-debug-format, opt-in human-facing state label on a figure; never parsed)
                format!("{:?}", s.procs())
            });
            (props, violation, state_label)
        };

        let init = machine.initial(procs, invocations);
        let mut states: Vec<State<P>> = Vec::new();
        let mut nodes: Vec<DiagramNode> = Vec::new();
        let mut edges: Vec<(usize, usize, String)> = Vec::new();
        let mut seen: BTreeMap<String, usize> = BTreeMap::new();
        let mut queue: VecDeque<usize> = VecDeque::new();
        let mut truncated = false;

        let (props, violation, state_label) = describe(&init, &mut outputs);
        seen.insert(render(&init), 0);
        nodes.push(DiagramNode {
            id: 0,
            depth: init.depth(),
            props,
            violation,
            state_label,
        });
        states.push(init);
        queue.push_back(0);

        let mut actions: Vec<ExploreDecision> = Vec::new();
        while let Some(id) = queue.pop_front() {
            if nodes[id].depth >= cfg.max_depth {
                // Elide this node's outgoing edges; flag only if some
                // exist (a terminal configuration is complete, not cut).
                actions.clear();
                machine.enabled_into(&states[id], &mut actions);
                truncated |= !actions.is_empty();
                continue;
            }
            actions.clear();
            machine.enabled_into(&states[id], &mut actions);
            for &action in &actions {
                let StepResult::Next(next) = machine.transition(&states[id], &action) else {
                    continue;
                };
                let key = render(&next);
                let label = action_label(&states[id], action);
                let nid = match seen.get(&key) {
                    Some(&nid) => nid,
                    None => {
                        if nodes.len() >= cfg.max_states {
                            truncated = true;
                            continue;
                        }
                        let nid = nodes.len();
                        let (props, violation, state_label) = describe(&next, &mut outputs);
                        seen.insert(key, nid);
                        nodes.push(DiagramNode {
                            id: nid,
                            depth: next.depth(),
                            props,
                            violation,
                            state_label,
                        });
                        states.push(next);
                        queue.push_back(nid);
                        nid
                    }
                };
                edges.push((id, nid, label));
            }
        }
        Ok(Diagram {
            title: cfg.title.clone(),
            nodes,
            edges,
            truncated,
        })
    }

    /// Whether any node violates the safety predicate.
    pub fn has_violation(&self) -> bool {
        self.nodes.iter().any(|nd| nd.violation.is_some())
    }

    /// The node's rendered label: id, the propositions that hold, the
    /// optional state detail, and the violation message when present.
    fn node_label(&self, nd: &DiagramNode) -> String {
        let mut label = format!("s{}", nd.id);
        if !nd.props.is_empty() {
            label.push_str("\n{");
            label.push_str(&nd.props.join(", "));
            label.push('}');
        }
        if let Some(state) = &nd.state_label {
            label.push('\n');
            label.push_str(state);
        }
        if let Some(v) = &nd.violation {
            label.push_str("\n✗ ");
            label.push_str(v);
        }
        label
    }

    /// Render as Graphviz DOT. Violating nodes are filled red with a
    /// doubled border; the initial node has a bold outline.
    pub fn to_dot(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("digraph \"{}\" {{\n", dot_escape(&self.title)));
        out.push_str("  rankdir=LR;\n");
        out.push_str("  node [shape=box, fontname=\"Helvetica\"];\n");
        for nd in &self.nodes {
            let mut attrs = format!("label=\"{}\"", dot_escape(&self.node_label(nd)));
            if nd.id == 0 {
                attrs.push_str(", penwidth=2");
            }
            if nd.violation.is_some() {
                attrs.push_str(
                    ", style=filled, fillcolor=\"#ffdddd\", color=\"#cc0000\", peripheries=2",
                );
            }
            out.push_str(&format!("  s{} [{}];\n", nd.id, attrs));
        }
        for (from, to, label) in &self.edges {
            out.push_str(&format!(
                "  s{from} -> s{to} [label=\"{}\"];\n",
                dot_escape(label)
            ));
        }
        if self.truncated {
            out.push_str("  truncated [label=\"… (truncated)\", shape=plaintext];\n");
        }
        out.push_str("}\n");
        out
    }

    /// Render as a Mermaid `stateDiagram-v2`. Violating nodes get the
    /// `violating` class (red fill).
    pub fn to_mermaid(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "---\ntitle: {}\n---\n",
            mermaid_escape(&self.title)
        ));
        out.push_str("stateDiagram-v2\n");
        out.push_str("    classDef violating fill:#ffdddd,stroke:#cc0000,stroke-width:2px\n");
        out.push_str("    [*] --> s0\n");
        for nd in &self.nodes {
            let mut desc = format!("s{}", nd.id);
            if !nd.props.is_empty() {
                desc.push_str(&format!(" {{{}}}", nd.props.join(", ")));
            }
            if let Some(v) = &nd.violation {
                desc.push_str(&format!(" ✗ {v}"));
            }
            out.push_str(&format!("    s{}: {}\n", nd.id, mermaid_escape(&desc)));
        }
        for (from, to, label) in &self.edges {
            out.push_str(&format!(
                "    s{from} --> s{to}: {}\n",
                mermaid_escape(label)
            ));
        }
        for nd in &self.nodes {
            if nd.violation.is_some() {
                out.push_str(&format!("    class s{} violating\n", nd.id));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::NoDetector;
    use crate::protocol::Ctx;

    /// Two processes; each sends one ping on start and decides on the
    /// first delivery. The "safety" predicate plants a violation when
    /// anyone decides, so diagrams have highlighted states to test.
    #[derive(Clone, Debug, PartialEq)]
    struct Ping {
        decided: bool,
    }

    impl Protocol for Ping {
        type Msg = ();
        type Output = ();
        type Inv = ();
        type Fd = ();

        fn on_start(&mut self, ctx: &mut Ctx<Self>) {
            ctx.broadcast_others(());
        }

        fn on_message(&mut self, _ctx: &mut Ctx<Self>, _from: ProcessId, _msg: ()) {
            self.decided = true;
        }

        fn props() -> &'static [&'static str] {
            &["someone-decided"]
        }

        fn eval_prop(_prop: usize, procs: &[Self], _view: &PropView<'_>) -> bool {
            procs.iter().any(|p| p.decided)
        }
    }

    fn ping_diagram(max_depth: usize) -> Diagram {
        Diagram::walk(
            &DiagramConfig::new("ping").with_max_depth(max_depth),
            || vec![Ping { decided: false }, Ping { decided: false }],
            vec![None, None],
            &FailurePattern::failure_free(2),
            NoDetector,
            |procs, _outputs| {
                if procs.iter().any(|p| p.decided) {
                    Err("planted: someone decided".to_string())
                } else {
                    Ok(())
                }
            },
        )
        .expect("well-formed scenario")
    }

    #[test]
    fn walk_is_deterministic_and_flags_violations() {
        let a = ping_diagram(6);
        let b = ping_diagram(6);
        assert_eq!(a.to_dot(), b.to_dot());
        assert_eq!(a.to_mermaid(), b.to_mermaid());
        assert!(a.has_violation(), "the planted violation must be reached");
        assert_eq!(a.nodes[0].depth, 0);
        assert!(!a.nodes.is_empty() && !a.edges.is_empty());
    }

    #[test]
    fn dot_output_has_balanced_braces_and_declared_ids_only() {
        let d = ping_diagram(4);
        let dot = d.to_dot();
        let opens = dot.matches('{').count();
        let closes = dot.matches('}').count();
        assert_eq!(opens, closes, "unbalanced braces in DOT:\n{dot}");
        for (from, to, _) in &d.edges {
            assert!(*from < d.nodes.len() && *to < d.nodes.len());
        }
    }

    #[test]
    fn caps_mark_the_diagram_truncated() {
        let tight = Diagram::walk(
            &DiagramConfig::new("tight").with_max_states(2),
            || vec![Ping { decided: false }, Ping { decided: false }],
            vec![None, None],
            &FailurePattern::failure_free(2),
            NoDetector,
            |_, _| Ok(()),
        )
        .expect("well-formed scenario");
        assert!(tight.truncated);
        assert_eq!(tight.nodes.len(), 2);
    }

    #[test]
    fn scenario_shape_errors_are_reported() {
        let err = Diagram::walk(
            &DiagramConfig::new("bad"),
            || vec![Ping { decided: false }],
            vec![None],
            &FailurePattern::failure_free(2),
            NoDetector,
            |_, _| Ok(()),
        )
        .expect_err("1 process vs n=2 pattern");
        assert!(err.contains("2 processes"), "{err}");
    }
}
