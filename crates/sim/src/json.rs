//! A minimal JSON value model, parser and writer.
//!
//! Repro artifacts (see [`crate::repro`]) must serialize without external
//! dependencies, so this module hand-rolls the tiny subset of JSON the
//! workspace needs: objects, arrays, strings, integers, booleans and
//! `null`. Numbers are kept as raw tokens so 64-bit integers round-trip
//! exactly (no `f64` detour).
//!
//! ```
//! use wfd_sim::json::Json;
//! let v = Json::parse("{\"n\": 3, \"ok\": true, \"xs\": [1, 2]}").unwrap();
//! assert_eq!(v.get("n").and_then(Json::as_u64), Some(3));
//! assert_eq!(v.get("xs").and_then(Json::as_array).map(|a| a.len()), Some(2));
//! let back = Json::parse(&v.to_string()).unwrap();
//! assert_eq!(back.get("ok").and_then(Json::as_bool), Some(true));
//! ```

use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its raw token (integers round-trip exactly).
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order (duplicate keys keep the last value
    /// on lookup-by-first semantics of [`Json::get`]; we never emit
    /// duplicates).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A number value from a `u64`.
    pub fn u64(v: u64) -> Json {
        Json::Num(v.to_string())
    }

    /// A number value from a `usize`.
    pub fn usize(v: usize) -> Json {
        Json::Num(v.to_string())
    }

    /// A string value.
    pub fn str(s: &str) -> Json {
        Json::Str(s.to_string())
    }

    /// A boolean value.
    pub fn bool(v: bool) -> Json {
        Json::Bool(v)
    }

    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is an unsigned integer token.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as a `usize`, if it is an unsigned integer token.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Parse a JSON document (must be a single value, optionally
    /// surrounded by whitespace).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after value"));
        }
        Ok(v)
    }
}

/// Render a JSON value and self-validate it: the rendered text is parsed
/// back with [`Json::parse`] before being returned, so a malformed
/// artifact panics at the source instead of corrupting a `BENCH_*.json`
/// or lint report downstream. This is the one emit path every artifact
/// writer in the workspace shares (`wfd_bench::MetricsFlag::emit`,
/// `wfd-lint --json`).
///
/// # Panics
///
/// Panics if the rendered text does not parse back — which would mean
/// the writer in this module is broken, a programmer error.
pub fn render_validated(value: &Json) -> String {
    let rendered = value.to_string();
    Json::parse(&rendered).expect("emitted JSON must round-trip through the parser");
    rendered
}

/// Escape a string into a JSON string literal (with quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(raw) => f.write_str(raw),
            Json::Str(s) => f.write_str(&escape(s)),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{}: {v}", escape(k))?;
                }
                f.write_str("}")
            }
        }
    }
}

/// A parse error: what went wrong and the byte offset it happened at.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are out of scope for repro
                            // artifacts; reject rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape character")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so slicing
                    // at char boundaries is safe via chars()).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected a number"));
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("digits are ASCII")
            .to_string();
        Ok(Json::Num(raw))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let src = r#"{"a": [1, 2, {"b": "x\ny"}], "c": null, "d": false}"#;
        let v = Json::parse(src).unwrap();
        let v2 = Json::parse(&v.to_string()).unwrap();
        assert_eq!(v, v2);
    }

    #[test]
    fn u64_round_trips_exactly() {
        let big = u64::MAX;
        let v = Json::parse(&format!("{{\"x\": {big}}}")).unwrap();
        assert_eq!(v.get("x").and_then(Json::as_u64), Some(big));
        assert_eq!(Json::u64(big).as_u64(), Some(big));
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"s": "hi", "b": true, "xs": [], "z": null}"#).unwrap();
        assert_eq!(v.get("s").and_then(Json::as_str), Some("hi"));
        assert_eq!(v.get("b").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("xs").and_then(Json::as_array), Some(&[][..]));
        assert!(v.get("z").unwrap().is_null());
        assert!(v.get("missing").is_none());
        assert!(v.as_u64().is_none());
    }

    #[test]
    fn string_escapes_round_trip() {
        for s in [
            "plain",
            "a\"b\\c",
            "tab\there\nnl",
            "\u{1}control",
            "uni→code",
        ] {
            let v = Json::Str(s.to_string());
            let parsed = Json::parse(&v.to_string()).unwrap();
            assert_eq!(parsed.as_str(), Some(s), "failed for {s:?}");
        }
    }

    #[test]
    fn unicode_escape_parses() {
        let v = Json::parse(r#""Aé""#).unwrap();
        assert_eq!(v.as_str(), Some("Aé"));
    }

    #[test]
    fn errors_carry_offsets() {
        let e = Json::parse("{\"a\" 1}").unwrap_err();
        assert!(e.offset > 0);
        assert!(e.to_string().contains("byte"));
        assert!(Json::parse("[1, 2").is_err());
        assert!(Json::parse("tru").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn whitespace_tolerated() {
        let v = Json::parse(" \n\t{ \"a\" : [ 1 , 2 ] } \r\n").unwrap();
        assert_eq!(
            v.get("a").and_then(Json::as_array).map(|a| a.len()),
            Some(2)
        );
    }
}
