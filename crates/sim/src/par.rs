//! Deterministic fan-out primitive shared by the parallel explorer and
//! the benchmark sweep engine.
//!
//! [`par_map_with`] is the one concurrency building block in the
//! workspace: apply a pure function to every item of a slice across a
//! fixed worker count, collecting results **in item order** regardless of
//! which worker finishes first. Plain `std::thread::scope` workers, no
//! external runtime. `wfd_bench::sweep` re-exports it (the sweep engine
//! was its original home); [`crate::explore()`] uses it for frontier
//! batches.
//!
//! Determinism contract: the produced vector depends only on `items` and
//! `f`, never on `threads` — callers are free to scale the worker count
//! to the machine without changing any result.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The worker count the parallel explorer will use: `WFD_EXPLORE_THREADS`
/// if set, else the machine's available parallelism (resolved through
/// [`crate::EnvOverrides`], the one home of `WFD_*` reads). The count
/// never changes an exploration's verdict (see [`crate::explore()`]) —
/// only its wall-clock time and the report's `threads_used` field.
pub fn explore_threads() -> usize {
    crate::EnvOverrides::from_env().resolve_explore_threads(None)
}

/// Apply `f` to every item, fanning across `threads` workers; the result
/// vector is in item order regardless of completion order.
///
/// With `threads <= 1` (or fewer than two items) the map runs inline on
/// the calling thread — the reference execution the parallel path must
/// reproduce byte-for-byte.
pub fn par_map_with<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..items.len()).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads.min(items.len()) {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let r = f(i, item);
                *slots[i].lock().expect("slot poisoned") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("slot poisoned")
                .expect("every slot filled")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_with_preserves_order_at_any_width() {
        let items: Vec<u64> = (0..257).collect();
        for threads in [1, 2, 7, 32] {
            let out = par_map_with(&items, threads, |i, &x| {
                assert_eq!(i as u64, x);
                x * 3
            });
            assert_eq!(out, items.iter().map(|x| x * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn explore_threads_floor_is_one() {
        assert!(explore_threads() >= 1);
    }
}
