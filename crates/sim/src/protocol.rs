//! The process automaton abstraction: [`Protocol`] and its step context
//! [`Ctx`] — plus the reduction-facing declarations ([`Footprint`],
//! [`Symmetry`], [`Permutation`]) that let the bounded explorer prove
//! steps independent and states equivalent without executing them.

use crate::id::{ProcessId, Time};
use std::fmt::Debug;

/// A conservative, declared bound on what one step may do to the world
/// outside its own process: which inboxes it may append to and whether it
/// may emit an output. (Every step implicitly reads and writes its *own*
/// process — local state, own inbox, started flag — so own-process
/// effects are not part of the footprint.)
///
/// The explorer's dynamic partial-order reduction uses footprints to
/// prove two enabled steps of different processes *independent*: disjoint
/// send-sets, at most one output emitter, and neither sending to a
/// process whose pending step is a λ step (a send would disable it).
/// Over-declaring (the [`Footprint::opaque`] default) is always sound and
/// merely disables pruning; **under-declaring is unsound** — the engine
/// and the explorer therefore validate every executed step against its
/// declared footprint and panic on a violation.
///
/// Process sets are stored as a bitmask, so systems are capped at 64
/// processes — far above anything the explorer can enumerate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Footprint {
    sends: u64,
    output: bool,
}

impl Footprint {
    /// A step that sends nothing and outputs nothing (pure local step).
    pub fn local() -> Self {
        Footprint {
            sends: 0,
            output: false,
        }
    }

    /// The sound default: may send to everyone and may output. Makes the
    /// step dependent with every other step, disabling DPOR around it.
    pub fn opaque(n: usize) -> Self {
        Footprint {
            sends: Self::mask_all(n),
            output: true,
        }
    }

    fn mask_all(n: usize) -> u64 {
        if n >= 64 {
            u64::MAX
        } else {
            (1u64 << n) - 1
        }
    }

    fn bit(p: ProcessId) -> u64 {
        1u64 << (p.index().min(63))
    }

    /// Builder: the step may send to `p`.
    pub fn sends_to(mut self, p: ProcessId) -> Self {
        self.sends |= Self::bit(p);
        self
    }

    /// Builder: the step may send to every process (broadcast).
    pub fn sends_to_all(mut self, n: usize) -> Self {
        self.sends |= Self::mask_all(n);
        self
    }

    /// Builder: the step may send to every process except `me`
    /// ([`Ctx::broadcast_others`]).
    pub fn sends_to_others(mut self, n: usize, me: ProcessId) -> Self {
        self.sends |= Self::mask_all(n) & !Self::bit(me);
        self
    }

    /// Builder: the step may emit an output.
    pub fn outputs(mut self) -> Self {
        self.output = true;
        self
    }

    /// Whether the declared send-set contains `p`.
    pub fn may_send_to(&self, p: ProcessId) -> bool {
        self.sends & Self::bit(p) != 0
    }

    /// Whether the step may emit an output.
    pub fn may_output(&self) -> bool {
        self.output
    }

    /// Whether the two declared send-sets share any recipient (two sends
    /// to a common inbox do not commute — the append order is visible).
    pub fn sends_intersect(&self, other: &Footprint) -> bool {
        self.sends & other.sends != 0
    }
}

/// What kind of step a decision would take — the explorer hands this to
/// [`Protocol::footprint`] so the declaration can be per-handler (and,
/// for deliveries, per-message) rather than a single worst case.
#[derive(Debug)]
pub enum StepKind<'a, P: Protocol> {
    /// The process's first step: `on_start`, then `on_invoke` if an
    /// invocation is pending.
    Start {
        /// The pending invocation that will be delivered, if any.
        inv: Option<&'a P::Inv>,
    },
    /// A λ step (`on_tick`).
    Tick,
    /// Delivery of `msg` from `from` (`on_message`).
    Deliver {
        /// The sender recorded with the pending message.
        from: ProcessId,
        /// The message that would be delivered.
        msg: &'a P::Msg,
    },
}

/// A bijection on process ids, written as the image table: `map[i]` is
/// the id process `i` is renamed to. Built by [`Symmetry::permutations`];
/// applied to states by the explorer's symmetry canonicalization.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Permutation {
    map: Vec<usize>,
}

impl Permutation {
    /// The identity on `n` processes.
    pub fn identity(n: usize) -> Self {
        Permutation {
            map: (0..n).collect(),
        }
    }

    /// Build from an image table (`map[i]` = image of process `i`). The
    /// table must be a bijection on `0..map.len()`.
    pub fn from_map(map: Vec<usize>) -> Self {
        let n = map.len();
        let mut seen = vec![false; n];
        for &img in &map {
            assert!(img < n && !seen[img], "not a bijection on 0..{n}: {map:?}");
            seen[img] = true;
        }
        Permutation { map }
    }

    /// The number of processes this permutation acts on.
    pub fn n(&self) -> usize {
        self.map.len()
    }

    /// The image of `p`.
    pub fn apply(&self, p: ProcessId) -> ProcessId {
        ProcessId(self.map[p.index()])
    }

    /// The preimage table: `inverse()[j]` is the process mapped *to* `j`.
    pub fn inverse_map(&self) -> Vec<usize> {
        let mut inv = vec![0; self.map.len()];
        for (i, &img) in self.map.iter().enumerate() {
            inv[img] = i;
        }
        inv
    }

    /// Whether this is the identity.
    pub fn is_identity(&self) -> bool {
        self.map.iter().enumerate().all(|(i, &img)| i == img)
    }
}

/// The process-id symmetry group a protocol declares — the set of
/// renamings under which its behavior is *equivariant*: renaming the
/// processes of a reachable state by any group element yields a state
/// whose futures are the same renaming of the original's futures.
///
/// Declaring symmetry is a soundness claim. It holds when handler
/// behavior depends on ids only through the declared structure (e.g.
/// "reply to the sender" is fine under [`Symmetry::Full`]; "send to
/// `me + 1`" is equivariant only under [`Symmetry::Cyclic`]) and when
/// every embedded id in local state, messages and outputs is rewritten by
/// the [`Protocol::permute`]/[`Protocol::permute_msg`]/
/// [`Protocol::permute_output`] hooks. The explorer additionally
/// restricts the group to elements that preserve the failure pattern and
/// the initial invocation vector, so asymmetric *scenarios* never
/// inherit a symmetric protocol's full group.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Symmetry {
    /// No declared symmetry (the default): only the identity.
    #[default]
    Trivial,
    /// Rotations `p ↦ p + k (mod n)` — ring topologies.
    Cyclic,
    /// Every permutation of the `n` ids — fully id-agnostic protocols
    /// (broadcast + reply-to-sender structure, id-free payloads or
    /// payloads rewritten by the permute hooks).
    Full,
}

/// Enumerating [`Symmetry::Full`] costs `n!` candidate permutations per
/// keyed state; above this bound the explorer falls back to the cyclic
/// subgroup, which stays linear in `n`.
pub const FULL_SYMMETRY_MAX_N: usize = 6;

impl Symmetry {
    /// The group's elements on `n` processes, identity first, in a fixed
    /// deterministic order. [`Symmetry::Full`] falls back to the cyclic
    /// subgroup above [`FULL_SYMMETRY_MAX_N`] processes (factorial blowup).
    pub fn permutations(&self, n: usize) -> Vec<Permutation> {
        match self {
            Symmetry::Trivial => vec![Permutation::identity(n)],
            Symmetry::Cyclic => (0..n.max(1))
                .map(|k| Permutation {
                    map: (0..n).map(|i| (i + k) % n.max(1)).collect(),
                })
                .collect(),
            Symmetry::Full if n > FULL_SYMMETRY_MAX_N => Symmetry::Cyclic.permutations(n),
            Symmetry::Full => {
                // Lexicographic enumeration of all image tables, identity
                // first (the identity is lexicographically least).
                let mut out = Vec::new();
                let mut map: Vec<usize> = (0..n).collect();
                loop {
                    out.push(Permutation { map: map.clone() });
                    // Next lexicographic permutation, or stop.
                    let Some(i) = (0..n.saturating_sub(1))
                        .rev()
                        .find(|&i| map[i] < map[i + 1])
                    else {
                        break;
                    };
                    let j = (i + 1..n).rev().find(|&j| map[j] > map[i]).expect("succ");
                    map.swap(i, j);
                    map[i + 1..].reverse();
                }
                out
            }
        }
    }
}

/// A distributed algorithm, written as one automaton per process.
///
/// One value of the implementing type is instantiated per process; the
/// engine drives it through atomic steps exactly as in the paper's model:
/// in one step a process receives a message (or the empty message λ),
/// queries its failure detector, sends messages and changes state.
///
/// * [`on_start`](Protocol::on_start) runs as the process's first step.
/// * [`on_message`](Protocol::on_message) runs when the step delivers a
///   message.
/// * [`on_tick`](Protocol::on_tick) runs when the step delivers λ.
/// * [`on_invoke`](Protocol::on_invoke) runs when the harness injects an
///   operation invocation (e.g. `read`, `write(v)`, `propose(v)`) — this
///   models the application layer calling into the algorithm.
///
/// Handlers interact with the world exclusively through [`Ctx`], which makes
/// protocols trivially testable in isolation (see [`Ctx::detached`]).
pub trait Protocol: Sized {
    /// Message type exchanged between processes.
    type Msg: Clone + Debug;
    /// Observable outputs (decisions, responses, emitted detector values).
    type Output: Clone + Debug;
    /// Operation invocations injected by the harness.
    type Inv: Clone + Debug;
    /// The failure detector value this protocol queries each step.
    ///
    /// `PartialEq` is required because the explorer's reduction layer
    /// certifies DPOR independence only when the detector answers
    /// *structurally* equal values at adjacent step times — a `Debug`
    /// rendering is not a sound proxy (distinct values may print alike).
    type Fd: Clone + Debug + PartialEq;

    /// First step of the process.
    fn on_start(&mut self, _ctx: &mut Ctx<Self>) {}

    /// A step in which message `msg` from `from` is received.
    fn on_message(&mut self, ctx: &mut Ctx<Self>, from: ProcessId, msg: Self::Msg);

    /// A step in which the empty message λ is received.
    fn on_tick(&mut self, _ctx: &mut Ctx<Self>) {}

    /// A step in which the application invokes an operation.
    fn on_invoke(&mut self, _ctx: &mut Ctx<Self>, _inv: Self::Inv) {}

    // -- Reduction declarations (all optional, defaults are sound) -------

    /// A conservative bound on what the step described by `step` would do
    /// beyond this process, given the current local state: which inboxes
    /// it may append to and whether it may output. The default is
    /// [`Footprint::opaque`] — sound, but it makes the step dependent
    /// with everything and so yields no DPOR pruning.
    ///
    /// The declaration must *cover* the actual behavior: the explorer and
    /// the engine check every executed step against it and panic on an
    /// undeclared send or output, so a too-tight footprint cannot
    /// silently cause unsound pruning.
    fn footprint(&self, _me: ProcessId, n: usize, _step: StepKind<'_, Self>) -> Footprint {
        Footprint::opaque(n)
    }

    /// The process-id symmetry group this protocol is equivariant under
    /// (see [`Symmetry`]). The default, [`Symmetry::Trivial`], disables
    /// symmetry canonicalization for the protocol. Declaring a larger
    /// group is a soundness claim about the handlers *and* about the
    /// permute hooks below rewriting every embedded id.
    fn symmetry(_n: usize) -> Symmetry {
        Symmetry::Trivial
    }

    /// Rewrite every process id embedded in this local state under
    /// `perm`. The default no-op is correct exactly when the state stores
    /// no ids; protocols declaring non-trivial [`Protocol::symmetry`]
    /// with id-bearing state must override it.
    fn permute(&mut self, _perm: &Permutation) {}

    /// Rewrite every process id embedded in a message payload under
    /// `perm` (the id the message is *addressed* with is handled by the
    /// explorer; this hook is for ids inside the payload).
    fn permute_msg(_msg: &mut Self::Msg, _perm: &Permutation) {}

    /// Rewrite every process id embedded in an output value under `perm`
    /// (the emitting process's id is handled by the explorer).
    fn permute_output(_out: &mut Self::Output, _perm: &Permutation) {}

    // -- Temporal-property declarations (optional) -----------------------

    /// Names of the atomic propositions this protocol exposes to the
    /// liveness checker (`wfd_sim::liveness`), in declaration order. LTL
    /// formulas refer to propositions by these names; the index of a name
    /// in this slice is the `prop` argument to
    /// [`eval_prop`](Protocol::eval_prop). At most 32 propositions may be
    /// declared. The default — no propositions — leaves the protocol
    /// checkable only against proposition-free formulas.
    fn props() -> &'static [&'static str] {
        &[]
    }

    /// Evaluate proposition `prop` (an index into
    /// [`props`](Protocol::props)) over a global configuration: the local
    /// state of every process plus the [`PropView`] of who is alive and
    /// who is correct. Propositions must be *state predicates* — pure
    /// functions of the arguments, with no history or hidden inputs — and,
    /// when the protocol declares a non-trivial [`Protocol::symmetry`],
    /// invariant under every permutation in that group (quantify over
    /// processes instead of naming one). The default answers `false` for
    /// every proposition, matching the empty [`props`](Protocol::props).
    fn eval_prop(_prop: usize, _procs: &[Self], _view: &PropView<'_>) -> bool {
        false
    }
}

/// The failure-pattern facts visible to an atomic proposition, alongside
/// the per-process protocol states (see [`Protocol::eval_prop`]).
///
/// Both slices are indexed by process id. `alive` describes the instant
/// the proposition is evaluated at; `correct` is the whole-run fact
/// (never crashes in the pattern under check). Propositions about
/// *eventual* behavior — "all correct processes decide", "the correct
/// processes agree on a leader" — quantify over `correct`; propositions
/// about the current instant quantify over `alive`.
#[derive(Debug, Clone, Copy)]
pub struct PropView<'a> {
    /// `alive[p]`: process `p` has not crashed yet at the evaluation
    /// instant.
    pub alive: &'a [bool],
    /// `correct[p]`: process `p` never crashes in the pattern under
    /// check.
    pub correct: &'a [bool],
}

/// Everything a process may consult or effect during one atomic step.
///
/// A `Ctx` is created by the engine for each step, pre-loaded with the
/// failure detector value sampled for that step, and drained afterwards.
#[derive(Debug)]
pub struct Ctx<P: Protocol> {
    me: ProcessId,
    n: usize,
    now: Time,
    fd: P::Fd,
    sends: Vec<(ProcessId, P::Msg)>,
    outputs: Vec<P::Output>,
}

/// A queue of `(destination, message)` pairs — the engine recycles one
/// such buffer across all steps of a run.
pub type SendBuf<P> = Vec<(ProcessId, <P as Protocol>::Msg)>;

impl<P: Protocol> Ctx<P> {
    /// Build a stand-alone context, e.g. for unit-testing a protocol
    /// handler or for hosting a protocol inside another protocol
    /// (transformation algorithms run *n* inner instances this way).
    ///
    /// `now` is visible to the harness only; protocols must not use it to
    /// make decisions that the paper's model would disallow (processes
    /// cannot read the global clock), and none of the protocols in this
    /// workspace do.
    pub fn detached(me: ProcessId, n: usize, now: Time, fd: P::Fd) -> Self {
        Self::with_buffers(me, n, now, fd, Vec::new(), Vec::new())
    }

    /// Like [`Ctx::detached`], but reusing previously-allocated send and
    /// output buffers (which must be empty). The engine recycles one pair
    /// of buffers across all steps of a run, so the per-step delivery
    /// loop allocates nothing; recover the buffers with
    /// [`Ctx::into_buffers`].
    pub fn with_buffers(
        me: ProcessId,
        n: usize,
        now: Time,
        fd: P::Fd,
        sends: Vec<(ProcessId, P::Msg)>,
        outputs: Vec<P::Output>,
    ) -> Self {
        debug_assert!(
            sends.is_empty() && outputs.is_empty(),
            "buffers must be empty"
        );
        Ctx {
            me,
            n,
            now,
            fd,
            sends,
            outputs,
        }
    }

    /// Consume the context, returning `(sends, outputs)` with their
    /// queued contents (and their allocations, for recycling).
    pub fn into_buffers(self) -> (SendBuf<P>, Vec<P::Output>) {
        (self.sends, self.outputs)
    }

    /// This process's id.
    pub fn me(&self) -> ProcessId {
        self.me
    }

    /// System size `n = |Π|`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The global time of this step (harness-visible only; see
    /// [`Ctx::detached`]).
    pub fn now(&self) -> Time {
        self.now
    }

    /// The failure detector value `d` seen in this step `⟨p, m, d⟩`.
    pub fn fd(&self) -> &P::Fd {
        &self.fd
    }

    /// Iterate over all process ids.
    pub fn processes(&self) -> impl DoubleEndedIterator<Item = ProcessId> + Clone {
        ProcessId::all(self.n)
    }

    /// Send `msg` to process `to` (messages to self are delivered through
    /// the network like any other).
    pub fn send(&mut self, to: ProcessId, msg: P::Msg) {
        self.sends.push((to, msg));
    }

    /// Send `msg` to every process, *including* the sender — the "send to
    /// all" of the paper's pseudocode. Fans out with `n − 1` clones (the
    /// last recipient takes the original by move).
    pub fn broadcast(&mut self, msg: P::Msg) {
        self.fan_out(msg, None);
    }

    /// Send `msg` to every process except the sender.
    pub fn broadcast_others(&mut self, msg: P::Msg) {
        self.fan_out(msg, Some(self.me));
    }

    /// Queue `msg` for every process except `skip`, cloning one time
    /// fewer than the recipient count.
    fn fan_out(&mut self, msg: P::Msg, skip: Option<ProcessId>) {
        let mut recipients = ProcessId::all(self.n).filter(|&q| Some(q) != skip);
        let Some(first) = recipients.next() else {
            return;
        };
        let mut carry = first;
        for q in recipients {
            self.sends.push((carry, msg.clone()));
            carry = q;
        }
        self.sends.push((carry, msg));
    }

    /// Emit an observable output (decision, operation response, detector
    /// sample, …). Outputs are recorded in the run trace.
    pub fn output(&mut self, out: P::Output) {
        self.outputs.push(out);
    }

    /// Drain the messages queued by the handler, in send order.
    pub fn take_sends(&mut self) -> Vec<(ProcessId, P::Msg)> {
        std::mem::take(&mut self.sends)
    }

    /// Drain the outputs emitted by the handler, in emission order.
    pub fn take_outputs(&mut self) -> Vec<P::Output> {
        std::mem::take(&mut self.outputs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Echo;

    impl Protocol for Echo {
        type Msg = u32;
        type Output = u32;
        type Inv = ();
        type Fd = ();

        fn on_message(&mut self, ctx: &mut Ctx<Self>, from: ProcessId, msg: u32) {
            ctx.send(from, msg + 1);
            ctx.output(msg);
        }
    }

    #[test]
    fn detached_ctx_collects_sends_and_outputs() {
        let mut p = Echo;
        let mut ctx = Ctx::<Echo>::detached(ProcessId(0), 3, 7, ());
        p.on_message(&mut ctx, ProcessId(2), 41);
        assert_eq!(ctx.me(), ProcessId(0));
        assert_eq!(ctx.n(), 3);
        assert_eq!(ctx.now(), 7);
        assert_eq!(ctx.take_sends(), vec![(ProcessId(2), 42)]);
        assert_eq!(ctx.take_outputs(), vec![41]);
        // Draining twice yields nothing.
        assert!(ctx.take_sends().is_empty());
        assert!(ctx.take_outputs().is_empty());
    }

    #[test]
    fn broadcast_includes_self_broadcast_others_does_not() {
        let mut ctx = Ctx::<Echo>::detached(ProcessId(1), 3, 0, ());
        ctx.broadcast(5);
        let sends = ctx.take_sends();
        assert_eq!(sends.len(), 3);
        assert!(sends.iter().any(|(to, _)| *to == ProcessId(1)));

        ctx.broadcast_others(6);
        let sends = ctx.take_sends();
        assert_eq!(sends.len(), 2);
        assert!(!sends.iter().any(|(to, _)| *to == ProcessId(1)));
    }

    #[test]
    fn processes_enumerates_system() {
        let ctx = Ctx::<Echo>::detached(ProcessId(0), 4, 0, ());
        assert_eq!(ctx.processes().count(), 4);
    }

    #[test]
    fn footprint_builders_compose() {
        let fp = Footprint::local();
        assert!(!fp.may_output());
        assert!((0..4).all(|p| !fp.may_send_to(ProcessId(p))));

        let fp = Footprint::local().sends_to(ProcessId(2)).outputs();
        assert!(fp.may_send_to(ProcessId(2)));
        assert!(!fp.may_send_to(ProcessId(1)));
        assert!(fp.may_output());

        let all = Footprint::local().sends_to_all(3);
        assert!((0..3).all(|p| all.may_send_to(ProcessId(p))));
        assert!(!all.may_output());

        let others = Footprint::local().sends_to_others(3, ProcessId(1));
        assert!(others.may_send_to(ProcessId(0)));
        assert!(!others.may_send_to(ProcessId(1)));
        assert!(others.may_send_to(ProcessId(2)));

        let opaque = Footprint::opaque(3);
        assert!(opaque.may_output());
        assert!((0..3).all(|p| opaque.may_send_to(ProcessId(p))));
    }

    #[test]
    fn footprint_send_sets_intersect_only_on_common_recipients() {
        let a = Footprint::local().sends_to(ProcessId(0));
        let b = Footprint::local().sends_to(ProcessId(1));
        let c = Footprint::local()
            .sends_to(ProcessId(1))
            .sends_to(ProcessId(2));
        assert!(!a.sends_intersect(&b));
        assert!(b.sends_intersect(&c));
        assert!(!a.sends_intersect(&c));
        assert!(!Footprint::local().sends_intersect(&Footprint::opaque(4)));
    }

    #[test]
    fn permutation_apply_inverse_identity() {
        let id = Permutation::identity(4);
        assert!(id.is_identity());
        assert_eq!(id.n(), 4);

        let p = Permutation::from_map(vec![2, 0, 1]);
        assert!(!p.is_identity());
        assert_eq!(p.apply(ProcessId(0)), ProcessId(2));
        assert_eq!(p.apply(ProcessId(2)), ProcessId(1));
        let inv = p.inverse_map();
        // inverse_map()[j] is the preimage of j: p.apply(inv[j]) == j.
        for (j, &pre) in inv.iter().enumerate() {
            assert_eq!(p.apply(ProcessId(pre)), ProcessId(j));
        }
    }

    #[test]
    #[should_panic(expected = "not a bijection")]
    fn permutation_rejects_non_bijections() {
        let _ = Permutation::from_map(vec![0, 0, 2]);
    }

    #[test]
    fn symmetry_groups_enumerate_identity_first() {
        let trivial = Symmetry::Trivial.permutations(3);
        assert_eq!(trivial.len(), 1);
        assert!(trivial[0].is_identity());

        let cyclic = Symmetry::Cyclic.permutations(4);
        assert_eq!(cyclic.len(), 4);
        assert!(cyclic[0].is_identity());
        assert_eq!(cyclic[1].apply(ProcessId(3)), ProcessId(0));

        let full = Symmetry::Full.permutations(3);
        assert_eq!(full.len(), 6);
        assert!(full[0].is_identity());
        // All elements distinct.
        for (i, a) in full.iter().enumerate() {
            for b in &full[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn full_symmetry_falls_back_to_cyclic_past_the_bound() {
        let n = FULL_SYMMETRY_MAX_N + 1;
        let full = Symmetry::Full.permutations(n);
        assert_eq!(full, Symmetry::Cyclic.permutations(n));
        assert_eq!(full.len(), n);
    }
}
