//! The process automaton abstraction: [`Protocol`] and its step context
//! [`Ctx`].

use crate::id::{ProcessId, Time};
use std::fmt::Debug;

/// A distributed algorithm, written as one automaton per process.
///
/// One value of the implementing type is instantiated per process; the
/// engine drives it through atomic steps exactly as in the paper's model:
/// in one step a process receives a message (or the empty message λ),
/// queries its failure detector, sends messages and changes state.
///
/// * [`on_start`](Protocol::on_start) runs as the process's first step.
/// * [`on_message`](Protocol::on_message) runs when the step delivers a
///   message.
/// * [`on_tick`](Protocol::on_tick) runs when the step delivers λ.
/// * [`on_invoke`](Protocol::on_invoke) runs when the harness injects an
///   operation invocation (e.g. `read`, `write(v)`, `propose(v)`) — this
///   models the application layer calling into the algorithm.
///
/// Handlers interact with the world exclusively through [`Ctx`], which makes
/// protocols trivially testable in isolation (see [`Ctx::detached`]).
pub trait Protocol: Sized {
    /// Message type exchanged between processes.
    type Msg: Clone + Debug;
    /// Observable outputs (decisions, responses, emitted detector values).
    type Output: Clone + Debug;
    /// Operation invocations injected by the harness.
    type Inv: Clone + Debug;
    /// The failure detector value this protocol queries each step.
    type Fd: Clone + Debug;

    /// First step of the process.
    fn on_start(&mut self, _ctx: &mut Ctx<Self>) {}

    /// A step in which message `msg` from `from` is received.
    fn on_message(&mut self, ctx: &mut Ctx<Self>, from: ProcessId, msg: Self::Msg);

    /// A step in which the empty message λ is received.
    fn on_tick(&mut self, _ctx: &mut Ctx<Self>) {}

    /// A step in which the application invokes an operation.
    fn on_invoke(&mut self, _ctx: &mut Ctx<Self>, _inv: Self::Inv) {}
}

/// Everything a process may consult or effect during one atomic step.
///
/// A `Ctx` is created by the engine for each step, pre-loaded with the
/// failure detector value sampled for that step, and drained afterwards.
#[derive(Debug)]
pub struct Ctx<P: Protocol> {
    me: ProcessId,
    n: usize,
    now: Time,
    fd: P::Fd,
    sends: Vec<(ProcessId, P::Msg)>,
    outputs: Vec<P::Output>,
}

/// A queue of `(destination, message)` pairs — the engine recycles one
/// such buffer across all steps of a run.
pub type SendBuf<P> = Vec<(ProcessId, <P as Protocol>::Msg)>;

impl<P: Protocol> Ctx<P> {
    /// Build a stand-alone context, e.g. for unit-testing a protocol
    /// handler or for hosting a protocol inside another protocol
    /// (transformation algorithms run *n* inner instances this way).
    ///
    /// `now` is visible to the harness only; protocols must not use it to
    /// make decisions that the paper's model would disallow (processes
    /// cannot read the global clock), and none of the protocols in this
    /// workspace do.
    pub fn detached(me: ProcessId, n: usize, now: Time, fd: P::Fd) -> Self {
        Self::with_buffers(me, n, now, fd, Vec::new(), Vec::new())
    }

    /// Like [`Ctx::detached`], but reusing previously-allocated send and
    /// output buffers (which must be empty). The engine recycles one pair
    /// of buffers across all steps of a run, so the per-step delivery
    /// loop allocates nothing; recover the buffers with
    /// [`Ctx::into_buffers`].
    pub fn with_buffers(
        me: ProcessId,
        n: usize,
        now: Time,
        fd: P::Fd,
        sends: Vec<(ProcessId, P::Msg)>,
        outputs: Vec<P::Output>,
    ) -> Self {
        debug_assert!(
            sends.is_empty() && outputs.is_empty(),
            "buffers must be empty"
        );
        Ctx {
            me,
            n,
            now,
            fd,
            sends,
            outputs,
        }
    }

    /// Consume the context, returning `(sends, outputs)` with their
    /// queued contents (and their allocations, for recycling).
    pub fn into_buffers(self) -> (SendBuf<P>, Vec<P::Output>) {
        (self.sends, self.outputs)
    }

    /// This process's id.
    pub fn me(&self) -> ProcessId {
        self.me
    }

    /// System size `n = |Π|`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The global time of this step (harness-visible only; see
    /// [`Ctx::detached`]).
    pub fn now(&self) -> Time {
        self.now
    }

    /// The failure detector value `d` seen in this step `⟨p, m, d⟩`.
    pub fn fd(&self) -> &P::Fd {
        &self.fd
    }

    /// Iterate over all process ids.
    pub fn processes(&self) -> impl DoubleEndedIterator<Item = ProcessId> + Clone {
        ProcessId::all(self.n)
    }

    /// Send `msg` to process `to` (messages to self are delivered through
    /// the network like any other).
    pub fn send(&mut self, to: ProcessId, msg: P::Msg) {
        self.sends.push((to, msg));
    }

    /// Send `msg` to every process, *including* the sender — the "send to
    /// all" of the paper's pseudocode. Fans out with `n − 1` clones (the
    /// last recipient takes the original by move).
    pub fn broadcast(&mut self, msg: P::Msg) {
        self.fan_out(msg, None);
    }

    /// Send `msg` to every process except the sender.
    pub fn broadcast_others(&mut self, msg: P::Msg) {
        self.fan_out(msg, Some(self.me));
    }

    /// Queue `msg` for every process except `skip`, cloning one time
    /// fewer than the recipient count.
    fn fan_out(&mut self, msg: P::Msg, skip: Option<ProcessId>) {
        let mut recipients = ProcessId::all(self.n).filter(|&q| Some(q) != skip);
        let Some(first) = recipients.next() else {
            return;
        };
        let mut carry = first;
        for q in recipients {
            self.sends.push((carry, msg.clone()));
            carry = q;
        }
        self.sends.push((carry, msg));
    }

    /// Emit an observable output (decision, operation response, detector
    /// sample, …). Outputs are recorded in the run trace.
    pub fn output(&mut self, out: P::Output) {
        self.outputs.push(out);
    }

    /// Drain the messages queued by the handler, in send order.
    pub fn take_sends(&mut self) -> Vec<(ProcessId, P::Msg)> {
        std::mem::take(&mut self.sends)
    }

    /// Drain the outputs emitted by the handler, in emission order.
    pub fn take_outputs(&mut self) -> Vec<P::Output> {
        std::mem::take(&mut self.outputs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Echo;

    impl Protocol for Echo {
        type Msg = u32;
        type Output = u32;
        type Inv = ();
        type Fd = ();

        fn on_message(&mut self, ctx: &mut Ctx<Self>, from: ProcessId, msg: u32) {
            ctx.send(from, msg + 1);
            ctx.output(msg);
        }
    }

    #[test]
    fn detached_ctx_collects_sends_and_outputs() {
        let mut p = Echo;
        let mut ctx = Ctx::<Echo>::detached(ProcessId(0), 3, 7, ());
        p.on_message(&mut ctx, ProcessId(2), 41);
        assert_eq!(ctx.me(), ProcessId(0));
        assert_eq!(ctx.n(), 3);
        assert_eq!(ctx.now(), 7);
        assert_eq!(ctx.take_sends(), vec![(ProcessId(2), 42)]);
        assert_eq!(ctx.take_outputs(), vec![41]);
        // Draining twice yields nothing.
        assert!(ctx.take_sends().is_empty());
        assert!(ctx.take_outputs().is_empty());
    }

    #[test]
    fn broadcast_includes_self_broadcast_others_does_not() {
        let mut ctx = Ctx::<Echo>::detached(ProcessId(1), 3, 0, ());
        ctx.broadcast(5);
        let sends = ctx.take_sends();
        assert_eq!(sends.len(), 3);
        assert!(sends.iter().any(|(to, _)| *to == ProcessId(1)));

        ctx.broadcast_others(6);
        let sends = ctx.take_sends();
        assert_eq!(sends.len(), 2);
        assert!(!sends.iter().any(|(to, _)| *to == ProcessId(1)));
    }

    #[test]
    fn processes_enumerates_system() {
        let ctx = Ctx::<Echo>::detached(ProcessId(0), 4, 0, ());
        assert_eq!(ctx.processes().count(), 4);
    }
}
