//! # wfd-sim — the asynchronous message-passing model, executable
//!
//! This crate implements the system model of Chandra–Toueg style
//! failure-detector papers, and in particular the model section of
//! Delporte-Gallet et al., *"The Weakest Failure Detectors to Solve Certain
//! Fundamental Problems in Distributed Computing"* (PODC 2004):
//!
//! * a set `Π` of `n` processes that fail only by crashing
//!   ([`ProcessId`], [`FailurePattern`]),
//! * reliable links with finite but unbounded delay (the message buffer in
//!   [`Sim`], bounded per-run by a fairness parameter so that runs are fair),
//! * a discrete global clock ([`Time`]) that is *not* accessible to
//!   processes,
//! * atomic steps `⟨p, m, d⟩` in which a process receives one message (or
//!   the empty message λ), queries its failure detector module, sends
//!   messages and changes state ([`Protocol`], [`Ctx`]),
//! * failure detectors as per-process, per-time oracles ([`FdOracle`]),
//! * environments as sets of admissible failure patterns ([`Environment`]).
//!
//! The simulator is fully deterministic given a protocol, a failure
//! pattern, a detector oracle, a scheduler and a seed, which is what makes
//! the paper's *"for all runs"* claims checkable by sweeping seeds and
//! patterns.
//!
//! ## Quickstart
//!
//! ```
//! use wfd_sim::{Protocol, Ctx, ProcessId, Sim, SimConfig, FailurePattern,
//!               NoDetector, RoundRobin};
//!
//! /// Every process broadcasts "hello" once and outputs how many hellos it saw.
//! struct Hello { seen: usize }
//!
//! impl Protocol for Hello {
//!     type Msg = ();
//!     type Output = usize;
//!     type Inv = ();
//!     type Fd = ();
//!
//!     fn on_start(&mut self, ctx: &mut Ctx<Self>) {
//!         ctx.broadcast(());
//!     }
//!     fn on_message(&mut self, ctx: &mut Ctx<Self>, _from: ProcessId, _msg: ()) {
//!         self.seen += 1;
//!         ctx.output(self.seen);
//!     }
//! }
//!
//! let n = 3;
//! let mut sim = Sim::new(
//!     SimConfig::new(n),
//!     (0..n).map(|_| Hello { seen: 0 }).collect(),
//!     FailurePattern::failure_free(n),
//!     NoDetector,
//!     RoundRobin::new(),
//! );
//! let outcome = sim.run();
//! assert!(outcome.steps >= 3);
//! // Everyone eventually saw all three hellos.
//! assert!(sim.trace().outputs().filter(|(_, _, o)| **o == n).count() >= n);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diagram;
mod engine;
pub mod env;
pub mod explore;
#[doc(hidden)]
pub mod explore_baseline;
mod failure;
mod id;
pub mod json;
pub mod liveness;
pub mod machine;
pub mod obs;
mod oracle;
pub mod par;
mod protocol;
pub mod repro;
mod rng;
mod scheduler;
pub mod shrink;
mod trace;

pub use diagram::{Diagram, DiagramConfig, DiagramNode};
pub use engine::{RunOutcome, Sim, SimConfig, SimParts, StopReason};
pub use env::{EnvOverrides, MetricsMode};
pub use explore::{
    explore, explore_custom, seen_shard_width, ExactKeyHasher, ExploreConfig, ExploreDecision,
    ExploreReport, ExploreViolation, FingerprintHasher, Hasher, StateHasher,
};
pub use failure::{Environment, FailurePattern, PatternSampler};
pub use id::{ProcessId, ProcessSet, Time};
pub use liveness::{
    check_liveness, LassoWitness, LivenessConfig, LivenessReport, LivenessVerdict, Ltl,
};
pub use machine::{
    oracle_fn, FairMachine, LiveNode, Machine, ProtocolMachine, ReductionConfig, Replay, State,
    StepResult,
};
pub use obs::{CounterId, HistId, MetricsSnapshot, Obs, PhaseId, PhaseTimer};
pub use oracle::{ConstDetector, FdOracle, FnDetector, NoDetector};
pub use protocol::{
    Ctx, Footprint, Permutation, PropView, Protocol, StepKind, Symmetry, FULL_SYMMETRY_MAX_N,
};
pub use repro::{OracleSpec, Repro, ReproDecisions, ReproInvocation, ReproSource, SchedulerSpec};
pub use rng::SimRng;
pub use scheduler::{
    Adversarial, Decision, RandomFair, RecordedSchedule, ReplaySchedule, RoundRobin, Scheduler,
};
pub use shrink::{shrink, ShrinkReport};
pub use trace::{Event, EventKind, Trace, TraceMode, TraceSummary};
