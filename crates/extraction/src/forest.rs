//! The simulation forest Υ: canonical runs of `A` for the `n+1` initial
//! configurations, driven by recorded detector samples.
//!
//! Tree `i`'s initial configuration `I_i` has processes `p_0 … p_{i−1}`
//! propose 1 and the rest propose 0. The canonical run of a tree over a
//! sample window applies the samples in time order (each sample is one
//! step of the sampled process) and stops at the first decision — one
//! admissible branch of the CHT tree, deterministic in the window, hence
//! identical at every extractor that holds the same samples.

use crate::family::QcFamily;
use crate::runner::Runner;
use crate::sampling::Sample;
use wfd_consensus::ConsensusOutput;
use wfd_quittable::QcDecision;
use wfd_sim::obs::{CounterId, HistId, Obs, PhaseId};
use wfd_sim::ProcessId;

/// Result of evaluating one tree over a window.
#[derive(Clone, Debug)]
pub struct TreeRun<Fd> {
    /// Which tree (number of leading 1-proposers in `I_i`).
    pub ones: usize,
    /// The first decision reached in the canonical run, if any.
    pub decision: Option<QcDecision<u8>>,
    /// The executed schedule up to (and including) the deciding step.
    pub schedule: Vec<(ProcessId, Fd)>,
}

/// The proposals of initial configuration `I_i` for a system of `n`
/// processes: `p_j` proposes 1 iff `j < i`.
pub fn initial_proposals(n: usize, ones: usize) -> Vec<Option<u8>> {
    (0..n).map(|j| Some(u8::from(j < ones))).collect()
}

/// Evaluate tree `ones` over a sample window: run the canonical
/// simulation until the first decision or window exhaustion.
pub fn evaluate_tree<F: QcFamily>(
    family: &F,
    n: usize,
    ones: usize,
    window: impl Iterator<Item = Sample<F::Fd>>,
) -> TreeRun<F::Fd> {
    let procs: Vec<F::Binary> = (0..n).map(|_| family.binary()).collect();
    let mut runner = Runner::new(procs, initial_proposals(n, ones));
    let mut decision = None;
    for s in window {
        runner.step(s.q, s.val);
        if let Some((_, ConsensusOutput::Decided(d))) = runner.outputs().first() {
            decision = Some(d.clone());
            break;
        }
    }
    TreeRun {
        ones,
        decision,
        schedule: runner.schedule().to_vec(),
    }
}

/// Evaluate all `n + 1` trees over (clones of) one window.
pub fn evaluate_forest<F: QcFamily>(
    family: &F,
    n: usize,
    window: &[Sample<F::Fd>],
) -> Vec<TreeRun<F::Fd>> {
    (0..=n)
        .map(|ones| evaluate_tree(family, n, ones, window.iter().cloned()))
        .collect()
}

/// Incremental evaluator for the simulation forest: caches the live
/// runner of every undecided tree so that re-evaluating a *grown* window
/// only feeds the freshly-appended samples instead of replaying the whole
/// window from scratch (the dominant cost of the Figure 3 host, which
/// re-evaluates its forest every eval-interval).
///
/// [`ForestEvaluator::evaluate`] is observationally identical to
/// [`evaluate_forest`] on every window: it verifies that the new window
/// still extends the consumed prefix (samples are keyed by `(time,
/// process)`, and a late-flooded sample may land *before* the consumed
/// frontier) and transparently falls back to a full replay when it does
/// not.
pub struct ForestEvaluator<F: QcFamily> {
    n: usize,
    /// Live runner per undecided tree; `None` once the tree decided
    /// (a canonical run stops at its first decision, so decided trees
    /// are final).
    runners: Vec<Option<Runner<F::Binary>>>,
    runs: Vec<TreeRun<F::Fd>>,
    /// Samples consumed so far and the `(time, process)` key of the last
    /// one — used to detect windows that are not prefix-extensions.
    consumed: usize,
    frontier: Option<(wfd_sim::Time, ProcessId)>,
    /// Observability handle (off by default): counts incremental vs
    /// full-replay evaluations and times each path. Never read back —
    /// results are identical with metrics on or off.
    obs: Obs,
}

// Manual impl: a derived one would require `F::Binary: Debug`, which
// `QcFamily` does not (and need not) promise.
impl<F: QcFamily> std::fmt::Debug for ForestEvaluator<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ForestEvaluator")
            .field("n", &self.n)
            .field("consumed", &self.consumed)
            .field("frontier", &self.frontier)
            .field(
                "decided",
                &self.runs.iter().filter(|r| r.decision.is_some()).count(),
            )
            .finish_non_exhaustive()
    }
}

impl<F: QcFamily> ForestEvaluator<F> {
    /// A fresh evaluator for the `n + 1` trees of a system of `n`
    /// processes.
    pub fn new(family: &F, n: usize) -> Self {
        let mut ev = ForestEvaluator {
            n,
            runners: Vec::new(),
            runs: Vec::new(),
            consumed: 0,
            frontier: None,
            obs: Obs::off(),
        };
        ev.reset(family);
        ev
    }

    /// Attach an observability handle (see [`wfd_sim::obs`]). Each
    /// [`evaluate`](Self::evaluate) call is counted as incremental
    /// ([`CounterId::ForestEvalsIncremental`]) or full-replay
    /// ([`CounterId::ForestEvalsFullReplay`]) and timed under the matching
    /// phase; the per-call delta size feeds
    /// [`HistId::ForestDeltaSamples`].
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Discard all cached state, returning to the empty-window state.
    pub fn reset(&mut self, family: &F) {
        self.runners = (0..=self.n)
            .map(|ones| {
                let procs: Vec<F::Binary> = (0..self.n).map(|_| family.binary()).collect();
                Some(Runner::new(procs, initial_proposals(self.n, ones)))
            })
            .collect();
        self.runs = (0..=self.n)
            .map(|ones| TreeRun {
                ones,
                decision: None,
                schedule: Vec::new(),
            })
            .collect();
        self.consumed = 0;
        self.frontier = None;
    }

    /// Samples consumed since the last reset (for instrumentation).
    pub fn consumed(&self) -> usize {
        self.consumed
    }

    /// Evaluate all trees over `window` (sorted by `(time, process)`, as
    /// [`crate::sampling::SampleStore`] yields it). If `window` extends
    /// the previously-evaluated one, only the delta is fed to the
    /// still-undecided trees; otherwise the forest is re-run from
    /// scratch. The result equals `evaluate_forest(family, n, window)`.
    pub fn evaluate(&mut self, family: &F, window: &[Sample<F::Fd>]) -> &[TreeRun<F::Fd>] {
        let extends = window.len() >= self.consumed
            && (self.consumed == 0
                || window.get(self.consumed - 1).map(|s| (s.t, s.q)) == self.frontier);
        let _span = if extends {
            self.obs.add(CounterId::ForestEvalsIncremental, 1);
            self.obs.phase(PhaseId::ForestEvalIncremental)
        } else {
            self.obs.add(CounterId::ForestEvalsFullReplay, 1);
            self.reset(family);
            self.obs.phase(PhaseId::ForestEvalFullReplay)
        };
        let delta = window.len() - self.consumed;
        self.obs.record(HistId::ForestDeltaSamples, delta as u64);
        self.obs.add(CounterId::ForestSamplesConsumed, delta as u64);
        for s in &window[self.consumed..] {
            debug_assert!(
                self.frontier.is_none_or(|f| f < (s.t, s.q)),
                "window must be sorted by (time, process)"
            );
            self.frontier = Some((s.t, s.q));
            for (runner_slot, run) in self.runners.iter_mut().zip(self.runs.iter_mut()) {
                let Some(runner) = runner_slot else { continue };
                runner.step(s.q, s.val.clone());
                run.schedule.push((s.q, s.val.clone()));
                if let Some((_, ConsensusOutput::Decided(d))) = runner.outputs().first() {
                    run.decision = Some(d.clone());
                    *runner_slot = None; // final: stop feeding this tree
                }
            }
        }
        self.consumed = window.len();
        &self.runs
    }
}

/// Locate a *critical pair* in fully-decided forest results: adjacent
/// trees `i`, `i+1` (initial configurations differing only in `p_i`'s
/// proposal) whose canonical runs decided 0 and 1 (in either order).
/// Returns `(zero_tree, one_tree)` — the tree deciding 0 first.
pub fn critical_pair<Fd>(runs: &[TreeRun<Fd>]) -> Option<(usize, usize)> {
    for w in runs.windows(2) {
        match (&w[0].decision, &w[1].decision) {
            (Some(QcDecision::Value(0)), Some(QcDecision::Value(1))) => {
                return Some((w[0].ones, w[1].ones))
            }
            (Some(QcDecision::Value(1)), Some(QcDecision::Value(0))) => {
                return Some((w[1].ones, w[0].ones))
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::family::PsiQcFamily;
    use wfd_detectors::oracles::{PsiMode, PsiOracle};
    use wfd_detectors::PsiValue;
    use wfd_sim::{FailurePattern, FdOracle, Time};

    /// A window of Ψ samples in which every process samples round-robin.
    fn psi_window(
        pattern: &FailurePattern,
        mode: PsiMode,
        switch: Time,
        len: usize,
    ) -> Vec<Sample<PsiValue>> {
        let n = pattern.n();
        let mut psi = PsiOracle::new(pattern, mode, switch, 0, 3);
        let mut out = Vec::new();
        for k in 0..len {
            let q = ProcessId(k % n);
            let t = k as Time;
            // Skip samples of crashed processes: a crashed process takes
            // no steps, hence no samples.
            if !pattern.is_crashed(q, t) {
                out.push(Sample {
                    q,
                    t,
                    val: psi.query(q, t),
                });
            }
        }
        out
    }

    #[test]
    fn initial_proposals_shape() {
        assert_eq!(initial_proposals(3, 0), vec![Some(0), Some(0), Some(0)]);
        assert_eq!(initial_proposals(3, 2), vec![Some(1), Some(1), Some(0)]);
    }

    #[test]
    fn all_trees_decide_with_consensus_mode_samples() {
        let n = 3;
        let pattern = FailurePattern::failure_free(n);
        let window = psi_window(&pattern, PsiMode::OmegaSigma, 0, 3_000);
        let runs = evaluate_forest(&PsiQcFamily, n, &window);
        assert_eq!(runs.len(), n + 1);
        for run in &runs {
            let d = run
                .decision
                .as_ref()
                .unwrap_or_else(|| panic!("tree {} undecided", run.ones));
            assert!(matches!(d, QcDecision::Value(_)));
        }
        // Tree 0 (all propose 0) must decide 0; tree n (all 1) must
        // decide 1 — QC validity inside the simulation.
        assert_eq!(runs[0].decision, Some(QcDecision::Value(0)));
        assert_eq!(runs[n].decision, Some(QcDecision::Value(1)));
        // And therefore a critical pair exists.
        let (z, o) = critical_pair(&runs).expect("0-vs-1 boundary exists");
        assert!(z.abs_diff(o) == 1);
    }

    #[test]
    fn fs_mode_samples_make_trees_decide_q() {
        let n = 3;
        let pattern = FailurePattern::failure_free(n).with_crash(ProcessId(2), 10);
        let window = psi_window(&pattern, PsiMode::Fs, 0, 500);
        let runs = evaluate_forest(&PsiQcFamily, n, &window);
        for run in &runs {
            assert_eq!(
                run.decision,
                Some(QcDecision::Quit),
                "tree {} should quit under FS-mode samples",
                run.ones
            );
        }
        assert_eq!(critical_pair(&runs), None);
    }

    #[test]
    fn schedule_stops_at_decision() {
        let n = 3;
        let pattern = FailurePattern::failure_free(n);
        let window = psi_window(&pattern, PsiMode::OmegaSigma, 0, 3_000);
        let run = evaluate_tree(&PsiQcFamily, n, 1, window.into_iter());
        assert!(run.decision.is_some());
        assert!(
            run.schedule.len() < 3_000,
            "canonical run should stop at the first decision"
        );
    }

    /// Compare two forest results field by field (TreeRun has no PartialEq
    /// because schedules can be large; tests want exact equality anyway).
    fn assert_runs_eq(a: &[TreeRun<PsiValue>], b: &[TreeRun<PsiValue>]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.ones, y.ones);
            assert_eq!(x.decision, y.decision, "tree {}", x.ones);
            assert_eq!(x.schedule, y.schedule, "tree {}", x.ones);
        }
    }

    #[test]
    fn incremental_matches_scratch_on_growing_windows() {
        let n = 3;
        let pattern = FailurePattern::failure_free(n);
        let window = psi_window(&pattern, PsiMode::OmegaSigma, 0, 2_000);
        let mut eval = ForestEvaluator::new(&PsiQcFamily, n);
        for upto in [0, 100, 101, 500, 1_200, 2_000] {
            let scratch = evaluate_forest(&PsiQcFamily, n, &window[..upto]);
            let inc = eval.evaluate(&PsiQcFamily, &window[..upto]);
            assert_runs_eq(inc, &scratch);
        }
        assert_eq!(eval.consumed(), 2_000);
    }

    #[test]
    fn incremental_detects_non_prefix_window_and_replays() {
        let n = 3;
        let pattern = FailurePattern::failure_free(n);
        let window = psi_window(&pattern, PsiMode::OmegaSigma, 0, 600);
        let mut eval = ForestEvaluator::new(&PsiQcFamily, n);
        eval.evaluate(&PsiQcFamily, &window[..400]);

        // A sample flooded late lands *before* the consumed frontier:
        // the prefix the evaluator consumed is no longer a prefix of the
        // new window, so it must fall back to a full replay.
        let mut shifted = window.clone();
        let moved = shifted.remove(10);
        assert!(moved.t < shifted[398].t);
        let scratch = evaluate_forest(&PsiQcFamily, n, &shifted[..450]);
        let inc = eval.evaluate(&PsiQcFamily, &shifted[..450]);
        assert_runs_eq(inc, &scratch);

        // Shrinking the window is also a non-extension.
        let scratch = evaluate_forest(&PsiQcFamily, n, &window[..50]);
        let inc = eval.evaluate(&PsiQcFamily, &window[..50]);
        assert_runs_eq(inc, &scratch);
    }

    #[test]
    fn critical_pair_handles_non_monotone_decisions() {
        let mk = |ones: usize, d: u8| TreeRun::<()> {
            ones,
            decision: Some(QcDecision::Value(d)),
            schedule: vec![],
        };
        let runs = vec![mk(0, 1), mk(1, 0), mk(2, 1)];
        assert_eq!(critical_pair(&runs), Some((1, 0)));
    }
}
