//! Abstraction over "a QC algorithm `A` using detector `D`" — the objects
//! Figure 3 quantifies over.
//!
//! The transformation needs the *same* algorithm in two value domains:
//! binary (for the `n+1` simulated trees, whose initial configurations
//! propose 0/1) and multivalued over the critical tuples (for the real
//! execution of lines 11/14; footnote 6 of the paper invokes the
//! binary→multivalued transformation to justify this). A [`QcFamily`]
//! packages both instantiations plus the detector value type they share.

use crate::psi::ExtractProposal;
use std::fmt::Debug;
use wfd_consensus::ConsensusOutput;
use wfd_detectors::PsiValue;
use wfd_quittable::{ConsensusAsQc, PsiQc, QcDecision};
use wfd_sim::{ProcessId, ProcessSet, Protocol};

/// A family of instantiations of one QC algorithm over one detector.
pub trait QcFamily {
    /// The detector value type `A` queries (the range of `D`).
    type Fd: Clone + Debug + PartialEq;
    /// `A` instantiated for binary proposals (the simulated trees).
    type Binary: Protocol<Inv = u8, Output = ConsensusOutput<QcDecision<u8>>, Fd = Self::Fd>;
    /// `A` instantiated for critical-tuple proposals (the real execution).
    type Multi: Protocol<
        Inv = ExtractProposal<Self::Fd>,
        Output = ConsensusOutput<QcDecision<ExtractProposal<Self::Fd>>>,
        Fd = Self::Fd,
    >;

    /// A fresh binary instance (one simulated process).
    fn binary(&self) -> Self::Binary;

    /// A fresh multivalued instance (the hosted real execution).
    fn multi(&self) -> Self::Multi;
}

/// The in-repo instantiation: `A` = the Figure 2 algorithm
/// ([`PsiQc`]), `D` = Ψ. Any other QC algorithm/detector pair can be
/// plugged into the extraction by implementing [`QcFamily`] for it.
#[derive(Clone, Copy, Debug, Default)]
pub struct PsiQcFamily;

impl QcFamily for PsiQcFamily {
    type Fd = PsiValue;
    type Binary = PsiQc<u8>;
    type Multi = PsiQc<ExtractProposal<PsiValue>>;

    fn binary(&self) -> Self::Binary {
        PsiQc::new()
    }

    fn multi(&self) -> Self::Multi {
        PsiQc::new()
    }
}

/// A second instantiation: `A` = consensus-that-never-quits
/// ([`ConsensusAsQc`]), `D` = (Ω, Σ). Exercises the extraction with an
/// algorithm that is structurally unlike Figure 2 — its simulated runs
/// can never decide `Q`, so the extraction must always take the (Ω, Σ)
/// branch.
#[derive(Clone, Copy, Debug, Default)]
pub struct OmegaSigmaQcFamily;

impl QcFamily for OmegaSigmaQcFamily {
    type Fd = (ProcessId, ProcessSet);
    type Binary = ConsensusAsQc<u8>;
    type Multi = ConsensusAsQc<ExtractProposal<(ProcessId, ProcessSet)>>;

    fn binary(&self) -> Self::Binary {
        ConsensusAsQc::new()
    }

    fn multi(&self) -> Self::Multi {
        ConsensusAsQc::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_builds_fresh_instances() {
        let fam = PsiQcFamily;
        let b = fam.binary();
        assert_eq!(b.decision(), None);
        let m = fam.multi();
        assert_eq!(m.decision(), None);
    }

    #[test]
    fn omega_sigma_family_builds_fresh_instances() {
        let fam = OmegaSigmaQcFamily;
        let b = fam.binary();
        assert_eq!(b.decision(), None);
        let m = fam.multi();
        assert_eq!(m.decision(), None);
    }
}
