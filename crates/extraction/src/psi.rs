//! **Figure 3 of the paper**: the transformation extracting Ψ from any
//! failure detector `D` and QC algorithm `A`.
//!
//! Per process, the protocol runs the paper's two tasks:
//!
//! * **Task 1** — keep sampling the local `D` module and flooding the
//!   samples ([`SampleStore`]); keep growing simulated runs of `A` for
//!   the `n+1` initial configurations ([`crate::forest`]).
//! * **Task 2** — once every tree's simulation has decided (line 8):
//!   propose `0` to a *real* execution of `A` if any simulation decided
//!   `Q` (line 11), else propose the critical tuple `(I, I′, S, S′)`
//!   (lines 13–14). If the real execution returns `0`/`Q`, output `red`
//!   forever (line 18); if it returns a tuple, extract (Ω, Σ) forever
//!   (lines 20–34):
//!   - **Σ** exactly as lines 24–32: per round, reconstruct the
//!     configuration set `C` from all prefixes of the agreed schedules,
//!     extend each with *fresh* samples until it decides, and output the
//!     union of the step-takers;
//!   - **Ω** by re-evaluating the critical index of the simulated forest
//!     on the same fresh windows (the executable counterpart of the CHT
//!     limit-forest procedure of line 22 — see DESIGN.md §6).
//!
//! Until a branch is taken the output is ⊥, so the emitted stream is a
//! [`PsiValue`] history checkable by
//! [`check_psi`](wfd_detectors::check::check_psi).

use crate::family::QcFamily;
use crate::forest::{critical_pair, initial_proposals, ForestEvaluator};
use crate::runner::Runner;
use crate::sampling::{Sample, SampleStore};
use std::fmt::Debug;
use wfd_consensus::ConsensusOutput;
use wfd_detectors::value::{OmegaSigma, PsiValue, Signal};
use wfd_quittable::QcDecision;
use wfd_sim::obs::Obs;
use wfd_sim::{Ctx, Footprint, ProcessId, ProcessSet, Protocol, StepKind, Time};

/// The critical tuple `(I, I′, S, S′)` of Figure 3 line 13: two adjacent
/// initial configurations and schedules deciding 0 and 1 respectively.
#[derive(Clone, Debug, PartialEq)]
pub struct CriticalTuple<Fd> {
    /// `I`: the tree (number of leading 1-proposers) whose run decided 0.
    pub zero_tree: usize,
    /// `I′`: the adjacent tree whose run decided 1.
    pub one_tree: usize,
    /// `S`: schedule deciding 0 from `I`.
    pub s0: Vec<(ProcessId, Fd)>,
    /// `S′`: schedule deciding 1 from `I′`.
    pub s1: Vec<(ProcessId, Fd)>,
}

/// What a process proposes to the real execution of `A` (lines 11/14).
#[derive(Clone, Debug, PartialEq)]
pub enum ExtractProposal<Fd> {
    /// "I saw a `Q` decision in my simulations" (line 11).
    Zero,
    /// A critical tuple (line 14).
    Tuple(CriticalTuple<Fd>),
}

/// Messages: flooded detector samples plus the real execution's traffic.
#[derive(Clone, Debug, PartialEq)]
pub enum Fig3Msg<Fd, M> {
    /// A flooded `D` sample.
    Sample(Sample<Fd>),
    /// Traffic of the hosted real execution of `A`.
    Real(M),
}

#[derive(Clone, Debug)]
enum Phase<Fd> {
    /// Task 1 only: simulating until every tree decides.
    Simulating,
    /// Proposed to the real execution, awaiting its decision.
    RealExec,
    /// Line 18: output red forever.
    Red,
    /// Lines 20–34: extract (Ω, Σ) forever.
    OmegaSigma {
        tuple: CriticalTuple<Fd>,
        watermark: Time,
        leader: ProcessId,
        quorum: ProcessSet,
    },
}

/// One process of the Figure 3 transformation, generic over the QC
/// algorithm family (`A` + `D`).
#[derive(Debug)]
pub struct PsiExtraction<F: QcFamily> {
    family: F,
    store: SampleStore<F::Fd>,
    real: F::Multi,
    phase: Phase<F::Fd>,
    own_steps: u64,
    /// `None` = default to `n` (one sample broadcast per `n` own steps).
    /// The default matters: with `n − 1` recipients per broadcast, any
    /// interval below `n − 1` *produces* messages faster than the
    /// one-delivery-per-step model can consume them, and the growing
    /// backlog starves every other protocol message.
    sample_interval: Option<u64>,
    eval_interval: u64,
    out_interval: u64,
    real_decision_seen: bool,
    /// Incremental forest over the whole store (Task 1, line 8). Created
    /// lazily because `n` is only known once a step context exists.
    sim_forest: Option<ForestEvaluator<F>>,
    /// Incremental forest over the current fresh-sample window, tagged
    /// with the watermark it started from (lines 22/24–32); replaced
    /// whenever the watermark advances.
    round_forest: Option<(Time, ForestEvaluator<F>)>,
    /// Observability handle, forwarded to every [`ForestEvaluator`] this
    /// process creates (off by default; never influences extraction).
    obs: Obs,
}

impl<F: QcFamily> PsiExtraction<F> {
    /// Create an extraction process.
    pub fn new(family: F) -> Self {
        let real = family.multi();
        PsiExtraction {
            family,
            store: SampleStore::new(),
            real,
            phase: Phase::Simulating,
            own_steps: 0,
            sample_interval: None,
            eval_interval: 64,
            out_interval: 8,
            real_decision_seen: false,
            sim_forest: None,
            round_forest: None,
            obs: Obs::off(),
        }
    }

    /// Attach an observability handle (see [`wfd_sim::obs`]): the forest
    /// evaluators created by this process report their incremental vs
    /// full-replay split through it. Metrics never change what is
    /// extracted.
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Override how often (in own steps) the process samples `D` and
    /// floods the sample. The default is `n`; anything below `n − 1`
    /// floods the network faster than it drains (see the field docs).
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn with_sample_interval(mut self, interval: u64) -> Self {
        assert!(interval > 0, "sample interval must be positive");
        self.sample_interval = Some(interval);
        self
    }

    /// Override how often (in own steps) simulations are re-evaluated.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn with_eval_interval(mut self, interval: u64) -> Self {
        assert!(interval > 0, "eval interval must be positive");
        self.eval_interval = interval;
        self
    }

    /// Whether this process has left the ⊥ phase.
    pub fn has_switched(&self) -> bool {
        matches!(self.phase, Phase::Red | Phase::OmegaSigma { .. })
    }

    fn current_output(&self, ctx: &Ctx<Self>) -> PsiValue {
        match &self.phase {
            Phase::Simulating | Phase::RealExec => PsiValue::Bot,
            Phase::Red => PsiValue::Fs(Signal::Red),
            Phase::OmegaSigma { leader, quorum, .. } => {
                let _ = ctx;
                PsiValue::OmegaSigma(OmegaSigma {
                    leader: *leader,
                    quorum: quorum.clone(),
                })
            }
        }
    }

    fn with_real(
        &mut self,
        ctx: &mut Ctx<Self>,
        f: impl FnOnce(&mut F::Multi, &mut Ctx<F::Multi>),
    ) {
        let fd = ctx.fd().clone();
        let mut ictx = Ctx::<F::Multi>::detached(ctx.me(), ctx.n(), ctx.now(), fd);
        f(&mut self.real, &mut ictx);
        for (to, msg) in ictx.take_sends() {
            ctx.send(to, Fig3Msg::Real(msg));
        }
        for out in ictx.take_outputs() {
            let ConsensusOutput::Decided(d) = out;
            self.on_real_decision(ctx, d);
        }
    }

    /// Lines 15–20: the real execution of `A` decided.
    fn on_real_decision(&mut self, ctx: &mut Ctx<Self>, d: QcDecision<ExtractProposal<F::Fd>>) {
        if self.real_decision_seen {
            return;
        }
        self.real_decision_seen = true;
        match d {
            QcDecision::Quit | QcDecision::Value(ExtractProposal::Zero) => {
                // Line 18: Ψ-output := red.
                self.phase = Phase::Red;
                ctx.output(PsiValue::Fs(Signal::Red));
            }
            QcDecision::Value(ExtractProposal::Tuple(tuple)) => {
                // Line 20: Ω-output := p; Σ-output := Π.
                let watermark = self.store.max_time().unwrap_or(0);
                self.phase = Phase::OmegaSigma {
                    tuple,
                    watermark,
                    leader: ctx.me(),
                    quorum: ProcessSet::full(ctx.n()),
                };
                ctx.output(PsiValue::OmegaSigma(OmegaSigma {
                    leader: ctx.me(),
                    quorum: ProcessSet::full(ctx.n()),
                }));
            }
        }
    }

    /// Line 8–14: check whether every tree's simulation has decided and,
    /// if so, propose to the real execution.
    fn try_finish_simulating(&mut self, ctx: &mut Ctx<Self>) {
        let n = ctx.n();
        let window: Vec<Sample<F::Fd>> = self.store.iter().collect();
        // The store only grows, so the cached evaluator usually just
        // consumes the delta; a late-flooded sample landing before its
        // frontier triggers a transparent full replay.
        let forest = self.sim_forest.get_or_insert_with(|| {
            ForestEvaluator::new(&self.family, n).with_obs(self.obs.clone())
        });
        let runs = forest.evaluate(&self.family, &window);
        if !runs.iter().all(|r| r.decision.is_some()) {
            return;
        }
        let proposal = if runs.iter().any(|r| r.decision == Some(QcDecision::Quit)) {
            // Line 11: a simulated Q decision licenses proposing 0.
            ExtractProposal::Zero
        } else if let Some((zero_tree, one_tree)) = critical_pair(runs) {
            ExtractProposal::Tuple(CriticalTuple {
                zero_tree,
                one_tree,
                s0: runs[zero_tree].schedule.clone(),
                s1: runs[one_tree].schedule.clone(),
            })
        } else {
            // All trees decided the same non-Q value — impossible for a
            // correct A (tree 0 must decide 0, tree n must decide 1), but
            // be defensive: keep simulating.
            return;
        };
        self.sim_forest = None; // simulation phase over — free the cache
        self.phase = Phase::RealExec;
        self.with_real(ctx, |real, ictx| real.on_invoke(ictx, proposal));
    }

    /// One (Ω, Σ) extraction round over the fresh-sample window
    /// (lines 22 and 24–32). Leaves state untouched if the window cannot
    /// yet decide everything it must.
    fn try_extraction_round(&mut self, ctx: &mut Ctx<Self>) {
        let n = ctx.n();
        let Phase::OmegaSigma {
            tuple, watermark, ..
        } = &self.phase
        else {
            return;
        };
        let tuple = tuple.clone();
        let watermark = *watermark;
        let window: Vec<Sample<F::Fd>> = self.store.window_after(watermark).collect();
        if window.is_empty() {
            return;
        }

        // Ω: re-evaluate the critical index on the fresh window. Until
        // the round completes the watermark is fixed and the window only
        // grows, so a cached evaluator consumes just the delta.
        if self
            .round_forest
            .as_ref()
            .is_none_or(|(wm, _)| *wm != watermark)
        {
            let forest = ForestEvaluator::new(&self.family, n).with_obs(self.obs.clone());
            self.round_forest = Some((watermark, forest));
        }
        let (_, forest) = self.round_forest.as_mut().expect("just ensured");
        let runs = forest.evaluate(&self.family, &window);
        if !runs.iter().all(|r| r.decision.is_some()) {
            return; // window not yet rich enough — wait for more samples
        }
        if runs.iter().any(|r| r.decision == Some(QcDecision::Quit)) {
            // Fresh simulations decided Q: no critical index in this
            // window. Keep the previous outputs and wait (cannot happen
            // with a mode-consistent Ψ-style D; defensive for exotic Ds).
            return;
        }
        let Some((zero_tree, one_tree)) = critical_pair(runs) else {
            return;
        };
        let leader = ProcessId(zero_tree.min(one_tree));

        // Σ (lines 24–32): extend every configuration in C with fresh
        // samples until it decides; the quorum is the union of the
        // extension step-takers.
        let mut quorum = ProcessSet::new();
        for (ones, schedule) in [(tuple.zero_tree, &tuple.s0), (tuple.one_tree, &tuple.s1)] {
            for prefix_len in 0..=schedule.len() {
                match self.extend_to_decision(n, ones, &schedule[..prefix_len], &window) {
                    Some(steppers) => quorum.extend(steppers.iter()),
                    None => return, // this configuration needs more fresh samples
                }
            }
        }

        if let Phase::OmegaSigma {
            watermark: wm,
            leader: l,
            quorum: q,
            ..
        } = &mut self.phase
        {
            *l = leader;
            *q = quorum.clone();
            // Next round must use strictly fresher samples (line 27).
            *wm = window.last().expect("non-empty window").t;
        }
        self.round_forest = None; // round done — next one starts fresh
        ctx.output(PsiValue::OmegaSigma(OmegaSigma { leader, quorum }));
    }

    /// Replay `prefix` from initial configuration `I_ones`, then extend
    /// with the fresh window until a decision appears. Returns the set of
    /// processes taking steps in the *extension* (empty if the prefix had
    /// already decided), or `None` if the window is not yet sufficient.
    fn extend_to_decision(
        &self,
        n: usize,
        ones: usize,
        prefix: &[(ProcessId, F::Fd)],
        window: &[Sample<F::Fd>],
    ) -> Option<ProcessSet> {
        let procs: Vec<F::Binary> = (0..n).map(|_| self.family.binary()).collect();
        let mut runner = Runner::replay(procs, initial_proposals(n, ones), prefix);
        let decided = |r: &Runner<F::Binary>| {
            r.outputs()
                .iter()
                .any(|(_, o)| matches!(o, ConsensusOutput::Decided(_)))
        };
        if decided(&runner) {
            return Some(ProcessSet::new());
        }
        let mut steppers = ProcessSet::new();
        for s in window {
            runner.step(s.q, s.val.clone());
            steppers.insert(s.q);
            if decided(&runner) {
                return Some(steppers);
            }
        }
        None
    }

    /// Work done on every step: sampling, periodic evaluation, periodic
    /// output.
    fn advance(&mut self, ctx: &mut Ctx<Self>) {
        self.own_steps += 1;

        // Task 1: sample the local D module and flood the sample.
        let sample_interval = self.sample_interval.unwrap_or(ctx.n() as u64);
        if self.own_steps.is_multiple_of(sample_interval) {
            let s = Sample {
                q: ctx.me(),
                t: ctx.now(),
                val: ctx.fd().clone(),
            };
            self.store.insert(s.clone());
            ctx.broadcast_others(Fig3Msg::Sample(s));
        }

        // Phase work.
        if self.own_steps.is_multiple_of(self.eval_interval) {
            match self.phase {
                Phase::Simulating => self.try_finish_simulating(ctx),
                Phase::OmegaSigma { .. } => self.try_extraction_round(ctx),
                _ => {}
            }
        }
        if matches!(self.phase, Phase::RealExec) {
            self.with_real(ctx, |real, ictx| real.on_tick(ictx));
        }

        // Periodic (re-)emission so checkers see dense histories.
        if self.own_steps.is_multiple_of(self.out_interval) {
            let out = self.current_output(ctx);
            ctx.output(out);
        }
    }
}

impl<F: QcFamily> Protocol for PsiExtraction<F> {
    type Msg = Fig3Msg<F::Fd, <F::Multi as Protocol>::Msg>;
    type Output = PsiValue;
    type Inv = ();
    type Fd = F::Fd;

    fn on_start(&mut self, ctx: &mut Ctx<Self>) {
        // Ψ-output is initially ⊥ (line 1).
        ctx.output(PsiValue::Bot);
        self.advance(ctx);
    }

    fn on_tick(&mut self, ctx: &mut Ctx<Self>) {
        self.advance(ctx);
    }

    fn on_message(&mut self, ctx: &mut Ctx<Self>, from: ProcessId, msg: Self::Msg) {
        match msg {
            Fig3Msg::Sample(s) => self.store.insert(s),
            Fig3Msg::Real(inner) => {
                self.with_real(ctx, |real, ictx| real.on_message(ictx, from, inner));
            }
        }
        self.advance(ctx);
    }

    fn footprint(&self, _me: ProcessId, n: usize, _step: StepKind<'_, Self>) -> Footprint {
        // The extraction never quiesces: it gossips samples, drives the
        // hosted real execution, and re-emits its Ψ output periodically.
        // wfd-lint: allow(d7-footprint, gossip plus the hosted execution may message anyone on any step and the sampler re-outputs)
        Footprint::opaque(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::family::PsiQcFamily;
    use wfd_detectors::check::{check_psi, PsiPhase};
    use wfd_detectors::history::history_from_outputs;
    use wfd_detectors::oracles::{PsiMode, PsiOracle};
    use wfd_sim::{FailurePattern, RandomFair, Sim, SimConfig};

    type Host = PsiExtraction<PsiQcFamily>;

    fn run_extraction(
        pattern: &FailurePattern,
        mode: PsiMode,
        switch: u64,
        seed: u64,
        horizon: u64,
    ) -> wfd_detectors::History<PsiValue> {
        let n = pattern.n();
        let psi = PsiOracle::new(pattern, mode, switch, 20, seed);
        let mut sim = Sim::new(
            SimConfig::new(n).with_horizon(horizon),
            (0..n)
                .map(|_| Host::new(PsiQcFamily).with_eval_interval(48))
                .collect(),
            pattern.clone(),
            psi,
            RandomFair::new(seed),
        );
        sim.run();
        history_from_outputs(sim.trace(), |v: &PsiValue| Some(v.clone()))
    }

    #[test]
    fn consensus_mode_extracts_omega_sigma() {
        let n = 3;
        let pattern = FailurePattern::failure_free(n);
        for seed in 0..2 {
            let h = run_extraction(&pattern, PsiMode::OmegaSigma, 10, seed, 120_000);
            let stats = check_psi(&h, &pattern).unwrap_or_else(|v| panic!("seed {seed}: {v}"));
            assert_eq!(
                stats.phase,
                PsiPhase::OmegaSigma,
                "seed {seed}: extraction should settle in (Ω,Σ) mode"
            );
        }
    }

    #[test]
    fn fs_mode_extracts_red() {
        let n = 3;
        let pattern = FailurePattern::failure_free(n).with_crash(ProcessId(2), 30);
        for seed in 0..2 {
            let h = run_extraction(&pattern, PsiMode::Fs, 40, seed, 60_000);
            let stats = check_psi(&h, &pattern).unwrap_or_else(|v| panic!("seed {seed}: {v}"));
            assert_eq!(
                stats.phase,
                PsiPhase::Fs,
                "seed {seed}: FS-mode D should lead to red extraction"
            );
        }
    }

    #[test]
    fn consensus_mode_with_crash_still_extracts_omega_sigma() {
        // Ψ may stay in consensus mode despite a failure; the extraction
        // must then deliver a correct (Ω, Σ), with the crashed process
        // eventually dropped from quorums and never the leader.
        let n = 3;
        let pattern = FailurePattern::failure_free(n).with_crash(ProcessId(0), 500);
        let h = run_extraction(&pattern, PsiMode::OmegaSigma, 10, 3, 200_000);
        let stats = check_psi(&h, &pattern).unwrap_or_else(|v| panic!("{v}"));
        assert_eq!(stats.phase, PsiPhase::OmegaSigma);
    }

    #[test]
    fn accessors_and_validation() {
        let host: Host = PsiExtraction::new(PsiQcFamily);
        assert!(!host.has_switched());
    }

    #[test]
    fn extraction_works_for_a_second_algorithm_family() {
        // A = consensus-that-never-quits, D = (Ω, Σ): the simulated runs
        // can never decide Q, so the extraction must take the (Ω, Σ)
        // branch — with a crash present and all.
        use crate::family::OmegaSigmaQcFamily;
        use wfd_detectors::oracles::{OmegaOracle, PairOracle, SigmaOracle};

        let n = 3;
        let pattern = FailurePattern::with_crashes(n, &[(ProcessId(2), 300)]);
        let fd = PairOracle::new(
            OmegaOracle::new(&pattern, 60, 2),
            SigmaOracle::new(&pattern, 60, 2),
        );
        let mut sim = Sim::new(
            SimConfig::new(n).with_horizon(150_000),
            (0..n)
                .map(|_| PsiExtraction::new(OmegaSigmaQcFamily).with_eval_interval(48))
                .collect(),
            pattern.clone(),
            fd,
            RandomFair::new(2),
        );
        sim.run();
        let h = history_from_outputs(sim.trace(), |v: &PsiValue| Some(v.clone()));
        let stats = check_psi(&h, &pattern).unwrap_or_else(|v| panic!("{v}"));
        assert_eq!(stats.phase, PsiPhase::OmegaSigma);
    }

    #[test]
    #[should_panic(expected = "sample interval")]
    fn zero_sample_interval_rejected() {
        let _ = PsiExtraction::new(PsiQcFamily).with_sample_interval(0);
    }
}
