//! # wfd-extraction — Figure 3: extracting Ψ from any QC algorithm
//! (paper §6.3)
//!
//! The necessity half of Corollary 7: given any algorithm `A` solving
//! quittable consensus with any detector `D`, the transformation emulates
//! Ψ. The executable pipeline mirrors the paper:
//!
//! 1. **Sampling** ([`sampling`]) — every process samples its `D` module
//!    and floods the samples; because sends are atomic and links reliable,
//!    the sample sequences of correct processes converge to the same
//!    time-ordered limit (our concretisation of the CHT DAG `G_p`: the
//!    total order by global sample time is one admissible edge set).
//! 2. **Simulation** ([`runner`], [`forest`]) — deterministic re-execution
//!    of `A` against recorded samples: for each of the `n+1` initial
//!    configurations `I_i` (processes `p_0 … p_{i−1}` propose 1, the rest
//!    0), the canonical run applies the sampled steps in time order.
//! 3. **Figure 3 proper** ([`psi`]) — wait until every tree's canonical
//!    run decides (line 8); if any run decided `Q`, propose `0` to a real
//!    execution of `A`, otherwise propose the critical tuple
//!    `(I, I′, S, S′)` (lines 9–14); then either emit `red` forever or
//!    extract (Ω, Σ) from fresh sample windows (lines 15–34) — Σ exactly
//!    as the paper's lines 24–32, Ω by re-evaluating the critical index
//!    on fresh windows (our executable counterpart of the limit-forest
//!    argument of CHT96; see DESIGN.md §6 for the fidelity note).
//!
//! The emitted [`PsiValue`](wfd_detectors::PsiValue) stream is validated
//! against Ψ's defining predicate by
//! [`check_psi`](wfd_detectors::check::check_psi).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod family;
pub mod forest;
pub mod psi;
pub mod runner;
pub mod sampling;

pub use family::{OmegaSigmaQcFamily, PsiQcFamily, QcFamily};
pub use psi::{ExtractProposal, PsiExtraction};
pub use runner::Runner;
pub use sampling::{Sample, SampleStore};
