//! Failure detector samples and the per-process sample store — the
//! executable counterpart of the CHT DAG `G_p`.
//!
//! Each sample records *which process* saw *which detector value* at
//! *which global time*. The store keeps samples sorted by `(time,
//! process)`; paths through the CHT DAG are concretised as time-ordered
//! subsequences. Because every sample is flooded in one atomic step over
//! reliable links, the stores of correct processes converge to the same
//! limit sequence — which is what makes the simulated forests of
//! different extractors agree eventually.

use std::collections::BTreeMap;
use std::fmt::Debug;
use wfd_sim::{ProcessId, Time};

/// One failure detector sample: `H(q, t) = val`.
#[derive(Clone, Debug, PartialEq)]
pub struct Sample<V> {
    /// The process that took the sample.
    pub q: ProcessId,
    /// When it was taken (global clock).
    pub t: Time,
    /// The sampled detector value.
    pub val: V,
}

/// A time-ordered, deduplicated collection of samples.
#[derive(Clone, Debug, Default)]
pub struct SampleStore<V> {
    samples: BTreeMap<(Time, ProcessId), V>,
}

impl<V: Clone + Debug> SampleStore<V> {
    /// An empty store.
    pub fn new() -> Self {
        SampleStore {
            samples: BTreeMap::new(),
        }
    }

    /// Insert a sample; duplicates (same process and time) are ignored.
    pub fn insert(&mut self, s: Sample<V>) {
        self.samples.entry((s.t, s.q)).or_insert(s.val);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The newest sample time, if any.
    pub fn max_time(&self) -> Option<Time> {
        self.samples.keys().next_back().map(|(t, _)| *t)
    }

    /// All samples in `(time, process)` order.
    pub fn iter(&self) -> impl Iterator<Item = Sample<V>> + '_ {
        self.samples.iter().map(|(&(t, q), val)| Sample {
            q,
            t,
            val: val.clone(),
        })
    }

    /// Samples strictly newer than `watermark`, in order — the "fresh
    /// samples" of Figure 3 lines 27–30.
    pub fn window_after(&self, watermark: Time) -> impl Iterator<Item = Sample<V>> + '_ {
        self.samples
            .range((watermark.saturating_add(1), ProcessId(0))..)
            .map(|(&(t, q), val)| Sample {
                q,
                t,
                val: val.clone(),
            })
    }

    /// Number of distinct processes with at least one sample after
    /// `watermark`.
    pub fn processes_after(&self, watermark: Time) -> usize {
        let mut seen = std::collections::BTreeSet::new();
        for s in self.window_after(watermark) {
            seen.insert(s.q);
        }
        seen.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(q: usize, t: Time, val: u32) -> Sample<u32> {
        Sample {
            q: ProcessId(q),
            t,
            val,
        }
    }

    #[test]
    fn insert_orders_by_time_then_process() {
        let mut store = SampleStore::new();
        store.insert(s(1, 5, 15));
        store.insert(s(0, 2, 2));
        store.insert(s(2, 5, 25));
        let order: Vec<(Time, usize)> = store.iter().map(|x| (x.t, x.q.index())).collect();
        assert_eq!(order, vec![(2, 0), (5, 1), (5, 2)]);
        assert_eq!(store.len(), 3);
        assert_eq!(store.max_time(), Some(5));
    }

    #[test]
    fn duplicates_are_ignored() {
        let mut store = SampleStore::new();
        store.insert(s(0, 1, 7));
        store.insert(s(0, 1, 99));
        assert_eq!(store.len(), 1);
        assert_eq!(store.iter().next().unwrap().val, 7);
    }

    #[test]
    fn window_after_is_strict() {
        let mut store = SampleStore::new();
        for t in 0..10 {
            store.insert(s(0, t, t as u32));
        }
        let w: Vec<Time> = store.window_after(4).map(|x| x.t).collect();
        assert_eq!(w, vec![5, 6, 7, 8, 9]);
        assert_eq!(store.processes_after(4), 1);
    }

    #[test]
    fn empty_store() {
        let store: SampleStore<u32> = SampleStore::new();
        assert!(store.is_empty());
        assert_eq!(store.max_time(), None);
        assert_eq!(store.processes_after(0), 0);
    }
}
