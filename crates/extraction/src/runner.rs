//! A deterministic in-memory executor for simulated runs of a protocol.
//!
//! Figure 3 simulates runs of the QC algorithm `A` that *could have
//! occurred* with the recorded failure detector samples. The [`Runner`]
//! applies one step per sample — the sampled process receives its oldest
//! pending message (or λ), sees the sampled detector value, and its sends
//! go to in-memory inboxes. Everything is a pure function of the step
//! sequence, so two extractors feeding the same samples reconstruct
//! byte-identical runs — the convergence the CHT limit-forest argument
//! needs.

use std::collections::VecDeque;
use std::fmt::Debug;
use wfd_sim::{Ctx, ProcessId, Protocol, Time};

/// A deterministic simulated execution of `n` instances of protocol `P`.
#[derive(Debug)]
pub struct Runner<P: Protocol> {
    procs: Vec<P>,
    started: Vec<bool>,
    pending_inv: Vec<Option<P::Inv>>,
    inboxes: Vec<VecDeque<(ProcessId, P::Msg)>>,
    outputs: Vec<(ProcessId, P::Output)>,
    /// The schedule executed so far: `(process, detector value)` pairs.
    schedule: Vec<(ProcessId, P::Fd)>,
    clock: Time,
}

impl<P: Protocol> Runner<P> {
    /// Create a simulation with per-process protocol instances and the
    /// invocation each process performs at its first step (its QC
    /// proposal).
    ///
    /// # Panics
    ///
    /// Panics if the two vectors disagree in length.
    pub fn new(procs: Vec<P>, invocations: Vec<Option<P::Inv>>) -> Self {
        assert_eq!(
            procs.len(),
            invocations.len(),
            "one invocation slot per process"
        );
        let n = procs.len();
        Runner {
            procs,
            started: vec![false; n],
            pending_inv: invocations,
            inboxes: (0..n).map(|_| VecDeque::new()).collect(),
            outputs: Vec::new(),
            schedule: Vec::new(),
            clock: 0,
        }
    }

    /// Number of simulated processes.
    pub fn n(&self) -> usize {
        self.procs.len()
    }

    /// Execute one step of `q` with detector value `fd`: first step runs
    /// `on_start` + the pending invocation; later steps deliver the
    /// oldest pending message, or λ if the inbox is empty.
    pub fn step(&mut self, q: ProcessId, fd: P::Fd) {
        let i = q.index();
        let mut ctx = Ctx::<P>::detached(q, self.procs.len(), self.clock, fd.clone());
        self.clock += 1;
        self.schedule.push((q, fd));
        if !self.started[i] {
            self.started[i] = true;
            self.procs[i].on_start(&mut ctx);
            if let Some(inv) = self.pending_inv[i].take() {
                self.procs[i].on_invoke(&mut ctx, inv);
            }
        } else if let Some((from, msg)) = self.inboxes[i].pop_front() {
            self.procs[i].on_message(&mut ctx, from, msg);
        } else {
            self.procs[i].on_tick(&mut ctx);
        }
        for (to, msg) in ctx.take_sends() {
            self.inboxes[to.index()].push_back((q, msg));
        }
        for out in ctx.take_outputs() {
            self.outputs.push((q, out));
        }
    }

    /// All outputs emitted so far, in emission order.
    pub fn outputs(&self) -> &[(ProcessId, P::Output)] {
        &self.outputs
    }

    /// The schedule executed so far.
    pub fn schedule(&self) -> &[(ProcessId, P::Fd)] {
        &self.schedule
    }

    /// Steps executed.
    pub fn len(&self) -> usize {
        self.schedule.len()
    }

    /// Whether no steps have been executed.
    pub fn is_empty(&self) -> bool {
        self.schedule.is_empty()
    }

    /// Replay a pre-recorded schedule prefix onto fresh instances — used
    /// to reconstruct the configurations `C` of Figure 3 line 25.
    pub fn replay(
        procs: Vec<P>,
        invocations: Vec<Option<P::Inv>>,
        prefix: &[(ProcessId, P::Fd)],
    ) -> Self {
        let mut r = Runner::new(procs, invocations);
        for (q, fd) in prefix {
            r.step(*q, fd.clone());
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Counts messages; replies to each ping with a pong to the sender.
    #[derive(Debug, Default)]
    struct Echo {
        got: u32,
    }

    impl Protocol for Echo {
        type Msg = &'static str;
        type Output = u32;
        type Inv = &'static str;
        type Fd = u8;

        fn on_invoke(&mut self, ctx: &mut Ctx<Self>, _inv: &'static str) {
            ctx.broadcast_others("ping");
        }

        fn on_message(&mut self, ctx: &mut Ctx<Self>, from: ProcessId, msg: &'static str) {
            self.got += 1;
            ctx.output(self.got);
            if msg == "ping" {
                ctx.send(from, "pong");
            }
        }
    }

    fn fresh(n: usize) -> (Vec<Echo>, Vec<Option<&'static str>>) {
        (
            (0..n).map(|_| Echo::default()).collect(),
            (0..n).map(|_| Some("go")).collect(),
        )
    }

    #[test]
    fn first_step_runs_start_and_invocation() {
        let (procs, invs) = fresh(2);
        let mut r = Runner::new(procs, invs);
        r.step(ProcessId(0), 0);
        // p0 broadcast a ping to p1.
        r.step(ProcessId(1), 0); // p1's first step: start + invoke (ping to p0)
        r.step(ProcessId(1), 0); // delivers p0's ping, pongs back
        assert_eq!(r.outputs(), &[(ProcessId(1), 1)]);
        r.step(ProcessId(0), 0); // delivers p1's ping
        r.step(ProcessId(0), 0); // delivers p1's pong
        assert_eq!(r.outputs().len(), 3);
    }

    #[test]
    fn lambda_step_when_inbox_empty() {
        let (procs, invs) = fresh(1);
        let mut r = Runner::new(procs, invs);
        r.step(ProcessId(0), 0);
        r.step(ProcessId(0), 0); // nothing pending: λ
        assert_eq!(r.outputs().len(), 0);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn determinism_same_schedule_same_outputs() {
        let schedule: Vec<(ProcessId, u8)> = vec![
            (ProcessId(0), 1),
            (ProcessId(1), 2),
            (ProcessId(1), 3),
            (ProcessId(0), 4),
            (ProcessId(0), 5),
        ];
        let run = || {
            let (procs, invs) = fresh(2);
            let mut r = Runner::new(procs, invs);
            for (q, fd) in &schedule {
                r.step(*q, *fd);
            }
            r.outputs().to_vec()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn replay_reproduces_prefix_state() {
        let (procs, invs) = fresh(2);
        let mut r = Runner::new(procs, invs);
        for _ in 0..3 {
            r.step(ProcessId(0), 7);
            r.step(ProcessId(1), 7);
        }
        let prefix = r.schedule().to_vec();
        let (procs2, invs2) = fresh(2);
        let replayed = Runner::replay(procs2, invs2, &prefix);
        assert_eq!(replayed.outputs(), r.outputs());
        assert_eq!(replayed.schedule(), r.schedule());
    }

    #[test]
    #[should_panic(expected = "one invocation slot per process")]
    fn mismatched_invocations_rejected() {
        let (procs, _) = fresh(2);
        let _ = Runner::new(procs, vec![Some("go")]);
    }
}
