//! The Chandra–Toueg ◇S rotating-coordinator consensus — the classical
//! majority-correct baseline (paper §1, items (3)/(4)).
//!
//! Round `r` is coordinated by process `r mod n`:
//!
//! 1. everyone sends its `(estimate, ts)` to the coordinator;
//! 2. the coordinator gathers a majority of estimates, picks the one with
//!    the highest `ts`, and broadcasts it as the round's proposal;
//! 3. each process either adopts the proposal (positive ack) or, if its
//!    ◇S module suspects the coordinator, nacks and moves on;
//! 4. a coordinator whose first majority of replies is all-positive
//!    decides and floods the decision.
//!
//! Safety comes from majority intersection (a decided value is locked in
//! every subsequent round); liveness from ◇S's eventual weak accuracy —
//! once some correct process is never suspected, its round decides.
//!
//! **The point of the baseline**: this algorithm requires a correct
//! majority. With `f ≥ ⌈n/2⌉` it blocks, which is exactly the regime where
//! the paper's (Ω, Σ) algorithm keeps deciding (experiment E9).

use crate::spec::ConsensusOutput;
use std::collections::BTreeMap;
use std::fmt::Debug;
use wfd_sim::{Ctx, Footprint, ProcessId, ProcessSet, Protocol, StepKind};

/// Messages of the Chandra–Toueg algorithm.
#[derive(Clone, Debug, PartialEq)]
pub enum CtMsg<V> {
    /// Phase 1: a process's current estimate for round `r`.
    Estimate {
        /// Round number.
        r: u64,
        /// Current estimate.
        est: V,
        /// Round in which the estimate was last adopted.
        ts: u64,
    },
    /// Phase 2: the coordinator's proposal for round `r`.
    Proposal {
        /// Round number.
        r: u64,
        /// Proposed value.
        v: V,
    },
    /// Phase 3: ack (`ok = true`) or nack of round `r`'s proposal.
    Ack {
        /// Round number.
        r: u64,
        /// Whether the proposal was adopted.
        ok: bool,
    },
    /// Phase 4 / reliable broadcast: a decision.
    Decide {
        /// The decided value.
        v: V,
    },
}

#[derive(Clone, Debug)]
struct RoundDuty<V> {
    estimates: Vec<Option<(V, u64)>>,
    /// The value this round proposed, once phase 2 fired.
    proposal: Option<V>,
    acks: Vec<Option<bool>>,
    concluded: bool,
}

/// One process of the Chandra–Toueg ◇S consensus. The failure detector
/// value is the set of currently suspected processes.
#[derive(Clone, Debug)]
pub struct ChandraToueg<V> {
    est: Option<(V, u64)>,
    round: u64,
    /// Whether we are still waiting for the current round's proposal.
    awaiting_proposal: bool,
    /// Buffered proposals for rounds we have not reached yet.
    proposals: BTreeMap<u64, V>,
    /// Coordinator-side state per round we coordinate.
    duties: BTreeMap<u64, RoundDuty<V>>,
    decided: Option<V>,
}

impl<V: Clone + Debug + PartialEq> ChandraToueg<V> {
    /// Create a consensus process (propose later via invocation).
    pub fn new() -> Self {
        ChandraToueg {
            est: None,
            round: 0,
            awaiting_proposal: false,
            proposals: BTreeMap::new(),
            duties: BTreeMap::new(),
            decided: None,
        }
    }

    /// The decision this process returned, if any.
    pub fn decision(&self) -> Option<&V> {
        self.decided.as_ref()
    }

    /// The round this process is currently in.
    pub fn round(&self) -> u64 {
        self.round
    }

    fn coordinator(r: u64, n: usize) -> ProcessId {
        ProcessId((r % n as u64) as usize)
    }

    fn majority(n: usize) -> usize {
        n / 2 + 1
    }

    fn decide(&mut self, ctx: &mut Ctx<Self>, v: V) {
        if self.decided.is_none() {
            self.decided = Some(v.clone());
            ctx.output(ConsensusOutput::Decided(v.clone()));
            ctx.broadcast_others(CtMsg::Decide { v });
        }
    }

    fn begin_round(&mut self, ctx: &mut Ctx<Self>) {
        let Some((est, ts)) = self.est.clone() else {
            return;
        };
        let coord = Self::coordinator(self.round, ctx.n());
        self.awaiting_proposal = true;
        ctx.send(
            coord,
            CtMsg::Estimate {
                r: self.round,
                est,
                ts,
            },
        );
        // A buffered proposal may already be waiting for this round.
        self.check_proposal(ctx);
    }

    fn check_proposal(&mut self, ctx: &mut Ctx<Self>) {
        if !self.awaiting_proposal {
            return;
        }
        if let Some(v) = self.proposals.get(&self.round).cloned() {
            let r = self.round;
            self.est = Some((v, r + 1));
            self.awaiting_proposal = false;
            ctx.send(Self::coordinator(r, ctx.n()), CtMsg::Ack { r, ok: true });
            self.round += 1;
            self.begin_round(ctx);
        }
    }

    /// ◇S check: nack and move on if the coordinator is suspected.
    fn check_suspicion(&mut self, ctx: &mut Ctx<Self>) {
        if !self.awaiting_proposal || self.decided.is_some() {
            return;
        }
        let r = self.round;
        let coord = Self::coordinator(r, ctx.n());
        if ctx.fd().contains(coord) {
            self.awaiting_proposal = false;
            ctx.send(coord, CtMsg::Ack { r, ok: false });
            self.round += 1;
            self.begin_round(ctx);
        }
    }

    fn duty(&mut self, r: u64, n: usize) -> &mut RoundDuty<V> {
        self.duties.entry(r).or_insert_with(|| RoundDuty {
            estimates: vec![None; n],
            proposal: None,
            acks: vec![None; n],
            concluded: false,
        })
    }

    fn run_coordinator(&mut self, ctx: &mut Ctx<Self>, r: u64) {
        let n = ctx.n();
        let majority = Self::majority(n);
        let duty = self.duty(r, n);
        if duty.proposal.is_none() {
            let have: Vec<(V, u64)> = duty.estimates.iter().flatten().cloned().collect();
            if have.len() >= majority {
                let (v, _) = have
                    .into_iter()
                    .max_by_key(|(_, ts)| *ts)
                    .expect("majority is non-empty");
                duty.proposal = Some(v.clone());
                ctx.broadcast(CtMsg::Proposal { r, v });
            }
        }
        let duty = self.duty(r, n);
        if let Some(v) = duty.proposal.clone() {
            if !duty.concluded {
                let replies: Vec<bool> = duty.acks.iter().flatten().copied().collect();
                if replies.len() >= majority {
                    duty.concluded = true;
                    if replies.iter().all(|&ok| ok) {
                        // The first majority all adopted: decide.
                        self.decide(ctx, v);
                    }
                }
            }
        }
    }
}

impl<V: Clone + Debug + PartialEq> Default for ChandraToueg<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V: Clone + Debug + PartialEq> Protocol for ChandraToueg<V> {
    type Msg = CtMsg<V>;
    type Output = ConsensusOutput<V>;
    type Inv = V;
    type Fd = ProcessSet;

    fn on_invoke(&mut self, ctx: &mut Ctx<Self>, v: V) {
        if self.est.is_none() {
            self.est = Some((v, 0));
            self.begin_round(ctx);
        }
    }

    fn on_tick(&mut self, ctx: &mut Ctx<Self>) {
        self.check_suspicion(ctx);
    }

    fn on_message(&mut self, ctx: &mut Ctx<Self>, from: ProcessId, msg: CtMsg<V>) {
        if let Some(v) = self.decided.clone() {
            if !matches!(msg, CtMsg::Decide { .. }) {
                ctx.send(from, CtMsg::Decide { v });
            }
            return;
        }
        match msg {
            CtMsg::Estimate { r, est, ts } => {
                let n = ctx.n();
                if Self::coordinator(r, n) == ctx.me() {
                    self.duty(r, n).estimates[from.index()] = Some((est, ts));
                    self.run_coordinator(ctx, r);
                }
            }
            CtMsg::Proposal { r, v } => {
                self.proposals.insert(r, v);
                self.check_proposal(ctx);
                self.check_suspicion(ctx);
            }
            CtMsg::Ack { r, ok } => {
                let n = ctx.n();
                if Self::coordinator(r, n) == ctx.me() {
                    self.duty(r, n).acks[from.index()] = Some(ok);
                    self.run_coordinator(ctx, r);
                }
            }
            CtMsg::Decide { v } => self.decide(ctx, v),
        }
    }

    fn footprint(&self, _me: ProcessId, n: usize, _step: StepKind<'_, Self>) -> Footprint {
        // Rotating-coordinator traffic may target any process on any
        // step; `decide` outputs exactly once, guarded by
        // `decided.is_none()`, so the output channel closes afterwards.
        let fp = Footprint::local().sends_to_all(n);
        if self.decided.is_some() {
            fp
        } else {
            fp.outputs()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::check_consensus;
    use wfd_detectors::oracles::EventuallyStrongOracle;
    use wfd_sim::{FailurePattern, RandomFair, Sim, SimConfig};

    type Ct = ChandraToueg<u64>;

    fn run_ct(
        pattern: &FailurePattern,
        proposals: &[u64],
        stabilize: u64,
        seed: u64,
        horizon: u64,
    ) -> wfd_sim::Trace<CtMsg<u64>, ConsensusOutput<u64>> {
        let n = pattern.n();
        let fd = EventuallyStrongOracle::new(pattern, stabilize, seed);
        let mut sim = Sim::new(
            SimConfig::new(n).with_horizon(horizon),
            (0..n).map(|_| Ct::new()).collect(),
            pattern.clone(),
            fd,
            RandomFair::new(seed),
        );
        for (p, &v) in proposals.iter().enumerate() {
            sim.schedule_invoke(ProcessId(p), 0, v);
        }
        let correct = pattern.correct();
        sim.run_until(move |_, procs| {
            procs
                .iter()
                .enumerate()
                .all(|(i, p)| !correct.contains(ProcessId(i)) || p.decision().is_some())
        });
        let (_, _, _, trace) = sim.into_parts();
        trace
    }

    #[test]
    fn decides_failure_free() {
        let n = 3;
        let pattern = FailurePattern::failure_free(n);
        let proposals = [5, 6, 7];
        for seed in 0..5 {
            let trace = run_ct(&pattern, &proposals, 100, seed, 40_000);
            let props: Vec<Option<u64>> = proposals.iter().copied().map(Some).collect();
            check_consensus(&trace, &props, &pattern)
                .unwrap_or_else(|v| panic!("seed {seed}: {v}"));
        }
    }

    #[test]
    fn decides_with_minority_crashes() {
        let n = 5;
        let pattern = FailurePattern::with_crashes(n, &[(ProcessId(0), 50), (ProcessId(1), 150)]);
        let proposals = [1, 2, 3, 4, 5];
        for seed in 0..5 {
            let trace = run_ct(&pattern, &proposals, 400, seed, 60_000);
            let props: Vec<Option<u64>> = proposals.iter().copied().map(Some).collect();
            check_consensus(&trace, &props, &pattern)
                .unwrap_or_else(|v| panic!("seed {seed}: {v}"));
        }
    }

    #[test]
    fn blocks_when_majority_crashes() {
        // The baseline's limit: with 3 of 5 crashed it cannot decide.
        let n = 5;
        let pattern = FailurePattern::with_crashes(
            n,
            &[(ProcessId(0), 10), (ProcessId(1), 10), (ProcessId(2), 10)],
        );
        let proposals = [1, 2, 3, 4, 5];
        let trace = run_ct(&pattern, &proposals, 100, 1, 30_000);
        let survivors_decided = trace
            .outputs()
            .filter(|(_, p, _)| pattern.correct().contains(*p))
            .count();
        assert_eq!(
            survivors_decided, 0,
            "CT must block without a correct majority"
        );
    }

    #[test]
    fn accessors() {
        let p: Ct = ChandraToueg::new();
        assert_eq!(p.decision(), None);
        assert_eq!(p.round(), 0);
    }
}
