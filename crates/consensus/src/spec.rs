//! The consensus problem and its trace checker.
//!
//! Paper §4.1 — each process invokes `PROPOSE(v)`; it is required that:
//!
//! * **Termination**: if every correct process proposes, every correct
//!   process eventually returns a value.
//! * **Uniform Agreement**: no two processes (correct *or faulty*) return
//!   different values.
//! * **Validity**: a returned value was proposed by some process.
//!
//! The checker is generic in the decision value type because the Figure 3
//! extraction runs consensus over initial-configuration/schedule tuples,
//! not just bits.

use std::collections::BTreeMap;
use std::fmt::{self, Debug};
use wfd_sim::{FailurePattern, ProcessId, Time, Trace};

/// Observable output of a consensus protocol.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConsensusOutput<V> {
    /// The process returned (decided) `v`.
    Decided(V),
}

/// A violation of the consensus specification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConsensusViolation<V> {
    /// Two processes decided differently.
    Agreement {
        /// First decider and value.
        p: (ProcessId, V),
        /// Conflicting decider and value.
        q: (ProcessId, V),
    },
    /// A decided value was never proposed.
    Validity {
        /// The decider.
        p: ProcessId,
        /// The unproposed value it decided.
        value: V,
    },
    /// A process decided more than once.
    Integrity {
        /// The repeat offender.
        p: ProcessId,
    },
    /// A correct process that proposed never decided (within the run).
    Termination {
        /// The starved process.
        p: ProcessId,
    },
}

impl<V: Debug> fmt::Display for ConsensusViolation<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConsensusViolation::Agreement { p, q } => write!(
                f,
                // wfd-lint: allow(d4-debug-format, violation text is for humans; checkers compare structured fields and V is only Debug-bound)
                "agreement violated: {} decided {:?} but {} decided {:?}",
                p.0, p.1, q.0, q.1
            ),
            ConsensusViolation::Validity { p, value } => {
                write!(
                    f,
                    // wfd-lint: allow(d4-debug-format, violation text is for humans; checkers compare structured fields and V is only Debug-bound)
                    "validity violated: {p} decided unproposed value {value:?}"
                )
            }
            ConsensusViolation::Integrity { p } => {
                write!(f, "integrity violated: {p} decided more than once")
            }
            ConsensusViolation::Termination { p } => write!(
                f,
                "termination violated: correct {p} proposed but never decided"
            ),
        }
    }
}

impl<V: Debug> std::error::Error for ConsensusViolation<V> {}

/// Diagnostics from a successful consensus check.
#[derive(Clone, Debug)]
pub struct ConsensusStats<V> {
    /// The common decision (if anyone decided).
    pub decision: Option<V>,
    /// Per process: decision time.
    pub decision_times: BTreeMap<ProcessId, Time>,
    /// The latest decision time among correct processes — the run's
    /// decision latency.
    pub latency: Option<Time>,
}

/// Check a run of a consensus protocol.
///
/// `proposals[p]` is what process `p` proposed (`None` if it never
/// proposed). Termination is enforced for every *correct* process that
/// proposed; runs must therefore be long enough for the algorithm to have
/// settled — a termination error on a too-short run means "increase the
/// horizon", which the caller can distinguish via the stats of a longer
/// retry.
///
/// # Errors
///
/// Returns the first violation found (agreement and validity are checked
/// before termination).
pub fn check_consensus<M, V>(
    trace: &Trace<M, ConsensusOutput<V>>,
    proposals: &[Option<V>],
    pattern: &FailurePattern,
) -> Result<ConsensusStats<V>, ConsensusViolation<V>>
where
    M: Clone + Debug,
    V: Clone + Debug + PartialEq,
{
    let mut decision_times: BTreeMap<ProcessId, Time> = BTreeMap::new();
    let mut first: Option<(ProcessId, V)> = None;

    for (t, p, out) in trace.outputs() {
        let ConsensusOutput::Decided(v) = out;
        if decision_times.contains_key(&p) {
            return Err(ConsensusViolation::Integrity { p });
        }
        decision_times.insert(p, t);
        if !proposals.iter().flatten().any(|prop| prop == v) {
            return Err(ConsensusViolation::Validity {
                p,
                value: v.clone(),
            });
        }
        match &first {
            None => first = Some((p, v.clone())),
            Some((fp, fv)) => {
                if fv != v {
                    return Err(ConsensusViolation::Agreement {
                        p: (*fp, fv.clone()),
                        q: (p, v.clone()),
                    });
                }
            }
        }
    }

    for p in pattern.correct().iter() {
        if proposals[p.index()].is_some() && !decision_times.contains_key(&p) {
            return Err(ConsensusViolation::Termination { p });
        }
    }

    let latency = pattern
        .correct()
        .iter()
        .filter_map(|p| decision_times.get(&p).copied())
        .max();

    Ok(ConsensusStats {
        decision: first.map(|(_, v)| v),
        decision_times,
        latency,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfd_sim::EventKind;

    fn trace_with(n: usize, decisions: &[(Time, usize, u64)]) -> Trace<(), ConsensusOutput<u64>> {
        let mut t = Trace::new(n);
        for &(time, pid, v) in decisions {
            t.push(
                time,
                ProcessId(pid),
                EventKind::Output(ConsensusOutput::Decided(v)),
            );
        }
        t
    }

    #[test]
    fn unanimous_decisions_pass() {
        let trace = trace_with(3, &[(5, 0, 1), (7, 1, 1), (9, 2, 1)]);
        let props = vec![Some(1), Some(0), Some(1)];
        let stats =
            check_consensus(&trace, &props, &FailurePattern::failure_free(3)).expect("valid");
        assert_eq!(stats.decision, Some(1));
        assert_eq!(stats.latency, Some(9));
        assert_eq!(stats.decision_times.len(), 3);
    }

    #[test]
    fn disagreement_is_caught() {
        let trace = trace_with(2, &[(1, 0, 0), (2, 1, 1)]);
        let props = vec![Some(0), Some(1)];
        assert!(matches!(
            check_consensus(&trace, &props, &FailurePattern::failure_free(2)),
            Err(ConsensusViolation::Agreement { .. })
        ));
    }

    #[test]
    fn agreement_is_uniform_faulty_processes_count() {
        // p0 decides 0 then crashes; survivors decide 1: still a violation.
        let pattern = FailurePattern::failure_free(2).with_crash(ProcessId(0), 3);
        let trace = trace_with(2, &[(1, 0, 0), (10, 1, 1)]);
        let props = vec![Some(0), Some(1)];
        assert!(matches!(
            check_consensus(&trace, &props, &pattern),
            Err(ConsensusViolation::Agreement { .. })
        ));
    }

    #[test]
    fn unproposed_decision_is_caught() {
        let trace = trace_with(2, &[(1, 0, 9)]);
        let props = vec![Some(0), Some(1)];
        assert!(matches!(
            check_consensus(&trace, &props, &FailurePattern::failure_free(2)),
            Err(ConsensusViolation::Validity {
                p: ProcessId(0),
                value: 9
            })
        ));
    }

    #[test]
    fn double_decision_is_caught() {
        let trace = trace_with(1, &[(1, 0, 0), (2, 0, 0)]);
        let props = vec![Some(0)];
        assert!(matches!(
            check_consensus(&trace, &props, &FailurePattern::failure_free(1)),
            Err(ConsensusViolation::Integrity { p: ProcessId(0) })
        ));
    }

    #[test]
    fn missing_correct_decider_is_caught() {
        let trace = trace_with(2, &[(1, 0, 1)]);
        let props = vec![Some(1), Some(1)];
        assert!(matches!(
            check_consensus(&trace, &props, &FailurePattern::failure_free(2)),
            Err(ConsensusViolation::Termination { p: ProcessId(1) })
        ));
    }

    #[test]
    fn faulty_non_decider_is_fine() {
        let pattern = FailurePattern::failure_free(2).with_crash(ProcessId(1), 5);
        let trace = trace_with(2, &[(1, 0, 1)]);
        let props = vec![Some(1), Some(1)];
        check_consensus(&trace, &props, &pattern).expect("faulty p1 need not decide");
    }

    #[test]
    fn non_proposer_need_not_decide() {
        let trace = trace_with(2, &[(1, 0, 1)]);
        let props = vec![Some(1), None];
        check_consensus(&trace, &props, &FailurePattern::failure_free(2))
            .expect("p1 never proposed");
    }

    #[test]
    fn empty_run_with_no_proposals_is_vacuous() {
        let trace = trace_with(2, &[]);
        let props: Vec<Option<u64>> = vec![None, None];
        let stats =
            check_consensus(&trace, &props, &FailurePattern::failure_free(2)).expect("vacuous");
        assert_eq!(stats.decision, None);
        assert_eq!(stats.latency, None);
    }
}
