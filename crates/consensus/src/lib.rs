//! # wfd-consensus — consensus and the (Ω, Σ) result (paper §4)
//!
//! Corollary 4 of the paper: **for all environments, (Ω, Σ) is the weakest
//! failure detector to solve consensus.** This crate provides:
//!
//! * [`spec`] — the consensus problem (Termination, Uniform Agreement,
//!   Validity) and a trace checker for it.
//! * [`omega_sigma`] — a quorum-based consensus algorithm using exactly
//!   (Ω, Σ): Ω elects the proposer, Σ supplies the intersecting quorums
//!   that replace Paxos majorities. Live in *every* environment.
//! * [`register_omega`] — the paper's own construction route: the
//!   round-based shared-memory algorithm of Lo–Hadzilacos using Ω and
//!   atomic registers, with the registers provided by the Σ-based ABD of
//!   `wfd-registers` (Corollary 2 made executable).
//! * [`chandra_toueg`] — the classical ◇S + majority rotating-coordinator
//!   algorithm, the baseline that the generalisation is measured against
//!   (experiment E9: it loses exactly when `f ≥ ⌈n/2⌉`).
//! * [`smr_register`] — the state-machine step of Corollary 3: registers
//!   replicated over consensus instances, composing with Figure 1 into
//!   the executable necessity chain *consensus → registers → Σ*.
//! * [`multivalued`] — the Mostéfaoui–Raynal–Tronel transformation from
//!   binary to multivalued consensus, used by the Figure 3 extraction
//!   argument (footnote 6 of the paper).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chandra_toueg;
pub mod multivalued;
pub mod omega_sigma;
pub mod register_omega;
pub mod smr_register;
pub mod spec;

pub use omega_sigma::OmegaSigmaConsensus;
pub use spec::{check_consensus, ConsensusOutput, ConsensusStats, ConsensusViolation};
