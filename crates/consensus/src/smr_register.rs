//! Registers from consensus — the state-machine step of Corollary 3:
//!
//! > "From Lamport's work on the state-machine approach we know that by
//! > using consensus we can implement any object, and in particular
//! > registers \[17, 21\]. Thus, using `D` we can implement registers in
//! > `E`. By (2), `D` can be transformed to Σ in `E`."
//!
//! [`RegisterFromConsensus`] replicates a register through a log of
//! consensus instances (one per slot): every operation is a command,
//! commands are forwarded to everyone (so the current Ω leader always has
//! something to propose), each slot's consensus picks one command, and a
//! process responds to its own operation when the command carrying it is
//! applied. Agreement per slot ⇒ identical logs ⇒ linearizability;
//! consensus termination per slot + fair forwarding ⇒ every pending
//! command is eventually chosen.
//!
//! Because the protocol speaks the standard [`AbdOp`]/[`AbdOutput`]
//! register interface, it slots straight into the **Figure 1 extraction**
//! — composing into the executable chain of Corollary 3:
//! *D solves consensus → D implements registers (here) → D yields Σ
//! (Figure 1).*

use crate::omega_sigma::{OmegaSigmaConsensus, PaxosMsg};
use crate::spec::ConsensusOutput;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt::Debug;
use wfd_registers::abd::{AbdOp, AbdOutput, AbdResp};
use wfd_sim::{Ctx, Footprint, ProcessId, ProcessSet, Protocol, StepKind};

/// A register command: who issued it, a per-issuer tag, and the
/// operation.
#[derive(Clone, Debug, PartialEq)]
pub struct Command<V> {
    /// The process whose operation this is.
    pub issuer: ProcessId,
    /// Issuer-local sequence number (dedup key).
    pub tag: u64,
    /// The register operation.
    pub op: AbdOp<V>,
}

/// Messages: command forwarding plus per-slot consensus traffic.
#[derive(Clone, Debug, PartialEq)]
pub enum SmrMsg<V> {
    /// A command looking for a slot (flooded so any leader can propose
    /// it).
    Forward(Command<V>),
    /// Traffic of the consensus instance deciding slot `k`.
    Slot {
        /// The log slot.
        k: u64,
        /// Inner consensus message.
        inner: PaxosMsg<Command<V>>,
    },
}

/// One process of the consensus-replicated register.
#[derive(Debug)]
pub struct RegisterFromConsensus<V: Clone + Debug + PartialEq> {
    instances: BTreeMap<u64, OmegaSigmaConsensus<Command<V>>>,
    /// First slot not yet decided locally.
    next_slot: u64,
    /// Whether we proposed for `next_slot` already.
    proposed_slot: bool,
    /// Register value after applying all decided slots.
    state: V,
    /// Commands decided so far (dedup across slots).
    applied: BTreeSet<(ProcessId, u64)>,
    /// Commands known but not yet applied, ordered by (issuer, tag) so
    /// every process proposes deterministically.
    pool: Vec<Command<V>>,
    /// Our own operations awaiting commitment, oldest first.
    pending: VecDeque<Command<V>>,
    my_tag: u64,
    op_seq: u64,
}

impl<V: Clone + Debug + PartialEq> RegisterFromConsensus<V> {
    /// Create a process with the given initial register value.
    pub fn new(initial: V) -> Self {
        RegisterFromConsensus {
            instances: BTreeMap::new(),
            next_slot: 0,
            proposed_slot: false,
            state: initial,
            applied: BTreeSet::new(),
            pool: Vec::new(),
            pending: VecDeque::new(),
            my_tag: 0,
            op_seq: 0,
        }
    }

    /// The register value after all locally-applied commands.
    pub fn state(&self) -> &V {
        &self.state
    }

    /// Decided log length at this process.
    pub fn log_len(&self) -> u64 {
        self.next_slot
    }

    fn pool_insert(&mut self, cmd: Command<V>) {
        let key = (cmd.issuer, cmd.tag);
        if self.applied.contains(&key) || self.pool.iter().any(|c| (c.issuer, c.tag) == key) {
            return;
        }
        self.pool.push(cmd);
        self.pool.sort_by_key(|c| (c.issuer, c.tag));
    }

    fn with_slot(
        &mut self,
        ctx: &mut Ctx<Self>,
        k: u64,
        f: impl FnOnce(&mut OmegaSigmaConsensus<Command<V>>, &mut Ctx<OmegaSigmaConsensus<Command<V>>>),
    ) {
        let fd = ctx.fd().clone();
        let mut ictx =
            Ctx::<OmegaSigmaConsensus<Command<V>>>::detached(ctx.me(), ctx.n(), ctx.now(), fd);
        let inst = self.instances.entry(k).or_default();
        f(inst, &mut ictx);
        for (to, msg) in ictx.take_sends() {
            ctx.send(to, SmrMsg::Slot { k, inner: msg });
        }
        for out in ictx.take_outputs() {
            let ConsensusOutput::Decided(cmd) = out;
            self.on_slot_decided(ctx, k, cmd);
        }
    }

    fn on_slot_decided(&mut self, ctx: &mut Ctx<Self>, k: u64, cmd: Command<V>) {
        if k != self.next_slot {
            return; // applied in order; instance decisions are sticky
        }
        self.next_slot += 1;
        self.proposed_slot = false;
        let key = (cmd.issuer, cmd.tag);
        self.pool.retain(|c| (c.issuer, c.tag) != key);
        if self.applied.insert(key) {
            // Apply once; compute the response at the linearization point.
            let resp = match &cmd.op {
                AbdOp::Write(v) => {
                    self.state = v.clone();
                    AbdResp::WriteOk
                }
                AbdOp::Read => AbdResp::ReadOk(self.state.clone()),
            };
            if cmd.issuer == ctx.me() && self.pending.front().is_some_and(|c| c.tag == cmd.tag) {
                self.pending.pop_front();
                let id = (ctx.me(), self.op_seq);
                self.op_seq += 1;
                // Causal participants of the operation: the acceptor
                // quorum (plus proposer) behind the slot's decision. It
                // always contains a correct process (Σ-quorum
                // intersection) and is eventually all-correct — exactly
                // what the Figure 1 extraction needs from P_i(k).
                let participants = self
                    .instances
                    .get(&k)
                    .and_then(|i| i.decision_quorum().cloned())
                    .unwrap_or_else(|| ProcessSet::full(ctx.n()));
                ctx.output(AbdOutput::Completed {
                    id,
                    resp,
                    participants,
                });
            }
        }
        // Catch up: the next instance may already have decided (message
        // reordering); poke it.
        let next = self.next_slot;
        if self.instances.contains_key(&next) {
            if let Some(Some(cmd)) = self.instances.get(&next).map(|i| i.decision().cloned()) {
                self.on_slot_decided(ctx, next, cmd);
            }
        }
        self.drive(ctx);
    }

    /// Propose the deterministic pool-front for the current slot if we
    /// have anything to get committed.
    fn drive(&mut self, ctx: &mut Ctx<Self>) {
        let k = self.next_slot;
        if !self.proposed_slot {
            if let Some(cmd) = self.pool.first().cloned() {
                self.proposed_slot = true;
                self.with_slot(ctx, k, |inst, ictx| inst.on_invoke(ictx, cmd));
                return;
            }
        }
        if self.instances.contains_key(&k) {
            self.with_slot(ctx, k, |inst, ictx| inst.on_tick(ictx));
        }
    }
}

impl<V: Clone + Debug + PartialEq> Protocol for RegisterFromConsensus<V> {
    type Msg = SmrMsg<V>;
    type Output = AbdOutput<V>;
    type Inv = AbdOp<V>;
    type Fd = (ProcessId, ProcessSet);

    fn on_invoke(&mut self, ctx: &mut Ctx<Self>, op: AbdOp<V>) {
        self.my_tag += 1;
        let cmd = Command {
            issuer: ctx.me(),
            tag: self.my_tag,
            op: op.clone(),
        };
        // Invocation ids are assigned at completion order (ops of one
        // process complete in issue order, so ids line up).
        let id = (ctx.me(), self.op_seq + self.pending.len() as u64);
        ctx.output(AbdOutput::Invoked { id, op });
        self.pending.push_back(cmd.clone());
        ctx.broadcast_others(SmrMsg::Forward(cmd.clone()));
        self.pool_insert(cmd);
        self.drive(ctx);
    }

    fn on_tick(&mut self, ctx: &mut Ctx<Self>) {
        self.drive(ctx);
    }

    fn on_message(&mut self, ctx: &mut Ctx<Self>, from: ProcessId, msg: SmrMsg<V>) {
        match msg {
            SmrMsg::Forward(cmd) => {
                self.pool_insert(cmd);
                self.drive(ctx);
            }
            SmrMsg::Slot { k, inner } => {
                self.with_slot(ctx, k, |inst, ictx| inst.on_message(ictx, from, inner));
                self.drive(ctx);
            }
        }
    }

    fn footprint(&self, _me: ProcessId, n: usize, _step: StepKind<'_, Self>) -> Footprint {
        // A replicated register never quiesces: every step may drive a
        // consensus slot (messaging anyone) and complete a pending op
        // (emitting `Completed`), so the honest declaration is opaque.
        // wfd-lint: allow(d7-footprint, every step may drive a consensus slot that broadcasts and completes ops; no step kind is effect-free)
        Footprint::opaque(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfd_detectors::oracles::{OmegaOracle, PairOracle, SigmaOracle};
    use wfd_registers::check_linearizable;
    use wfd_registers::spec::{OpHistory, OpRecord, RegOp, RegResp};
    use wfd_sim::{EventKind, FailurePattern, RandomFair, Sim, SimConfig, Trace};

    type Smr = RegisterFromConsensus<u64>;

    fn history_of(trace: &Trace<SmrMsg<u64>, AbdOutput<u64>>) -> OpHistory {
        let mut h = OpHistory::new(0);
        for event in trace.events() {
            if let EventKind::Output(out) = &event.kind {
                match out {
                    AbdOutput::Invoked { id, op } => h.ops.push(OpRecord {
                        id: *id,
                        op: match op {
                            AbdOp::Read => RegOp::Read,
                            AbdOp::Write(v) => RegOp::Write(*v),
                        },
                        invoked_at: event.time,
                        response: None,
                        participants: ProcessSet::new(),
                    }),
                    AbdOutput::Completed { id, resp, .. } => {
                        if let Some(rec) = h.ops.iter_mut().find(|r| r.id == *id) {
                            rec.response = Some((
                                event.time,
                                match resp {
                                    AbdResp::ReadOk(v) => RegResp::ReadOk(*v),
                                    AbdResp::WriteOk => RegResp::WriteOk,
                                },
                            ));
                        }
                    }
                }
            }
        }
        h
    }

    fn run_smr(pattern: &FailurePattern, seed: u64, horizon: u64) -> OpHistory {
        let n = pattern.n();
        let fd = PairOracle::new(
            OmegaOracle::new(pattern, 100, seed),
            SigmaOracle::new(pattern, 100, seed),
        );
        let mut sim = Sim::new(
            SimConfig::new(n).with_horizon(horizon),
            (0..n).map(|_| Smr::new(0)).collect(),
            pattern.clone(),
            fd,
            RandomFair::new(seed),
        );
        for p in 0..n {
            sim.schedule_invoke(ProcessId(p), 0, AbdOp::Write(100 + p as u64));
            sim.schedule_invoke(ProcessId(p), 300, AbdOp::Read);
            sim.schedule_invoke(ProcessId(p), 900, AbdOp::Read);
        }
        sim.run();
        history_of(sim.trace())
    }

    #[test]
    fn smr_register_is_linearizable() {
        for seed in 0..4 {
            let h = run_smr(&FailurePattern::failure_free(3), seed, 60_000);
            assert!(h.completed().count() >= 9, "seed {seed}: {h}");
            check_linearizable(&h).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{h}"));
        }
    }

    #[test]
    fn smr_register_survives_crashes() {
        let pattern = FailurePattern::with_crashes(3, &[(ProcessId(0), 500)]);
        for seed in 0..3 {
            let h = run_smr(&pattern, seed, 80_000);
            check_linearizable(&h).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{h}"));
            let late = h
                .completed()
                .filter(|o| o.response.expect("completed").0 > 500)
                .count();
            assert!(late > 0, "seed {seed}: survivors' ops must complete");
        }
    }

    #[test]
    fn logs_agree_across_processes() {
        let n = 3;
        let pattern = FailurePattern::failure_free(n);
        let fd = PairOracle::new(
            OmegaOracle::new(&pattern, 50, 1),
            SigmaOracle::new(&pattern, 50, 1),
        );
        let mut sim = Sim::new(
            SimConfig::new(n).with_horizon(60_000),
            (0..n).map(|_| Smr::new(0)).collect(),
            pattern,
            fd,
            RandomFair::new(1),
        );
        for p in 0..n {
            sim.schedule_invoke(ProcessId(p), 0, AbdOp::Write(p as u64));
        }
        sim.run_until(|_, procs| procs.iter().all(|s| s.log_len() >= 3));
        let states: Vec<u64> = sim.processes().iter().map(|s| *s.state()).collect();
        assert!(
            states.windows(2).all(|w| w[0] == w[1]),
            "replicated state diverged: {states:?}"
        );
    }

    #[test]
    fn accessors() {
        let s: Smr = RegisterFromConsensus::new(7);
        assert_eq!(*s.state(), 7);
        assert_eq!(s.log_len(), 0);
    }
}
