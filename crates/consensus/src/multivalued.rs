//! From binary to multivalued consensus — the Mostéfaoui–Raynal–Tronel
//! transformation the paper leans on in footnote 6: *"by using the
//! technique of \[20\] one can transform any binary QC algorithm into a
//! multivalued one."*
//!
//! Processes first flood their proposal values, then run a sequence of
//! binary consensus instances: instance `j` asks *"shall we decide the
//! value proposed by process `j mod n`?"*. A process proposes 1 for
//! instance `j` iff it has already received that process's value — and
//! crucially it re-floods the value in the same atomic step, so a
//! 1-decision implies the value is on its way to everyone. The first
//! instance that decides 1 fixes the outcome; cycling through `j`
//! forever guarantees one eventually does (all correct processes
//! eventually hold all correct proposals).
//!
//! The binary instances here are [`OmegaSigmaConsensus<u8>`] — any other
//! binary consensus protocol with the same interface would do.

use crate::omega_sigma::{OmegaSigmaConsensus, PaxosMsg};
use crate::spec::ConsensusOutput;
use std::collections::BTreeMap;
use std::fmt::Debug;
use wfd_sim::{Ctx, Footprint, ProcessId, ProcessSet, Protocol, StepKind};

/// Messages: proposal flooding plus wrapped binary-instance traffic.
#[derive(Clone, Debug, PartialEq)]
pub enum MvMsg<V> {
    /// "Process `owner` proposed `v`" — flooded.
    Val {
        /// Whose proposal this is.
        owner: ProcessId,
        /// The proposed value.
        v: V,
    },
    /// Traffic of binary instance `instance`.
    Bin {
        /// Instance number `j` (target process is `j mod n`).
        instance: u64,
        /// Inner binary-consensus message.
        inner: PaxosMsg<u8>,
    },
}

/// One process of the multivalued-from-binary transformation.
#[derive(Debug)]
pub struct MultivaluedConsensus<V: Clone + Debug + PartialEq> {
    /// Proposals received so far, per owner.
    values: Vec<Option<V>>,
    /// Binary instances, created lazily.
    instances: BTreeMap<u64, OmegaSigmaConsensus<u8>>,
    /// The instance we are currently participating in.
    current: u64,
    proposed_current: bool,
    my_value: Option<V>,
    decided: Option<V>,
}

impl<V: Clone + Debug + PartialEq> MultivaluedConsensus<V> {
    /// Create a process for a system of `n` processes.
    pub fn new(n: usize) -> Self {
        MultivaluedConsensus {
            values: vec![None; n],
            instances: BTreeMap::new(),
            current: 0,
            proposed_current: false,
            my_value: None,
            decided: None,
        }
    }

    /// The decision this process returned, if any.
    pub fn decision(&self) -> Option<&V> {
        self.decided.as_ref()
    }

    /// The binary instance currently running.
    pub fn current_instance(&self) -> u64 {
        self.current
    }

    fn with_instance(
        &mut self,
        ctx: &mut Ctx<Self>,
        j: u64,
        f: impl FnOnce(&mut OmegaSigmaConsensus<u8>, &mut Ctx<OmegaSigmaConsensus<u8>>),
    ) {
        let fd = ctx.fd().clone();
        let mut ictx = Ctx::<OmegaSigmaConsensus<u8>>::detached(ctx.me(), ctx.n(), ctx.now(), fd);
        let inst = self.instances.entry(j).or_default();
        f(inst, &mut ictx);
        for (to, msg) in ictx.take_sends() {
            ctx.send(
                to,
                MvMsg::Bin {
                    instance: j,
                    inner: msg,
                },
            );
        }
        for out in ictx.take_outputs() {
            self.on_instance_output(ctx, j, out);
        }
    }

    fn on_instance_output(&mut self, ctx: &mut Ctx<Self>, j: u64, out: ConsensusOutput<u8>) {
        let ConsensusOutput::Decided(bit) = out;
        if j != self.current || self.decided.is_some() {
            return;
        }
        if bit == 1 {
            let owner = (j % ctx.n() as u64) as usize;
            // A 1-decision implies some process had the value and flooded
            // it before proposing 1; wait for it if it is still in flight.
            if let Some(v) = self.values[owner].clone() {
                self.decided = Some(v.clone());
                ctx.output(ConsensusOutput::Decided(v));
            }
            // else: deferred to on_message(Val) below.
        } else {
            self.current = j + 1;
            self.proposed_current = false;
            self.maybe_propose(ctx);
        }
    }

    /// Propose for the current binary instance once we have proposed a
    /// value ourselves.
    fn maybe_propose(&mut self, ctx: &mut Ctx<Self>) {
        if self.my_value.is_none() || self.proposed_current || self.decided.is_some() {
            return;
        }
        let j = self.current;
        let owner = (j % ctx.n() as u64) as usize;
        let bit = if let Some(v) = self.values[owner].clone() {
            // Re-flood before proposing 1: a 1-decision must imply the
            // value reaches everyone.
            ctx.broadcast_others(MvMsg::Val {
                owner: ProcessId(owner),
                v,
            });
            1u8
        } else {
            0u8
        };
        self.proposed_current = true;
        self.with_instance(ctx, j, |inst, ictx| inst.on_invoke(ictx, bit));
    }

    /// Re-check a deferred decision (1 decided before the value arrived).
    fn check_deferred(&mut self, ctx: &mut Ctx<Self>) {
        if self.decided.is_some() {
            return;
        }
        let j = self.current;
        let owner = (j % ctx.n() as u64) as usize;
        let decided_one = self.instances.get(&j).and_then(|i| i.decision().copied()) == Some(1);
        if decided_one {
            if let Some(v) = self.values[owner].clone() {
                self.decided = Some(v.clone());
                ctx.output(ConsensusOutput::Decided(v));
            }
        }
    }
}

impl<V: Clone + Debug + PartialEq> Protocol for MultivaluedConsensus<V> {
    type Msg = MvMsg<V>;
    type Output = ConsensusOutput<V>;
    type Inv = V;
    type Fd = (ProcessId, ProcessSet);

    fn on_invoke(&mut self, ctx: &mut Ctx<Self>, v: V) {
        if self.my_value.is_none() {
            self.my_value = Some(v.clone());
            self.values[ctx.me().index()] = Some(v.clone());
            ctx.broadcast_others(MvMsg::Val { owner: ctx.me(), v });
        }
        self.maybe_propose(ctx);
    }

    fn on_tick(&mut self, ctx: &mut Ctx<Self>) {
        self.maybe_propose(ctx);
        let j = self.current;
        if self.instances.contains_key(&j) {
            self.with_instance(ctx, j, |inst, ictx| inst.on_tick(ictx));
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<Self>, from: ProcessId, msg: MvMsg<V>) {
        match msg {
            MvMsg::Val { owner, v } => {
                if self.values[owner.index()].is_none() {
                    self.values[owner.index()] = Some(v);
                }
                self.check_deferred(ctx);
                self.maybe_propose(ctx);
            }
            MvMsg::Bin { instance, inner } => {
                self.with_instance(ctx, instance, |inst, ictx| {
                    inst.on_message(ictx, from, inner)
                });
            }
        }
    }

    fn footprint(&self, _me: ProcessId, n: usize, _step: StepKind<'_, Self>) -> Footprint {
        // Value floods and hosted binary instances may message anyone on
        // any step; the decision channel closes permanently once
        // `decided` is set (every `ctx.output` is guarded on it).
        let fp = Footprint::local().sends_to_all(n);
        if self.decided.is_some() {
            fp
        } else {
            fp.outputs()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::check_consensus;
    use wfd_detectors::oracles::{OmegaOracle, PairOracle, SigmaOracle};
    use wfd_sim::{FailurePattern, RandomFair, Sim, SimConfig};

    type Mv = MultivaluedConsensus<u64>;

    fn run_mv(
        pattern: &FailurePattern,
        proposals: &[u64],
        stabilize: u64,
        seed: u64,
        horizon: u64,
    ) -> wfd_sim::Trace<MvMsg<u64>, ConsensusOutput<u64>> {
        let n = pattern.n();
        let fd = PairOracle::new(
            OmegaOracle::new(pattern, stabilize, seed),
            SigmaOracle::new(pattern, stabilize, seed),
        );
        let mut sim = Sim::new(
            SimConfig::new(n).with_horizon(horizon),
            (0..n).map(|_| Mv::new(n)).collect(),
            pattern.clone(),
            fd,
            RandomFair::new(seed),
        );
        for (p, &v) in proposals.iter().enumerate() {
            sim.schedule_invoke(ProcessId(p), 0, v);
        }
        let correct = pattern.correct();
        sim.run_until(move |_, procs| {
            procs
                .iter()
                .enumerate()
                .all(|(i, p)| !correct.contains(ProcessId(i)) || p.decision().is_some())
        });
        let (_, _, _, trace) = sim.into_parts();
        trace
    }

    #[test]
    fn decides_a_proposed_multivalue() {
        let n = 3;
        let pattern = FailurePattern::failure_free(n);
        let proposals = [111, 222, 333];
        for seed in 0..3 {
            let trace = run_mv(&pattern, &proposals, 40, seed, 80_000);
            let props: Vec<Option<u64>> = proposals.iter().copied().map(Some).collect();
            let stats = check_consensus(&trace, &props, &pattern)
                .unwrap_or_else(|v| panic!("seed {seed}: {v}"));
            assert!(proposals.contains(&stats.decision.expect("decided")));
        }
    }

    #[test]
    fn decides_despite_crashes() {
        let n = 4;
        let pattern = FailurePattern::with_crashes(n, &[(ProcessId(0), 30)]);
        let proposals = [5, 6, 7, 8];
        for seed in 0..3 {
            let trace = run_mv(&pattern, &proposals, 300, seed, 120_000);
            let props: Vec<Option<u64>> = proposals.iter().copied().map(Some).collect();
            check_consensus(&trace, &props, &pattern)
                .unwrap_or_else(|v| panic!("seed {seed}: {v}"));
        }
    }

    #[test]
    fn accessors() {
        let p: Mv = MultivaluedConsensus::new(3);
        assert_eq!(p.decision(), None);
        assert_eq!(p.current_instance(), 0);
    }
}
