//! Consensus from **registers + Ω** — the construction the paper actually
//! cites for Corollary 2: *"using registers and Ω we can solve consensus
//! in any environment \[19\]"*, with the registers supplied by the Σ-based
//! ABD of `wfd-registers`.
//!
//! The shared-memory algorithm is single-decree Disk-Paxos-style: each
//! process owns one single-writer register holding a block
//! `(mbal, bal, val)`; a process that Ω names leader
//!
//! 1. writes its block with a fresh ballot `mbal = b`, reads everyone's
//!    block, and aborts (retrying higher) if it sees a larger `mbal`;
//! 2. adopts the value of the largest `bal` it read (or its own
//!    proposal), writes `(b, b, v)`, re-reads everyone, and decides `v`
//!    if still unbeaten — flooding a `Decide` so all correct processes
//!    return.
//!
//! Safety rests entirely on register atomicity (two competing ballots
//! must see each other in one direction); liveness on Ω (eventually a
//! single leader) plus the hosted registers' own liveness (from Σ). This
//! makes the chain Σ → registers → (+Ω) → consensus executable end to
//! end, which is precisely how the paper proves that (Ω, Σ) suffices in
//! every environment.

use crate::omega_sigma::Ballot;
use crate::spec::ConsensusOutput;
use std::fmt::Debug;
use wfd_registers::abd::{AbdMsg, AbdOp, AbdOutput, AbdRegister, AbdResp, QuorumRule};
use wfd_sim::{Ctx, Footprint, ProcessId, ProcessSet, Protocol, StepKind};

/// The block each process keeps in its single-writer register.
#[derive(Clone, Debug, PartialEq)]
pub struct DBlock<V> {
    /// Highest ballot this process has started.
    pub mbal: Ballot,
    /// Ballot at which `val` was adopted.
    pub bal: Ballot,
    /// The value adopted at `bal`, if any.
    pub val: Option<V>,
}

impl<V: Clone + Debug + PartialEq> DBlock<V> {
    /// The initial (empty) block.
    pub fn initial() -> Self {
        DBlock {
            mbal: Ballot::ZERO,
            bal: Ballot::ZERO,
            val: None,
        }
    }
}

/// Messages: wrapped register traffic plus the decision flood.
#[derive(Clone, Debug, PartialEq)]
pub enum RoMsg<V> {
    /// Traffic of hosted register instance `instance`.
    Reg {
        /// Which process's single-writer register this belongs to.
        instance: usize,
        /// Inner ABD message.
        inner: AbdMsg<DBlock<V>>,
    },
    /// Decision flood.
    Decide {
        /// The decided value.
        v: V,
    },
}

#[derive(Clone, Debug, PartialEq)]
enum Stage<V> {
    Idle,
    P1Write,
    P1Read {
        j: usize,
        blocks: Vec<Option<DBlock<V>>>,
    },
    P2Write {
        v: V,
    },
    P2Read {
        j: usize,
        v: V,
        beaten: bool,
    },
}

/// One process of the registers+Ω consensus. The failure detector value is
/// `(Ω leader, Σ quorum)` — Ω drives the leader logic here, Σ drives the
/// hosted ABD registers.
#[derive(Debug)]
pub struct RegisterOmegaConsensus<V: Clone + Debug + PartialEq> {
    /// Hosted replicas of the `n` single-writer registers.
    regs: Vec<AbdRegister<DBlock<V>>>,
    proposal: Option<V>,
    stage: Stage<V>,
    attempt: u64,
    ballot: Ballot,
    /// Client-side copy of our own block: phase 1 only bumps `mbal`,
    /// keeping any previously adopted `(bal, val)` — overwriting them
    /// would un-accept a value and break agreement.
    my_block: DBlock<V>,
    /// Highest competing attempt observed; fresh ballots jump past it so
    /// a beaten leader does not crawl through intermediate attempts.
    rival_attempt: u64,
    decided: Option<V>,
}

impl<V: Clone + Debug + PartialEq> RegisterOmegaConsensus<V> {
    /// Create a consensus process for a system of `n` processes whose
    /// hosted registers use the Σ quorum rule.
    pub fn new(n: usize) -> Self {
        RegisterOmegaConsensus {
            regs: (0..n)
                .map(|_| AbdRegister::new(QuorumRule::Detector, DBlock::initial()))
                .collect(),
            proposal: None,
            stage: Stage::Idle,
            attempt: 0,
            ballot: Ballot::ZERO,
            my_block: DBlock::initial(),
            rival_attempt: 0,
            decided: None,
        }
    }

    /// The decision this process returned, if any.
    pub fn decision(&self) -> Option<&V> {
        self.decided.as_ref()
    }

    fn decide(&mut self, ctx: &mut Ctx<Self>, v: V) {
        if self.decided.is_none() {
            self.decided = Some(v.clone());
            self.stage = Stage::Idle;
            ctx.output(ConsensusOutput::Decided(v.clone()));
            ctx.broadcast_others(RoMsg::Decide { v });
        }
    }

    fn is_leader(&self, ctx: &Ctx<Self>) -> bool {
        ctx.fd().0 == ctx.me()
    }

    /// Run `f` on hosted register instance `idx`, forwarding sends and
    /// feeding completions back into the stage machine. The inner ABD uses
    /// the Σ component of our (Ω, Σ) detector value.
    fn with_instance(
        &mut self,
        ctx: &mut Ctx<Self>,
        idx: usize,
        f: impl FnOnce(&mut AbdRegister<DBlock<V>>, &mut Ctx<AbdRegister<DBlock<V>>>),
    ) {
        let sigma = ctx.fd().1.clone();
        let mut ictx = Ctx::<AbdRegister<DBlock<V>>>::detached(ctx.me(), ctx.n(), ctx.now(), sigma);
        f(&mut self.regs[idx], &mut ictx);
        for (to, msg) in ictx.take_sends() {
            ctx.send(
                to,
                RoMsg::Reg {
                    instance: idx,
                    inner: msg,
                },
            );
        }
        for out in ictx.take_outputs() {
            self.on_register_output(ctx, idx, out);
        }
    }

    fn on_register_output(&mut self, ctx: &mut Ctx<Self>, idx: usize, out: AbdOutput<DBlock<V>>) {
        let AbdOutput::Completed { resp, .. } = out else {
            return;
        };
        if self.decided.is_some() {
            return;
        }
        match (std::mem::replace(&mut self.stage, Stage::Idle), resp) {
            (Stage::P1Write, AbdResp::WriteOk) if idx == ctx.me().index() => {
                self.stage = Stage::P1Read {
                    j: 0,
                    blocks: vec![None; ctx.n()],
                };
                self.read_register(ctx, 0);
            }
            (Stage::P1Read { j, mut blocks }, AbdResp::ReadOk(block)) if idx == j => {
                self.rival_attempt = self.rival_attempt.max(block.mbal.attempt);
                blocks[j] = Some(block);
                if j + 1 < ctx.n() {
                    self.stage = Stage::P1Read { j: j + 1, blocks };
                    self.read_register(ctx, j + 1);
                } else {
                    self.finish_phase1(ctx, blocks);
                }
            }
            (Stage::P2Write { v }, AbdResp::WriteOk) if idx == ctx.me().index() => {
                self.stage = Stage::P2Read {
                    j: 0,
                    v,
                    beaten: false,
                };
                self.read_register(ctx, 0);
            }
            (Stage::P2Read { j, v, beaten }, AbdResp::ReadOk(block)) if idx == j => {
                self.rival_attempt = self.rival_attempt.max(block.mbal.attempt);
                let beaten = beaten || block.mbal > self.ballot;
                if j + 1 < ctx.n() {
                    self.stage = Stage::P2Read {
                        j: j + 1,
                        v,
                        beaten,
                    };
                    self.read_register(ctx, j + 1);
                } else if beaten {
                    self.retry(ctx);
                } else {
                    self.decide(ctx, v);
                }
            }
            (stage, _) => {
                // Completion that no longer matches the stage (e.g. we
                // abandoned leadership mid-operation): keep the stage.
                self.stage = stage;
            }
        }
    }

    fn finish_phase1(&mut self, ctx: &mut Ctx<Self>, blocks: Vec<Option<DBlock<V>>>) {
        let blocks: Vec<DBlock<V>> = blocks.into_iter().flatten().collect();
        let me = ctx.me();
        if blocks
            .iter()
            .any(|b| b.mbal > self.ballot || (b.mbal == self.ballot && b.mbal.proposer != me))
        {
            self.retry(ctx);
            return;
        }
        let v = blocks
            .iter()
            .filter(|b| b.val.is_some())
            .max_by_key(|b| b.bal)
            .and_then(|b| b.val.clone())
            .or_else(|| self.proposal.clone())
            .expect("leader has a proposal");
        self.stage = Stage::P2Write { v: v.clone() };
        self.my_block = DBlock {
            mbal: self.ballot,
            bal: self.ballot,
            val: Some(v),
        };
        let block = self.my_block.clone();
        let me = ctx.me().index();
        self.with_instance(ctx, me, |reg, ictx| {
            reg.on_invoke(ictx, AbdOp::Write(block))
        });
    }

    fn read_register(&mut self, ctx: &mut Ctx<Self>, j: usize) {
        self.with_instance(ctx, j, |reg, ictx| reg.on_invoke(ictx, AbdOp::Read));
    }

    fn retry(&mut self, ctx: &mut Ctx<Self>) {
        self.stage = Stage::Idle;
        self.drive(ctx);
    }

    fn drive(&mut self, ctx: &mut Ctx<Self>) {
        if self.decided.is_some() || self.proposal.is_none() {
            return;
        }
        if !self.is_leader(ctx) {
            return;
        }
        if !matches!(self.stage, Stage::Idle) {
            return;
        }
        self.attempt = self.attempt.max(self.rival_attempt) + 1;
        self.ballot = Ballot {
            attempt: self.attempt,
            proposer: ctx.me(),
        };
        self.stage = Stage::P1Write;
        // Phase 1 only raises mbal; previously adopted (bal, val) survive.
        self.my_block.mbal = self.ballot;
        let block = self.my_block.clone();
        let me = ctx.me().index();
        self.with_instance(ctx, me, |reg, ictx| {
            reg.on_invoke(ictx, AbdOp::Write(block))
        });
    }
}

impl<V: Clone + Debug + PartialEq> Protocol for RegisterOmegaConsensus<V> {
    type Msg = RoMsg<V>;
    type Output = ConsensusOutput<V>;
    type Inv = V;
    type Fd = (ProcessId, ProcessSet);

    fn on_invoke(&mut self, ctx: &mut Ctx<Self>, v: V) {
        if self.proposal.is_none() {
            self.proposal = Some(v);
        }
        self.drive(ctx);
    }

    fn on_tick(&mut self, ctx: &mut Ctx<Self>) {
        // Tick hosted registers so they can re-check Σ quorum progress.
        for idx in 0..self.regs.len() {
            self.with_instance(ctx, idx, |reg, ictx| reg.on_tick(ictx));
        }
        self.drive(ctx);
    }

    fn on_message(&mut self, ctx: &mut Ctx<Self>, from: ProcessId, msg: RoMsg<V>) {
        match msg {
            RoMsg::Reg { instance, inner } => {
                self.with_instance(ctx, instance, |reg, ictx| reg.on_message(ictx, from, inner));
            }
            RoMsg::Decide { v } => self.decide(ctx, v),
        }
    }

    fn footprint(&self, _me: ProcessId, n: usize, _step: StepKind<'_, Self>) -> Footprint {
        // Hosted ABD instances may message any process on any step, so
        // sends stay opaque; only the decision channel can be narrowed —
        // every `ctx.output` is guarded by `decided.is_none()`.
        let fp = Footprint::local().sends_to_all(n);
        if self.decided.is_some() {
            fp
        } else {
            fp.outputs()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::check_consensus;
    use wfd_detectors::oracles::{OmegaOracle, PairOracle, SigmaOracle};
    use wfd_sim::{FailurePattern, RandomFair, Sim, SimConfig};

    type Ro = RegisterOmegaConsensus<u64>;

    fn run_ro(
        pattern: &FailurePattern,
        proposals: &[u64],
        stabilize: u64,
        seed: u64,
        horizon: u64,
    ) -> wfd_sim::Trace<RoMsg<u64>, ConsensusOutput<u64>> {
        let n = pattern.n();
        let fd = PairOracle::new(
            OmegaOracle::new(pattern, stabilize, seed),
            SigmaOracle::new(pattern, stabilize, seed),
        );
        let mut sim = Sim::new(
            SimConfig::new(n).with_horizon(horizon),
            (0..n).map(|_| Ro::new(n)).collect(),
            pattern.clone(),
            fd,
            RandomFair::new(seed),
        );
        for (p, &v) in proposals.iter().enumerate() {
            sim.schedule_invoke(ProcessId(p), 0, v);
        }
        let correct = pattern.correct();
        sim.run_until(move |_, procs| {
            procs
                .iter()
                .enumerate()
                .all(|(i, p)| !correct.contains(ProcessId(i)) || p.decision().is_some())
        });
        let (_, _, _, trace) = sim.into_parts();
        trace
    }

    #[test]
    fn decides_failure_free() {
        let n = 3;
        let pattern = FailurePattern::failure_free(n);
        let proposals = [21, 22, 23];
        for seed in 0..3 {
            let trace = run_ro(&pattern, &proposals, 60, seed, 60_000);
            let props: Vec<Option<u64>> = proposals.iter().copied().map(Some).collect();
            check_consensus(&trace, &props, &pattern)
                .unwrap_or_else(|v| panic!("seed {seed}: {v}"));
        }
    }

    #[test]
    fn decides_with_majority_crashed() {
        // The full chain Σ → ABD registers → +Ω → consensus, in an
        // environment where majorities are gone.
        let n = 5;
        let pattern = FailurePattern::with_crashes(
            n,
            &[
                (ProcessId(0), 100),
                (ProcessId(1), 150),
                (ProcessId(2), 220),
            ],
        );
        let proposals = [31, 32, 33, 34, 35];
        for seed in 0..3 {
            let trace = run_ro(&pattern, &proposals, 500, seed, 150_000);
            let props: Vec<Option<u64>> = proposals.iter().copied().map(Some).collect();
            check_consensus(&trace, &props, &pattern)
                .unwrap_or_else(|v| panic!("seed {seed}: {v}"));
        }
    }

    #[test]
    fn initial_dblock_is_empty() {
        let b: DBlock<u64> = DBlock::initial();
        assert_eq!(b.mbal, Ballot::ZERO);
        assert_eq!(b.val, None);
    }

    #[test]
    fn accessors() {
        let p: Ro = RegisterOmegaConsensus::new(3);
        assert_eq!(p.decision(), None);
    }
}
