//! Consensus from exactly (Ω, Σ) — live in every environment.
//!
//! The sufficiency half of Corollary 4. The algorithm is a single-decree
//! Paxos in which the two roles of a majority are played by the two
//! component detectors:
//!
//! * **Ω** elects the distinguished proposer: a process only runs prepare/
//!   accept rounds while its Ω module names it, so eventually exactly one
//!   correct proposer remains and livelock ends.
//! * **Σ** supplies the quorums: a phase completes when the responders
//!   cover a quorum currently output by Σ. Safety needs only that any two
//!   quorums intersect (Σ's intersection property, replacing
//!   majority-intersection); liveness needs that some quorum is eventually
//!   all-correct (Σ's completeness).
//!
//! Ballots are `(attempt, process)` pairs, so ballots of distinct
//! proposers never tie. A stalled proposer retries with a doubled patience
//! so that transient Ω disagreement cannot livelock the system forever.

use crate::spec::ConsensusOutput;
use std::fmt::Debug;
use wfd_sim::{Ctx, Footprint, ProcessId, ProcessSet, Protocol, StepKind};

/// A Paxos ballot: `(attempt, proposer)`, ordered lexicographically.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ballot {
    /// Attempt counter of the proposer.
    pub attempt: u64,
    /// The proposer that owns this ballot.
    pub proposer: ProcessId,
}

impl Ballot {
    /// The ballot smaller than every real ballot.
    pub const ZERO: Ballot = Ballot {
        attempt: 0,
        proposer: ProcessId(0),
    };
}

/// Messages of the (Ω, Σ) consensus protocol.
#[derive(Clone, Debug, PartialEq)]
pub enum PaxosMsg<V> {
    /// Phase-1a: reserve ballot `bal`.
    Prepare {
        /// Ballot being prepared.
        bal: Ballot,
    },
    /// Phase-1b: promise for `bal`, carrying the acceptor's
    /// highest-ballot accepted value, if any.
    Promise {
        /// Ballot the promise answers.
        bal: Ballot,
        /// The acceptor's accepted `(ballot, value)`, if any.
        accepted: Option<(Ballot, V)>,
    },
    /// Phase-2a: accept `v` at ballot `bal`.
    Accept {
        /// Ballot of the acceptance.
        bal: Ballot,
        /// The proposed value.
        v: V,
    },
    /// Phase-2b: the acceptor accepted `bal`.
    Accepted {
        /// Ballot that was accepted.
        bal: Ballot,
    },
    /// Rejection: the acceptor has promised a higher ballot. Lets a stale
    /// proposer leapfrog immediately instead of timing out.
    Nack {
        /// The ballot that was refused.
        bal: Ballot,
        /// The acceptor's current promise.
        promised: Ballot,
    },
    /// A decision, flooded so every correct process returns. Carries the
    /// quorum whose accepts produced it, so layered protocols (e.g. the
    /// SMR register of Corollary 3) can report causal participants.
    Decide {
        /// The decided value.
        v: V,
        /// The acceptor quorum behind the decision (plus the proposer).
        quorum: ProcessSet,
    },
}

#[derive(Clone, Debug, PartialEq)]
enum ProposerPhase<V> {
    Idle,
    Preparing {
        bal: Ballot,
        responders: ProcessSet,
        best_accepted: Option<(Ballot, V)>,
    },
    Accepting {
        bal: Ballot,
        v: V,
        responders: ProcessSet,
    },
}

/// One process of the (Ω, Σ) consensus algorithm.
///
/// Invoke with the proposal value; the process outputs
/// [`ConsensusOutput::Decided`] exactly once. The failure detector value is
/// the pair `(Ω leader, Σ quorum)`.
#[derive(Clone, Debug, PartialEq)]
pub struct OmegaSigmaConsensus<V> {
    // Acceptor state.
    promised: Ballot,
    accepted: Option<(Ballot, V)>,
    // Proposer state.
    proposal: Option<V>,
    phase: ProposerPhase<V>,
    attempt: u64,
    /// Own steps since the current proposer phase began.
    phase_age: u64,
    /// Give up on a phase after this many own steps and retry higher.
    patience: u64,
    decided: Option<V>,
    /// The quorum that produced the decision (from our own accept phase,
    /// or carried by the Decide flood).
    decision_quorum: Option<ProcessSet>,
}

impl<V: Clone + Debug + PartialEq> OmegaSigmaConsensus<V> {
    /// Create a consensus process (propose later via invocation).
    pub fn new() -> Self {
        OmegaSigmaConsensus {
            promised: Ballot::ZERO,
            accepted: None,
            proposal: None,
            phase: ProposerPhase::Idle,
            attempt: 0,
            phase_age: 0,
            patience: 32,
            decided: None,
            decision_quorum: None,
        }
    }

    /// The decision this process returned, if any.
    pub fn decision(&self) -> Option<&V> {
        self.decided.as_ref()
    }

    /// The quorum behind the decision, if decided.
    pub fn decision_quorum(&self) -> Option<&ProcessSet> {
        self.decision_quorum.as_ref()
    }

    /// Whether this process has proposed yet.
    pub fn has_proposed(&self) -> bool {
        self.proposal.is_some()
    }

    fn decide(&mut self, ctx: &mut Ctx<Self>, v: V, quorum: ProcessSet) {
        if self.decided.is_none() {
            self.decided = Some(v.clone());
            self.decision_quorum = Some(quorum.clone());
            self.phase = ProposerPhase::Idle;
            ctx.output(ConsensusOutput::Decided(v.clone()));
            ctx.broadcast_others(PaxosMsg::Decide { v, quorum });
        }
    }

    fn is_leader(&self, ctx: &Ctx<Self>) -> bool {
        ctx.fd().0 == ctx.me()
    }

    fn quorum_satisfied(&self, responders: &ProcessSet, ctx: &Ctx<Self>) -> bool {
        let quorum = &ctx.fd().1;
        !quorum.is_empty() && quorum.is_subset(responders)
    }

    fn start_round(&mut self, ctx: &mut Ctx<Self>) {
        self.attempt += 1;
        self.phase_age = 0;
        let bal = Ballot {
            attempt: self.attempt,
            proposer: ctx.me(),
        };
        self.phase = ProposerPhase::Preparing {
            bal,
            responders: ProcessSet::new(),
            best_accepted: None,
        };
        ctx.broadcast(PaxosMsg::Prepare { bal });
    }

    /// Drive the proposer role: start, advance, retry or abandon rounds,
    /// as dictated by Ω and Σ at this step.
    fn drive(&mut self, ctx: &mut Ctx<Self>) {
        if self.decided.is_some() || self.proposal.is_none() {
            return;
        }
        if !self.is_leader(ctx) {
            // Ω does not name us: abandon the proposer role (acceptor
            // state, which is what safety rests on, stays).
            self.phase = ProposerPhase::Idle;
            return;
        }
        match std::mem::replace(&mut self.phase, ProposerPhase::Idle) {
            ProposerPhase::Idle => self.start_round(ctx),
            ProposerPhase::Preparing {
                bal,
                responders,
                best_accepted,
            } => {
                if self.quorum_satisfied(&responders, ctx) {
                    let v = best_accepted
                        .map(|(_, v)| v)
                        .unwrap_or_else(|| self.proposal.clone().expect("proposer has proposal"));
                    self.phase_age = 0;
                    self.phase = ProposerPhase::Accepting {
                        bal,
                        v: v.clone(),
                        responders: ProcessSet::new(),
                    };
                    ctx.broadcast(PaxosMsg::Accept { bal, v });
                } else {
                    self.phase = ProposerPhase::Preparing {
                        bal,
                        responders,
                        best_accepted,
                    };
                    self.age_and_maybe_retry(ctx);
                }
            }
            ProposerPhase::Accepting { bal, v, responders } => {
                if self.quorum_satisfied(&responders, ctx) {
                    let mut quorum = responders.clone();
                    quorum.insert(ctx.me());
                    self.decide(ctx, v, quorum);
                } else {
                    self.phase = ProposerPhase::Accepting { bal, v, responders };
                    self.age_and_maybe_retry(ctx);
                }
            }
        }
    }

    fn age_and_maybe_retry(&mut self, ctx: &mut Ctx<Self>) {
        self.phase_age += 1;
        if self.phase_age > self.patience {
            // Grow patience (capped) so competing proposers back off
            // rather than duel forever while Ω is still unstable; ballot
            // races are resolved promptly by nacks, not by this timeout.
            self.patience = self.patience.saturating_mul(2).min(1_024);
            self.start_round(ctx);
        }
    }
}

impl<V: Clone + Debug + PartialEq> Default for OmegaSigmaConsensus<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V: Clone + Debug + PartialEq> Protocol for OmegaSigmaConsensus<V> {
    type Msg = PaxosMsg<V>;
    type Output = ConsensusOutput<V>;
    type Inv = V;
    type Fd = (ProcessId, ProcessSet);

    fn on_invoke(&mut self, ctx: &mut Ctx<Self>, v: V) {
        if self.proposal.is_none() {
            self.proposal = Some(v);
        }
        self.drive(ctx);
    }

    fn on_tick(&mut self, ctx: &mut Ctx<Self>) {
        self.drive(ctx);
    }

    fn on_message(&mut self, ctx: &mut Ctx<Self>, from: ProcessId, msg: PaxosMsg<V>) {
        if let Some(v) = self.decided.clone() {
            // Help laggards: answer any traffic with the decision.
            if !matches!(msg, PaxosMsg::Decide { .. }) {
                let quorum = self.decision_quorum.clone().unwrap_or_default();
                ctx.send(from, PaxosMsg::Decide { v, quorum });
            }
            return;
        }
        match msg {
            PaxosMsg::Prepare { bal } => {
                if bal > self.promised {
                    self.promised = bal;
                    ctx.send(
                        from,
                        PaxosMsg::Promise {
                            bal,
                            accepted: self.accepted.clone(),
                        },
                    );
                } else {
                    ctx.send(
                        from,
                        PaxosMsg::Nack {
                            bal,
                            promised: self.promised,
                        },
                    );
                }
            }
            PaxosMsg::Accept { bal, v } => {
                if bal >= self.promised {
                    self.promised = bal;
                    self.accepted = Some((bal, v));
                    ctx.send(from, PaxosMsg::Accepted { bal });
                } else {
                    ctx.send(
                        from,
                        PaxosMsg::Nack {
                            bal,
                            promised: self.promised,
                        },
                    );
                }
            }
            PaxosMsg::Promise { bal, accepted } => {
                if let ProposerPhase::Preparing {
                    bal: cur,
                    responders,
                    best_accepted,
                } = &mut self.phase
                {
                    if bal == *cur {
                        responders.insert(from);
                        if let Some((abal, av)) = accepted {
                            let better = match best_accepted {
                                Some((b, _)) => abal > *b,
                                None => true,
                            };
                            if better {
                                *best_accepted = Some((abal, av));
                            }
                        }
                    }
                }
                self.drive(ctx);
            }
            PaxosMsg::Accepted { bal } => {
                if let ProposerPhase::Accepting {
                    bal: cur,
                    responders,
                    ..
                } = &mut self.phase
                {
                    if bal == *cur {
                        responders.insert(from);
                    }
                }
                self.drive(ctx);
            }
            PaxosMsg::Nack { bal, promised } => {
                let ours = match &self.phase {
                    ProposerPhase::Preparing { bal: cur, .. } => *cur == bal,
                    ProposerPhase::Accepting { bal: cur, .. } => *cur == bal,
                    ProposerPhase::Idle => false,
                };
                if ours && self.is_leader(ctx) {
                    // Jump past the competing ballot and retry now.
                    self.attempt = self.attempt.max(promised.attempt);
                    self.start_round(ctx);
                } else {
                    self.drive(ctx);
                }
            }
            PaxosMsg::Decide { v, quorum } => self.decide(ctx, v, quorum),
        }
    }

    fn footprint(&self, _me: ProcessId, n: usize, _step: StepKind<'_, Self>) -> Footprint {
        // Paxos traffic (prepare/promise/accept/nack/decide) may target
        // any process on any step; only the output channel narrows —
        // `decide` outputs exactly once, guarded by `decided.is_none()`.
        let fp = Footprint::local().sends_to_all(n);
        if self.decided.is_some() {
            fp
        } else {
            fp.outputs()
        }
    }

    fn props() -> &'static [&'static str] {
        &["all-decided", "some-decided"]
    }

    /// `all-decided`: every correct process holds a decision —
    /// `F "all-decided"` is consensus termination, checkable over all
    /// fair runs by the liveness layer. `some-decided` marks the first
    /// decision (useful for `U`-shaped properties).
    fn eval_prop(prop: usize, procs: &[Self], view: &wfd_sim::PropView<'_>) -> bool {
        let mut correct = procs
            .iter()
            .zip(view.correct)
            .filter_map(|(p, &c)| c.then_some(p));
        match prop {
            0 => correct.all(|p| p.decided.is_some()),
            _ => correct.any(|p| p.decided.is_some()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::check_consensus;
    use wfd_detectors::oracles::{OmegaOracle, PairOracle, SigmaOracle};
    use wfd_sim::{
        Adversarial, Environment, FailurePattern, PatternSampler, RandomFair, Scheduler, Sim,
        SimConfig, Trace,
    };

    type Cons = OmegaSigmaConsensus<u64>;
    type ConsTrace = Trace<PaxosMsg<u64>, ConsensusOutput<u64>>;

    fn run_consensus<S: Scheduler>(
        pattern: &FailurePattern,
        proposals: &[u64],
        stabilize: u64,
        seed: u64,
        sched: S,
        horizon: u64,
    ) -> ConsTrace {
        let n = pattern.n();
        let fd = PairOracle::new(
            OmegaOracle::new(pattern, stabilize, seed).with_jitter(stabilize / 2),
            SigmaOracle::new(pattern, stabilize, seed).with_jitter(stabilize / 2),
        );
        let mut sim = Sim::new(
            SimConfig::new(n).with_horizon(horizon),
            (0..n).map(|_| Cons::new()).collect(),
            pattern.clone(),
            fd,
            sched,
        );
        for (p, &v) in proposals.iter().enumerate() {
            sim.schedule_invoke(ProcessId(p), 0, v);
        }
        sim.run_until(|trace, procs| {
            let correct = pattern.correct();
            procs
                .iter()
                .enumerate()
                .all(|(i, p)| !correct.contains(ProcessId(i)) || p.decision().is_some())
                && !trace.is_empty()
        });
        let (_, _, _, trace) = sim.into_parts();
        trace
    }

    #[test]
    fn decides_failure_free() {
        let n = 3;
        let pattern = FailurePattern::failure_free(n);
        let proposals = vec![3, 1, 2];
        for seed in 0..5 {
            let trace = run_consensus(
                &pattern,
                &proposals,
                50,
                seed,
                RandomFair::new(seed),
                30_000,
            );
            let props: Vec<Option<u64>> = proposals.iter().copied().map(Some).collect();
            let stats = check_consensus(&trace, &props, &pattern)
                .unwrap_or_else(|v| panic!("seed {seed}: {v}"));
            assert!(stats.decision.is_some());
        }
    }

    #[test]
    fn decides_with_majority_crashed() {
        // The headline: consensus in an environment where f ≥ ⌈n/2⌉ —
        // impossible for majority-based algorithms, fine for (Ω, Σ).
        let n = 5;
        let pattern = FailurePattern::with_crashes(
            n,
            &[
                (ProcessId(0), 100),
                (ProcessId(1), 200),
                (ProcessId(2), 300),
            ],
        );
        let proposals = vec![10, 11, 12, 13, 14];
        for seed in 0..5 {
            let trace = run_consensus(
                &pattern,
                &proposals,
                600,
                seed,
                RandomFair::new(seed),
                60_000,
            );
            let props: Vec<Option<u64>> = proposals.iter().copied().map(Some).collect();
            check_consensus(&trace, &props, &pattern)
                .unwrap_or_else(|v| panic!("seed {seed}: {v}"));
        }
    }

    #[test]
    fn safe_and_live_under_adversarial_schedule() {
        let n = 4;
        let pattern = FailurePattern::with_crashes(n, &[(ProcessId(0), 400)]);
        let proposals = vec![1, 2, 3, 4];
        let trace = run_consensus(&pattern, &proposals, 800, 3, Adversarial::new(17), 100_000);
        let props: Vec<Option<u64>> = proposals.iter().copied().map(Some).collect();
        check_consensus(&trace, &props, &pattern).unwrap_or_else(|v| panic!("{v}"));
    }

    #[test]
    fn property_agreement_and_validity_across_random_environments() {
        let n = 4;
        let mut sampler = PatternSampler::new(n, Environment::AtLeastOneCorrect, 5);
        for case in 0..10u64 {
            let pattern = sampler.sample(500);
            let proposals: Vec<u64> = (0..n as u64).map(|i| 100 + i).collect();
            let trace = run_consensus(
                &pattern,
                &proposals,
                800,
                case,
                RandomFair::new(case * 7 + 1),
                80_000,
            );
            let props: Vec<Option<u64>> = proposals.iter().copied().map(Some).collect();
            check_consensus(&trace, &props, &pattern)
                .unwrap_or_else(|v| panic!("case {case} pattern {pattern}: {v}"));
        }
    }

    #[test]
    fn decision_is_sticky_and_single() {
        let n = 3;
        let pattern = FailurePattern::failure_free(n);
        let trace = run_consensus(&pattern, &[7, 7, 7], 20, 1, RandomFair::new(1), 30_000);
        // Unanimous proposals must decide the proposed value.
        for (_, _, out) in trace.outputs() {
            assert_eq!(out, &ConsensusOutput::Decided(7));
        }
        let props = vec![Some(7), Some(7), Some(7)];
        check_consensus(&trace, &props, &pattern).expect("ok");
    }

    #[test]
    fn ballots_order_by_attempt_then_proposer() {
        let a = Ballot {
            attempt: 1,
            proposer: ProcessId(2),
        };
        let b = Ballot {
            attempt: 2,
            proposer: ProcessId(0),
        };
        let c = Ballot {
            attempt: 1,
            proposer: ProcessId(3),
        };
        assert!(a < b);
        assert!(a < c);
        assert!(Ballot::ZERO < a);
    }

    #[test]
    fn accessors_before_and_after_proposal() {
        let mut p: Cons = OmegaSigmaConsensus::new();
        assert!(!p.has_proposed());
        assert_eq!(p.decision(), None);
        let mut ctx =
            wfd_sim::Ctx::<Cons>::detached(ProcessId(0), 3, 0, (ProcessId(1), ProcessSet::full(3)));
        p.on_invoke(&mut ctx, 5);
        assert!(p.has_proposed());
    }
}
