//! **Figure 2 of the paper**: solving quittable consensus with Ψ.
//!
//! ```text
//! Procedure PROPOSE(v):
//! 1  while Ψp = ⊥ do nop
//! 2  if Ψp ∈ {green, red}
//! 3    then                  { henceforth Ψ behaves like FS }
//! 4      return Q
//! 5    else                  { henceforth Ψ behaves like (Ω, Σ) }
//! 6      d := CONSPROPOSE(v) { (Ω, Σ)-based consensus }
//! 7      return d
//! ```
//!
//! Note line 2: the FS branch returns `Q` as soon as Ψ *reveals its FS
//! mode* — the signal's colour is irrelevant, because Ψ may choose the FS
//! behaviour only if a failure already occurred, so `Q` is justified
//! either way. The consensus branch hosts the
//! [`OmegaSigmaConsensus`] of `wfd-consensus`, feeding it the (Ω, Σ)
//! component of Ψ's output.

use crate::spec::QcDecision;
use std::fmt::Debug;
use wfd_consensus::omega_sigma::{OmegaSigmaConsensus, PaxosMsg};
use wfd_consensus::ConsensusOutput;
use wfd_detectors::PsiValue;
use wfd_sim::{Ctx, Footprint, ProcessId, ProcessSet, Protocol, StepKind};

/// One process of the Figure 2 algorithm. The failure detector value is
/// [`PsiValue`].
#[derive(Clone, Debug)]
pub struct PsiQc<V: Clone + Debug + PartialEq> {
    inner: OmegaSigmaConsensus<V>,
    proposal: Option<V>,
    proposed_inner: bool,
    decided: Option<QcDecision<V>>,
}

impl<V: Clone + Debug + PartialEq> PsiQc<V> {
    /// Create a QC process (propose later via invocation).
    pub fn new() -> Self {
        PsiQc {
            inner: OmegaSigmaConsensus::new(),
            proposal: None,
            proposed_inner: false,
            decided: None,
        }
    }

    /// The decision this process returned, if any.
    pub fn decision(&self) -> Option<&QcDecision<V>> {
        self.decided.as_ref()
    }

    fn decide(&mut self, ctx: &mut Ctx<Self>, d: QcDecision<V>) {
        if self.decided.is_none() {
            self.decided = Some(d.clone());
            ctx.output(ConsensusOutput::Decided(d));
        }
    }

    /// The (Ω, Σ) value handed to the hosted consensus: Ψ's component if
    /// available, or an inert placeholder while Ψ is still ⊥ (a foreign
    /// leader and an empty quorum, so the inner proposer can neither start
    /// nor finish a round — acceptor duties are unaffected).
    fn inner_fd(&self, ctx: &Ctx<Self>) -> (ProcessId, ProcessSet) {
        match ctx.fd() {
            PsiValue::OmegaSigma(os) => (os.leader, os.quorum.clone()),
            _ => (
                ProcessId((ctx.me().index() + 1) % ctx.n()),
                ProcessSet::new(),
            ),
        }
    }

    fn with_inner(
        &mut self,
        ctx: &mut Ctx<Self>,
        f: impl FnOnce(&mut OmegaSigmaConsensus<V>, &mut Ctx<OmegaSigmaConsensus<V>>),
    ) {
        let fd = self.inner_fd(ctx);
        let mut ictx = Ctx::<OmegaSigmaConsensus<V>>::detached(ctx.me(), ctx.n(), ctx.now(), fd);
        f(&mut self.inner, &mut ictx);
        for (to, msg) in ictx.take_sends() {
            ctx.send(to, msg);
        }
        for out in ictx.take_outputs() {
            let ConsensusOutput::Decided(v) = out;
            self.decide(ctx, QcDecision::Value(v));
        }
    }

    /// Lines 1–6 of Figure 2, re-evaluated on every step.
    fn drive(&mut self, ctx: &mut Ctx<Self>) {
        if self.decided.is_some() || self.proposal.is_none() {
            return;
        }
        match ctx.fd().clone() {
            PsiValue::Bot => {}                                    // line 1: nop
            PsiValue::Fs(_) => self.decide(ctx, QcDecision::Quit), // lines 2–4
            PsiValue::OmegaSigma(_) => {
                // lines 5–6: run the (Ω, Σ) consensus on our proposal.
                if !self.proposed_inner {
                    self.proposed_inner = true;
                    let v = self.proposal.clone().expect("proposal set");
                    self.with_inner(ctx, |inner, ictx| inner.on_invoke(ictx, v));
                } else {
                    self.with_inner(ctx, |inner, ictx| inner.on_tick(ictx));
                }
            }
        }
    }
}

impl<V: Clone + Debug + PartialEq> Default for PsiQc<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V: Clone + Debug + PartialEq> Protocol for PsiQc<V> {
    type Msg = PaxosMsg<V>;
    type Output = ConsensusOutput<QcDecision<V>>;
    type Inv = V;
    type Fd = PsiValue;

    fn on_invoke(&mut self, ctx: &mut Ctx<Self>, v: V) {
        if self.proposal.is_none() {
            self.proposal = Some(v);
        }
        self.drive(ctx);
    }

    fn on_tick(&mut self, ctx: &mut Ctx<Self>) {
        self.drive(ctx);
    }

    fn on_message(&mut self, ctx: &mut Ctx<Self>, from: ProcessId, msg: PaxosMsg<V>) {
        // Consensus traffic is handled in every mode: Ψ's global-mode
        // guarantee means a process that switched to FS will never be
        // needed for a decision, but replying is harmless and keeps
        // laggards moving.
        self.with_inner(ctx, |inner, ictx| inner.on_message(ictx, from, msg));
        self.drive(ctx);
    }

    fn footprint(&self, _me: ProcessId, n: usize, _step: StepKind<'_, Self>) -> Footprint {
        // The hosted (Ω, Σ) consensus may message anyone on any step;
        // `decide` outputs exactly once (guarded by `decided.is_none()`).
        let fp = Footprint::local().sends_to_all(n);
        if self.decided.is_some() {
            fp
        } else {
            fp.outputs()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::check_qc;
    use wfd_detectors::oracles::{PsiMode, PsiOracle};
    use wfd_sim::{FailurePattern, RandomFair, Sim, SimConfig, Trace};

    type Qc = PsiQc<u64>;
    type QcTrace = Trace<PaxosMsg<u64>, ConsensusOutput<QcDecision<u64>>>;

    fn run_qc(
        pattern: &FailurePattern,
        mode: PsiMode,
        switch_at: u64,
        proposals: &[u64],
        seed: u64,
        horizon: u64,
    ) -> QcTrace {
        let n = pattern.n();
        let psi = PsiOracle::new(pattern, mode, switch_at, 40, seed);
        let mut sim = Sim::new(
            SimConfig::new(n).with_horizon(horizon),
            (0..n).map(|_| Qc::new()).collect(),
            pattern.clone(),
            psi,
            RandomFair::new(seed),
        );
        for (p, &v) in proposals.iter().enumerate() {
            sim.schedule_invoke(ProcessId(p), 0, v);
        }
        let correct = pattern.correct();
        sim.run_until(move |_, procs| {
            procs
                .iter()
                .enumerate()
                .all(|(i, p)| !correct.contains(ProcessId(i)) || p.decision().is_some())
        });
        let (_, _, _, trace) = sim.into_parts();
        trace
    }

    #[test]
    fn consensus_mode_decides_a_proposed_value() {
        let n = 3;
        let pattern = FailurePattern::failure_free(n);
        let proposals = [4, 5, 6];
        for seed in 0..5 {
            let trace = run_qc(&pattern, PsiMode::OmegaSigma, 60, &proposals, seed, 60_000);
            let props: Vec<Option<u64>> = proposals.iter().copied().map(Some).collect();
            let stats =
                check_qc(&trace, &props, &pattern).unwrap_or_else(|v| panic!("seed {seed}: {v}"));
            assert!(
                matches!(stats.decision, Some(QcDecision::Value(_))),
                "consensus mode must not decide Q"
            );
        }
    }

    #[test]
    fn fs_mode_decides_quit() {
        let n = 3;
        let pattern = FailurePattern::failure_free(n).with_crash(ProcessId(2), 50);
        let proposals = [1, 0, 1];
        for seed in 0..5 {
            let trace = run_qc(&pattern, PsiMode::Fs, 80, &proposals, seed, 30_000);
            let props: Vec<Option<u64>> = proposals.iter().copied().map(Some).collect();
            let stats =
                check_qc(&trace, &props, &pattern).unwrap_or_else(|v| panic!("seed {seed}: {v}"));
            assert_eq!(stats.decision, Some(QcDecision::Quit));
        }
    }

    #[test]
    fn consensus_mode_works_even_with_failures() {
        // Failures do not force Q: Ψ may still choose (Ω, Σ) mode and
        // processes then agree on a proposed value.
        let n = 4;
        let pattern = FailurePattern::with_crashes(n, &[(ProcessId(0), 100)]);
        let proposals = [9, 8, 7, 6];
        let trace = run_qc(&pattern, PsiMode::OmegaSigma, 300, &proposals, 3, 80_000);
        let props: Vec<Option<u64>> = proposals.iter().copied().map(Some).collect();
        let stats = check_qc(&trace, &props, &pattern).unwrap_or_else(|v| panic!("{v}"));
        assert!(matches!(stats.decision, Some(QcDecision::Value(_))));
    }

    #[test]
    fn fs_mode_with_majority_crashed_still_quits() {
        let n = 5;
        let pattern = FailurePattern::with_crashes(
            n,
            &[(ProcessId(0), 20), (ProcessId(1), 40), (ProcessId(2), 60)],
        );
        let proposals = [1, 1, 1, 0, 0];
        let trace = run_qc(&pattern, PsiMode::Fs, 100, &proposals, 7, 30_000);
        let props: Vec<Option<u64>> = proposals.iter().copied().map(Some).collect();
        let stats = check_qc(&trace, &props, &pattern).unwrap_or_else(|v| panic!("{v}"));
        assert_eq!(stats.decision, Some(QcDecision::Quit));
    }

    #[test]
    fn no_decision_while_psi_is_bot() {
        let n = 2;
        let pattern = FailurePattern::failure_free(n);
        // Switch far beyond the horizon: everyone must keep nop-ing.
        let psi = PsiOracle::new(&pattern, PsiMode::OmegaSigma, 1_000_000, 0, 1);
        let mut sim = Sim::new(
            SimConfig::new(n).with_horizon(5_000),
            vec![Qc::new(), Qc::new()],
            pattern,
            psi,
            RandomFair::new(1),
        );
        sim.schedule_invoke(ProcessId(0), 0, 1);
        sim.schedule_invoke(ProcessId(1), 0, 0);
        sim.run();
        assert_eq!(sim.trace().outputs().count(), 0, "⊥ phase must block QC");
    }

    #[test]
    fn accessors() {
        let p: Qc = PsiQc::new();
        assert_eq!(p.decision(), None);
    }
}
