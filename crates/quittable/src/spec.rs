//! The quittable consensus problem and its trace checker.
//!
//! Paper §5 — each process invokes `PROPOSE(v)` which returns a value in
//! `{0, 1, Q}` (generalised here to any value type plus `Q`):
//!
//! * **Termination**: if every correct process proposes, every correct
//!   process eventually returns.
//! * **Uniform Agreement**: no two processes return different values.
//! * **Validity**: (a) a non-`Q` return was proposed by some process;
//!   (b) a `Q` return is allowed *only if a failure previously occurred*.
//!
//! Note the asymmetry the paper stresses: unlike NBAC's `Abort`, the `Q`
//! decision is never forced — it is an option that is legitimate exactly
//! when the failure pattern has a crash before the decision.

use std::collections::BTreeMap;
use std::fmt::{self, Debug};
use wfd_consensus::ConsensusOutput;
use wfd_sim::{FailurePattern, ProcessId, Time, Trace};

/// What a QC invocation returns: a proposed value or `Q`.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum QcDecision<V> {
    /// An ordinary consensus decision on a proposed value.
    Value(V),
    /// The quit decision (legitimate only after a failure).
    Quit,
}

impl<V: fmt::Display> fmt::Display for QcDecision<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QcDecision::Value(v) => write!(f, "{v}"),
            QcDecision::Quit => f.write_str("Q"),
        }
    }
}

/// A violation of the QC specification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QcViolation<V> {
    /// Two processes decided differently.
    Agreement {
        /// First decider and value.
        p: (ProcessId, QcDecision<V>),
        /// Conflicting decider and value.
        q: (ProcessId, QcDecision<V>),
    },
    /// A decided non-`Q` value was never proposed (Validity a).
    UnproposedValue {
        /// The decider.
        p: ProcessId,
        /// The unproposed value.
        value: V,
    },
    /// `Q` was decided although no failure had occurred by then
    /// (Validity b).
    UnjustifiedQuit {
        /// The decider.
        p: ProcessId,
        /// Decision time.
        t: Time,
    },
    /// A process decided more than once.
    Integrity {
        /// The repeat offender.
        p: ProcessId,
    },
    /// A correct process that proposed never decided.
    Termination {
        /// The starved process.
        p: ProcessId,
    },
}

impl<V: Debug> fmt::Display for QcViolation<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QcViolation::Agreement { p, q } => write!(
                f,
                // wfd-lint: allow(d4-debug-format, violation text is for humans; checkers compare structured fields and V is only Debug-bound)
                "QC agreement violated: {} decided {:?} but {} decided {:?}",
                p.0, p.1, q.0, q.1
            ),
            QcViolation::UnproposedValue { p, value } => {
                write!(
                    f,
                    // wfd-lint: allow(d4-debug-format, violation text is for humans; checkers compare structured fields and V is only Debug-bound)
                    "QC validity(a) violated: {p} decided unproposed {value:?}"
                )
            }
            QcViolation::UnjustifiedQuit { p, t } => write!(
                f,
                "QC validity(b) violated: {p} decided Q at {t} before any failure"
            ),
            QcViolation::Integrity { p } => {
                write!(f, "QC integrity violated: {p} decided more than once")
            }
            QcViolation::Termination { p } => write!(
                f,
                "QC termination violated: correct {p} proposed but never decided"
            ),
        }
    }
}

impl<V: Debug> std::error::Error for QcViolation<V> {}

/// Diagnostics from a successful QC check.
#[derive(Clone, Debug)]
pub struct QcStats<V> {
    /// The common decision, if anyone decided.
    pub decision: Option<QcDecision<V>>,
    /// Per process: decision time.
    pub decision_times: BTreeMap<ProcessId, Time>,
}

/// Check a run of a QC protocol (outputs are
/// `ConsensusOutput<QcDecision<V>>`).
///
/// # Errors
///
/// Returns the first violation found.
pub fn check_qc<M, V>(
    trace: &Trace<M, ConsensusOutput<QcDecision<V>>>,
    proposals: &[Option<V>],
    pattern: &FailurePattern,
) -> Result<QcStats<V>, QcViolation<V>>
where
    M: Clone + Debug,
    V: Clone + Debug + PartialEq,
{
    let mut decision_times: BTreeMap<ProcessId, Time> = BTreeMap::new();
    let mut first: Option<(ProcessId, QcDecision<V>)> = None;

    for (t, p, out) in trace.outputs() {
        let ConsensusOutput::Decided(d) = out;
        if decision_times.contains_key(&p) {
            return Err(QcViolation::Integrity { p });
        }
        decision_times.insert(p, t);
        match d {
            QcDecision::Value(v) => {
                if !proposals.iter().flatten().any(|prop| prop == v) {
                    return Err(QcViolation::UnproposedValue {
                        p,
                        value: v.clone(),
                    });
                }
            }
            QcDecision::Quit => {
                if pattern.first_crash_time().is_none_or(|fc| t < fc) {
                    return Err(QcViolation::UnjustifiedQuit { p, t });
                }
            }
        }
        match &first {
            None => first = Some((p, d.clone())),
            Some((fp, fd)) => {
                if fd != d {
                    return Err(QcViolation::Agreement {
                        p: (*fp, fd.clone()),
                        q: (p, d.clone()),
                    });
                }
            }
        }
    }

    for p in pattern.correct().iter() {
        if proposals[p.index()].is_some() && !decision_times.contains_key(&p) {
            return Err(QcViolation::Termination { p });
        }
    }

    Ok(QcStats {
        decision: first.map(|(_, d)| d),
        decision_times,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfd_sim::EventKind;

    fn trace_with(
        n: usize,
        decisions: &[(Time, usize, QcDecision<u64>)],
    ) -> Trace<(), ConsensusOutput<QcDecision<u64>>> {
        let mut t = Trace::new(n);
        for (time, pid, d) in decisions {
            t.push(
                *time,
                ProcessId(*pid),
                EventKind::Output(ConsensusOutput::Decided(d.clone())),
            );
        }
        t
    }

    #[test]
    fn value_decision_passes() {
        let trace = trace_with(
            2,
            &[(3, 0, QcDecision::Value(1)), (5, 1, QcDecision::Value(1))],
        );
        let props = vec![Some(1), Some(0)];
        let stats = check_qc(&trace, &props, &FailurePattern::failure_free(2)).expect("valid");
        assert_eq!(stats.decision, Some(QcDecision::Value(1)));
    }

    #[test]
    fn quit_after_failure_passes() {
        let pattern = FailurePattern::failure_free(3).with_crash(ProcessId(2), 4);
        let trace = trace_with(3, &[(10, 0, QcDecision::Quit), (12, 1, QcDecision::Quit)]);
        let props = vec![Some(0), Some(1), Some(0)];
        check_qc(&trace, &props, &pattern).expect("Q after a crash is legitimate");
    }

    #[test]
    fn quit_without_failure_is_caught() {
        let trace = trace_with(2, &[(10, 0, QcDecision::Quit)]);
        let props = vec![Some(0), Some(1)];
        assert!(matches!(
            check_qc(&trace, &props, &FailurePattern::failure_free(2)),
            Err(QcViolation::UnjustifiedQuit { t: 10, .. })
        ));
    }

    #[test]
    fn quit_before_failure_is_caught() {
        let pattern = FailurePattern::failure_free(2).with_crash(ProcessId(1), 50);
        let trace = trace_with(2, &[(10, 0, QcDecision::Quit)]);
        let props = vec![Some(0), Some(1)];
        assert!(matches!(
            check_qc(&trace, &props, &pattern),
            Err(QcViolation::UnjustifiedQuit { .. })
        ));
    }

    #[test]
    fn mixed_value_and_quit_is_disagreement() {
        let pattern = FailurePattern::failure_free(2).with_crash(ProcessId(0), 1);
        let trace = trace_with(2, &[(5, 0, QcDecision::Value(0)), (6, 1, QcDecision::Quit)]);
        let props = vec![Some(0), Some(1)];
        assert!(matches!(
            check_qc(&trace, &props, &pattern),
            Err(QcViolation::Agreement { .. })
        ));
    }

    #[test]
    fn unproposed_value_is_caught() {
        let trace = trace_with(2, &[(5, 0, QcDecision::Value(42))]);
        let props = vec![Some(0), Some(1)];
        assert!(matches!(
            check_qc(&trace, &props, &FailurePattern::failure_free(2)),
            Err(QcViolation::UnproposedValue { value: 42, .. })
        ));
    }

    #[test]
    fn termination_is_enforced_for_correct_proposers() {
        let trace = trace_with(2, &[(5, 0, QcDecision::Value(1))]);
        let props = vec![Some(1), Some(1)];
        assert!(matches!(
            check_qc(&trace, &props, &FailurePattern::failure_free(2)),
            Err(QcViolation::Termination { p }) if p == ProcessId(1)
        ));
    }

    #[test]
    fn double_decision_is_caught() {
        let trace = trace_with(
            1,
            &[(1, 0, QcDecision::Value(0)), (2, 0, QcDecision::Value(0))],
        );
        let props = vec![Some(0)];
        assert!(matches!(
            check_qc(&trace, &props, &FailurePattern::failure_free(1)),
            Err(QcViolation::Integrity { .. })
        ));
    }

    #[test]
    fn qc_decision_display() {
        assert_eq!(QcDecision::Value(7u64).to_string(), "7");
        assert_eq!(QcDecision::<u64>::Quit.to_string(), "Q");
    }
}
