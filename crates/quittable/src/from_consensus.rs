//! Consensus viewed as quittable consensus.
//!
//! Every consensus algorithm trivially solves QC: it simply never
//! exercises the option to quit (the paper: *"in QC the decision to quit
//! is never inevitable, it is only an option"*). This adapter wraps the
//! (Ω, Σ) consensus of `wfd-consensus` behind the QC output interface,
//! giving the workspace a *second*, structurally different QC algorithm —
//! used to instantiate the Figure 3 extraction with an `A` that is not
//! Figure 2.

use crate::spec::QcDecision;
use std::fmt::Debug;
use wfd_consensus::omega_sigma::{OmegaSigmaConsensus, PaxosMsg};
use wfd_consensus::ConsensusOutput;
use wfd_sim::{Ctx, Footprint, ProcessId, ProcessSet, Protocol, StepKind};

/// A QC solution that never quits: the wrapped consensus decides a
/// proposed value in every run. Its failure detector is (Ω, Σ).
#[derive(Clone, Debug, Default)]
pub struct ConsensusAsQc<V: Clone + Debug + PartialEq> {
    inner: OmegaSigmaConsensus<V>,
}

impl<V: Clone + Debug + PartialEq> ConsensusAsQc<V> {
    /// Create a process (propose later via invocation).
    pub fn new() -> Self {
        ConsensusAsQc {
            inner: OmegaSigmaConsensus::new(),
        }
    }

    /// The QC decision this process returned, if any (never
    /// [`QcDecision::Quit`]).
    pub fn decision(&self) -> Option<QcDecision<V>> {
        self.inner.decision().cloned().map(QcDecision::Value)
    }

    fn with_inner(
        &mut self,
        ctx: &mut Ctx<Self>,
        f: impl FnOnce(&mut OmegaSigmaConsensus<V>, &mut Ctx<OmegaSigmaConsensus<V>>),
    ) {
        let mut ictx =
            Ctx::<OmegaSigmaConsensus<V>>::detached(ctx.me(), ctx.n(), ctx.now(), ctx.fd().clone());
        f(&mut self.inner, &mut ictx);
        for (to, msg) in ictx.take_sends() {
            ctx.send(to, msg);
        }
        for out in ictx.take_outputs() {
            let ConsensusOutput::Decided(v) = out;
            ctx.output(ConsensusOutput::Decided(QcDecision::Value(v)));
        }
    }
}

impl<V: Clone + Debug + PartialEq> Protocol for ConsensusAsQc<V> {
    type Msg = PaxosMsg<V>;
    type Output = ConsensusOutput<QcDecision<V>>;
    type Inv = V;
    type Fd = (ProcessId, ProcessSet);

    fn on_invoke(&mut self, ctx: &mut Ctx<Self>, v: V) {
        self.with_inner(ctx, |inner, ictx| inner.on_invoke(ictx, v));
    }

    fn on_tick(&mut self, ctx: &mut Ctx<Self>) {
        self.with_inner(ctx, |inner, ictx| inner.on_tick(ictx));
    }

    fn on_message(&mut self, ctx: &mut Ctx<Self>, from: ProcessId, msg: Self::Msg) {
        self.with_inner(ctx, |inner, ictx| inner.on_message(ictx, from, msg));
    }

    fn footprint(&self, _me: ProcessId, n: usize, _step: StepKind<'_, Self>) -> Footprint {
        // The wrapped consensus may message anyone; once it has decided it
        // outputs nothing further (the inner protocol guards on its own
        // decision flag), so the output channel closes with it.
        let fp = Footprint::local().sends_to_all(n);
        if self.inner.decision().is_some() {
            fp
        } else {
            fp.outputs()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::check_qc;
    use wfd_detectors::oracles::{OmegaOracle, PairOracle, SigmaOracle};
    use wfd_sim::{FailurePattern, RandomFair, Sim, SimConfig};

    #[test]
    fn consensus_as_qc_solves_qc_and_never_quits() {
        let n = 3;
        let pattern = FailurePattern::with_crashes(n, &[(ProcessId(0), 40)]);
        for seed in 0..3 {
            let fd = PairOracle::new(
                OmegaOracle::new(&pattern, 100, seed),
                SigmaOracle::new(&pattern, 100, seed),
            );
            let mut sim = Sim::new(
                SimConfig::new(n).with_horizon(40_000),
                (0..n).map(|_| ConsensusAsQc::<u64>::new()).collect(),
                pattern.clone(),
                fd,
                RandomFair::new(seed),
            );
            for p in 0..n {
                sim.schedule_invoke(ProcessId(p), 0, 100 + p as u64);
            }
            let correct = pattern.correct();
            sim.run_until(move |_, procs| {
                procs
                    .iter()
                    .enumerate()
                    .all(|(i, p)| !correct.contains(ProcessId(i)) || p.decision().is_some())
            });
            let props: Vec<Option<u64>> = (0..n).map(|p| Some(100 + p as u64)).collect();
            let stats = check_qc(sim.trace(), &props, &pattern).unwrap_or_else(|v| panic!("{v}"));
            assert!(
                matches!(stats.decision, Some(QcDecision::Value(_))),
                "the adapter must never quit"
            );
        }
    }
}
