//! From binary to multivalued quittable consensus — footnote 6 of the
//! paper, verbatim: *"We assume here that A can solve multivalued QC.
//! This causes no loss of generality: by using the technique of \[20\]
//! one can transform any binary QC algorithm into a multivalued one."*
//!
//! The Mostéfaoui–Raynal–Tronel loop, adapted to the quit option:
//! processes flood their proposals and run binary QC instances — instance
//! `j` asks *"shall we decide the value proposed by `p_{j mod n}`?"* — in
//! a common order. The adaptation: a binary instance may return `Q`, and
//! then everyone returns `Q` (agreement per instance makes the choice
//! common; validity (b) is inherited, since the inner `Q` already
//! certifies a failure). Otherwise the first 1-instance fixes the value,
//! exactly as in the consensus version.

use crate::psi_qc::PsiQc;
use crate::spec::QcDecision;
use std::collections::BTreeMap;
use std::fmt::Debug;
use wfd_consensus::omega_sigma::PaxosMsg;
use wfd_consensus::ConsensusOutput;
use wfd_detectors::PsiValue;
use wfd_sim::{Ctx, Footprint, ProcessId, Protocol, StepKind};

/// Messages: proposal flooding plus wrapped binary-QC traffic.
#[derive(Clone, Debug, PartialEq)]
pub enum MvQcMsg<V> {
    /// "Process `owner` proposed `v`" — flooded.
    Val {
        /// Whose proposal this is.
        owner: ProcessId,
        /// The proposed value.
        v: V,
    },
    /// Traffic of binary QC instance `instance`.
    Bin {
        /// Instance number `j` (target process is `j mod n`).
        instance: u64,
        /// Inner binary-QC message.
        inner: PaxosMsg<u8>,
    },
}

/// One process of the multivalued-QC-from-binary-QC transformation. The
/// binary instances are [`PsiQc<u8>`]; the failure detector value is Ψ's.
#[derive(Debug)]
pub struct MultivaluedQc<V: Clone + Debug + PartialEq> {
    values: Vec<Option<V>>,
    instances: BTreeMap<u64, PsiQc<u8>>,
    current: u64,
    proposed_current: bool,
    my_value: Option<V>,
    decided: Option<QcDecision<V>>,
}

impl<V: Clone + Debug + PartialEq> MultivaluedQc<V> {
    /// Create a process for a system of `n` processes.
    pub fn new(n: usize) -> Self {
        MultivaluedQc {
            values: vec![None; n],
            instances: BTreeMap::new(),
            current: 0,
            proposed_current: false,
            my_value: None,
            decided: None,
        }
    }

    /// The decision this process returned, if any.
    pub fn decision(&self) -> Option<&QcDecision<V>> {
        self.decided.as_ref()
    }

    fn decide(&mut self, ctx: &mut Ctx<Self>, d: QcDecision<V>) {
        if self.decided.is_none() {
            self.decided = Some(d.clone());
            ctx.output(ConsensusOutput::Decided(d));
        }
    }

    fn with_instance(
        &mut self,
        ctx: &mut Ctx<Self>,
        j: u64,
        f: impl FnOnce(&mut PsiQc<u8>, &mut Ctx<PsiQc<u8>>),
    ) {
        let fd: PsiValue = ctx.fd().clone();
        let mut ictx = Ctx::<PsiQc<u8>>::detached(ctx.me(), ctx.n(), ctx.now(), fd);
        let inst = self.instances.entry(j).or_default();
        f(inst, &mut ictx);
        for (to, msg) in ictx.take_sends() {
            ctx.send(
                to,
                MvQcMsg::Bin {
                    instance: j,
                    inner: msg,
                },
            );
        }
        for out in ictx.take_outputs() {
            let ConsensusOutput::Decided(d) = out;
            self.on_instance_output(ctx, j, d);
        }
    }

    fn on_instance_output(&mut self, ctx: &mut Ctx<Self>, j: u64, d: QcDecision<u8>) {
        if j != self.current || self.decided.is_some() {
            return;
        }
        match d {
            // The quit adaptation: an inner Q certifies a failure and all
            // processes see it at the same (first) instance.
            QcDecision::Quit => self.decide(ctx, QcDecision::Quit),
            QcDecision::Value(1) => {
                let owner = (j % ctx.n() as u64) as usize;
                if let Some(v) = self.values[owner].clone() {
                    self.decide(ctx, QcDecision::Value(v));
                }
                // else deferred until the flooded value arrives.
            }
            QcDecision::Value(_) => {
                self.current = j + 1;
                self.proposed_current = false;
                self.maybe_propose(ctx);
            }
        }
    }

    fn maybe_propose(&mut self, ctx: &mut Ctx<Self>) {
        if self.my_value.is_none() || self.proposed_current || self.decided.is_some() {
            return;
        }
        let j = self.current;
        let owner = (j % ctx.n() as u64) as usize;
        let bit = if let Some(v) = self.values[owner].clone() {
            ctx.broadcast_others(MvQcMsg::Val {
                owner: ProcessId(owner),
                v,
            });
            1u8
        } else {
            0u8
        };
        self.proposed_current = true;
        self.with_instance(ctx, j, |inst, ictx| inst.on_invoke(ictx, bit));
    }

    fn check_deferred(&mut self, ctx: &mut Ctx<Self>) {
        if self.decided.is_some() {
            return;
        }
        let j = self.current;
        let owner = (j % ctx.n() as u64) as usize;
        let decided_one = self.instances.get(&j).and_then(|i| i.decision().cloned())
            == Some(QcDecision::Value(1));
        if decided_one {
            if let Some(v) = self.values[owner].clone() {
                self.decide(ctx, QcDecision::Value(v));
            }
        }
    }
}

impl<V: Clone + Debug + PartialEq> Protocol for MultivaluedQc<V> {
    type Msg = MvQcMsg<V>;
    type Output = ConsensusOutput<QcDecision<V>>;
    type Inv = V;
    type Fd = PsiValue;

    fn on_invoke(&mut self, ctx: &mut Ctx<Self>, v: V) {
        if self.my_value.is_none() {
            self.my_value = Some(v.clone());
            self.values[ctx.me().index()] = Some(v.clone());
            ctx.broadcast_others(MvQcMsg::Val { owner: ctx.me(), v });
        }
        self.maybe_propose(ctx);
    }

    fn on_tick(&mut self, ctx: &mut Ctx<Self>) {
        self.maybe_propose(ctx);
        let j = self.current;
        if self.instances.contains_key(&j) {
            self.with_instance(ctx, j, |inst, ictx| inst.on_tick(ictx));
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<Self>, from: ProcessId, msg: MvQcMsg<V>) {
        match msg {
            MvQcMsg::Val { owner, v } => {
                if self.values[owner.index()].is_none() {
                    self.values[owner.index()] = Some(v);
                }
                self.check_deferred(ctx);
                self.maybe_propose(ctx);
            }
            MvQcMsg::Bin { instance, inner } => {
                self.with_instance(ctx, instance, |inst, ictx| {
                    inst.on_message(ictx, from, inner)
                });
            }
        }
    }

    fn footprint(&self, _me: ProcessId, n: usize, _step: StepKind<'_, Self>) -> Footprint {
        // Value floods and the binary instances may message anyone on any
        // step; `decide` outputs exactly once (guarded by
        // `decided.is_none()`).
        let fp = Footprint::local().sends_to_all(n);
        if self.decided.is_some() {
            fp
        } else {
            fp.outputs()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::check_qc;
    use wfd_detectors::oracles::{PsiMode, PsiOracle};
    use wfd_sim::{FailurePattern, RandomFair, Sim, SimConfig};

    type Mv = MultivaluedQc<&'static str>;

    fn run_mv(
        pattern: &FailurePattern,
        mode: PsiMode,
        proposals: &[&'static str],
        seed: u64,
        horizon: u64,
    ) -> wfd_sim::Trace<MvQcMsg<&'static str>, ConsensusOutput<QcDecision<&'static str>>> {
        let n = pattern.n();
        let psi = PsiOracle::new(pattern, mode, 40, 20, seed);
        let mut sim = Sim::new(
            SimConfig::new(n).with_horizon(horizon),
            (0..n).map(|_| Mv::new(n)).collect(),
            pattern.clone(),
            psi,
            RandomFair::new(seed),
        );
        for (p, &v) in proposals.iter().enumerate() {
            sim.schedule_invoke(ProcessId(p), 0, v);
        }
        let correct = pattern.correct();
        sim.run_until(move |_, procs| {
            procs
                .iter()
                .enumerate()
                .all(|(i, p)| !correct.contains(ProcessId(i)) || p.decision().is_some())
        });
        let (_, _, _, trace) = sim.into_parts();
        trace
    }

    #[test]
    fn decides_an_arbitrary_valued_proposal() {
        // Truly multivalued: string proposals, nothing binary about them.
        let n = 3;
        let pattern = FailurePattern::failure_free(n);
        let proposals = ["alpha", "beta", "gamma"];
        for seed in 0..3 {
            let trace = run_mv(&pattern, PsiMode::OmegaSigma, &proposals, seed, 120_000);
            let props: Vec<Option<&str>> = proposals.iter().copied().map(Some).collect();
            let stats =
                check_qc(&trace, &props, &pattern).unwrap_or_else(|v| panic!("seed {seed}: {v}"));
            match stats.decision {
                Some(QcDecision::Value(v)) => assert!(proposals.contains(&v)),
                other => panic!("seed {seed}: expected a value, got {other:?}"),
            }
        }
    }

    #[test]
    fn quit_propagates_from_binary_instances() {
        let n = 3;
        let pattern = FailurePattern::failure_free(n).with_crash(ProcessId(0), 20);
        let proposals = ["x", "y", "z"];
        let trace = run_mv(&pattern, PsiMode::Fs, &proposals, 1, 60_000);
        let props: Vec<Option<&str>> = proposals.iter().copied().map(Some).collect();
        let stats = check_qc(&trace, &props, &pattern).unwrap_or_else(|v| panic!("{v}"));
        assert_eq!(stats.decision, Some(QcDecision::Quit));
    }

    #[test]
    fn accessors() {
        let p: Mv = MultivaluedQc::new(3);
        assert_eq!(p.decision(), None);
    }
}
