//! # wfd-quittable — quittable consensus and the Ψ result (paper §§5–6)
//!
//! Quittable consensus (QC) — introduced by this paper — is consensus
//! weakened so that, *if a failure has occurred*, processes may instead
//! agree on the special value `Q` ("quit") and resort to a default action.
//! Corollary 7: **for all environments, Ψ is the weakest failure detector
//! to solve QC.**
//!
//! * [`spec`] — the QC problem (Termination, Uniform Agreement, and the
//!   two-part Validity where `Q` is allowed only after a real failure)
//!   and its trace checker.
//! * [`psi_qc`] — **Figure 2**: the algorithm solving QC with Ψ. Wait out
//!   the ⊥ phase; if Ψ turns into FS, return `Q`; if it turns into
//!   (Ω, Σ), run the consensus algorithm of `wfd-consensus` on it.
//!
//! The necessity half (Figure 3, extracting Ψ from any QC algorithm)
//! lives in `wfd-extraction`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod from_consensus;
pub mod multivalued;
pub mod psi_qc;
pub mod spec;

pub use from_consensus::ConsensusAsQc;
pub use multivalued::MultivaluedQc;
pub use psi_qc::PsiQc;
pub use spec::{check_qc, QcDecision, QcStats, QcViolation};
