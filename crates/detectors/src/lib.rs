//! # wfd-detectors — failure detectors of the PODC 2004 paper, executable
//!
//! The paper's results revolve around four failure detectors:
//!
//! * **Ω** (leader): outputs a process id at each process; eventually all
//!   correct processes forever output the id of the same correct process.
//! * **Σ** (quorum): outputs a set of processes; any two outputs (at any
//!   processes and times) intersect, and eventually outputs at correct
//!   processes contain only correct processes.
//! * **FS** (failure signal): outputs `green`/`red`; red only after a
//!   failure; if a failure occurs, eventually permanently red at all
//!   correct processes.
//! * **Ψ**: outputs ⊥ for a while, then globally either behaves like
//!   (Ω, Σ) or — only if a failure occurred — like FS.
//!
//! This crate provides, for each of them (plus the classical P, ◇P, ◇S):
//!
//! 1. **Oracles** ([`oracles`]) — valid-by-construction history generators
//!    parameterised by a failure pattern, used to drive algorithms that
//!    *use* a detector (the sufficiency halves of the paper's theorems).
//! 2. **Message-passing implementations** ([`impls`]) — protocols that
//!    *implement* a detector under extra assumptions, e.g. Σ "ex nihilo"
//!    from a correct majority (paper, §1) and a heartbeat Ω.
//! 3. **Checkers** ([`check`]) — validators that decide whether a recorded
//!    history conforms to a detector's defining predicate; these are what
//!    the extraction experiments (Figures 1 and 3) are judged by.
//!
//! History recording is transparent: wrap any oracle in a
//! [`Recorder`] and every value the algorithm saw is
//! available for post-hoc checking.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod check;
pub mod history;
pub mod impls;
pub mod oracles;
pub mod reductions;
mod rngmix;
pub mod value;

pub use history::{History, Recorder};
pub use value::{OmegaSigma, PsiValue, Signal};
