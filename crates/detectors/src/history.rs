//! Failure detector histories `H : Π × T → R`, recorded sample by sample.
//!
//! A run only ever *samples* a history at the `(p, t)` points where `p`
//! takes a step, so checkers work on sampled histories: a time-ordered list
//! of `(process, time, value)` triples.

use std::fmt::Debug;
use wfd_sim::{FdOracle, ProcessId, Time};

/// A sampled failure detector history.
///
/// ```
/// use wfd_detectors::History;
/// use wfd_sim::ProcessId;
/// let mut h: History<u32> = History::new(2);
/// h.record(ProcessId(0), 0, 10);
/// h.record(ProcessId(1), 3, 20);
/// assert_eq!(h.len(), 2);
/// assert_eq!(h.last_of(ProcessId(1)), Some((3, &20)));
/// ```
#[derive(Clone, Debug)]
pub struct History<V> {
    n: usize,
    samples: Vec<(ProcessId, Time, V)>,
}

impl<V: Clone + Debug> History<V> {
    /// An empty history for a system of `n` processes.
    pub fn new(n: usize) -> Self {
        History {
            n,
            samples: Vec::new(),
        }
    }

    /// Build a history from pre-collected samples (must be in
    /// nondecreasing time order).
    ///
    /// # Panics
    ///
    /// Panics if the samples are not sorted by time.
    pub fn from_samples(n: usize, samples: Vec<(ProcessId, Time, V)>) -> Self {
        assert!(
            samples.windows(2).all(|w| w[0].1 <= w[1].1),
            "samples must be in nondecreasing time order"
        );
        History { n, samples }
    }

    /// System size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Append a sample (times must be nondecreasing).
    pub fn record(&mut self, p: ProcessId, t: Time, v: V) {
        debug_assert!(
            self.samples.last().is_none_or(|(_, lt, _)| *lt <= t),
            "history samples must be recorded in time order"
        );
        self.samples.push((p, t, v));
    }

    /// All samples in time order.
    pub fn samples(&self) -> &[(ProcessId, Time, V)] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Samples of one process, in time order.
    pub fn samples_of(&self, p: ProcessId) -> impl Iterator<Item = (Time, &V)> {
        self.samples
            .iter()
            .filter(move |(q, _, _)| *q == p)
            .map(|(_, t, v)| (*t, v))
    }

    /// The last sample of one process.
    pub fn last_of(&self, p: ProcessId) -> Option<(Time, &V)> {
        self.samples_of(p).last()
    }

    /// Samples taken at or after `t0`.
    pub fn since(&self, t0: Time) -> impl Iterator<Item = (ProcessId, Time, &V)> {
        self.samples
            .iter()
            .filter(move |(_, t, _)| *t >= t0)
            .map(|(p, t, v)| (*p, *t, v))
    }

    /// Map sample values, keeping process/time structure — e.g. project the
    /// Σ component out of an (Ω, Σ) history.
    pub fn map<W: Clone + Debug>(&self, mut f: impl FnMut(&V) -> W) -> History<W> {
        History {
            n: self.n,
            samples: self
                .samples
                .iter()
                .map(|(p, t, v)| (*p, *t, f(v)))
                .collect(),
        }
    }

    /// Keep only samples satisfying a predicate (times stay ordered).
    pub fn filter(&self, mut keep: impl FnMut(ProcessId, Time, &V) -> bool) -> History<V> {
        History {
            n: self.n,
            samples: self
                .samples
                .iter()
                .filter(|(p, t, v)| keep(*p, *t, v))
                .cloned()
                .collect(),
        }
    }
}

/// An oracle wrapper that records every queried sample.
///
/// ```
/// use wfd_detectors::Recorder;
/// use wfd_sim::{ConstDetector, FdOracle, ProcessId};
/// let mut rec = Recorder::new(ConstDetector::new(5u8), 3);
/// rec.query(ProcessId(0), 0);
/// rec.query(ProcessId(2), 4);
/// let history = rec.into_history();
/// assert_eq!(history.len(), 2);
/// ```
#[derive(Debug)]
pub struct Recorder<O: FdOracle> {
    inner: O,
    history: History<O::Value>,
}

impl<O: FdOracle> Recorder<O> {
    /// Wrap `inner`, recording into a fresh history for `n` processes.
    pub fn new(inner: O, n: usize) -> Self {
        Recorder {
            inner,
            history: History::new(n),
        }
    }

    /// The history recorded so far.
    pub fn history(&self) -> &History<O::Value> {
        &self.history
    }

    /// Consume the recorder, returning the history.
    pub fn into_history(self) -> History<O::Value> {
        self.history
    }

    /// Access the wrapped oracle.
    pub fn inner(&self) -> &O {
        &self.inner
    }
}

impl<O: FdOracle> FdOracle for Recorder<O> {
    type Value = O::Value;

    fn query(&mut self, p: ProcessId, t: Time) -> Self::Value {
        let v = self.inner.query(p, t);
        self.history.record(p, t, v.clone());
        v
    }
}

/// Build a sampled history from the outputs of a run trace.
///
/// `extract` projects each protocol output to a detector value (returning
/// `None` for outputs that are not detector samples) — this is how the
/// emissions of detector *implementations* and *extraction algorithms* are
/// funnelled into the [`crate::check`] validators.
///
/// ```
/// use wfd_detectors::history::history_from_outputs;
/// use wfd_sim::{EventKind, ProcessId, Trace};
/// let mut trace: Trace<(), u32> = Trace::new(2);
/// trace.push(3, ProcessId(1), EventKind::Output(7));
/// let h = history_from_outputs(&trace, |o| Some(*o));
/// assert_eq!(h.samples(), &[(ProcessId(1), 3, 7)]);
/// ```
pub fn history_from_outputs<M, O, V>(
    trace: &wfd_sim::Trace<M, O>,
    mut extract: impl FnMut(&O) -> Option<V>,
) -> History<V>
where
    M: Clone + Debug,
    O: Clone + Debug,
    V: Clone + Debug,
{
    let mut h = History::new(trace.n());
    for (t, p, o) in trace.outputs() {
        if let Some(v) = extract(o) {
            h.record(p, t, v);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfd_sim::ConstDetector;

    #[test]
    fn record_and_query() {
        let mut h = History::new(2);
        h.record(ProcessId(0), 0, 'a');
        h.record(ProcessId(1), 1, 'b');
        h.record(ProcessId(0), 2, 'c');
        assert_eq!(h.n(), 2);
        assert_eq!(h.len(), 3);
        assert!(!h.is_empty());
        assert_eq!(
            h.samples_of(ProcessId(0)).collect::<Vec<_>>(),
            vec![(0, &'a'), (2, &'c')]
        );
        assert_eq!(h.last_of(ProcessId(0)), Some((2, &'c')));
        assert_eq!(h.last_of(ProcessId(1)), Some((1, &'b')));
        assert_eq!(h.since(1).count(), 2);
    }

    #[test]
    fn map_and_filter() {
        let mut h = History::new(1);
        h.record(ProcessId(0), 0, 1u32);
        h.record(ProcessId(0), 1, 2u32);
        let doubled = h.map(|v| v * 2);
        assert_eq!(doubled.samples()[1].2, 4);
        let only_even_times = h.filter(|_, t, _| t % 2 == 0);
        assert_eq!(only_even_times.len(), 1);
    }

    #[test]
    fn from_samples_checks_order() {
        let ok = History::from_samples(1, vec![(ProcessId(0), 0, ()), (ProcessId(0), 5, ())]);
        assert_eq!(ok.len(), 2);
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn from_samples_rejects_unsorted() {
        let _ = History::from_samples(1, vec![(ProcessId(0), 5, ()), (ProcessId(0), 0, ())]);
    }

    #[test]
    fn recorder_captures_queries() {
        let mut rec = Recorder::new(ConstDetector::new(9u8), 2);
        assert_eq!(rec.query(ProcessId(1), 3), 9);
        assert_eq!(rec.history().len(), 1);
        let _inner: &ConstDetector<u8> = rec.inner();
        let h = rec.into_history();
        assert_eq!(h.samples()[0], (ProcessId(1), 3, 9));
    }
}
