//! Σ ex nihilo under a correct majority — the join-quorum protocol
//! sketched in the paper's introduction.
//!
//! > "Each process periodically sends 'join-quorum' messages, and takes as
//! > its present quorum any majority of processes that respond to that
//! > message."
//!
//! Any two majorities intersect, so the intersection property holds
//! unconditionally; completeness holds because crashed processes
//! eventually stop responding, so sufficiently late quorums contain only
//! correct processes — *provided a majority is correct*, otherwise the
//! protocol blocks (which is exactly the paper's point: with ⌈n/2⌉ or more
//! faults you genuinely need Σ from outside).

use wfd_sim::{Ctx, Footprint, Permutation, ProcessId, ProcessSet, Protocol, StepKind, Symmetry};

fn permute_set(set: &ProcessSet, perm: &Permutation) -> ProcessSet {
    let mut out = ProcessSet::new();
    for p in set.iter() {
        out.insert(perm.apply(p));
    }
    out
}

/// Messages of the join-quorum protocol.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SigmaMsg {
    /// "join-quorum" probe for round `k`.
    Join(u64),
    /// Acknowledgement of the round-`k` probe.
    Ack(u64),
}

/// One process of the join-quorum Σ implementation.
///
/// Outputs a [`ProcessSet`] (the new quorum) every time a round completes;
/// feed the run's outputs through
/// [`history_from_outputs`](crate::history::history_from_outputs) and
/// [`check_sigma`](crate::check::check_sigma) to validate.
#[derive(Clone, Debug)]
pub struct MajoritySigma {
    round: u64,
    acks: ProcessSet,
    round_complete: bool,
    /// Current quorum (initially Π, which intersects everything).
    quorum: ProcessSet,
    /// Own steps since the current round completed; the next round is
    /// launched `probe_interval` steps later. A round that cannot complete
    /// (majority dead) never spawns a successor: the protocol *blocks*,
    /// it never lies.
    ticks_since_complete: u64,
    probe_interval: u64,
}

impl MajoritySigma {
    /// Create a process that launches the next join-quorum round
    /// `probe_interval` own steps after the previous round completed.
    ///
    /// # Panics
    ///
    /// Panics if `probe_interval` is zero.
    pub fn new(n: usize, probe_interval: u64) -> Self {
        assert!(probe_interval > 0, "probe_interval must be positive");
        MajoritySigma {
            round: 0,
            acks: ProcessSet::new(),
            round_complete: false,
            quorum: ProcessSet::full(n),
            ticks_since_complete: 0,
            probe_interval,
        }
    }

    /// The quorum this process currently trusts.
    pub fn quorum(&self) -> &ProcessSet {
        &self.quorum
    }

    fn majority(n: usize) -> usize {
        n / 2 + 1
    }
}

impl Protocol for MajoritySigma {
    type Msg = SigmaMsg;
    type Output = ProcessSet;
    type Inv = ();
    type Fd = ();

    fn on_start(&mut self, ctx: &mut Ctx<Self>) {
        self.round = 1;
        ctx.broadcast(SigmaMsg::Join(self.round));
    }

    fn on_tick(&mut self, ctx: &mut Ctx<Self>) {
        if self.round_complete {
            self.ticks_since_complete += 1;
            if self.ticks_since_complete >= self.probe_interval {
                self.ticks_since_complete = 0;
                self.round_complete = false;
                self.round += 1;
                self.acks = ProcessSet::new();
                ctx.broadcast(SigmaMsg::Join(self.round));
            }
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<Self>, from: ProcessId, msg: SigmaMsg) {
        match msg {
            SigmaMsg::Join(k) => ctx.send(from, SigmaMsg::Ack(k)),
            SigmaMsg::Ack(k) => {
                if k == self.round && !self.round_complete {
                    self.acks.insert(from);
                    if self.acks.len() >= Self::majority(ctx.n()) {
                        // First majority for this round: adopt it and stop
                        // counting, so stragglers (possibly from processes
                        // that crashed meanwhile) cannot dirty the quorum.
                        self.round_complete = true;
                        self.quorum = self.acks.clone();
                        ctx.output(self.quorum.clone());
                    }
                }
            }
        }
    }

    fn footprint(&self, _me: ProcessId, n: usize, step: StepKind<'_, Self>) -> Footprint {
        match step {
            StepKind::Start { .. } => Footprint::local().sends_to_all(n),
            StepKind::Tick => {
                if self.round_complete && self.ticks_since_complete + 1 >= self.probe_interval {
                    Footprint::local().sends_to_all(n)
                } else {
                    Footprint::local()
                }
            }
            StepKind::Deliver { from, msg } => match msg {
                SigmaMsg::Join(_) => Footprint::local().sends_to(from),
                SigmaMsg::Ack(k) => {
                    let completes = *k == self.round
                        && !self.round_complete
                        && self.acks.len() + usize::from(!self.acks.contains(from))
                            >= Self::majority(n);
                    if completes {
                        Footprint::local().outputs()
                    } else {
                        Footprint::local()
                    }
                }
            },
        }
    }

    // Fully id-agnostic: probes are broadcast, acks go to the sender, and
    // quorum formation only counts acks — ids enter state and outputs
    // solely as [`ProcessSet`] members, rewritten below.
    fn symmetry(_n: usize) -> Symmetry {
        Symmetry::Full
    }

    fn permute(&mut self, perm: &Permutation) {
        self.acks = permute_set(&self.acks, perm);
        self.quorum = permute_set(&self.quorum, perm);
    }

    fn permute_output(out: &mut ProcessSet, perm: &Permutation) {
        *out = permute_set(out, perm);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::check_sigma;
    use crate::history::history_from_outputs;
    use wfd_sim::{Adversarial, FailurePattern, NoDetector, ProcessId, RandomFair, Sim, SimConfig};

    fn run_sigma(
        n: usize,
        pattern: FailurePattern,
        seed: u64,
        horizon: u64,
    ) -> crate::History<ProcessSet> {
        let mut sim = Sim::new(
            SimConfig::new(n).with_horizon(horizon),
            (0..n).map(|_| MajoritySigma::new(n, 2)).collect(),
            pattern,
            NoDetector,
            RandomFair::new(seed),
        );
        sim.run();
        history_from_outputs(sim.trace(), |q: &ProcessSet| Some(q.clone()))
    }

    #[test]
    fn conforms_to_sigma_with_correct_majority() {
        let n = 5;
        let pattern = FailurePattern::with_crashes(n, &[(ProcessId(1), 200), (ProcessId(4), 500)]);
        for seed in 0..5 {
            let h = run_sigma(n, pattern.clone(), seed, 8_000);
            assert!(h.len() > 10, "protocol should emit quorums (seed {seed})");
            check_sigma(&h, &pattern).unwrap_or_else(|v| panic!("seed {seed}: {v}"));
        }
    }

    #[test]
    fn conforms_even_under_adversarial_schedule() {
        let n = 5;
        let pattern = FailurePattern::with_crashes(n, &[(ProcessId(0), 100)]);
        let mut sim = Sim::new(
            SimConfig::new(n).with_horizon(10_000),
            (0..n).map(|_| MajoritySigma::new(n, 2)).collect(),
            pattern.clone(),
            NoDetector,
            Adversarial::new(3),
        );
        sim.run();
        let h = history_from_outputs(sim.trace(), |q: &ProcessSet| Some(q.clone()));
        assert!(h.len() > 5);
        check_sigma(&h, &pattern).expect("adversarial schedule still conforms");
    }

    #[test]
    fn blocks_when_majority_crashes() {
        // 3 of 5 crash early: no later round can complete, so quorum
        // outputs dry up — the protocol *blocks* rather than lies.
        let n = 5;
        let pattern = FailurePattern::with_crashes(
            n,
            &[(ProcessId(0), 50), (ProcessId(1), 50), (ProcessId(2), 50)],
        );
        let h = run_sigma(n, pattern, 1, 8_000);
        let late_outputs = h.since(1_000).count();
        assert_eq!(
            late_outputs, 0,
            "with a crashed majority no join-quorum round can complete"
        );
    }

    #[test]
    #[should_panic(expected = "probe_interval")]
    fn zero_probe_interval_rejected() {
        let _ = MajoritySigma::new(3, 0);
    }

    #[test]
    fn initial_quorum_is_full_system() {
        let p = MajoritySigma::new(4, 3);
        assert_eq!(p.quorum(), &ProcessSet::full(4));
    }
}
