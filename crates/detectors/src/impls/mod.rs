//! Message-passing *implementations* of failure detectors.
//!
//! Unlike the oracles of [`crate::oracles`], these run *inside* the system
//! as ordinary protocols and only see messages — they cannot consult the
//! failure pattern. Each is correct under an extra assumption, stated in
//! its docs:
//!
//! * [`MajoritySigma`] — Σ "ex nihilo" when a majority of processes are
//!   correct (paper §1: *"to implement registers in environments with a
//!   majority of correct processes we 'need' something that we can get for
//!   free"*).
//! * [`HeartbeatOmega`] — Ω via adaptive-timeout heartbeats; converges in
//!   every fair run because the engine's fairness bounds make the system
//!   eventually-timely.
//! * [`TimeoutFs`] — FS via conservative timeouts; accurate when its
//!   threshold exceeds the run's real step-gap + delay bound.

mod heartbeat_omega;
mod majority_sigma;
mod timeout_fs;

pub use heartbeat_omega::HeartbeatOmega;
pub use majority_sigma::MajoritySigma;
pub use timeout_fs::TimeoutFs;
