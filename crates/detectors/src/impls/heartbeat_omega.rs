//! An Ω implementation from adaptive-timeout heartbeats.
//!
//! Every process piggybacks a heartbeat on each of its steps and suspects
//! a peer whose heartbeat is overdue by an *adaptive* timeout: each false
//! suspicion (a heartbeat arriving from a suspected peer) doubles that
//! peer's timeout. The leader estimate is the smallest unsuspected id.
//!
//! In a fair run of the engine the system is eventually timely (step gaps
//! and delays are bounded by `max_step_gap`/`max_delay`), so every correct
//! process is falsely suspected only finitely often, crashed processes are
//! suspected forever, and all correct processes converge to the same
//! smallest correct id — i.e. the emitted history satisfies Ω. No bound
//! needs to be known in advance; that is the point of the adaptive
//! timeout.

use wfd_sim::{Ctx, Footprint, ProcessId, Protocol, StepKind};

/// Messages of the heartbeat Ω implementation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Heartbeat;

/// One process of the heartbeat Ω implementation.
///
/// Outputs its leader estimate ([`ProcessId`]) whenever the estimate
/// changes, plus periodically so that histories stay densely sampled.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HeartbeatOmega {
    /// Own steps since the last heartbeat from each peer, saturated at
    /// `timeout + 1`: past that the comparison against the timeout can
    /// never change again until the counter is reset, so larger values
    /// are behaviorally indistinguishable. The cap keeps the state space
    /// finite, which the liveness checker's state graph requires.
    staleness: Vec<u64>,
    /// Current per-peer timeout (in own steps).
    timeout: Vec<u64>,
    suspected: Vec<bool>,
    leader: ProcessId,
    steps_since_output: u64,
    /// Own steps since the last beat broadcast; beats go out every
    /// `beat_interval` steps so the network load stays bounded (sending on
    /// every step — in particular on every *delivery* — floods the system
    /// faster than one-delivery-per-step can drain it).
    steps_since_beat: u64,
    beat_interval: u64,
}

impl HeartbeatOmega {
    /// Create a process with the given initial per-peer timeout (adapted
    /// upwards at runtime on false suspicion). Beats are broadcast every
    /// `n` own steps.
    ///
    /// # Panics
    ///
    /// Panics if `initial_timeout` is zero.
    pub fn new(n: usize, initial_timeout: u64) -> Self {
        assert!(initial_timeout > 0, "initial_timeout must be positive");
        HeartbeatOmega {
            staleness: vec![0; n],
            timeout: vec![initial_timeout; n],
            suspected: vec![false; n],
            leader: ProcessId(0),
            steps_since_output: 0,
            steps_since_beat: 0,
            beat_interval: n as u64,
        }
    }

    /// Override how many of its own steps a process waits between beat
    /// broadcasts.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn with_beat_interval(mut self, interval: u64) -> Self {
        assert!(interval > 0, "beat interval must be positive");
        self.beat_interval = interval;
        self
    }

    /// The current leader estimate.
    pub fn leader(&self) -> ProcessId {
        self.leader
    }

    /// Whether this process currently suspects `q`.
    pub fn suspects(&self, q: ProcessId) -> bool {
        self.suspected[q.index()]
    }

    fn step_common(&mut self, ctx: &mut Ctx<Self>) {
        let me = ctx.me().index();
        for q in 0..ctx.n() {
            if q == me {
                continue;
            }
            self.staleness[q] = (self.staleness[q] + 1).min(self.timeout[q] + 1);
            if self.staleness[q] > self.timeout[q] {
                self.suspected[q] = true;
            }
        }
        self.refresh_leader(ctx);
        self.steps_since_beat += 1;
        if self.steps_since_beat >= self.beat_interval {
            self.steps_since_beat = 0;
            ctx.broadcast_others(Heartbeat);
        }
        // Dense sampling: re-emit the estimate every few steps even when
        // unchanged, so checkers see a suffix, not a single point.
        self.steps_since_output += 1;
        if self.steps_since_output >= 4 {
            self.steps_since_output = 0;
            ctx.output(self.leader);
        }
    }

    fn refresh_leader(&mut self, ctx: &mut Ctx<Self>) {
        let me = ctx.me().index();
        let new_leader = (0..ctx.n())
            .find(|&q| q == me || !self.suspected[q])
            .map(ProcessId)
            .unwrap_or(ctx.me());
        if new_leader != self.leader {
            self.leader = new_leader;
            ctx.output(self.leader);
        }
    }
}

impl Protocol for HeartbeatOmega {
    type Msg = Heartbeat;
    type Output = ProcessId;
    type Inv = ();
    type Fd = ();

    fn on_start(&mut self, ctx: &mut Ctx<Self>) {
        ctx.output(self.leader);
        ctx.broadcast_others(Heartbeat);
    }

    fn on_tick(&mut self, ctx: &mut Ctx<Self>) {
        self.step_common(ctx);
    }

    fn on_message(&mut self, ctx: &mut Ctx<Self>, from: ProcessId, _msg: Heartbeat) {
        let q = from.index();
        if self.suspected[q] {
            // False suspicion: forgive and adapt.
            self.suspected[q] = false;
            self.timeout[q] = self.timeout[q].saturating_mul(2);
        }
        self.staleness[q] = 0;
        self.step_common(ctx);
    }

    // No `symmetry` override: the leader rule "smallest unsuspected id"
    // is id-*dependent* — permuting process ids does not commute with
    // taking the minimum — so canonicalizing states under permutation
    // would merge states with genuinely different futures. Ω exists to
    // break symmetry; only [`Symmetry::Trivial`](wfd_sim::Symmetry) is
    // sound here.
    fn footprint(&self, me: ProcessId, n: usize, step: StepKind<'_, Self>) -> Footprint {
        if matches!(step, StepKind::Start { .. }) {
            return Footprint::local().sends_to_others(n, me).outputs();
        }
        // Tick and delivery both funnel through `step_common`: the beat
        // counter decides the broadcast exactly, while the leader
        // re-evaluation may output on any step — declaring `outputs`
        // unconditionally is a sound over-approximation.
        let fp = Footprint::local().outputs();
        if self.steps_since_beat + 1 >= self.beat_interval {
            fp.sends_to_others(n, me)
        } else {
            fp
        }
    }

    fn props() -> &'static [&'static str] {
        &["leader-agreed"]
    }

    /// `leader-agreed`: every correct process's estimate is the smallest
    /// correct id — the stabilized state Ω promises. The paper property
    /// is `F G "leader-agreed"` over all fair runs.
    fn eval_prop(_prop: usize, procs: &[Self], view: &wfd_sim::PropView<'_>) -> bool {
        let Some(expected) = view.correct.iter().position(|&c| c) else {
            return false;
        };
        procs
            .iter()
            .zip(view.correct)
            .all(|(p, &c)| !c || p.leader == ProcessId(expected))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::check_omega;
    use crate::history::history_from_outputs;
    use wfd_sim::{Adversarial, FailurePattern, NoDetector, RandomFair, Sim, SimConfig};

    fn run_omega<S: wfd_sim::Scheduler>(
        n: usize,
        pattern: &FailurePattern,
        sched: S,
        horizon: u64,
    ) -> crate::History<ProcessId> {
        let mut sim = Sim::new(
            SimConfig::new(n).with_horizon(horizon),
            (0..n).map(|_| HeartbeatOmega::new(n, 4)).collect(),
            pattern.clone(),
            NoDetector,
            sched,
        );
        sim.run();
        history_from_outputs(sim.trace(), |l: &ProcessId| Some(*l))
    }

    #[test]
    fn converges_to_smallest_correct_process() {
        let n = 4;
        let pattern = FailurePattern::with_crashes(n, &[(ProcessId(0), 300)]);
        for seed in 0..5 {
            let h = run_omega(n, &pattern, RandomFair::new(seed), 20_000);
            let stats = check_omega(&h, &pattern).unwrap_or_else(|v| panic!("seed {seed}: {v}"));
            assert_eq!(stats.leader, Some(ProcessId(1)), "seed {seed}");
        }
    }

    #[test]
    fn failure_free_leader_is_p0() {
        let n = 3;
        let pattern = FailurePattern::failure_free(n);
        let h = run_omega(n, &pattern, RandomFair::new(9), 10_000);
        let stats = check_omega(&h, &pattern).expect("conforms");
        assert_eq!(stats.leader, Some(ProcessId(0)));
    }

    #[test]
    fn converges_under_adversarial_schedule() {
        let n = 4;
        let pattern = FailurePattern::with_crashes(n, &[(ProcessId(0), 200), (ProcessId(1), 400)]);
        let h = run_omega(n, &pattern, Adversarial::new(11), 40_000);
        let stats = check_omega(&h, &pattern).expect("adaptive timeouts must converge");
        assert_eq!(stats.leader, Some(ProcessId(2)));
    }

    #[test]
    fn suspicion_accessors() {
        let p = HeartbeatOmega::new(3, 4);
        assert_eq!(p.leader(), ProcessId(0));
        assert!(!p.suspects(ProcessId(1)));
    }

    #[test]
    #[should_panic(expected = "initial_timeout")]
    fn zero_timeout_rejected() {
        let _ = HeartbeatOmega::new(3, 0);
    }
}
