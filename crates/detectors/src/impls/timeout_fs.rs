//! An FS implementation from conservative timeouts.
//!
//! FS must never cry wolf (red implies a real crash), so unlike
//! [`HeartbeatOmega`](super::HeartbeatOmega) it cannot adapt its way out
//! of false suspicions — a single wrong red is a permanent spec violation.
//! The implementation is therefore only *accurate* under a timing
//! assumption: its `threshold` (measured in the suspecting process's own
//! steps) must exceed the run's worst-case heartbeat round-trip, which in
//! this engine is bounded by `max_step_gap + max_delay`. Completeness
//! needs no assumption: a crashed process stops beating, someone times
//! out, and the red verdict is flooded to everyone.
//!
//! This mirrors the literature: FS is implementable in synchronous
//! systems, and Charron-Bost & Toueg / Guerraoui use it as the extra
//! power NBAC needs beyond consensus.

use crate::value::Signal;
use wfd_sim::{Ctx, Footprint, Permutation, ProcessId, Protocol, StepKind, Symmetry};

/// Messages of the timeout FS implementation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FsMsg {
    /// Periodic liveness beat.
    Beat,
    /// Flooded verdict: some process crashed.
    Red,
}

/// One process of the timeout FS implementation.
///
/// Outputs [`Signal`] values; green periodically while no failure is
/// suspected, red (forever) once one is.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TimeoutFs {
    staleness: Vec<u64>,
    threshold: u64,
    red: bool,
    steps_since_output: u64,
    steps_since_beat: u64,
    beat_interval: u64,
}

impl TimeoutFs {
    /// Create a process with the given timeout threshold (own steps).
    /// Beats are broadcast every `n` own steps; `threshold` must therefore
    /// exceed `n · max_step_gap + max_delay` of the run for accuracy.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is zero.
    pub fn new(n: usize, threshold: u64) -> Self {
        assert!(threshold > 0, "threshold must be positive");
        TimeoutFs {
            staleness: vec![0; n],
            threshold,
            red: false,
            steps_since_output: 0,
            steps_since_beat: 0,
            beat_interval: n as u64,
        }
    }

    /// Whether this process has turned red.
    pub fn is_red(&self) -> bool {
        self.red
    }

    fn signal(&self) -> Signal {
        if self.red {
            Signal::Red
        } else {
            Signal::Green
        }
    }

    fn step_common(&mut self, ctx: &mut Ctx<Self>) {
        if !self.red {
            let me = ctx.me().index();
            for q in 0..ctx.n() {
                if q == me {
                    continue;
                }
                self.staleness[q] += 1;
                if self.staleness[q] > self.threshold {
                    self.turn_red(ctx);
                    break;
                }
            }
        }
        self.steps_since_beat += 1;
        if self.steps_since_beat >= self.beat_interval {
            self.steps_since_beat = 0;
            ctx.broadcast_others(FsMsg::Beat);
        }
        self.steps_since_output += 1;
        if self.steps_since_output >= 4 {
            self.steps_since_output = 0;
            ctx.output(self.signal());
        }
    }

    fn turn_red(&mut self, ctx: &mut Ctx<Self>) {
        if !self.red {
            self.red = true;
            ctx.output(Signal::Red);
            ctx.broadcast_others(FsMsg::Red);
        }
    }
}

impl Protocol for TimeoutFs {
    type Msg = FsMsg;
    type Output = Signal;
    type Inv = ();
    type Fd = ();

    fn on_start(&mut self, ctx: &mut Ctx<Self>) {
        ctx.output(Signal::Green);
        ctx.broadcast_others(FsMsg::Beat);
    }

    fn on_tick(&mut self, ctx: &mut Ctx<Self>) {
        self.step_common(ctx);
    }

    fn on_message(&mut self, ctx: &mut Ctx<Self>, from: ProcessId, msg: FsMsg) {
        match msg {
            FsMsg::Beat => {
                self.staleness[from.index()] = 0;
                self.step_common(ctx);
            }
            FsMsg::Red => {
                self.turn_red(ctx);
                self.step_common(ctx);
            }
        }
    }

    fn footprint(&self, me: ProcessId, n: usize, step: StepKind<'_, Self>) -> Footprint {
        if matches!(step, StepKind::Start { .. }) {
            return Footprint::local().sends_to_others(n, me).outputs();
        }
        // Tick and both deliveries funnel through `step_common`; the
        // counters tell us exactly whether this step reds, beats or
        // samples. A Beat from `q` zeroes `staleness[q]` before the
        // timeout scan, so `q` itself can never fire it (threshold > 0).
        let timeout_fires = |skip: Option<ProcessId>| {
            (0..n).any(|q| {
                q != me.index()
                    && Some(ProcessId(q)) != skip
                    && self.staleness[q] + 1 > self.threshold
            })
        };
        let turns_red = !self.red
            && match step {
                StepKind::Deliver {
                    msg: FsMsg::Red, ..
                } => true,
                StepKind::Deliver {
                    from,
                    msg: FsMsg::Beat,
                } => timeout_fires(Some(from)),
                _ => timeout_fires(None),
            };
        let beats = self.steps_since_beat + 1 >= self.beat_interval;
        let samples = self.steps_since_output + 1 >= 4;
        let mut fp = Footprint::local();
        if turns_red || beats {
            fp = fp.sends_to_others(n, me);
        }
        if turns_red || samples {
            fp = fp.outputs();
        }
        fp
    }

    // Fully id-agnostic: handlers treat peers uniformly (the timeout scan
    // is order-independent — any overdue peer yields the same permanent
    // red), ids appear only as indices into `staleness`, and neither
    // messages nor outputs carry ids.
    fn symmetry(_n: usize) -> Symmetry {
        Symmetry::Full
    }

    fn permute(&mut self, perm: &Permutation) {
        let mut staleness = vec![0; self.staleness.len()];
        for (q, &s) in self.staleness.iter().enumerate() {
            staleness[perm.apply(ProcessId(q)).index()] = s;
        }
        self.staleness = staleness;
    }

    fn props() -> &'static [&'static str] {
        &["some-correct-red", "all-correct-red"]
    }

    /// `some-correct-red`: at least one correct process has turned red —
    /// its absence forever (`G !"some-correct-red"`) is FS accuracy on
    /// failure-free patterns. `all-correct-red`: every correct process is
    /// red — `F "all-correct-red"` is FS completeness once someone
    /// crashes. Both quantify over *correct* processes only, so they are
    /// invariant under the scenario symmetry group (which preserves the
    /// failure pattern).
    fn eval_prop(prop: usize, procs: &[Self], view: &wfd_sim::PropView<'_>) -> bool {
        let mut correct = procs
            .iter()
            .zip(view.correct)
            .filter_map(|(p, &c)| c.then_some(p));
        match prop {
            0 => correct.any(|p| p.red),
            _ => correct.all(|p| p.red),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::check_fs;
    use crate::history::history_from_outputs;
    use wfd_sim::{FailurePattern, NoDetector, RandomFair, Sim, SimConfig};

    /// A threshold safely above the engine's
    /// `beat_interval · max_step_gap + max_delay` for the configs below
    /// (`beat_interval = n`, `max_step_gap = max_delay = 4n`).
    fn safe_threshold(n: usize) -> u64 {
        let n = n as u64;
        3 * (n * 4 * n + 4 * n)
    }

    fn run_fs(
        n: usize,
        pattern: &FailurePattern,
        seed: u64,
        horizon: u64,
    ) -> crate::History<Signal> {
        let mut sim = Sim::new(
            SimConfig::new(n).with_horizon(horizon),
            (0..n)
                .map(|_| TimeoutFs::new(n, safe_threshold(n)))
                .collect(),
            pattern.clone(),
            NoDetector,
            RandomFair::new(seed),
        );
        sim.run();
        history_from_outputs(sim.trace(), |s: &Signal| Some(*s))
    }

    #[test]
    fn failure_free_run_stays_green() {
        let n = 3;
        let pattern = FailurePattern::failure_free(n);
        for seed in 0..5 {
            let h = run_fs(n, &pattern, seed, 15_000);
            let stats = check_fs(&h, &pattern).unwrap_or_else(|v| panic!("seed {seed}: {v}"));
            assert_eq!(stats.first_red, None, "seed {seed}: spurious red");
        }
    }

    #[test]
    fn crash_turns_everyone_red() {
        let n = 4;
        let pattern = FailurePattern::with_crashes(n, &[(ProcessId(2), 500)]);
        for seed in 0..5 {
            let h = run_fs(n, &pattern, seed, 25_000);
            let stats = check_fs(&h, &pattern).unwrap_or_else(|v| panic!("seed {seed}: {v}"));
            let first_red = stats.first_red.expect("red must eventually appear");
            assert!(first_red >= 500, "red before the crash would be untruthful");
        }
    }

    #[test]
    fn red_is_permanent_per_process() {
        let n = 3;
        let pattern = FailurePattern::with_crashes(n, &[(ProcessId(0), 200)]);
        let h = run_fs(n, &pattern, 7, 20_000);
        for p in pattern.correct().iter() {
            let sigs: Vec<Signal> = h.samples_of(p).map(|(_, s)| *s).collect();
            if let Some(first_red) = sigs.iter().position(|s| s.is_red()) {
                assert!(
                    sigs[first_red..].iter().all(|s| s.is_red()),
                    "{p} flapped back to green"
                );
            }
        }
    }

    #[test]
    fn is_red_accessor() {
        let p = TimeoutFs::new(3, 10);
        assert!(!p.is_red());
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn zero_threshold_rejected() {
        let _ = TimeoutFs::new(2, 0);
    }
}
