//! Value ranges of the paper's failure detectors.

use std::fmt;
use wfd_sim::{ProcessId, ProcessSet};

/// The range of the failure-signal detector FS: `{green, red}`.
///
/// `green` means "no failure observed so far"; `red` is a (truthful) signal
/// that some process has crashed.
#[derive(Copy, Clone, Eq, PartialEq, Ord, PartialOrd, Hash, Debug)]
pub enum Signal {
    /// No failure has been signalled.
    Green,
    /// A failure has occurred (FS may only show this truthfully).
    Red,
}

impl Signal {
    /// Whether this is [`Signal::Red`].
    pub fn is_red(self) -> bool {
        matches!(self, Signal::Red)
    }
}

impl fmt::Display for Signal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Signal::Green => "green",
            Signal::Red => "red",
        })
    }
}

/// The range of the composite detector (Ω, Σ): a leader id paired with a
/// quorum.
///
/// The paper writes `(D, D′)` for the detector outputting the vector of
/// both components; (Ω, Σ) is the weakest detector for consensus in every
/// environment.
#[derive(Clone, Eq, PartialEq, Hash, Debug)]
pub struct OmegaSigma {
    /// The Ω component: current leader estimate.
    pub leader: ProcessId,
    /// The Σ component: current quorum.
    pub quorum: ProcessSet,
}

impl fmt::Display for OmegaSigma {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(leader={}, quorum={})", self.leader, self.quorum)
    }
}

/// The range of Ψ: `⊥` for an initial period, then either (Ω, Σ) values or
/// FS values — the same choice at all processes, and the FS choice only if
/// a failure has occurred.
#[derive(Clone, Eq, PartialEq, Hash, Debug)]
pub enum PsiValue {
    /// The initial "undecided" output.
    Bot,
    /// Ψ has switched to behaving like (Ω, Σ).
    OmegaSigma(OmegaSigma),
    /// Ψ has switched to behaving like FS (legitimate only after a
    /// failure).
    Fs(Signal),
}

impl PsiValue {
    /// Whether this value is the initial ⊥.
    pub fn is_bot(&self) -> bool {
        matches!(self, PsiValue::Bot)
    }

    /// The (Ω, Σ) component, if Ψ is in consensus mode.
    pub fn as_omega_sigma(&self) -> Option<&OmegaSigma> {
        match self {
            PsiValue::OmegaSigma(v) => Some(v),
            _ => None,
        }
    }

    /// The FS component, if Ψ is in failure-signal mode.
    pub fn as_fs(&self) -> Option<Signal> {
        match self {
            PsiValue::Fs(s) => Some(*s),
            _ => None,
        }
    }
}

impl fmt::Display for PsiValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PsiValue::Bot => f.write_str("⊥"),
            PsiValue::OmegaSigma(v) => write!(f, "{v}"),
            PsiValue::Fs(s) => write!(f, "FS:{s}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signal_predicates_and_display() {
        assert!(Signal::Red.is_red());
        assert!(!Signal::Green.is_red());
        assert_eq!(Signal::Green.to_string(), "green");
        assert_eq!(Signal::Red.to_string(), "red");
        assert!(Signal::Green < Signal::Red);
    }

    #[test]
    fn omega_sigma_display() {
        let v = OmegaSigma {
            leader: ProcessId(1),
            quorum: [ProcessId(0), ProcessId(1)].into_iter().collect(),
        };
        assert_eq!(v.to_string(), "(leader=p1, quorum={p0, p1})");
    }

    #[test]
    fn psi_value_accessors() {
        let os = OmegaSigma {
            leader: ProcessId(0),
            quorum: ProcessSet::singleton(ProcessId(0)),
        };
        let bot = PsiValue::Bot;
        let cons = PsiValue::OmegaSigma(os.clone());
        let fsv = PsiValue::Fs(Signal::Red);

        assert!(bot.is_bot());
        assert!(!cons.is_bot());
        assert_eq!(cons.as_omega_sigma(), Some(&os));
        assert_eq!(bot.as_omega_sigma(), None);
        assert_eq!(fsv.as_fs(), Some(Signal::Red));
        assert_eq!(cons.as_fs(), None);
        assert_eq!(bot.to_string(), "⊥");
        assert_eq!(fsv.to_string(), "FS:red");
    }
}
