//! Deterministic per-`(seed, p, t)` pseudo-randomness.
//!
//! Oracles must be *functions* of `(p, t)` — re-querying the same point
//! must yield the same value — while still exhibiting varied, seed-driven
//! behaviour. A stateless splitmix64-style hash of `(seed, p, t)` gives
//! exactly that without any caching.

/// splitmix64 finaliser.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic 64-bit hash of `(seed, a, b)`.
pub(crate) fn mix(seed: u64, a: u64, b: u64) -> u64 {
    splitmix64(splitmix64(seed ^ a.wrapping_mul(0xA24B_AED4_963E_E407)) ^ b)
}

/// A deterministic value in `0..bound` derived from `(seed, a, b)`.
///
/// # Panics
///
/// Panics if `bound == 0`.
pub(crate) fn mix_range(seed: u64, a: u64, b: u64, bound: u64) -> u64 {
    assert!(bound > 0, "bound must be positive");
    mix(seed, a, b) % bound
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_is_deterministic() {
        assert_eq!(mix(1, 2, 3), mix(1, 2, 3));
    }

    #[test]
    fn mix_varies_with_each_argument() {
        let base = mix(1, 2, 3);
        assert_ne!(base, mix(2, 2, 3));
        assert_ne!(base, mix(1, 3, 3));
        assert_ne!(base, mix(1, 2, 4));
    }

    #[test]
    fn mix_range_respects_bound() {
        for t in 0..1000 {
            assert!(mix_range(7, 3, t, 5) < 5);
        }
    }

    #[test]
    fn mix_range_covers_values() {
        let mut seen = [false; 5];
        for t in 0..200 {
            seen[mix_range(9, 0, t, 5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should occur");
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn mix_range_zero_bound_panics() {
        mix_range(0, 0, 0, 0);
    }
}
