//! The leader failure detector Ω.
//!
//! Spec (paper §2): `H ∈ Ω(F)` iff there is a correct process `p` such that
//! every correct process eventually forever outputs `p`.

use crate::oracles::assert_pattern_nonempty;
use crate::rngmix::mix_range;
use wfd_sim::{FailurePattern, FdOracle, ProcessId, Time};

/// An Ω history generator for a given failure pattern.
///
/// * Before each process's stabilisation instant (drawn per process in
///   `[stabilize_at, stabilize_at + jitter]`), the output is an arbitrary
///   seed-driven process id — possibly crashed, possibly different at every
///   query, exactly the garbage Ω permits early on.
/// * From the stabilisation instant on, the output is the **smallest-id
///   correct process**, the same at everyone, forever.
///
/// ```
/// use wfd_detectors::oracles::OmegaOracle;
/// use wfd_sim::{FailurePattern, FdOracle, ProcessId};
/// let f = FailurePattern::failure_free(3).with_crash(ProcessId(0), 5);
/// let mut omega = OmegaOracle::new(&f, 100, 42).with_jitter(10);
/// // Long after stabilisation everyone gets the same correct leader.
/// assert_eq!(omega.query(ProcessId(1), 500), ProcessId(1));
/// assert_eq!(omega.query(ProcessId(2), 777), ProcessId(1));
/// ```
///
/// # Panics
///
/// [`OmegaOracle::new`] panics if the pattern has no correct process —
/// `Ω(F)` is empty for such patterns (the defining predicate
/// existentially quantifies over correct processes).
#[derive(Clone, Debug)]
pub struct OmegaOracle {
    pattern: FailurePattern,
    stabilize_at: Time,
    jitter: Time,
    seed: u64,
    leader: ProcessId,
}

impl OmegaOracle {
    /// Create an Ω oracle that stabilises at `stabilize_at` (plus optional
    /// per-process jitter; see [`with_jitter`](Self::with_jitter)).
    pub fn new(pattern: &FailurePattern, stabilize_at: Time, seed: u64) -> Self {
        assert_pattern_nonempty(pattern);
        let leader = pattern
            .correct()
            .first()
            .expect("Ω(F) is empty when every process crashes: no valid history exists");
        OmegaOracle {
            pattern: pattern.clone(),
            stabilize_at,
            jitter: 0,
            seed,
            leader,
        }
    }

    /// Spread each process's stabilisation instant over
    /// `[stabilize_at, stabilize_at + jitter]` — Ω's spec does not require
    /// simultaneous stabilisation.
    pub fn with_jitter(mut self, jitter: Time) -> Self {
        self.jitter = jitter;
        self
    }

    /// The eventual common leader for this pattern.
    pub fn eventual_leader(&self) -> ProcessId {
        self.leader
    }

    fn stabilisation_of(&self, p: ProcessId) -> Time {
        if self.jitter == 0 {
            self.stabilize_at
        } else {
            self.stabilize_at + mix_range(self.seed, p.index() as u64, 0xB00, self.jitter + 1)
        }
    }
}

impl FdOracle for OmegaOracle {
    type Value = ProcessId;

    fn query(&mut self, p: ProcessId, t: Time) -> ProcessId {
        if t >= self.stabilisation_of(p) {
            self.leader
        } else {
            // Arbitrary pre-stabilisation output: any process id at all.
            ProcessId(mix_range(self.seed, p.index() as u64, t, self.pattern.n() as u64) as usize)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eventual_leader_is_smallest_correct() {
        let f = FailurePattern::failure_free(4)
            .with_crash(ProcessId(0), 1)
            .with_crash(ProcessId(1), 2);
        let omega = OmegaOracle::new(&f, 0, 0);
        assert_eq!(omega.eventual_leader(), ProcessId(2));
    }

    #[test]
    fn stable_after_stabilisation_everywhere() {
        let f = FailurePattern::failure_free(5).with_crash(ProcessId(0), 3);
        let mut omega = OmegaOracle::new(&f, 50, 7).with_jitter(20);
        for p in 0..5 {
            for t in 80..120 {
                assert_eq!(omega.query(ProcessId(p), t), ProcessId(1));
            }
        }
    }

    #[test]
    fn pre_stabilisation_output_is_arbitrary_but_deterministic() {
        let f = FailurePattern::failure_free(4);
        let mut a = OmegaOracle::new(&f, 1_000, 3);
        let mut b = OmegaOracle::new(&f, 1_000, 3);
        let mut saw_non_leader = false;
        for t in 0..200 {
            let va = a.query(ProcessId(2), t);
            assert_eq!(va, b.query(ProcessId(2), t), "determinism");
            if va != ProcessId(0) {
                saw_non_leader = true;
            }
        }
        assert!(saw_non_leader, "noise phase should emit non-leader ids");
    }

    #[test]
    fn zero_stabilisation_is_perfect_from_the_start() {
        let f = FailurePattern::failure_free(3);
        let mut omega = OmegaOracle::new(&f, 0, 0);
        assert_eq!(omega.query(ProcessId(2), 0), ProcessId(0));
    }

    #[test]
    #[should_panic(expected = "every process crashes")]
    fn all_crash_pattern_is_rejected() {
        let f = FailurePattern::with_crashes(2, &[(ProcessId(0), 0), (ProcessId(1), 0)]);
        let _ = OmegaOracle::new(&f, 0, 0);
    }
}
