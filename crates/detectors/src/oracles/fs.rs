//! The failure-signal detector FS.
//!
//! Spec (paper §2): `H ∈ FS(F)` iff
//! 1. red at `(p, t)` implies `F(t) ≠ ∅` (red signals are truthful), and
//! 2. if some process is faulty, then every correct process eventually
//!    outputs red permanently.

use crate::oracles::assert_pattern_nonempty;
use crate::rngmix::mix_range;
use crate::value::Signal;
use wfd_sim::{FailurePattern, FdOracle, ProcessId, Time};

/// An FS history generator for a given failure pattern.
///
/// Each process turns red at its own instant in
/// `[first_crash, first_crash + max_detection_delay]` (drawn per process
/// from the seed) — FS does not require simultaneous detection. In a
/// failure-free pattern the output is green everywhere forever.
///
/// ```
/// use wfd_detectors::oracles::FsOracle;
/// use wfd_detectors::Signal;
/// use wfd_sim::{FailurePattern, FdOracle, ProcessId};
/// let f = FailurePattern::failure_free(3).with_crash(ProcessId(0), 10);
/// let mut fs = FsOracle::new(&f, 5, 1);
/// assert_eq!(fs.query(ProcessId(1), 0), Signal::Green);
/// assert_eq!(fs.query(ProcessId(1), 100), Signal::Red);
/// ```
#[derive(Clone, Debug)]
pub struct FsOracle {
    first_crash: Option<Time>,
    max_detection_delay: Time,
    seed: u64,
}

impl FsOracle {
    /// Create an FS oracle with per-process detection delays in
    /// `[0, max_detection_delay]`.
    pub fn new(pattern: &FailurePattern, max_detection_delay: Time, seed: u64) -> Self {
        assert_pattern_nonempty(pattern);
        FsOracle {
            first_crash: pattern.first_crash_time(),
            max_detection_delay,
            seed,
        }
    }

    /// The instant at which process `p` switches to red, if the pattern
    /// has any failure.
    pub fn red_time_of(&self, p: ProcessId) -> Option<Time> {
        self.first_crash.map(|t| {
            t + mix_range(
                self.seed,
                p.index() as u64,
                0xF5,
                self.max_detection_delay + 1,
            )
        })
    }
}

impl FdOracle for FsOracle {
    type Value = Signal;

    fn query(&mut self, p: ProcessId, t: Time) -> Signal {
        match self.red_time_of(p) {
            Some(rt) if t >= rt => Signal::Red,
            _ => Signal::Green,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failure_free_is_always_green() {
        let f = FailurePattern::failure_free(3);
        let mut fs = FsOracle::new(&f, 10, 2);
        for p in 0..3 {
            for t in (0..1_000).step_by(37) {
                assert_eq!(fs.query(ProcessId(p), t), Signal::Green);
            }
        }
        assert_eq!(fs.red_time_of(ProcessId(0)), None);
    }

    #[test]
    fn red_only_after_first_crash() {
        let f = FailurePattern::with_crashes(4, &[(ProcessId(2), 20), (ProcessId(3), 5)]);
        let mut fs = FsOracle::new(&f, 7, 3);
        for p in 0..4 {
            for t in 0..5 {
                assert_eq!(
                    fs.query(ProcessId(p), t),
                    Signal::Green,
                    "red before any crash"
                );
            }
        }
    }

    #[test]
    fn eventually_permanently_red_everywhere() {
        let f = FailurePattern::with_crashes(3, &[(ProcessId(0), 4)]);
        let mut fs = FsOracle::new(&f, 6, 9);
        for p in 0..3 {
            let rt = fs.red_time_of(ProcessId(p)).unwrap();
            assert!((4..=10).contains(&rt));
            for t in rt..rt + 50 {
                assert_eq!(fs.query(ProcessId(p), t), Signal::Red);
            }
        }
    }

    #[test]
    fn zero_delay_detects_at_crash_instant() {
        let f = FailurePattern::with_crashes(2, &[(ProcessId(1), 8)]);
        let mut fs = FsOracle::new(&f, 0, 0);
        assert_eq!(fs.query(ProcessId(0), 7), Signal::Green);
        assert_eq!(fs.query(ProcessId(0), 8), Signal::Red);
    }
}
