//! The detector Ψ — the weakest failure detector for quittable consensus.
//!
//! Spec (paper §6.1): `H ∈ Ψ(F)` iff either
//!
//! * there is `H′ ∈ (Ω, Σ)(F)` such that every process outputs ⊥ up to
//!   some (per-process) time and `H′(p, t)` afterwards, or
//! * there is a time `t*` with `F(t*) ≠ ∅` and `H′ ∈ FS(F)` such that
//!   every process outputs ⊥ up to some time `≥ t*` and `H′(p, t)`
//!   afterwards.
//!
//! The switch need not be simultaneous, but the *choice* (consensus mode
//! vs failure-signal mode) is global.

use crate::oracles::{FsOracle, OmegaOracle, SigmaOracle};
use crate::rngmix::mix_range;
use crate::value::{OmegaSigma, PsiValue};
use wfd_sim::{FailurePattern, FdOracle, ProcessId, Time};

/// Which behaviour Ψ switches to after its ⊥ phase.
#[derive(Copy, Clone, Eq, PartialEq, Debug)]
pub enum PsiMode {
    /// Switch to (Ω, Σ): processes will be able to solve consensus.
    OmegaSigma,
    /// Switch to FS: processes learn (truthfully) that a failure occurred.
    /// Only admissible for patterns with at least one crash.
    Fs,
}

/// A Ψ history generator.
///
/// ```
/// use wfd_detectors::oracles::{PsiMode, PsiOracle};
/// use wfd_detectors::PsiValue;
/// use wfd_sim::{FailurePattern, FdOracle, ProcessId};
/// let f = FailurePattern::failure_free(3);
/// let mut psi = PsiOracle::new(&f, PsiMode::OmegaSigma, 20, 0, 7);
/// assert!(psi.query(ProcessId(0), 0).is_bot());
/// assert!(psi.query(ProcessId(0), 50).as_omega_sigma().is_some());
/// ```
///
/// # Panics
///
/// [`PsiOracle::new`] panics if `mode == PsiMode::Fs` on a failure-free
/// pattern (the spec forbids the FS choice then), or if
/// `mode == PsiMode::OmegaSigma` on an all-crash pattern (Ω has no valid
/// history there).
#[derive(Clone, Debug)]
pub struct PsiOracle {
    mode: PsiMode,
    switch_base: Time,
    jitter: Time,
    seed: u64,
    omega: Option<OmegaOracle>,
    sigma: Option<SigmaOracle>,
    fs: Option<FsOracle>,
}

impl PsiOracle {
    /// Create a Ψ oracle that switches out of ⊥ around `switch_at`
    /// (per-process instants in `[switch_at, switch_at + jitter]`).
    ///
    /// For `PsiMode::Fs` the effective switch time is clamped to be no
    /// earlier than the first crash, as the spec requires (`t ≥ t*`).
    pub fn new(
        pattern: &FailurePattern,
        mode: PsiMode,
        switch_at: Time,
        jitter: Time,
        seed: u64,
    ) -> Self {
        let (omega, sigma, fs) = match mode {
            PsiMode::OmegaSigma => (
                Some(OmegaOracle::new(pattern, switch_at, seed).with_jitter(jitter)),
                Some(SigmaOracle::new(pattern, switch_at, seed).with_jitter(jitter)),
                None,
            ),
            PsiMode::Fs => {
                assert!(
                    pattern.first_crash_time().is_some(),
                    "Ψ may switch to FS only if a failure occurs in the pattern"
                );
                (None, None, Some(FsOracle::new(pattern, jitter, seed)))
            }
        };
        let switch_base = match mode {
            PsiMode::OmegaSigma => switch_at,
            // FS mode: not before the first crash.
            PsiMode::Fs => switch_at.max(pattern.first_crash_time().expect("checked above")),
        };
        PsiOracle {
            mode,
            switch_base,
            jitter,
            seed,
            omega,
            sigma,
            fs,
        }
    }

    /// The mode this history committed to.
    pub fn mode(&self) -> PsiMode {
        self.mode
    }

    /// The instant at which process `p` leaves ⊥.
    pub fn switch_time_of(&self, p: ProcessId) -> Time {
        if self.jitter == 0 {
            self.switch_base
        } else {
            self.switch_base + mix_range(self.seed, p.index() as u64, 0x151, self.jitter + 1)
        }
    }
}

impl FdOracle for PsiOracle {
    type Value = PsiValue;

    fn query(&mut self, p: ProcessId, t: Time) -> PsiValue {
        if t < self.switch_time_of(p) {
            return PsiValue::Bot;
        }
        match self.mode {
            PsiMode::OmegaSigma => {
                let leader = self.omega.as_mut().expect("consensus mode").query(p, t);
                let quorum = self.sigma.as_mut().expect("consensus mode").query(p, t);
                PsiValue::OmegaSigma(OmegaSigma { leader, quorum })
            }
            PsiMode::Fs => PsiValue::Fs(self.fs.as_mut().expect("fs mode").query(p, t)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Signal;

    #[test]
    fn bot_prefix_then_omega_sigma() {
        let f = FailurePattern::failure_free(3);
        let mut psi = PsiOracle::new(&f, PsiMode::OmegaSigma, 10, 5, 3);
        for p in 0..3 {
            let sw = psi.switch_time_of(ProcessId(p));
            assert!((10..=15).contains(&sw));
            assert!(psi.query(ProcessId(p), sw - 1).is_bot());
            let v = psi.query(ProcessId(p), sw + 100);
            let os = v.as_omega_sigma().expect("consensus mode after switch");
            assert_eq!(os.leader, ProcessId(0));
            assert_eq!(os.quorum, f.correct());
        }
        assert_eq!(psi.mode(), PsiMode::OmegaSigma);
    }

    #[test]
    fn fs_mode_switches_only_after_first_crash() {
        let f = FailurePattern::failure_free(3).with_crash(ProcessId(2), 40);
        // Requested switch at 5, but the first crash is at 40: clamped.
        let mut psi = PsiOracle::new(&f, PsiMode::Fs, 5, 3, 1);
        for p in 0..3 {
            assert!(psi.switch_time_of(ProcessId(p)) >= 40);
            assert!(psi.query(ProcessId(p), 39).is_bot());
            let late = psi.query(ProcessId(p), 200);
            assert_eq!(late.as_fs(), Some(Signal::Red));
        }
    }

    #[test]
    #[should_panic(expected = "only if a failure occurs")]
    fn fs_mode_rejected_for_failure_free_pattern() {
        let f = FailurePattern::failure_free(2);
        let _ = PsiOracle::new(&f, PsiMode::Fs, 0, 0, 0);
    }

    #[test]
    fn mode_choice_is_global() {
        let f = FailurePattern::failure_free(4).with_crash(ProcessId(1), 2);
        let mut psi = PsiOracle::new(&f, PsiMode::Fs, 0, 10, 5);
        for p in 0..4 {
            let v = psi.query(ProcessId(p), 1_000);
            assert!(v.as_fs().is_some(), "all processes must see the same mode");
        }
    }

    #[test]
    fn failure_pattern_with_crash_can_still_choose_consensus_mode() {
        // The spec says processes are *not required* to switch to FS on
        // failure; (Ω, Σ) mode must remain admissible.
        let f = FailurePattern::failure_free(3).with_crash(ProcessId(2), 1);
        let mut psi = PsiOracle::new(&f, PsiMode::OmegaSigma, 5, 0, 2);
        let v = psi.query(ProcessId(0), 50);
        assert!(v.as_omega_sigma().is_some());
    }
}
