//! The quorum failure detector Σ.
//!
//! Spec (paper §2): `H ∈ Σ(F)` iff
//! 1. **Intersection** — any two output sets, at any processes and times,
//!    intersect; and
//! 2. **Completeness** — for every correct process `p` there is a time
//!    after which every set output at `p` contains only correct processes.

use crate::oracles::assert_pattern_nonempty;
use crate::rngmix::{mix, mix_range};
use wfd_sim::{FailurePattern, FdOracle, ProcessId, ProcessSet, Time};

/// A Σ history generator for a given failure pattern.
///
/// The construction keeps a **core** that every output contains, which
/// makes intersection hold by construction:
///
/// * If the pattern has at least one correct process, the core is
///   `correct(F)`; outputs are `correct(F) ∪ (noise ⊆ alive-at-t)` before
///   stabilisation and exactly `correct(F)` afterwards, so completeness
///   holds too.
/// * If *every* process crashes (possible in `Environment::Any`), the core
///   is `{p0}` forever — intersection still holds and completeness is
///   vacuous, matching the spec.
///
/// ```
/// use wfd_detectors::oracles::SigmaOracle;
/// use wfd_sim::{FailurePattern, FdOracle, ProcessId};
/// let f = FailurePattern::failure_free(4).with_crash(ProcessId(3), 10);
/// let mut sigma = SigmaOracle::new(&f, 50, 1);
/// let early = sigma.query(ProcessId(0), 0);
/// let late = sigma.query(ProcessId(1), 100);
/// assert!(early.intersects(&late));
/// assert_eq!(late, f.correct());
/// ```
#[derive(Clone, Debug)]
pub struct SigmaOracle {
    pattern: FailurePattern,
    stabilize_at: Time,
    jitter: Time,
    seed: u64,
    core: ProcessSet,
}

impl SigmaOracle {
    /// Create a Σ oracle whose outputs at correct processes contain only
    /// correct processes from `stabilize_at` on.
    pub fn new(pattern: &FailurePattern, stabilize_at: Time, seed: u64) -> Self {
        assert_pattern_nonempty(pattern);
        let correct = pattern.correct();
        let core = if correct.is_empty() {
            ProcessSet::singleton(ProcessId(0))
        } else {
            correct
        };
        SigmaOracle {
            pattern: pattern.clone(),
            stabilize_at,
            jitter: 0,
            seed,
            core,
        }
    }

    /// Spread per-process stabilisation instants over
    /// `[stabilize_at, stabilize_at + jitter]`.
    pub fn with_jitter(mut self, jitter: Time) -> Self {
        self.jitter = jitter;
        self
    }

    /// The eventual quorum at correct processes (`correct(F)`, or `{p0}`
    /// for all-crash patterns).
    pub fn core(&self) -> &ProcessSet {
        &self.core
    }

    fn stabilisation_of(&self, p: ProcessId) -> Time {
        if self.jitter == 0 {
            self.stabilize_at
        } else {
            self.stabilize_at + mix_range(self.seed, p.index() as u64, 0x51, self.jitter + 1)
        }
    }
}

impl FdOracle for SigmaOracle {
    type Value = ProcessSet;

    fn query(&mut self, p: ProcessId, t: Time) -> ProcessSet {
        let mut quorum = self.core.clone();
        if t < self.stabilisation_of(p) {
            // Noise phase: adjoin a deterministic subset of the processes
            // still alive at t (crashed-but-present members are exactly the
            // inaccuracy Σ tolerates before completeness kicks in).
            for q in self.pattern.alive_at(t).iter() {
                if mix(self.seed, (p.index() as u64) << 20 | q.index() as u64, t).is_multiple_of(2)
                {
                    quorum.insert(q);
                }
            }
        }
        quorum
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_outputs_pairwise_intersect() {
        let f = FailurePattern::with_crashes(5, &[(ProcessId(0), 3), (ProcessId(1), 8)]);
        let mut sigma = SigmaOracle::new(&f, 40, 9).with_jitter(10);
        let mut outputs = Vec::new();
        for p in 0..5 {
            for t in (0..100).step_by(7) {
                outputs.push(sigma.query(ProcessId(p), t));
            }
        }
        for a in &outputs {
            for b in &outputs {
                assert!(a.intersects(b), "Σ intersection violated: {a} vs {b}");
            }
        }
    }

    #[test]
    fn eventually_only_correct_processes() {
        let f = FailurePattern::with_crashes(4, &[(ProcessId(2), 5)]);
        let mut sigma = SigmaOracle::new(&f, 30, 4);
        for p in f.correct().iter() {
            for t in 30..60 {
                assert!(sigma.query(p, t).is_subset(&f.correct()));
            }
        }
    }

    #[test]
    fn noise_phase_may_include_crashed_but_alive_members() {
        let f = FailurePattern::with_crashes(4, &[(ProcessId(3), 50)]);
        let mut sigma = SigmaOracle::new(&f, 1_000, 11);
        let saw_faulty = (0..40).any(|t| sigma.query(ProcessId(0), t).contains(ProcessId(3)));
        assert!(
            saw_faulty,
            "noise phase should sometimes include the not-yet-crashed faulty p3"
        );
    }

    #[test]
    fn all_crash_pattern_uses_constant_core() {
        let f = FailurePattern::with_crashes(
            3,
            &[(ProcessId(0), 0), (ProcessId(1), 0), (ProcessId(2), 0)],
        );
        let mut sigma = SigmaOracle::new(&f, 0, 0);
        assert_eq!(sigma.core(), &ProcessSet::singleton(ProcessId(0)));
        assert_eq!(
            sigma.query(ProcessId(1), 99),
            ProcessSet::singleton(ProcessId(0))
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let f = FailurePattern::failure_free(4);
        let mut a = SigmaOracle::new(&f, 100, 5);
        let mut b = SigmaOracle::new(&f, 100, 5);
        for t in 0..50 {
            assert_eq!(a.query(ProcessId(1), t), b.query(ProcessId(1), t));
        }
    }
}
