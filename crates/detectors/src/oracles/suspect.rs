//! Suspicion-list detectors of the Chandra–Toueg hierarchy: the perfect
//! detector P, the eventually-perfect ◇P, and the eventually-strong ◇S.
//!
//! These are not the paper's protagonists, but they are needed as
//! baselines (the Chandra–Toueg ◇S consensus algorithm of experiment E9)
//! and as historical context (Fromentin et al. showed pairwise NBAC needs
//! P).

use crate::oracles::assert_pattern_nonempty;
use crate::rngmix::mix;
use wfd_sim::{FailurePattern, FdOracle, ProcessId, ProcessSet, Time};

/// The perfect failure detector P: never suspects a process before it
/// crashes (strong accuracy) and eventually suspects every crashed process
/// (strong completeness).
///
/// Output at `(p, t)`: the set of processes whose crash is at least
/// `detection_delay` old at `t`.
///
/// ```
/// use wfd_detectors::oracles::PerfectOracle;
/// use wfd_sim::{FailurePattern, FdOracle, ProcessId};
/// let f = FailurePattern::failure_free(3).with_crash(ProcessId(1), 10);
/// let mut p = PerfectOracle::new(&f, 5);
/// assert!(p.query(ProcessId(0), 12).is_empty());
/// assert!(p.query(ProcessId(0), 15).contains(ProcessId(1)));
/// ```
#[derive(Clone, Debug)]
pub struct PerfectOracle {
    pattern: FailurePattern,
    detection_delay: Time,
}

impl PerfectOracle {
    /// Create a P oracle with the given detection delay.
    pub fn new(pattern: &FailurePattern, detection_delay: Time) -> Self {
        assert_pattern_nonempty(pattern);
        PerfectOracle {
            pattern: pattern.clone(),
            detection_delay,
        }
    }
}

impl FdOracle for PerfectOracle {
    type Value = ProcessSet;

    fn query(&mut self, _p: ProcessId, t: Time) -> ProcessSet {
        self.pattern
            .crashed_at(t.saturating_sub(self.detection_delay))
    }
}

/// The eventually-perfect failure detector ◇P: like P but allowed
/// arbitrary false suspicions before a stabilisation time.
#[derive(Clone, Debug)]
pub struct EventuallyPerfectOracle {
    pattern: FailurePattern,
    stabilize_at: Time,
    seed: u64,
}

impl EventuallyPerfectOracle {
    /// Create a ◇P oracle that behaves perfectly from `stabilize_at` on.
    pub fn new(pattern: &FailurePattern, stabilize_at: Time, seed: u64) -> Self {
        assert_pattern_nonempty(pattern);
        EventuallyPerfectOracle {
            pattern: pattern.clone(),
            stabilize_at,
            seed,
        }
    }
}

impl FdOracle for EventuallyPerfectOracle {
    type Value = ProcessSet;

    fn query(&mut self, p: ProcessId, t: Time) -> ProcessSet {
        if t >= self.stabilize_at {
            return self.pattern.crashed_at(t);
        }
        // Noise phase: suspect an arbitrary deterministic subset.
        ProcessId::all(self.pattern.n())
            .filter(|q| {
                mix(self.seed, (p.index() as u64) << 20 | q.index() as u64, t).is_multiple_of(3)
            })
            .collect()
    }
}

/// The eventually-strong failure detector ◇S: strong completeness +
/// *eventual weak accuracy* (eventually some correct process is never
/// suspected by any correct process).
///
/// This realisation also satisfies ◇P after stabilisation, which is fine —
/// ◇P histories are ◇S histories.
#[derive(Clone, Debug)]
pub struct EventuallyStrongOracle {
    inner: EventuallyPerfectOracle,
}

impl EventuallyStrongOracle {
    /// Create a ◇S oracle that stabilises at `stabilize_at`.
    pub fn new(pattern: &FailurePattern, stabilize_at: Time, seed: u64) -> Self {
        EventuallyStrongOracle {
            inner: EventuallyPerfectOracle::new(pattern, stabilize_at, seed),
        }
    }
}

impl FdOracle for EventuallyStrongOracle {
    type Value = ProcessSet;

    fn query(&mut self, p: ProcessId, t: Time) -> ProcessSet {
        self.inner.query(p, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_never_suspects_alive_processes() {
        let f = FailurePattern::with_crashes(4, &[(ProcessId(2), 30)]);
        let mut p = PerfectOracle::new(&f, 3);
        for t in 0..100 {
            let suspects = p.query(ProcessId(0), t);
            for q in suspects.iter() {
                assert!(f.is_crashed(q, t), "P suspected alive {q} at {t}");
            }
        }
    }

    #[test]
    fn perfect_eventually_suspects_all_crashed() {
        let f = FailurePattern::with_crashes(3, &[(ProcessId(0), 5), (ProcessId(1), 9)]);
        let mut p = PerfectOracle::new(&f, 2);
        assert_eq!(p.query(ProcessId(2), 100), f.faulty());
    }

    #[test]
    fn eventually_perfect_noise_then_accuracy() {
        let f = FailurePattern::with_crashes(4, &[(ProcessId(3), 10)]);
        let mut dp = EventuallyPerfectOracle::new(&f, 50, 8);
        let noisy = (0..40).any(|t| {
            dp.query(ProcessId(0), t)
                .iter()
                .any(|q| !f.is_crashed(q, t))
        });
        assert!(noisy, "◇P should make false suspicions early");
        for t in 50..80 {
            assert_eq!(dp.query(ProcessId(1), t), f.crashed_at(t));
        }
    }

    #[test]
    fn eventually_strong_has_eventual_weak_accuracy() {
        let f = FailurePattern::with_crashes(4, &[(ProcessId(1), 5)]);
        let mut ds = EventuallyStrongOracle::new(&f, 20, 2);
        // After stabilisation, no correct process is ever suspected.
        for p in f.correct().iter() {
            for t in 20..60 {
                assert!(!ds.query(p, t).contains(ProcessId(0)));
            }
        }
    }
}
