//! Valid-by-construction failure detector oracles.
//!
//! Each oracle is parameterised by the run's [`FailurePattern`] — this is
//! the executable analogue of drawing a history `H ∈ D(F)`. Oracles are
//! *not* implementations of detectors inside the system (those live in
//! [`crate::impls`]); they are the model-level objects the paper
//! quantifies over, and they are allowed to "know" the failure pattern.
//!
//! All oracles are deterministic functions of `(seed, p, t)`, so runs that
//! use them are reproducible, and every oracle admits an adversarial
//! *noise phase* before its stabilisation time to exercise algorithms under
//! the worst histories its specification allows.

mod fs;
mod omega;
mod psi;
mod sigma;
mod suspect;

pub use fs::FsOracle;
pub use omega::OmegaOracle;
pub use psi::{PsiMode, PsiOracle};
pub use sigma::SigmaOracle;
pub use suspect::{EventuallyPerfectOracle, EventuallyStrongOracle, PerfectOracle};

use wfd_sim::{FailurePattern, FdOracle, ProcessId, Time};

/// The composite detector `(D, D′)` whose output is the vector of both
/// components — e.g. (Ω, Σ), the weakest detector for consensus.
///
/// ```
/// use wfd_detectors::oracles::{OmegaOracle, PairOracle, SigmaOracle};
/// use wfd_sim::{FailurePattern, FdOracle, ProcessId};
/// let f = FailurePattern::failure_free(3);
/// let mut d = PairOracle::new(OmegaOracle::new(&f, 0, 0), SigmaOracle::new(&f, 0, 0));
/// let (leader, quorum) = d.query(ProcessId(0), 10);
/// assert!(quorum.contains(leader));
/// ```
#[derive(Clone, Debug)]
pub struct PairOracle<A, B> {
    first: A,
    second: B,
}

impl<A: FdOracle, B: FdOracle> PairOracle<A, B> {
    /// Combine two oracles into their product detector.
    pub fn new(first: A, second: B) -> Self {
        PairOracle { first, second }
    }

    /// The first component oracle.
    pub fn first(&self) -> &A {
        &self.first
    }

    /// The second component oracle.
    pub fn second(&self) -> &B {
        &self.second
    }
}

impl<A: FdOracle, B: FdOracle> FdOracle for PairOracle<A, B> {
    type Value = (A::Value, B::Value);

    fn query(&mut self, p: ProcessId, t: Time) -> Self::Value {
        (self.first.query(p, t), self.second.query(p, t))
    }
}

/// An oracle adapter applying a pure function to another oracle's output —
/// used e.g. to view an (Ω, Σ) oracle as an [`crate::OmegaSigma`]-valued
/// one.
#[derive(Clone, Debug)]
pub struct MapOracle<O, F> {
    inner: O,
    f: F,
}

impl<O, F, W> MapOracle<O, F>
where
    O: FdOracle,
    F: FnMut(O::Value) -> W,
    W: Clone + std::fmt::Debug,
{
    /// Wrap `inner`, transforming each output with `f`.
    pub fn new(inner: O, f: F) -> Self {
        MapOracle { inner, f }
    }
}

impl<O, F, W> FdOracle for MapOracle<O, F>
where
    O: FdOracle,
    F: FnMut(O::Value) -> W,
    W: Clone + std::fmt::Debug,
{
    type Value = W;

    fn query(&mut self, p: ProcessId, t: Time) -> W {
        (self.f)(self.inner.query(p, t))
    }
}

pub(crate) fn assert_pattern_nonempty(pattern: &FailurePattern) {
    assert!(pattern.n() > 0, "failure pattern over an empty system");
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfd_sim::ConstDetector;

    #[test]
    fn pair_oracle_pairs_components() {
        let mut d = PairOracle::new(ConstDetector::new(1u8), ConstDetector::new("x"));
        assert_eq!(d.query(ProcessId(0), 0), (1, "x"));
        let _first: &ConstDetector<u8> = d.first();
        let _second: &ConstDetector<&str> = d.second();
    }

    #[test]
    fn map_oracle_transforms() {
        let mut d = MapOracle::new(ConstDetector::new(21u32), |v| v * 2);
        assert_eq!(d.query(ProcessId(0), 0), 42);
    }
}
