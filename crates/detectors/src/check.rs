//! Checkers deciding whether a sampled history conforms to a detector's
//! defining predicate.
//!
//! The paper's specifications are statements about *infinite* histories
//! ("eventually … forever"). On a finite run we check the standard
//! finite-trace proxy: the safety part must hold at every sample, and the
//! liveness ("eventually-forever") part must have *stabilised by the end
//! of the recorded history* — i.e. a qualifying suffix exists. Harnesses
//! are expected to run well past the oracles' stabilisation parameters so
//! that a failed check is a real violation rather than a too-short run.

use crate::history::History;
use crate::value::{PsiValue, Signal};
use std::fmt;
use wfd_sim::{FailurePattern, ProcessId, ProcessSet, Time};

/// A violation of the Σ specification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SigmaViolation {
    /// Two sampled quorums do not intersect.
    Intersection {
        /// First sample (process, time, quorum).
        a: (ProcessId, Time, ProcessSet),
        /// Second sample.
        b: (ProcessId, Time, ProcessSet),
    },
    /// A correct process's final quorum still contains a faulty process.
    Completeness {
        /// The correct process whose quorums never clean up.
        p: ProcessId,
        /// Time of its last sample.
        t: Time,
        /// The offending quorum.
        quorum: ProcessSet,
    },
}

impl fmt::Display for SigmaViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SigmaViolation::Intersection { a, b } => write!(
                f,
                "Σ intersection violated: {}@{} output {} vs {}@{} output {}",
                a.0, a.1, a.2, b.0, b.1, b.2
            ),
            SigmaViolation::Completeness { p, t, quorum } => write!(
                f,
                "Σ completeness violated: correct {p} still outputs {quorum} at {t}"
            ),
        }
    }
}

impl std::error::Error for SigmaViolation {}

/// Diagnostics from a successful Σ check.
#[derive(Clone, Debug, Default)]
pub struct SigmaStats {
    /// Number of samples examined.
    pub samples: usize,
    /// Per correct process: the earliest time from which all its sampled
    /// quorums contain only correct processes (`None` if it had no
    /// samples).
    pub completeness_times: Vec<Option<Time>>,
}

impl SigmaStats {
    /// The latest per-process completeness time — when the whole system's
    /// Σ output had stabilised.
    pub fn stabilization_time(&self) -> Option<Time> {
        self.completeness_times.iter().flatten().max().copied()
    }
}

/// Check a quorum history against Σ's intersection + completeness.
///
/// # Errors
///
/// Returns the first violation found.
pub fn check_sigma(
    h: &History<ProcessSet>,
    pattern: &FailurePattern,
) -> Result<SigmaStats, SigmaViolation> {
    let samples = h.samples();
    // Intersection: every pair (including pairs at the same process).
    // Histories repeat the same quorum many times, so deduplicate first:
    // pairwise intersection only depends on the distinct sets.
    let mut distinct: Vec<(ProcessId, Time, &ProcessSet)> = Vec::new();
    for (p, t, q) in samples {
        if !distinct.iter().any(|(_, _, seen)| *seen == q) {
            distinct.push((*p, *t, q));
        }
    }
    for (i, a) in distinct.iter().enumerate() {
        for b in &distinct[i..] {
            if !a.2.intersects(b.2) {
                return Err(SigmaViolation::Intersection {
                    a: (a.0, a.1, a.2.clone()),
                    b: (b.0, b.1, b.2.clone()),
                });
            }
        }
    }
    // Completeness: each correct process's samples must end with a clean
    // suffix.
    let correct = pattern.correct();
    let mut completeness_times = vec![None; pattern.n()];
    for p in correct.iter() {
        let mut stabilized_at: Option<Time> = None;
        let mut last_bad: Option<(Time, ProcessSet)> = None;
        for (t, q) in h.samples_of(p) {
            if q.is_subset(&correct) {
                stabilized_at.get_or_insert(t);
            } else {
                stabilized_at = None;
                last_bad = Some((t, q.clone()));
            }
        }
        match (stabilized_at, last_bad) {
            (Some(t), _) => completeness_times[p.index()] = Some(t),
            (None, Some((t, quorum))) => return Err(SigmaViolation::Completeness { p, t, quorum }),
            (None, None) => {} // no samples at all: vacuous
        }
    }
    Ok(SigmaStats {
        samples: samples.len(),
        completeness_times,
    })
}

/// A violation of the Ω specification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OmegaViolation {
    /// Two correct processes ended the run trusting different leaders.
    Disagreement {
        /// First process and its final leader.
        p: (ProcessId, ProcessId),
        /// Second process and its final leader.
        q: (ProcessId, ProcessId),
    },
    /// The common final leader is a faulty process.
    FaultyLeader {
        /// The faulty leader everyone converged to.
        leader: ProcessId,
    },
}

impl fmt::Display for OmegaViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OmegaViolation::Disagreement { p, q } => write!(
                f,
                "Ω violated: {} ends trusting {} but {} ends trusting {}",
                p.0, p.1, q.0, q.1
            ),
            OmegaViolation::FaultyLeader { leader } => {
                write!(f, "Ω violated: final common leader {leader} is faulty")
            }
        }
    }
}

impl std::error::Error for OmegaViolation {}

/// Diagnostics from a successful Ω check.
#[derive(Clone, Debug)]
pub struct OmegaStats {
    /// Number of samples examined.
    pub samples: usize,
    /// The common eventual leader (if any correct process sampled at all).
    pub leader: Option<ProcessId>,
    /// Earliest time from which every sample at every correct process
    /// equals the leader.
    pub stabilization_time: Option<Time>,
}

/// Check a leader history against Ω: all correct processes converge to the
/// same correct leader by the end of the history.
///
/// # Errors
///
/// Returns the violation preventing convergence.
pub fn check_omega(
    h: &History<ProcessId>,
    pattern: &FailurePattern,
) -> Result<OmegaStats, OmegaViolation> {
    let correct = pattern.correct();
    let mut finals: Vec<(ProcessId, ProcessId)> = Vec::new();
    for p in correct.iter() {
        if let Some((_, leader)) = h.last_of(p) {
            finals.push((p, *leader));
        }
    }
    let Some(&(first_p, leader)) = finals.first() else {
        return Ok(OmegaStats {
            samples: h.len(),
            leader: None,
            stabilization_time: None,
        });
    };
    for &(p, l) in &finals[1..] {
        if l != leader {
            return Err(OmegaViolation::Disagreement {
                p: (first_p, leader),
                q: (p, l),
            });
        }
    }
    if !correct.contains(leader) {
        return Err(OmegaViolation::FaultyLeader { leader });
    }
    // Stabilisation: earliest time from which all correct samples == leader.
    let mut stab: Option<Time> = None;
    for p in correct.iter() {
        let mut p_stab: Option<Time> = None;
        for (t, l) in h.samples_of(p) {
            if *l == leader {
                p_stab.get_or_insert(t);
            } else {
                p_stab = None;
            }
        }
        if let Some(t) = p_stab {
            stab = Some(stab.map_or(t, |s: Time| s.max(t)));
        }
    }
    Ok(OmegaStats {
        samples: h.len(),
        leader: Some(leader),
        stabilization_time: stab,
    })
}

/// A violation of the FS specification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FsViolation {
    /// Red was output at a time when no process had crashed.
    UntruthfulRed {
        /// The process that saw red.
        p: ProcessId,
        /// When it saw red.
        t: Time,
    },
    /// A failure occurred but a correct process's history does not end in
    /// a permanent red suffix.
    MissedFailure {
        /// The correct process whose output never settled on red.
        p: ProcessId,
    },
}

impl fmt::Display for FsViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsViolation::UntruthfulRed { p, t } => {
                write!(f, "FS violated: {p} saw red at {t} before any failure")
            }
            FsViolation::MissedFailure { p } => write!(
                f,
                "FS violated: a failure occurred but correct {p} does not end permanently red"
            ),
        }
    }
}

impl std::error::Error for FsViolation {}

/// Diagnostics from a successful FS check.
#[derive(Clone, Debug)]
pub struct FsStats {
    /// Number of samples examined.
    pub samples: usize,
    /// Earliest red sample, if any.
    pub first_red: Option<Time>,
}

/// Check a signal history against FS: red only after a failure; if a
/// failure occurs, correct processes end permanently red.
///
/// Correct processes with no samples after the first crash are treated as
/// vacuous (they were never consulted late enough to falsify liveness).
///
/// # Errors
///
/// Returns the first violation found.
pub fn check_fs(h: &History<Signal>, pattern: &FailurePattern) -> Result<FsStats, FsViolation> {
    let first_crash = pattern.first_crash_time();
    let mut first_red = None;
    for &(p, t, s) in h.samples() {
        if s.is_red() {
            first_red.get_or_insert(t);
            if first_crash.is_none_or(|fc| t < fc) {
                return Err(FsViolation::UntruthfulRed { p, t });
            }
        }
    }
    if first_crash.is_some() {
        for p in pattern.correct().iter() {
            // Permanent-red suffix: the last sample must be red (and we
            // require it only of processes sampled at all).
            if let Some((_, s)) = h.last_of(p) {
                if !s.is_red() {
                    return Err(FsViolation::MissedFailure { p });
                }
            }
        }
    }
    Ok(FsStats {
        samples: h.len(),
        first_red,
    })
}

/// A violation of the Ψ specification.
#[derive(Clone, Debug)]
pub enum PsiViolation {
    /// A process output ⊥ after having already switched.
    BotAfterSwitch {
        /// Offender.
        p: ProcessId,
        /// Time of the late ⊥.
        t: Time,
    },
    /// A single process mixed (Ω, Σ) and FS outputs.
    LocalModeMix {
        /// Offender.
        p: ProcessId,
    },
    /// Two processes committed to different modes.
    GlobalModeMix {
        /// A process in (Ω, Σ) mode.
        consensus: ProcessId,
        /// A process in FS mode.
        fs: ProcessId,
    },
    /// FS mode was chosen although no failure had occurred by the first
    /// switch.
    PrematureFsMode {
        /// First process to switch.
        p: ProcessId,
        /// Its switch time.
        t: Time,
    },
    /// The (Ω, Σ) phase violates Ω.
    Omega(OmegaViolation),
    /// The (Ω, Σ) phase violates Σ.
    Sigma(SigmaViolation),
    /// The FS phase violates FS.
    Fs(FsViolation),
}

impl fmt::Display for PsiViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PsiViolation::BotAfterSwitch { p, t } => {
                write!(f, "Ψ violated: {p} output ⊥ at {t} after switching")
            }
            PsiViolation::LocalModeMix { p } => {
                write!(f, "Ψ violated: {p} mixed (Ω,Σ) and FS outputs")
            }
            PsiViolation::GlobalModeMix { consensus, fs } => write!(
                f,
                "Ψ violated: {consensus} switched to (Ω,Σ) but {fs} switched to FS"
            ),
            PsiViolation::PrematureFsMode { p, t } => write!(
                f,
                "Ψ violated: {p} switched to FS mode at {t} before any failure"
            ),
            PsiViolation::Omega(v) => write!(f, "Ψ/(Ω,Σ) phase: {v}"),
            PsiViolation::Sigma(v) => write!(f, "Ψ/(Ω,Σ) phase: {v}"),
            PsiViolation::Fs(v) => write!(f, "Ψ/FS phase: {v}"),
        }
    }
}

impl std::error::Error for PsiViolation {}

/// Which behaviour a conforming Ψ history settled on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PsiPhase {
    /// Every recorded sample was still ⊥.
    AllBot,
    /// The history switched to (Ω, Σ).
    OmegaSigma,
    /// The history switched to FS.
    Fs,
}

/// Diagnostics from a successful Ψ check.
#[derive(Clone, Debug)]
pub struct PsiStats {
    /// Number of samples examined.
    pub samples: usize,
    /// The mode the history settled on.
    pub phase: PsiPhase,
    /// Per-process switch times (first non-⊥ sample).
    pub switch_times: Vec<Option<Time>>,
}

/// Check a Ψ-valued history against the Ψ specification: per-process
/// ⊥-prefix, globally consistent mode, FS mode only after a real failure,
/// and the post-switch samples conforming to (Ω, Σ) or FS respectively.
///
/// # Errors
///
/// Returns the first violation found.
pub fn check_psi(
    h: &History<PsiValue>,
    pattern: &FailurePattern,
) -> Result<PsiStats, PsiViolation> {
    let n = pattern.n();
    let mut switch_times: Vec<Option<Time>> = vec![None; n];
    let mut mode: Vec<Option<PsiPhase>> = vec![None; n];
    let mut mode_rep: [Option<ProcessId>; 2] = [None, None]; // [consensus, fs]

    for &(p, t, ref v) in h.samples() {
        match v {
            PsiValue::Bot => {
                if switch_times[p.index()].is_some() {
                    return Err(PsiViolation::BotAfterSwitch { p, t });
                }
            }
            PsiValue::OmegaSigma(_) => {
                switch_times[p.index()].get_or_insert(t);
                match mode[p.index()] {
                    Some(PsiPhase::Fs) => return Err(PsiViolation::LocalModeMix { p }),
                    _ => mode[p.index()] = Some(PsiPhase::OmegaSigma),
                }
                mode_rep[0].get_or_insert(p);
            }
            PsiValue::Fs(_) => {
                switch_times[p.index()].get_or_insert(t);
                match mode[p.index()] {
                    Some(PsiPhase::OmegaSigma) => return Err(PsiViolation::LocalModeMix { p }),
                    _ => mode[p.index()] = Some(PsiPhase::Fs),
                }
                mode_rep[1].get_or_insert(p);
                // FS choice is legitimate only if a failure occurred by the
                // switch.
                if pattern.first_crash_time().is_none_or(|fc| t < fc) {
                    return Err(PsiViolation::PrematureFsMode { p, t });
                }
            }
        }
    }

    if let (Some(c), Some(f)) = (mode_rep[0], mode_rep[1]) {
        return Err(PsiViolation::GlobalModeMix {
            consensus: c,
            fs: f,
        });
    }

    let phase = if mode_rep[0].is_some() {
        PsiPhase::OmegaSigma
    } else if mode_rep[1].is_some() {
        PsiPhase::Fs
    } else {
        PsiPhase::AllBot
    };

    // Check the post-switch projection against the component spec.
    match phase {
        PsiPhase::OmegaSigma => {
            let projected = h.filter(|_, _, v| v.as_omega_sigma().is_some());
            let omega_h = projected.map(|v| v.as_omega_sigma().expect("filtered").leader);
            let sigma_h = projected.map(|v| v.as_omega_sigma().expect("filtered").quorum.clone());
            check_omega(&omega_h, pattern).map_err(PsiViolation::Omega)?;
            check_sigma(&sigma_h, pattern).map_err(PsiViolation::Sigma)?;
        }
        PsiPhase::Fs => {
            let fs_h = h
                .filter(|_, _, v| v.as_fs().is_some())
                .map(|v| v.as_fs().expect("filtered"));
            check_fs(&fs_h, pattern).map_err(PsiViolation::Fs)?;
        }
        PsiPhase::AllBot => {}
    }

    Ok(PsiStats {
        samples: h.len(),
        phase,
        switch_times,
    })
}

/// Check an `(Ω, Σ)`-valued history by checking both projections.
///
/// # Errors
///
/// Returns `Err(Ok(v))`-style composite via [`OmegaSigmaViolation`].
pub fn check_omega_sigma(
    h: &History<(ProcessId, ProcessSet)>,
    pattern: &FailurePattern,
) -> Result<(OmegaStats, SigmaStats), OmegaSigmaViolation> {
    let omega_h = h.map(|(l, _)| *l);
    let sigma_h = h.map(|(_, q)| q.clone());
    let o = check_omega(&omega_h, pattern).map_err(OmegaSigmaViolation::Omega)?;
    let s = check_sigma(&sigma_h, pattern).map_err(OmegaSigmaViolation::Sigma)?;
    Ok((o, s))
}

/// A violation of the (Ω, Σ) specification.
#[derive(Clone, Debug)]
pub enum OmegaSigmaViolation {
    /// The Ω component is violated.
    Omega(OmegaViolation),
    /// The Σ component is violated.
    Sigma(SigmaViolation),
}

impl fmt::Display for OmegaSigmaViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OmegaSigmaViolation::Omega(v) => write!(f, "(Ω,Σ): {v}"),
            OmegaSigmaViolation::Sigma(v) => write!(f, "(Ω,Σ): {v}"),
        }
    }
}

impl std::error::Error for OmegaSigmaViolation {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracles::{FsOracle, OmegaOracle, PsiMode, PsiOracle, SigmaOracle};
    use wfd_sim::FdOracle;

    fn sample_history<O: FdOracle>(
        oracle: &mut O,
        n: usize,
        horizon: Time,
        stride: Time,
    ) -> History<O::Value> {
        let mut h = History::new(n);
        for t in (0..horizon).step_by(stride as usize) {
            for p in ProcessId::all(n) {
                h.record(p, t, oracle.query(p, t));
            }
        }
        h
    }

    fn pset(ids: &[usize]) -> ProcessSet {
        ids.iter().copied().map(ProcessId).collect()
    }

    #[test]
    fn sigma_oracle_history_passes_sigma_check() {
        let f = FailurePattern::with_crashes(5, &[(ProcessId(1), 20), (ProcessId(4), 60)]);
        let mut o = SigmaOracle::new(&f, 100, 3).with_jitter(30);
        let h = sample_history(&mut o, 5, 400, 3);
        let stats = check_sigma(&h, &f).expect("Σ oracle must conform");
        // Every correct process stabilises no later than its oracle
        // stabilisation instant (possibly earlier: noise can happen to be
        // clean once all faulty processes have crashed).
        assert!(stats.stabilization_time().unwrap() <= 130);
    }

    #[test]
    fn sigma_check_catches_intersection_violation() {
        let mut h = History::new(4);
        h.record(ProcessId(0), 0, pset(&[0, 1]));
        h.record(ProcessId(1), 1, pset(&[2, 3]));
        let f = FailurePattern::failure_free(4);
        let err = check_sigma(&h, &f).unwrap_err();
        assert!(matches!(err, SigmaViolation::Intersection { .. }));
        assert!(err.to_string().contains("intersection"));
    }

    #[test]
    fn sigma_check_catches_completeness_violation() {
        let f = FailurePattern::with_crashes(3, &[(ProcessId(2), 0)]);
        let mut h = History::new(3);
        // p0 (correct) keeps quoting the crashed p2 forever.
        for t in 0..10 {
            h.record(ProcessId(0), t, pset(&[0, 2]));
        }
        let err = check_sigma(&h, &f).unwrap_err();
        assert!(matches!(err, SigmaViolation::Completeness { p, .. } if p == ProcessId(0)));
    }

    #[test]
    fn sigma_check_allows_dirty_prefix() {
        let f = FailurePattern::with_crashes(3, &[(ProcessId(2), 0)]);
        let mut h = History::new(3);
        h.record(ProcessId(0), 0, pset(&[0, 2]));
        h.record(ProcessId(0), 1, pset(&[0, 1]));
        h.record(ProcessId(1), 2, pset(&[0, 1]));
        let stats = check_sigma(&h, &f).expect("dirty prefix then clean suffix conforms");
        assert_eq!(stats.completeness_times[0], Some(1));
    }

    #[test]
    fn omega_oracle_history_passes_omega_check() {
        let f = FailurePattern::with_crashes(4, &[(ProcessId(0), 10)]);
        let mut o = OmegaOracle::new(&f, 50, 1).with_jitter(25);
        let h = sample_history(&mut o, 4, 300, 2);
        let stats = check_omega(&h, &f).expect("Ω oracle must conform");
        assert_eq!(stats.leader, Some(ProcessId(1)));
        assert!(stats.stabilization_time.unwrap() <= 75);
    }

    #[test]
    fn omega_check_catches_disagreement() {
        let f = FailurePattern::failure_free(2);
        let mut h = History::new(2);
        h.record(ProcessId(0), 0, ProcessId(0));
        h.record(ProcessId(1), 1, ProcessId(1));
        assert!(matches!(
            check_omega(&h, &f).unwrap_err(),
            OmegaViolation::Disagreement { .. }
        ));
    }

    #[test]
    fn omega_check_catches_faulty_leader() {
        let f = FailurePattern::with_crashes(2, &[(ProcessId(1), 0)]);
        let mut h = History::new(2);
        h.record(ProcessId(0), 5, ProcessId(1));
        assert!(matches!(
            check_omega(&h, &f).unwrap_err(),
            OmegaViolation::FaultyLeader { leader } if leader == ProcessId(1)
        ));
    }

    #[test]
    fn omega_check_on_empty_history_is_vacuous() {
        let f = FailurePattern::failure_free(2);
        let h: History<ProcessId> = History::new(2);
        let stats = check_omega(&h, &f).expect("vacuous");
        assert_eq!(stats.leader, None);
    }

    #[test]
    fn fs_oracle_history_passes_fs_check() {
        let f = FailurePattern::with_crashes(3, &[(ProcessId(1), 30)]);
        let mut o = FsOracle::new(&f, 10, 4);
        let h = sample_history(&mut o, 3, 200, 5);
        let stats = check_fs(&h, &f).expect("FS oracle must conform");
        assert!(stats.first_red.unwrap() >= 30);
    }

    #[test]
    fn fs_check_catches_untruthful_red() {
        let f = FailurePattern::with_crashes(2, &[(ProcessId(0), 50)]);
        let mut h = History::new(2);
        h.record(ProcessId(1), 10, Signal::Red);
        assert!(matches!(
            check_fs(&h, &f).unwrap_err(),
            FsViolation::UntruthfulRed { t: 10, .. }
        ));
    }

    #[test]
    fn fs_check_catches_missed_failure() {
        let f = FailurePattern::with_crashes(2, &[(ProcessId(0), 5)]);
        let mut h = History::new(2);
        h.record(ProcessId(1), 100, Signal::Green);
        assert!(matches!(
            check_fs(&h, &f).unwrap_err(),
            FsViolation::MissedFailure { p } if p == ProcessId(1)
        ));
    }

    #[test]
    fn fs_check_failure_free_all_green_ok() {
        let f = FailurePattern::failure_free(2);
        let mut h = History::new(2);
        h.record(ProcessId(0), 0, Signal::Green);
        h.record(ProcessId(1), 100, Signal::Green);
        let stats = check_fs(&h, &f).expect("all green conforms");
        assert_eq!(stats.first_red, None);
    }

    #[test]
    fn psi_oracle_histories_pass_psi_check_in_both_modes() {
        // Consensus mode.
        let f1 = FailurePattern::failure_free(3);
        let mut psi1 = PsiOracle::new(&f1, PsiMode::OmegaSigma, 40, 20, 5);
        let h1 = sample_history(&mut psi1, 3, 400, 3);
        let s1 = check_psi(&h1, &f1).expect("consensus-mode Ψ conforms");
        assert_eq!(s1.phase, PsiPhase::OmegaSigma);
        assert!(s1.switch_times.iter().all(|t| t.is_some()));

        // FS mode (requires a failure).
        let f2 = FailurePattern::with_crashes(3, &[(ProcessId(0), 25)]);
        let mut psi2 = PsiOracle::new(&f2, PsiMode::Fs, 0, 15, 6);
        let h2 = sample_history(&mut psi2, 3, 400, 3);
        let s2 = check_psi(&h2, &f2).expect("fs-mode Ψ conforms");
        assert_eq!(s2.phase, PsiPhase::Fs);
    }

    #[test]
    fn psi_check_catches_bot_after_switch() {
        let f = FailurePattern::failure_free(2);
        let mut h = History::new(2);
        h.record(
            ProcessId(0),
            0,
            PsiValue::OmegaSigma(crate::value::OmegaSigma {
                leader: ProcessId(0),
                quorum: pset(&[0, 1]),
            }),
        );
        h.record(ProcessId(0), 1, PsiValue::Bot);
        assert!(matches!(
            check_psi(&h, &f).unwrap_err(),
            PsiViolation::BotAfterSwitch { .. }
        ));
    }

    #[test]
    fn psi_check_catches_global_mode_mix() {
        let f = FailurePattern::with_crashes(2, &[(ProcessId(1), 0)]);
        let mut h = History::new(2);
        h.record(
            ProcessId(0),
            1,
            PsiValue::OmegaSigma(crate::value::OmegaSigma {
                leader: ProcessId(0),
                quorum: pset(&[0]),
            }),
        );
        h.record(ProcessId(1), 2, PsiValue::Fs(Signal::Red));
        assert!(matches!(
            check_psi(&h, &f).unwrap_err(),
            PsiViolation::GlobalModeMix { .. }
        ));
    }

    #[test]
    fn psi_check_catches_premature_fs_mode() {
        let f = FailurePattern::with_crashes(2, &[(ProcessId(1), 100)]);
        let mut h = History::new(2);
        h.record(ProcessId(0), 10, PsiValue::Fs(Signal::Green));
        assert!(matches!(
            check_psi(&h, &f).unwrap_err(),
            PsiViolation::PrematureFsMode { t: 10, .. }
        ));
    }

    #[test]
    fn psi_check_all_bot_is_conforming_prefix() {
        let f = FailurePattern::failure_free(2);
        let mut h = History::new(2);
        h.record(ProcessId(0), 0, PsiValue::Bot);
        h.record(ProcessId(1), 5, PsiValue::Bot);
        let stats = check_psi(&h, &f).expect("all-⊥ prefix conforms");
        assert_eq!(stats.phase, PsiPhase::AllBot);
    }

    #[test]
    fn omega_sigma_pair_check() {
        let f = FailurePattern::with_crashes(4, &[(ProcessId(3), 10)]);
        let mut omega = OmegaOracle::new(&f, 50, 1);
        let mut sigma = SigmaOracle::new(&f, 50, 1);
        let mut h = History::new(4);
        for t in (0..300).step_by(4) {
            for p in ProcessId::all(4) {
                h.record(p, t, (omega.query(p, t), sigma.query(p, t)));
            }
        }
        let (o, s) = check_omega_sigma(&h, &f).expect("(Ω,Σ) conforms");
        assert_eq!(o.leader, Some(ProcessId(0)));
        assert!(s.stabilization_time().is_some());
    }
}
