//! Detector-to-detector reductions — the paper's "`D` can be transformed
//! into `D′`" relation, executable at the oracle level.
//!
//! A reduction wraps an oracle for one detector and presents the
//! interface of a weaker one, computing each output *locally* from the
//! wrapped module's output (these particular classical reductions need no
//! communication). They complement the heavyweight algorithmic
//! extractions (Figures 1 and 3), which are reductions that *do* need to
//! run algorithms:
//!
//! * P ⪰ ◇P ⪰ ◇S — suspicion lists weaken monotonically (identity).
//! * P ⪰ FS — [`FsFromPerfect`]: signal red as soon as anyone is
//!   (accurately) suspected.
//! * ◇P ⪰ Ω — [`OmegaFromEventuallyPerfect`]: trust the smallest
//!   unsuspected process.
//! * (Ω, Σ) ⪰ Ψ-in-consensus-mode — [`PsiFromOmegaSigma`]: output ⊥
//!   until an arbitrary local instant, then mirror (Ω, Σ) (one admissible
//!   Ψ history; the paper's Ψ is *weaker* because it may instead choose
//!   FS after a failure).

use crate::value::{OmegaSigma, PsiValue, Signal};
use wfd_sim::{FdOracle, ProcessId, ProcessSet, Time};

/// FS from the perfect detector P: red iff P suspects someone. P's strong
/// accuracy makes the red truthful; its strong completeness makes it
/// eventually permanent after a crash.
#[derive(Clone, Debug)]
pub struct FsFromPerfect<O> {
    inner: O,
}

impl<O: FdOracle<Value = ProcessSet>> FsFromPerfect<O> {
    /// Wrap a P oracle.
    pub fn new(inner: O) -> Self {
        FsFromPerfect { inner }
    }
}

impl<O: FdOracle<Value = ProcessSet>> FdOracle for FsFromPerfect<O> {
    type Value = Signal;

    fn query(&mut self, p: ProcessId, t: Time) -> Signal {
        if self.inner.query(p, t).is_empty() {
            Signal::Green
        } else {
            Signal::Red
        }
    }
}

/// Ω from ◇P: the smallest currently-unsuspected process. Once ◇P is
/// accurate and complete, this is the smallest correct process at
/// everyone, forever.
#[derive(Clone, Debug)]
pub struct OmegaFromEventuallyPerfect<O> {
    inner: O,
    n: usize,
}

impl<O: FdOracle<Value = ProcessSet>> OmegaFromEventuallyPerfect<O> {
    /// Wrap a ◇P oracle for a system of `n` processes.
    pub fn new(inner: O, n: usize) -> Self {
        assert!(n > 0, "system must be non-empty");
        OmegaFromEventuallyPerfect { inner, n }
    }
}

impl<O: FdOracle<Value = ProcessSet>> FdOracle for OmegaFromEventuallyPerfect<O> {
    type Value = ProcessId;

    fn query(&mut self, p: ProcessId, t: Time) -> ProcessId {
        let suspected = self.inner.query(p, t);
        ProcessId::all(self.n)
            .find(|q| !suspected.contains(*q))
            // All suspected (transient ◇P noise): fall back to self.
            .unwrap_or(p)
    }
}

/// One admissible Ψ history from an (Ω, Σ) oracle: ⊥ before `switch_at`,
/// the (Ω, Σ) output afterwards. Witnesses the trivial direction
/// (Ω, Σ) ⪰ Ψ of the weakest-QC-detector result.
#[derive(Clone, Debug)]
pub struct PsiFromOmegaSigma<O> {
    inner: O,
    switch_at: Time,
}

impl<O: FdOracle<Value = (ProcessId, ProcessSet)>> PsiFromOmegaSigma<O> {
    /// Wrap an (Ω, Σ) oracle; Ψ leaves ⊥ at `switch_at`.
    pub fn new(inner: O, switch_at: Time) -> Self {
        PsiFromOmegaSigma { inner, switch_at }
    }
}

impl<O: FdOracle<Value = (ProcessId, ProcessSet)>> FdOracle for PsiFromOmegaSigma<O> {
    type Value = PsiValue;

    fn query(&mut self, p: ProcessId, t: Time) -> PsiValue {
        if t < self.switch_at {
            PsiValue::Bot
        } else {
            let (leader, quorum) = self.inner.query(p, t);
            PsiValue::OmegaSigma(OmegaSigma { leader, quorum })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::{check_fs, check_omega, check_psi};
    use crate::history::History;
    use crate::oracles::{
        EventuallyPerfectOracle, OmegaOracle, PairOracle, PerfectOracle, SigmaOracle,
    };
    use wfd_sim::FailurePattern;

    fn sample<O: FdOracle>(oracle: &mut O, n: usize, horizon: Time) -> History<O::Value> {
        let mut h = History::new(n);
        for t in 0..horizon {
            for p in ProcessId::all(n) {
                h.record(p, t, oracle.query(p, t));
            }
        }
        h
    }

    #[test]
    fn fs_from_perfect_conforms_to_fs() {
        let f = FailurePattern::with_crashes(3, &[(ProcessId(1), 40)]);
        let mut fs = FsFromPerfect::new(PerfectOracle::new(&f, 5));
        let h = sample(&mut fs, 3, 200);
        let stats = check_fs(&h, &f).expect("P-derived FS conforms");
        assert_eq!(stats.first_red, Some(45));
    }

    #[test]
    fn fs_from_perfect_failure_free_stays_green() {
        let f = FailurePattern::failure_free(3);
        let mut fs = FsFromPerfect::new(PerfectOracle::new(&f, 5));
        let h = sample(&mut fs, 3, 100);
        assert_eq!(check_fs(&h, &f).expect("conforms").first_red, None);
    }

    #[test]
    fn omega_from_eventually_perfect_conforms_to_omega() {
        let f = FailurePattern::with_crashes(4, &[(ProcessId(0), 30)]);
        let mut omega =
            OmegaFromEventuallyPerfect::new(EventuallyPerfectOracle::new(&f, 100, 7), 4);
        let h = sample(&mut omega, 4, 400);
        let stats = check_omega(&h, &f).expect("◇P-derived Ω conforms");
        assert_eq!(stats.leader, Some(ProcessId(1)));
    }

    #[test]
    fn psi_from_omega_sigma_conforms_to_psi() {
        let f = FailurePattern::with_crashes(3, &[(ProcessId(2), 60)]);
        let inner = PairOracle::new(OmegaOracle::new(&f, 100, 3), SigmaOracle::new(&f, 100, 3));
        let mut psi = PsiFromOmegaSigma::new(inner, 50);
        let h = sample(&mut psi, 3, 400);
        let stats = check_psi(&h, &f).expect("(Ω,Σ)-derived Ψ conforms");
        assert_eq!(stats.phase, crate::check::PsiPhase::OmegaSigma);
    }

    #[test]
    fn omega_fallback_when_everyone_suspected() {
        struct AllSuspects(usize);
        impl FdOracle for AllSuspects {
            type Value = ProcessSet;
            fn query(&mut self, _p: ProcessId, _t: Time) -> ProcessSet {
                ProcessSet::full(self.0)
            }
        }
        let mut omega = OmegaFromEventuallyPerfect::new(AllSuspects(3), 3);
        assert_eq!(omega.query(ProcessId(2), 0), ProcessId(2));
    }
}
