//! Conformance sweeps: every oracle's histories must satisfy its own
//! specification checker, for arbitrary admissible failure patterns,
//! seeds, stabilisation parameters and sampling grids. This is the
//! soundness contract between `oracles` and `check` that everything else
//! in the workspace relies on. Cases are drawn from a deterministic PRNG
//! sweep so failures reproduce exactly.

use wfd_detectors::check::{check_fs, check_omega, check_psi, check_sigma};
use wfd_detectors::oracles::{FsOracle, OmegaOracle, PsiMode, PsiOracle, SigmaOracle};
use wfd_detectors::History;
use wfd_sim::{FailurePattern, FdOracle, ProcessId, SimRng, Time};

/// Cases per conformance sweep.
const CASES: u64 = 48;

/// Draw a failure pattern on `n` processes with at least one correct
/// process and crash times below `max_t` (~40% crash probability each).
fn gen_pattern(rng: &mut SimRng, n: usize, max_t: u64) -> FailurePattern {
    let mut crashes: Vec<Option<u64>> = (0..n)
        .map(|_| rng.chance(40).then(|| rng.gen_range(max_t)))
        .collect();
    if crashes.iter().all(|c| c.is_some()) {
        let keep = rng.pick(n);
        crashes[keep] = None;
    }
    let mut f = FailurePattern::failure_free(n);
    for (i, c) in crashes.iter().enumerate() {
        if let Some(t) = c {
            f = f.with_crash(ProcessId(i), *t);
        }
    }
    f
}

/// Sample an oracle on a regular grid well past stabilisation.
fn sample<O: FdOracle>(oracle: &mut O, n: usize, horizon: Time, stride: u64) -> History<O::Value> {
    let mut h = History::new(n);
    for t in (0..horizon).step_by(stride as usize) {
        for p in ProcessId::all(n) {
            h.record(p, t, oracle.query(p, t));
        }
    }
    h
}

#[test]
fn omega_oracle_conforms() {
    for case in 0..CASES {
        let mut rng = SimRng::new(0x3E6A + case);
        let pattern = gen_pattern(&mut rng, 5, 200);
        let seed = rng.gen_range(10_000);
        let stabilize = rng.gen_range(300);
        let jitter = rng.gen_range(100);
        let stride = 1 + rng.gen_range(6);
        let mut o = OmegaOracle::new(&pattern, stabilize, seed).with_jitter(jitter);
        let h = sample(&mut o, 5, stabilize + jitter + 500, stride);
        assert!(check_omega(&h, &pattern).is_ok(), "case {case}");
    }
}

#[test]
fn sigma_oracle_conforms() {
    for case in 0..CASES {
        let mut rng = SimRng::new(0x0005_163A + case);
        let pattern = gen_pattern(&mut rng, 5, 200);
        let seed = rng.gen_range(10_000);
        let stabilize = rng.gen_range(300);
        let jitter = rng.gen_range(100);
        let stride = 1 + rng.gen_range(6);
        let mut o = SigmaOracle::new(&pattern, stabilize, seed).with_jitter(jitter);
        let h = sample(&mut o, 5, stabilize + jitter + 500, stride);
        assert!(check_sigma(&h, &pattern).is_ok(), "case {case}");
    }
}

#[test]
fn fs_oracle_conforms() {
    for case in 0..CASES {
        let mut rng = SimRng::new(0xF50C + case);
        let pattern = gen_pattern(&mut rng, 4, 200);
        let seed = rng.gen_range(10_000);
        let delay = rng.gen_range(100);
        let stride = 1 + rng.gen_range(6);
        let mut o = FsOracle::new(&pattern, delay, seed);
        let h = sample(&mut o, 4, 600, stride);
        assert!(check_fs(&h, &pattern).is_ok(), "case {case}");
    }
}

#[test]
fn psi_oracle_conforms_consensus_mode() {
    for case in 0..CASES {
        let mut rng = SimRng::new(0x0009_510C + case);
        let pattern = gen_pattern(&mut rng, 4, 200);
        let seed = rng.gen_range(10_000);
        let switch = rng.gen_range(300);
        let jitter = rng.gen_range(100);
        let mut o = PsiOracle::new(&pattern, PsiMode::OmegaSigma, switch, jitter, seed);
        let h = sample(&mut o, 4, switch + jitter + 500, 3);
        assert!(check_psi(&h, &pattern).is_ok(), "case {case}");
    }
}

#[test]
fn psi_oracle_conforms_fs_mode() {
    let mut produced = 0u64;
    let mut case = 0u64;
    // FS mode needs a pattern with at least one crash: redraw until the
    // sweep has produced `CASES` crashing patterns.
    while produced < CASES {
        let mut rng = SimRng::new(0x0009_51F5 + case);
        case += 1;
        let pattern = gen_pattern(&mut rng, 4, 200);
        if pattern.first_crash_time().is_none() {
            continue;
        }
        produced += 1;
        let seed = rng.gen_range(10_000);
        let switch = rng.gen_range(300);
        let jitter = rng.gen_range(100);
        let mut o = PsiOracle::new(&pattern, PsiMode::Fs, switch, jitter, seed);
        let h = sample(&mut o, 4, switch + jitter + 700, 3);
        assert!(check_psi(&h, &pattern).is_ok(), "case {case}");
    }
}
