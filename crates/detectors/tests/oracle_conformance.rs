//! Property tests: every oracle's histories must satisfy its own
//! specification checker, for arbitrary admissible failure patterns,
//! seeds, stabilisation parameters and sampling grids. This is the
//! soundness contract between `oracles` and `check` that everything else
//! in the workspace relies on.

use proptest::prelude::*;
use wfd_detectors::check::{check_fs, check_omega, check_psi, check_sigma};
use wfd_detectors::oracles::{FsOracle, OmegaOracle, PsiMode, PsiOracle, SigmaOracle};
use wfd_detectors::History;
use wfd_sim::{FailurePattern, FdOracle, ProcessId, Time};

fn pattern_strategy(n: usize, max_t: u64) -> impl Strategy<Value = FailurePattern> {
    proptest::collection::vec(proptest::option::of(0..max_t), n).prop_filter_map(
        "at least one correct process",
        move |crashes| {
            if crashes.iter().all(|c| c.is_some()) {
                return None;
            }
            let mut f = FailurePattern::failure_free(crashes.len());
            for (i, c) in crashes.iter().enumerate() {
                if let Some(t) = c {
                    f = f.with_crash(ProcessId(i), *t);
                }
            }
            Some(f)
        },
    )
}

/// Sample an oracle on a regular grid well past stabilisation.
fn sample<O: FdOracle>(oracle: &mut O, n: usize, horizon: Time, stride: u64) -> History<O::Value> {
    let mut h = History::new(n);
    for t in (0..horizon).step_by(stride as usize) {
        for p in ProcessId::all(n) {
            h.record(p, t, oracle.query(p, t));
        }
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn omega_oracle_conforms(
        pattern in pattern_strategy(5, 200),
        seed in 0u64..10_000,
        stabilize in 0u64..300,
        jitter in 0u64..100,
        stride in 1u64..7,
    ) {
        let mut o = OmegaOracle::new(&pattern, stabilize, seed).with_jitter(jitter);
        let h = sample(&mut o, 5, stabilize + jitter + 500, stride);
        prop_assert!(check_omega(&h, &pattern).is_ok());
    }

    #[test]
    fn sigma_oracle_conforms(
        pattern in pattern_strategy(5, 200),
        seed in 0u64..10_000,
        stabilize in 0u64..300,
        jitter in 0u64..100,
        stride in 1u64..7,
    ) {
        let mut o = SigmaOracle::new(&pattern, stabilize, seed).with_jitter(jitter);
        let h = sample(&mut o, 5, stabilize + jitter + 500, stride);
        prop_assert!(check_sigma(&h, &pattern).is_ok());
    }

    #[test]
    fn fs_oracle_conforms(
        pattern in pattern_strategy(4, 200),
        seed in 0u64..10_000,
        delay in 0u64..100,
        stride in 1u64..7,
    ) {
        let mut o = FsOracle::new(&pattern, delay, seed);
        let h = sample(&mut o, 4, 600, stride);
        prop_assert!(check_fs(&h, &pattern).is_ok());
    }

    #[test]
    fn psi_oracle_conforms_consensus_mode(
        pattern in pattern_strategy(4, 200),
        seed in 0u64..10_000,
        switch in 0u64..300,
        jitter in 0u64..100,
    ) {
        let mut o = PsiOracle::new(&pattern, PsiMode::OmegaSigma, switch, jitter, seed);
        let h = sample(&mut o, 4, switch + jitter + 500, 3);
        prop_assert!(check_psi(&h, &pattern).is_ok());
    }

    #[test]
    fn psi_oracle_conforms_fs_mode(
        pattern in pattern_strategy(4, 200)
            .prop_filter("needs a failure", |f| f.first_crash_time().is_some()),
        seed in 0u64..10_000,
        switch in 0u64..300,
        jitter in 0u64..100,
    ) {
        let mut o = PsiOracle::new(&pattern, PsiMode::Fs, switch, jitter, seed);
        let h = sample(&mut o, 4, switch + jitter + 700, 3);
        prop_assert!(check_psi(&h, &pattern).is_ok());
    }
}
