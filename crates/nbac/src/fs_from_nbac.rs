//! Implementing FS from any NBAC solution — the other half of
//! Theorem 8(b) (*"It is known that NBAC can be used to implement FS in
//! any environment [5, 11]"*).
//!
//! Every process runs NBAC instances forever, voting `Yes` in each. With
//! unanimous `Yes` votes, an `Abort` can only be caused by a failure, so:
//! the FS output starts `green` and flips permanently to `red` the first
//! time an instance aborts. Completeness holds because once a process
//! crashes, it stops voting, so every subsequent instance must abort.

use crate::spec::{Decision, NbacOutput, Vote};
use crate::to_qc::NbacAlgorithm;
use std::collections::BTreeMap;
use std::fmt;
use wfd_detectors::Signal;
use wfd_sim::{Ctx, Footprint, ProcessId, Protocol, StepKind};

/// Messages: NBAC-instance traffic tagged with the instance number.
#[derive(Clone, Debug, PartialEq)]
pub struct TaggedMsg<M> {
    /// Instance number.
    pub k: u64,
    /// The inner NBAC message.
    pub inner: M,
}

/// One process of the FS-from-NBAC construction. Outputs [`Signal`]
/// values (validate with [`check_fs`](wfd_detectors::check::check_fs)).
pub struct FsFromNbac<N: NbacAlgorithm> {
    make: Box<dyn FnMut() -> N + Send>,
    instances: BTreeMap<u64, N>,
    /// The instance this process is currently voting in.
    current: u64,
    red: bool,
    started: bool,
    steps_since_output: u64,
}

impl<N: NbacAlgorithm> fmt::Debug for FsFromNbac<N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FsFromNbac")
            .field("current", &self.current)
            .field("red", &self.red)
            .finish_non_exhaustive()
    }
}

impl<N: NbacAlgorithm> FsFromNbac<N> {
    /// Create a process; `make` builds a fresh NBAC instance per round.
    pub fn new(make: impl FnMut() -> N + Send + 'static) -> Self {
        FsFromNbac {
            make: Box::new(make),
            instances: BTreeMap::new(),
            current: 0,
            red: false,
            started: false,
            steps_since_output: 0,
        }
    }

    /// Whether this process has turned red.
    pub fn is_red(&self) -> bool {
        self.red
    }

    /// The NBAC instance this process is currently voting in.
    pub fn current_instance(&self) -> u64 {
        self.current
    }

    fn with_instance(&mut self, ctx: &mut Ctx<Self>, k: u64, f: impl FnOnce(&mut N, &mut Ctx<N>)) {
        let fd = ctx.fd().clone();
        let mut ictx = Ctx::<N>::detached(ctx.me(), ctx.n(), ctx.now(), fd);
        let make = &mut self.make;
        let inst = self.instances.entry(k).or_insert_with(&mut *make);
        f(inst, &mut ictx);
        for (to, msg) in ictx.take_sends() {
            ctx.send(to, TaggedMsg { k, inner: msg });
        }
        for out in ictx.take_outputs() {
            if let NbacOutput::Decided(d) = out {
                self.on_instance_decision(ctx, k, d);
            }
        }
    }

    fn on_instance_decision(&mut self, ctx: &mut Ctx<Self>, k: u64, d: Decision) {
        if self.red || k != self.current {
            return;
        }
        match d {
            Decision::Abort => {
                // Unanimous-Yes NBAC aborted: a failure must have occurred.
                self.red = true;
                ctx.output(Signal::Red);
            }
            Decision::Commit => {
                self.current = k + 1;
                self.start_current(ctx);
            }
        }
    }

    fn start_current(&mut self, ctx: &mut Ctx<Self>) {
        let k = self.current;
        self.with_instance(ctx, k, |nbac, ictx| nbac.on_invoke(ictx, Vote::Yes));
    }
}

impl<N: NbacAlgorithm> Protocol for FsFromNbac<N> {
    type Msg = TaggedMsg<N::Msg>;
    type Output = Signal;
    type Inv = ();
    type Fd = N::Fd;

    fn on_start(&mut self, ctx: &mut Ctx<Self>) {
        self.started = true;
        ctx.output(Signal::Green);
        self.start_current(ctx);
    }

    fn on_tick(&mut self, ctx: &mut Ctx<Self>) {
        if !self.started {
            return;
        }
        if !self.red {
            let k = self.current;
            self.with_instance(ctx, k, |nbac, ictx| nbac.on_tick(ictx));
        }
        // Dense sampling for the checker.
        self.steps_since_output += 1;
        if self.steps_since_output >= 4 {
            self.steps_since_output = 0;
            ctx.output(if self.red { Signal::Red } else { Signal::Green });
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<Self>, from: ProcessId, msg: Self::Msg) {
        let TaggedMsg { k, inner } = msg;
        if self.red {
            return;
        }
        self.with_instance(ctx, k, |nbac, ictx| nbac.on_message(ictx, from, inner));
    }

    fn footprint(&self, _me: ProcessId, n: usize, step: StepKind<'_, Self>) -> Footprint {
        match step {
            // A red process has quiesced for deliveries: `on_message`
            // returns before touching the hosted instance, so the step
            // is purely local.
            StepKind::Deliver { .. } if self.red => Footprint::local(),
            // Otherwise FS never settles: every fourth tick re-samples
            // the signal, and the hosted NBAC instance may message
            // anyone at any time.
            // wfd-lint: allow(d7-footprint, hosted NBAC rounds may broadcast and the tick sampler outputs; tightening further needs per-instance effect tracking)
            _ => Footprint::opaque(n),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::from_qc::NbacFromQc;
    use wfd_detectors::check::check_fs;
    use wfd_detectors::history::history_from_outputs;
    use wfd_detectors::oracles::{FsOracle, PairOracle, PsiMode, PsiOracle};
    use wfd_quittable::PsiQc;
    use wfd_sim::{FailurePattern, RandomFair, Sim, SimConfig};

    type Nbac = NbacFromQc<PsiQc<u8>>;
    type Host = FsFromNbac<Nbac>;

    fn run_fs(
        pattern: &FailurePattern,
        psi_mode: PsiMode,
        seed: u64,
        horizon: u64,
    ) -> wfd_detectors::History<Signal> {
        let n = pattern.n();
        // NOTE: the inner detector here is (FS, Ψ) because our in-repo
        // NBAC is Figure 4 over Ψ-QC. The construction itself works with
        // any NBAC solution whatsoever.
        let fd = PairOracle::new(
            FsOracle::new(pattern, 30, seed),
            PsiOracle::new(pattern, psi_mode, 50, 30, seed),
        );
        let mut sim = Sim::new(
            SimConfig::new(n).with_horizon(horizon),
            (0..n)
                .map(|_| Host::new(move || NbacFromQc::new(n, PsiQc::new())))
                .collect(),
            pattern.clone(),
            fd,
            RandomFair::new(seed),
        );
        sim.run();
        history_from_outputs(sim.trace(), |s: &Signal| Some(*s))
    }

    #[test]
    fn failure_free_stays_green_forever() {
        let n = 3;
        let pattern = FailurePattern::failure_free(n);
        for seed in 0..3 {
            let h = run_fs(&pattern, PsiMode::OmegaSigma, seed, 60_000);
            let stats = check_fs(&h, &pattern).unwrap_or_else(|v| panic!("seed {seed}: {v}"));
            assert_eq!(stats.first_red, None, "seed {seed}");
            // And instances keep committing: green outputs keep coming.
            assert!(h.len() > 20, "seed {seed}: expected a dense green history");
        }
    }

    #[test]
    fn crash_turns_everyone_red() {
        let n = 3;
        let pattern = FailurePattern::failure_free(n).with_crash(ProcessId(1), 400);
        for seed in 0..3 {
            let h = run_fs(&pattern, PsiMode::OmegaSigma, seed, 80_000);
            let stats = check_fs(&h, &pattern).unwrap_or_else(|v| panic!("seed {seed}: {v}"));
            assert!(
                stats.first_red.is_some(),
                "seed {seed}: a crash must eventually turn FS red"
            );
            assert!(
                stats.first_red.unwrap() >= 400,
                "seed {seed}: red is truthful"
            );
        }
    }

    #[test]
    fn accessors() {
        let h: Host = FsFromNbac::new(|| NbacFromQc::new(2, PsiQc::new()));
        assert!(!h.is_red());
        assert_eq!(h.current_instance(), 0);
    }
}
