//! # wfd-nbac — non-blocking atomic commit and the (Ψ, FS) result
//! (paper §7)
//!
//! NBAC: every process votes `Yes`/`No`; all must agree on
//! `Commit`/`Abort`, where `Commit` requires unanimous `Yes` votes and
//! `Abort` requires a `No` vote or a failure. Corollary 10: **for all
//! environments, (Ψ, FS) is the weakest failure detector to solve
//! NBAC** — proved via the equivalence "NBAC = QC + FS" (Theorem 8):
//!
//! * [`spec`] — the NBAC problem and its trace checker.
//! * [`from_qc`] — **Figure 4**: with FS, any QC solution becomes an NBAC
//!   solution (collect votes until unanimity or a red signal, then run QC
//!   on the verdict).
//! * [`to_qc`] — **Figure 5**: any NBAC solution yields a QC solution
//!   (flood proposals, vote `Yes`; `Abort` ⇒ quit, `Commit` ⇒ smallest
//!   proposal).
//! * [`fs_from_nbac`] — the other half of Theorem 8(b): repeatedly
//!   running NBAC with `Yes` votes implements FS (an `Abort` can then
//!   only mean a failure).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod from_qc;
pub mod fs_from_nbac;
pub mod spec;
pub mod to_qc;

pub use from_qc::NbacFromQc;
pub use spec::{check_nbac, Decision, NbacOutput, NbacStats, NbacViolation, Vote};
pub use to_qc::QcFromNbac;
