//! The non-blocking atomic commit problem and its trace checker.
//!
//! Paper §7.1 — each process invokes `VOTE(v)`, `v ∈ {Yes, No}`, which
//! returns `Commit` or `Abort`:
//!
//! * **Termination**: if every correct process votes, every correct
//!   process eventually returns.
//! * **Uniform Agreement**: no two processes return different values.
//! * **Validity**: (a) `Commit` requires that *all* processes previously
//!   voted `Yes`; (b) `Abort` requires that some process previously voted
//!   `No` or a failure previously occurred.
//!
//! Note the asymmetries against QC that the paper stresses: a single `No`
//! *forces* `Abort`, and `Abort` is sometimes inevitable (a process that
//! crashes before voting), whereas QC's `Q` is never forced.

use std::collections::BTreeMap;
use std::fmt::{self, Debug};
use wfd_sim::{FailurePattern, ProcessId, Time, Trace};

/// A vote.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Vote {
    /// "I am willing to commit."
    Yes,
    /// "We must abort."
    No,
}

impl fmt::Display for Vote {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Vote::Yes => "Yes",
            Vote::No => "No",
        })
    }
}

/// An NBAC decision.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Decision {
    /// Commit the transaction (requires unanimous `Yes`).
    Commit,
    /// Abort the transaction.
    Abort,
}

impl fmt::Display for Decision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Decision::Commit => "Commit",
            Decision::Abort => "Abort",
        })
    }
}

/// Observable outputs of an NBAC protocol.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum NbacOutput {
    /// The process cast its vote (emitted at invocation, so checkers know
    /// *when* each vote happened).
    Voted(Vote),
    /// The process returned a decision.
    Decided(Decision),
}

/// A violation of the NBAC specification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NbacViolation {
    /// Two processes decided differently.
    Agreement {
        /// First decider and decision.
        p: (ProcessId, Decision),
        /// Conflicting decider and decision.
        q: (ProcessId, Decision),
    },
    /// `Commit` was decided although some process had not voted `Yes`
    /// beforehand.
    InvalidCommit {
        /// The decider.
        p: ProcessId,
        /// Decision time.
        t: Time,
        /// A process with no prior `Yes` vote.
        missing: ProcessId,
    },
    /// `Abort` was decided although nobody voted `No` and no failure had
    /// occurred.
    InvalidAbort {
        /// The decider.
        p: ProcessId,
        /// Decision time.
        t: Time,
    },
    /// A process decided more than once.
    Integrity {
        /// The repeat offender.
        p: ProcessId,
    },
    /// A correct process that voted never decided.
    Termination {
        /// The starved process.
        p: ProcessId,
    },
}

impl fmt::Display for NbacViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NbacViolation::Agreement { p, q } => write!(
                f,
                "NBAC agreement violated: {} decided {} but {} decided {}",
                p.0, p.1, q.0, q.1
            ),
            NbacViolation::InvalidCommit { p, t, missing } => write!(
                f,
                "NBAC validity(a) violated: {p} committed at {t} but {missing} had not voted Yes"
            ),
            NbacViolation::InvalidAbort { p, t } => write!(
                f,
                "NBAC validity(b) violated: {p} aborted at {t} with no No vote and no failure"
            ),
            NbacViolation::Integrity { p } => {
                write!(f, "NBAC integrity violated: {p} decided more than once")
            }
            NbacViolation::Termination { p } => write!(
                f,
                "NBAC termination violated: correct {p} voted but never decided"
            ),
        }
    }
}

impl std::error::Error for NbacViolation {}

/// Diagnostics from a successful NBAC check.
#[derive(Clone, Debug)]
pub struct NbacStats {
    /// The common decision, if anyone decided.
    pub decision: Option<Decision>,
    /// Per process: vote and its time.
    pub votes: BTreeMap<ProcessId, (Time, Vote)>,
    /// Per process: decision time.
    pub decision_times: BTreeMap<ProcessId, Time>,
}

/// Check a run of an NBAC protocol against the specification, using the
/// `Voted`/`Decided` outputs recorded in the trace.
///
/// # Errors
///
/// Returns the first violation found.
pub fn check_nbac<M>(
    trace: &Trace<M, NbacOutput>,
    pattern: &FailurePattern,
) -> Result<NbacStats, NbacViolation>
where
    M: Clone + Debug,
{
    let mut votes: BTreeMap<ProcessId, (Time, Vote)> = BTreeMap::new();
    let mut decision_times: BTreeMap<ProcessId, Time> = BTreeMap::new();
    let mut first: Option<(ProcessId, Decision)> = None;

    for (t, p, out) in trace.outputs() {
        match out {
            NbacOutput::Voted(v) => {
                votes.entry(p).or_insert((t, *v));
            }
            NbacOutput::Decided(d) => {
                if decision_times.contains_key(&p) {
                    return Err(NbacViolation::Integrity { p });
                }
                decision_times.insert(p, t);
                match &first {
                    None => first = Some((p, *d)),
                    Some((fp, fd)) => {
                        if fd != d {
                            return Err(NbacViolation::Agreement {
                                p: (*fp, *fd),
                                q: (p, *d),
                            });
                        }
                    }
                }
                match d {
                    Decision::Commit => {
                        // All processes must have voted Yes strictly before.
                        for q in wfd_sim::ProcessId::all(pattern.n()) {
                            match votes.get(&q) {
                                Some((vt, Vote::Yes)) if *vt <= t => {}
                                _ => return Err(NbacViolation::InvalidCommit { p, t, missing: q }),
                            }
                        }
                    }
                    Decision::Abort => {
                        let no_by_t = votes.values().any(|(vt, v)| *v == Vote::No && *vt <= t);
                        let failure_by_t = pattern.first_crash_time().is_some_and(|fc| fc <= t);
                        if !no_by_t && !failure_by_t {
                            return Err(NbacViolation::InvalidAbort { p, t });
                        }
                    }
                }
            }
        }
    }

    for p in pattern.correct().iter() {
        if votes.contains_key(&p) && !decision_times.contains_key(&p) {
            return Err(NbacViolation::Termination { p });
        }
    }

    Ok(NbacStats {
        decision: first.map(|(_, d)| d),
        votes,
        decision_times,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfd_sim::EventKind;

    fn trace_with(n: usize, events: &[(Time, usize, NbacOutput)]) -> Trace<(), NbacOutput> {
        let mut t = Trace::new(n);
        for &(time, pid, out) in events {
            t.push(time, ProcessId(pid), EventKind::Output(out));
        }
        t
    }

    #[test]
    fn unanimous_yes_commit_passes() {
        let trace = trace_with(
            2,
            &[
                (0, 0, NbacOutput::Voted(Vote::Yes)),
                (1, 1, NbacOutput::Voted(Vote::Yes)),
                (5, 0, NbacOutput::Decided(Decision::Commit)),
                (6, 1, NbacOutput::Decided(Decision::Commit)),
            ],
        );
        let stats = check_nbac(&trace, &FailurePattern::failure_free(2)).expect("valid");
        assert_eq!(stats.decision, Some(Decision::Commit));
        assert_eq!(stats.votes.len(), 2);
    }

    #[test]
    fn commit_without_all_yes_is_caught() {
        let trace = trace_with(
            2,
            &[
                (0, 0, NbacOutput::Voted(Vote::Yes)),
                (5, 0, NbacOutput::Decided(Decision::Commit)),
            ],
        );
        assert!(matches!(
            check_nbac(&trace, &FailurePattern::failure_free(2)),
            Err(NbacViolation::InvalidCommit { missing, .. }) if missing == ProcessId(1)
        ));
    }

    #[test]
    fn commit_after_a_no_vote_is_caught() {
        let trace = trace_with(
            2,
            &[
                (0, 0, NbacOutput::Voted(Vote::Yes)),
                (1, 1, NbacOutput::Voted(Vote::No)),
                (5, 0, NbacOutput::Decided(Decision::Commit)),
            ],
        );
        assert!(matches!(
            check_nbac(&trace, &FailurePattern::failure_free(2)),
            Err(NbacViolation::InvalidCommit { .. })
        ));
    }

    #[test]
    fn abort_with_no_vote_passes() {
        let trace = trace_with(
            2,
            &[
                (0, 0, NbacOutput::Voted(Vote::No)),
                (1, 1, NbacOutput::Voted(Vote::Yes)),
                (5, 0, NbacOutput::Decided(Decision::Abort)),
                (6, 1, NbacOutput::Decided(Decision::Abort)),
            ],
        );
        check_nbac(&trace, &FailurePattern::failure_free(2)).expect("No vote justifies abort");
    }

    #[test]
    fn abort_with_failure_passes() {
        let pattern = FailurePattern::failure_free(2).with_crash(ProcessId(1), 3);
        let trace = trace_with(
            2,
            &[
                (0, 0, NbacOutput::Voted(Vote::Yes)),
                (5, 0, NbacOutput::Decided(Decision::Abort)),
            ],
        );
        check_nbac(&trace, &pattern).expect("failure justifies abort");
    }

    #[test]
    fn gratuitous_abort_is_caught() {
        let trace = trace_with(
            2,
            &[
                (0, 0, NbacOutput::Voted(Vote::Yes)),
                (1, 1, NbacOutput::Voted(Vote::Yes)),
                (5, 0, NbacOutput::Decided(Decision::Abort)),
            ],
        );
        assert!(matches!(
            check_nbac(&trace, &FailurePattern::failure_free(2)),
            Err(NbacViolation::InvalidAbort { t: 5, .. })
        ));
    }

    #[test]
    fn mixed_decisions_are_caught() {
        let trace = trace_with(
            2,
            &[
                (0, 0, NbacOutput::Voted(Vote::Yes)),
                (1, 1, NbacOutput::Voted(Vote::Yes)),
                (5, 0, NbacOutput::Decided(Decision::Commit)),
                (6, 1, NbacOutput::Decided(Decision::Abort)),
            ],
        );
        assert!(matches!(
            check_nbac(&trace, &FailurePattern::failure_free(2)),
            Err(NbacViolation::Agreement { .. })
        ));
    }

    #[test]
    fn termination_enforced_for_correct_voters() {
        let trace = trace_with(
            2,
            &[
                (0, 0, NbacOutput::Voted(Vote::No)),
                (1, 1, NbacOutput::Voted(Vote::Yes)),
                (5, 0, NbacOutput::Decided(Decision::Abort)),
            ],
        );
        assert!(matches!(
            check_nbac(&trace, &FailurePattern::failure_free(2)),
            Err(NbacViolation::Termination { p }) if p == ProcessId(1)
        ));
    }

    #[test]
    fn displays() {
        assert_eq!(Vote::Yes.to_string(), "Yes");
        assert_eq!(Decision::Abort.to_string(), "Abort");
    }
}
