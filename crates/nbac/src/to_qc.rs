//! **Figure 5 of the paper**: transforming NBAC into QC.
//!
//! ```text
//! Procedure PROPOSE(v):   { v is 1 or 0 }
//! 1  send v to all
//! 2  d := VOTE(Yes)       { the given NBAC algorithm }
//! 3  if d = Abort then return Q
//! 4  else wait until received every q's proposal
//! 5       return smallest proposal received
//! ```
//!
//! Correctness hinges on NBAC's validity: a `Commit` means *everyone*
//! voted `Yes`, hence everyone first flooded its proposal (line 1), so
//! line 4 cannot block; an `Abort` with unanimous `Yes` votes can only be
//! due to a failure, which is exactly when QC may return `Q`.

use crate::spec::{Decision, NbacOutput, Vote};
use std::fmt::Debug;
use wfd_consensus::ConsensusOutput;
use wfd_quittable::QcDecision;
use wfd_sim::{Ctx, Footprint, ProcessId, Protocol, StepKind};

/// Bound on the NBAC interface Figure 5 needs.
pub trait NbacAlgorithm: Protocol<Inv = Vote, Output = NbacOutput> {}

impl<T> NbacAlgorithm for T where T: Protocol<Inv = Vote, Output = NbacOutput> {}

/// Messages: flooded proposals plus wrapped NBAC traffic.
#[derive(Clone, Debug, PartialEq)]
pub enum QcMsg<M> {
    /// Line 1: a process's QC proposal.
    Prop(u8),
    /// Traffic of the hosted NBAC instance.
    Nbac(M),
}

/// One process of the Figure 5 transformation.
#[derive(Debug)]
pub struct QcFromNbac<N: NbacAlgorithm> {
    nbac: N,
    proposals: Vec<Option<u8>>,
    my_value: Option<u8>,
    nbac_decision: Option<Decision>,
    decided: Option<QcDecision<u8>>,
}

impl<N: NbacAlgorithm> QcFromNbac<N> {
    /// Create a process hosting the given NBAC instance.
    pub fn new(n: usize, nbac: N) -> Self {
        QcFromNbac {
            nbac,
            proposals: vec![None; n],
            my_value: None,
            nbac_decision: None,
            decided: None,
        }
    }

    /// The decision this process returned, if any.
    pub fn decision(&self) -> Option<&QcDecision<u8>> {
        self.decided.as_ref()
    }

    fn with_nbac(&mut self, ctx: &mut Ctx<Self>, f: impl FnOnce(&mut N, &mut Ctx<N>)) {
        let fd = ctx.fd().clone();
        let mut ictx = Ctx::<N>::detached(ctx.me(), ctx.n(), ctx.now(), fd);
        f(&mut self.nbac, &mut ictx);
        for (to, msg) in ictx.take_sends() {
            ctx.send(to, QcMsg::Nbac(msg));
        }
        for out in ictx.take_outputs() {
            if let NbacOutput::Decided(d) = out {
                self.nbac_decision.get_or_insert(d);
            }
        }
        self.check_done(ctx);
    }

    /// Lines 3–5, re-evaluated whenever state changes.
    fn check_done(&mut self, ctx: &mut Ctx<Self>) {
        if self.decided.is_some() || self.my_value.is_none() {
            return;
        }
        match self.nbac_decision {
            Some(Decision::Abort) => {
                self.decided = Some(QcDecision::Quit);
                ctx.output(ConsensusOutput::Decided(QcDecision::Quit));
            }
            Some(Decision::Commit) if self.proposals.iter().all(|p| p.is_some()) => {
                let min = self
                    .proposals
                    .iter()
                    .flatten()
                    .min()
                    .copied()
                    .expect("all proposals present");
                self.decided = Some(QcDecision::Value(min));
                ctx.output(ConsensusOutput::Decided(QcDecision::Value(min)));
            }
            _ => {}
        }
    }
}

impl<N: NbacAlgorithm> Protocol for QcFromNbac<N> {
    type Msg = QcMsg<N::Msg>;
    type Output = ConsensusOutput<QcDecision<u8>>;
    type Inv = u8;
    type Fd = N::Fd;

    fn on_invoke(&mut self, ctx: &mut Ctx<Self>, v: u8) {
        if self.my_value.is_none() {
            self.my_value = Some(v);
            ctx.broadcast(QcMsg::Prop(v)); // line 1, including self
            self.with_nbac(ctx, |nbac, ictx| nbac.on_invoke(ictx, Vote::Yes)); // line 2
        }
    }

    fn on_tick(&mut self, ctx: &mut Ctx<Self>) {
        if self.my_value.is_some() {
            self.with_nbac(ctx, |nbac, ictx| nbac.on_tick(ictx));
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<Self>, from: ProcessId, msg: Self::Msg) {
        match msg {
            QcMsg::Prop(v) => {
                if self.proposals[from.index()].is_none() {
                    self.proposals[from.index()] = Some(v);
                }
                self.check_done(ctx);
            }
            QcMsg::Nbac(inner) => {
                self.with_nbac(ctx, |nbac, ictx| nbac.on_message(ictx, from, inner));
            }
        }
    }

    fn footprint(&self, _me: ProcessId, n: usize, _step: StepKind<'_, Self>) -> Footprint {
        // Proposal floods and the hosted NBAC may message anyone on any
        // step; `check_done` outputs exactly once (guarded by
        // `decided.is_none()`), closing the output channel afterwards.
        let fp = Footprint::local().sends_to_all(n);
        if self.decided.is_some() {
            fp
        } else {
            fp.outputs()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::from_qc::NbacFromQc;
    use wfd_detectors::oracles::{FsOracle, PairOracle, PsiMode, PsiOracle};
    use wfd_quittable::{check_qc, PsiQc};
    use wfd_sim::{FailurePattern, RandomFair, Sim, SimConfig};

    // The full stack of §7: QC (Ψ) → [Fig 4] → NBAC → [Fig 5] → QC.
    type Nbac = NbacFromQc<PsiQc<u8>>;
    type Host = QcFromNbac<Nbac>;

    fn run_roundtrip(
        pattern: &FailurePattern,
        proposals: &[Option<u8>],
        psi_mode: PsiMode,
        seed: u64,
        horizon: u64,
    ) -> wfd_sim::Trace<QcMsg<<Nbac as Protocol>::Msg>, ConsensusOutput<QcDecision<u8>>> {
        let n = pattern.n();
        let fd = PairOracle::new(
            FsOracle::new(pattern, 30, seed),
            PsiOracle::new(pattern, psi_mode, 80, 30, seed),
        );
        let mut sim = Sim::new(
            SimConfig::new(n).with_horizon(horizon),
            (0..n)
                .map(|_| Host::new(n, NbacFromQc::new(n, PsiQc::new())))
                .collect(),
            pattern.clone(),
            fd,
            RandomFair::new(seed),
        );
        for (p, v) in proposals.iter().enumerate() {
            if let Some(v) = v {
                sim.schedule_invoke(ProcessId(p), 0, *v);
            }
        }
        let correct = pattern.correct();
        sim.run_until(move |_, procs| {
            procs
                .iter()
                .enumerate()
                .all(|(i, p)| !correct.contains(ProcessId(i)) || p.decision().is_some())
        });
        let (_, _, _, trace) = sim.into_parts();
        trace
    }

    #[test]
    fn failure_free_roundtrip_decides_smallest_proposal() {
        let n = 3;
        let pattern = FailurePattern::failure_free(n);
        let proposals = vec![Some(1), Some(0), Some(1)];
        for seed in 0..5 {
            let trace = run_roundtrip(&pattern, &proposals, PsiMode::OmegaSigma, seed, 80_000);
            let props: Vec<Option<u8>> = proposals.clone();
            let stats =
                check_qc(&trace, &props, &pattern).unwrap_or_else(|v| panic!("seed {seed}: {v}"));
            // Unanimous-Yes failure-free NBAC commits, so QC decides the
            // smallest proposal: 0.
            assert_eq!(stats.decision, Some(QcDecision::Value(0)), "seed {seed}");
        }
    }

    #[test]
    fn failure_leads_to_quit_via_abort() {
        let n = 3;
        let pattern = FailurePattern::failure_free(n).with_crash(ProcessId(0), 10);
        let proposals = vec![None, Some(1), Some(1)];
        for seed in 0..3 {
            let trace = run_roundtrip(&pattern, &proposals, PsiMode::Fs, seed, 60_000);
            let props: Vec<Option<u8>> = proposals.clone();
            let stats =
                check_qc(&trace, &props, &pattern).unwrap_or_else(|v| panic!("seed {seed}: {v}"));
            assert_eq!(stats.decision, Some(QcDecision::Quit), "seed {seed}");
        }
    }

    #[test]
    fn accessors() {
        let h: Host = QcFromNbac::new(2, NbacFromQc::new(2, PsiQc::new()));
        assert_eq!(h.decision(), None);
    }
}
