//! **Figure 4 of the paper**: using FS to transform QC into NBAC.
//!
//! ```text
//! Procedure VOTE(v):
//! 1  send v to all
//! 2  wait until [(received every q's vote) or FS = red]
//! 3  if all votes received and all Yes then myproposal := 1
//! 4  else myproposal := 0      { some No vote, or a failure }
//! 5  mydecision := PROPOSE(myproposal)   { the QC algorithm }
//! 6  if mydecision = 1 then return Commit
//! 7  else return Abort         { mydecision = 0 or Q }
//! ```
//!
//! The host is generic over the QC algorithm (anything proposing `u8` and
//! outputting `ConsensusOutput<QcDecision<u8>>`); its failure detector
//! value is the pair `(FS signal, inner QC detector)`.

use crate::spec::{Decision, NbacOutput, Vote};
use std::fmt::Debug;
use wfd_consensus::ConsensusOutput;
use wfd_detectors::Signal;
use wfd_quittable::QcDecision;
use wfd_sim::{Ctx, Footprint, ProcessId, Protocol, StepKind};

/// Bound on the QC interface Figure 4 needs.
pub trait QcAlgorithm: Protocol<Inv = u8, Output = ConsensusOutput<QcDecision<u8>>> {}

impl<T> QcAlgorithm for T where T: Protocol<Inv = u8, Output = ConsensusOutput<QcDecision<u8>>> {}

/// Messages: flooded votes plus wrapped QC traffic.
#[derive(Clone, Debug, PartialEq)]
pub enum NbacMsg<M> {
    /// Line 1: a process's vote.
    Vote(Vote),
    /// Traffic of the hosted QC instance.
    Qc(M),
}

/// One process of the Figure 4 transformation.
#[derive(Debug)]
pub struct NbacFromQc<Q: QcAlgorithm> {
    qc: Q,
    my_vote: Option<Vote>,
    votes: Vec<Option<Vote>>,
    proposed: bool,
    decided: Option<Decision>,
}

impl<Q: QcAlgorithm> NbacFromQc<Q> {
    /// Create a process hosting the given QC instance.
    pub fn new(n: usize, qc: Q) -> Self {
        NbacFromQc {
            qc,
            my_vote: None,
            votes: vec![None; n],
            proposed: false,
            decided: None,
        }
    }

    /// The decision this process returned, if any.
    pub fn decision(&self) -> Option<Decision> {
        self.decided
    }

    fn with_qc(&mut self, ctx: &mut Ctx<Self>, f: impl FnOnce(&mut Q, &mut Ctx<Q>)) {
        let fd = ctx.fd().1.clone();
        let mut ictx = Ctx::<Q>::detached(ctx.me(), ctx.n(), ctx.now(), fd);
        f(&mut self.qc, &mut ictx);
        for (to, msg) in ictx.take_sends() {
            ctx.send(to, NbacMsg::Qc(msg));
        }
        for out in ictx.take_outputs() {
            let ConsensusOutput::Decided(d) = out;
            self.on_qc_decision(ctx, d);
        }
    }

    fn on_qc_decision(&mut self, ctx: &mut Ctx<Self>, d: QcDecision<u8>) {
        if self.decided.is_some() {
            return;
        }
        // Lines 6–7: 1 ⇒ Commit; 0 or Q ⇒ Abort.
        let decision = match d {
            QcDecision::Value(1) => Decision::Commit,
            _ => Decision::Abort,
        };
        self.decided = Some(decision);
        ctx.output(NbacOutput::Decided(decision));
    }

    /// Line 2's wait, re-evaluated every step.
    fn drive(&mut self, ctx: &mut Ctx<Self>) {
        if self.my_vote.is_none() {
            return;
        }
        if !self.proposed {
            let all_in = self.votes.iter().all(|v| v.is_some());
            let red = ctx.fd().0 == Signal::Red;
            if all_in || red {
                // Lines 3–5.
                let all_yes = all_in && self.votes.iter().all(|v| *v == Some(Vote::Yes));
                let proposal: u8 = if all_yes { 1 } else { 0 };
                self.proposed = true;
                self.with_qc(ctx, |qc, ictx| qc.on_invoke(ictx, proposal));
            }
        } else {
            self.with_qc(ctx, |qc, ictx| qc.on_tick(ictx));
        }
    }
}

impl<Q: QcAlgorithm> Protocol for NbacFromQc<Q> {
    type Msg = NbacMsg<Q::Msg>;
    type Output = NbacOutput;
    type Inv = Vote;
    type Fd = (Signal, Q::Fd);

    fn on_invoke(&mut self, ctx: &mut Ctx<Self>, vote: Vote) {
        if self.my_vote.is_none() {
            self.my_vote = Some(vote);
            ctx.output(NbacOutput::Voted(vote));
            ctx.broadcast(NbacMsg::Vote(vote)); // line 1, including self
        }
        self.drive(ctx);
    }

    fn on_tick(&mut self, ctx: &mut Ctx<Self>) {
        self.drive(ctx);
    }

    fn on_message(&mut self, ctx: &mut Ctx<Self>, from: ProcessId, msg: Self::Msg) {
        match msg {
            NbacMsg::Vote(v) => {
                if self.votes[from.index()].is_none() {
                    self.votes[from.index()] = Some(v);
                }
                self.drive(ctx);
            }
            NbacMsg::Qc(inner) => {
                self.with_qc(ctx, |qc, ictx| qc.on_message(ictx, from, inner));
                self.drive(ctx);
            }
        }
    }

    fn footprint(&self, _me: ProcessId, n: usize, _step: StepKind<'_, Self>) -> Footprint {
        // Vote floods and the hosted QC may message anyone on any step;
        // outputs (`Voted`, `Decided`) all precede `decided` being set.
        let fp = Footprint::local().sends_to_all(n);
        if self.decided.is_some() {
            fp
        } else {
            fp.outputs()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::check_nbac;
    use wfd_detectors::oracles::{FsOracle, PairOracle, PsiMode, PsiOracle};
    use wfd_quittable::PsiQc;
    use wfd_sim::{FailurePattern, RandomFair, Sim, SimConfig, Time, Trace};

    type Host = NbacFromQc<PsiQc<u8>>;
    type HostTrace = Trace<NbacMsg<<PsiQc<u8> as Protocol>::Msg>, NbacOutput>;

    /// Run Figure 4 over a Ψ-based QC with the given votes (scheduled at
    /// the given times; `None` = never votes).
    fn run_nbac(
        pattern: &FailurePattern,
        votes: &[Option<(Time, Vote)>],
        psi_mode: PsiMode,
        psi_switch: u64,
        seed: u64,
        horizon: u64,
    ) -> HostTrace {
        let n = pattern.n();
        let fd = PairOracle::new(
            FsOracle::new(pattern, 30, seed),
            PsiOracle::new(pattern, psi_mode, psi_switch, 30, seed),
        );
        let mut sim = Sim::new(
            SimConfig::new(n).with_horizon(horizon),
            (0..n).map(|_| Host::new(n, PsiQc::new())).collect(),
            pattern.clone(),
            fd,
            RandomFair::new(seed),
        );
        for (p, v) in votes.iter().enumerate() {
            if let Some((t, vote)) = v {
                sim.schedule_invoke(ProcessId(p), *t, *vote);
            }
        }
        let correct = pattern.correct();
        sim.run_until(move |_, procs| {
            procs
                .iter()
                .enumerate()
                .all(|(i, p)| !correct.contains(ProcessId(i)) || p.decision().is_some())
        });
        let (_, _, _, trace) = sim.into_parts();
        trace
    }

    #[test]
    fn all_yes_no_failure_commits() {
        // The crucial non-triviality clause: unanimous Yes + failure-free
        // run ⇒ Commit (Abort would be trivially "valid" but useless).
        let n = 3;
        let pattern = FailurePattern::failure_free(n);
        let votes: Vec<_> = (0..n).map(|_| Some((0, Vote::Yes))).collect();
        for seed in 0..5 {
            let trace = run_nbac(&pattern, &votes, PsiMode::OmegaSigma, 60, seed, 60_000);
            let stats = check_nbac(&trace, &pattern).unwrap_or_else(|v| panic!("seed {seed}: {v}"));
            assert_eq!(
                stats.decision,
                Some(Decision::Commit),
                "seed {seed}: unanimous Yes without failure must commit"
            );
        }
    }

    #[test]
    fn single_no_forces_abort() {
        let n = 3;
        let pattern = FailurePattern::failure_free(n);
        let votes = vec![
            Some((0, Vote::Yes)),
            Some((0, Vote::No)),
            Some((0, Vote::Yes)),
        ];
        for seed in 0..5 {
            let trace = run_nbac(&pattern, &votes, PsiMode::OmegaSigma, 60, seed, 60_000);
            let stats = check_nbac(&trace, &pattern).unwrap_or_else(|v| panic!("seed {seed}: {v}"));
            assert_eq!(stats.decision, Some(Decision::Abort));
        }
    }

    #[test]
    fn crash_before_voting_aborts() {
        // p2 crashes before voting: Commit is impossible, FS turns red,
        // survivors must abort — NBAC's "non-blocking".
        let n = 3;
        let pattern = FailurePattern::failure_free(n).with_crash(ProcessId(2), 5);
        let votes = vec![Some((0, Vote::Yes)), Some((0, Vote::Yes)), None];
        for seed in 0..5 {
            // Ψ in consensus mode: the QC decides on the 0-proposals.
            let trace = run_nbac(&pattern, &votes, PsiMode::OmegaSigma, 100, seed, 80_000);
            let stats = check_nbac(&trace, &pattern).unwrap_or_else(|v| panic!("seed {seed}: {v}"));
            assert_eq!(stats.decision, Some(Decision::Abort));
        }
    }

    #[test]
    fn failure_with_fs_mode_psi_aborts_via_quit() {
        let n = 3;
        let pattern = FailurePattern::failure_free(n).with_crash(ProcessId(0), 40);
        let votes = vec![None, Some((0, Vote::Yes)), Some((0, Vote::Yes))];
        let trace = run_nbac(&pattern, &votes, PsiMode::Fs, 60, 3, 60_000);
        let stats = check_nbac(&trace, &pattern).unwrap_or_else(|v| panic!("{v}"));
        assert_eq!(stats.decision, Some(Decision::Abort));
    }

    #[test]
    fn all_yes_with_late_failure_may_still_commit() {
        // A failure after everyone voted Yes: aborting would be allowed,
        // but with Ψ in consensus mode the run commits — NBAC does not
        // force abort on failure.
        let n = 3;
        let pattern = FailurePattern::failure_free(n).with_crash(ProcessId(2), 2_000);
        let votes: Vec<_> = (0..n).map(|_| Some((0, Vote::Yes))).collect();
        let trace = run_nbac(&pattern, &votes, PsiMode::OmegaSigma, 50, 1, 80_000);
        let stats = check_nbac(&trace, &pattern).unwrap_or_else(|v| panic!("{v}"));
        assert_eq!(stats.decision, Some(Decision::Commit));
    }

    #[test]
    fn accessors() {
        let h: Host = NbacFromQc::new(3, PsiQc::new());
        assert_eq!(h.decision(), None);
    }
}
