//! The Attiya–Bar-Noy–Dolev register, quorum-generalised.
//!
//! The paper (§3, sufficiency half of Theorem 1): *"Where that algorithm
//! uses majorities to ensure that a read operation returns the most
//! recently written value, we can use the quorums provided by Σ to the
//! same effect."* [`AbdRegister`] implements exactly that: a multi-writer
//! multi-reader atomic register in which each phase waits until the
//! responder set **covers a quorum currently output by Σ**
//! ([`QuorumRule::Detector`]) or, as the classical baseline, until it
//! reaches a majority ([`QuorumRule::Majority`]).
//!
//! * Safety (linearizability) follows from Σ's intersection property: any
//!   two phases intersect in some replica, so a read's query phase meets
//!   the latest write's store phase.
//! * Liveness follows from Σ's completeness: eventually Σ outputs only
//!   correct processes, all of which reply.
//!
//! With `QuorumRule::Majority` the register is live only while a majority
//! is correct — the crossover that experiment E2 measures.
//!
//! The register is generic in its value type `V` because the Figure 1
//! extraction (paper §3, necessity half) stores *sets of participant
//! sets* in its registers.

use crate::spec::{OpHistory, OpId, OpRecord, RegOp, RegResp, Value};
use std::collections::VecDeque;
use std::fmt::Debug;
use wfd_sim::{Ctx, EventKind, Footprint, ProcessId, ProcessSet, Protocol, StepKind, Trace};

/// How a phase decides it has heard from "enough" replicas.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum QuorumRule {
    /// Wait until the responders cover some quorum currently output by the
    /// Σ failure detector module of this process.
    Detector,
    /// Wait for a majority (`⌊n/2⌋ + 1`) of replicas — the original ABD
    /// rule, which needs no detector but requires a correct majority.
    Majority,
}

/// A logical timestamp `(sequence, writer)` with lexicographic order —
/// ties between concurrent writers are broken by process id.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ts {
    /// Sequence number.
    pub seq: u64,
    /// The writer that produced this timestamp.
    pub writer: ProcessId,
}

impl Ts {
    /// The timestamp of the initial register value.
    pub const ZERO: Ts = Ts {
        seq: 0,
        writer: ProcessId(0),
    };
}

/// Register operations, generic in the stored value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AbdOp<V> {
    /// Read the register.
    Read,
    /// Write a value.
    Write(V),
}

/// Register responses, generic in the stored value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AbdResp<V> {
    /// Value returned by a read.
    ReadOk(V),
    /// Write acknowledgement.
    WriteOk,
}

/// Protocol messages of the ABD register.
#[derive(Clone, Debug, PartialEq)]
pub enum AbdMsg<V> {
    /// Phase 1: ask a replica for its current `(ts, value)`.
    Query {
        /// Nonce identifying the in-progress operation at the invoker.
        op: u64,
    },
    /// Phase-1 reply.
    Reply {
        /// Nonce echoed back.
        op: u64,
        /// Replica's current timestamp.
        ts: Ts,
        /// Replica's current value.
        val: V,
    },
    /// Phase 2: ask a replica to adopt `(ts, value)` if newer.
    Store {
        /// Nonce identifying the in-progress operation.
        op: u64,
        /// Timestamp to store.
        ts: Ts,
        /// Value to store.
        val: V,
    },
    /// Phase-2 acknowledgement.
    StoreAck {
        /// Nonce echoed back.
        op: u64,
    },
}

/// Observable outputs of the register protocol; feed a run's outputs to
/// [`op_history_from_trace`] to obtain a checkable [`OpHistory`].
#[derive(Clone, Debug, PartialEq)]
pub enum AbdOutput<V> {
    /// An operation left the local queue and began executing.
    Invoked {
        /// Operation id.
        id: OpId,
        /// The operation.
        op: AbdOp<V>,
    },
    /// An operation completed.
    Completed {
        /// Operation id.
        id: OpId,
        /// Its response.
        resp: AbdResp<V>,
        /// The replicas that served it (responders of both phases) — the
        /// participant set used by the Figure 1 extraction.
        participants: ProcessSet,
    },
}

#[derive(Clone, Debug)]
enum Phase<V> {
    Idle,
    Query {
        kind: AbdOp<V>,
        replies: Vec<Option<(Ts, V)>>,
        responders: ProcessSet,
    },
    Store {
        kind: AbdOp<V>,
        ts: Ts,
        val: V,
        acks: ProcessSet,
        participants: ProcessSet,
    },
}

/// One process of the quorum-generalised ABD register. Acts as client
/// (executing its own invocations) and replica (serving everyone's).
#[derive(Clone, Debug)]
pub struct AbdRegister<V> {
    rule: QuorumRule,
    // Replica state.
    ts: Ts,
    val: V,
    // Client state.
    phase: Phase<V>,
    op_nonce: u64,
    op_seq: u64,
    queue: VecDeque<AbdOp<V>>,
}

impl<V: Clone + Debug + PartialEq> AbdRegister<V> {
    /// Create a register process with the given quorum rule and initial
    /// register value.
    pub fn new(rule: QuorumRule, initial: V) -> Self {
        AbdRegister {
            rule,
            ts: Ts::ZERO,
            val: initial,
            phase: Phase::Idle,
            op_nonce: 0,
            op_seq: 0,
            queue: VecDeque::new(),
        }
    }

    /// Whether the process is between operations (nothing in flight or
    /// queued).
    pub fn is_idle(&self) -> bool {
        matches!(self.phase, Phase::Idle) && self.queue.is_empty()
    }

    /// The replica's current `(ts, value)` — visible for tests and for
    /// embedding protocols.
    pub fn replica_state(&self) -> (Ts, &V) {
        (self.ts, &self.val)
    }

    fn quorum_satisfied(&self, responders: &ProcessSet, ctx: &Ctx<Self>) -> bool {
        match self.rule {
            QuorumRule::Majority => responders.len() > ctx.n() / 2,
            QuorumRule::Detector => {
                let quorum = ctx.fd();
                !quorum.is_empty() && quorum.is_subset(responders)
            }
        }
    }

    fn start_next_op(&mut self, ctx: &mut Ctx<Self>) {
        if !matches!(self.phase, Phase::Idle) {
            return;
        }
        let Some(kind) = self.queue.pop_front() else {
            return;
        };
        self.op_nonce += 1;
        let id = (ctx.me(), self.op_seq);
        self.op_seq += 1;
        ctx.output(AbdOutput::Invoked {
            id,
            op: kind.clone(),
        });
        self.phase = Phase::Query {
            kind,
            replies: vec![None; ctx.n()],
            responders: ProcessSet::new(),
        };
        ctx.broadcast(AbdMsg::Query { op: self.op_nonce });
    }

    /// Progress check, run with the failure detector value of the current
    /// step: Σ's current quorum may have shrunk below the responders we
    /// already have.
    fn try_advance(&mut self, ctx: &mut Ctx<Self>) {
        match std::mem::replace(&mut self.phase, Phase::Idle) {
            Phase::Idle => self.start_next_op(ctx),
            Phase::Query {
                kind,
                replies,
                responders,
            } => {
                if !self.quorum_satisfied(&responders, ctx) {
                    self.phase = Phase::Query {
                        kind,
                        replies,
                        responders,
                    };
                    return;
                }
                let (max_ts, max_val) = replies
                    .iter()
                    .flatten()
                    .max_by_key(|(ts, _)| *ts)
                    .map(|(ts, v)| (*ts, v.clone()))
                    .expect("a satisfied quorum is non-empty");
                let (store_ts, store_val) = match &kind {
                    AbdOp::Write(v) => (
                        Ts {
                            seq: max_ts.seq + 1,
                            writer: ctx.me(),
                        },
                        v.clone(),
                    ),
                    AbdOp::Read => (max_ts, max_val),
                };
                self.op_nonce += 1;
                self.phase = Phase::Store {
                    kind,
                    ts: store_ts,
                    val: store_val.clone(),
                    acks: ProcessSet::new(),
                    participants: responders,
                };
                ctx.broadcast(AbdMsg::Store {
                    op: self.op_nonce,
                    ts: store_ts,
                    val: store_val,
                });
            }
            Phase::Store {
                kind,
                ts,
                val,
                acks,
                participants,
            } => {
                if !self.quorum_satisfied(&acks, ctx) {
                    self.phase = Phase::Store {
                        kind,
                        ts,
                        val,
                        acks,
                        participants,
                    };
                    return;
                }
                let id = (ctx.me(), self.op_seq - 1);
                let resp = match kind {
                    AbdOp::Read => AbdResp::ReadOk(val),
                    AbdOp::Write(_) => AbdResp::WriteOk,
                };
                let participants = participants.union(&acks);
                ctx.output(AbdOutput::Completed {
                    id,
                    resp,
                    participants,
                });
                self.start_next_op(ctx);
            }
        }
    }
}

impl<V: Clone + Debug + PartialEq> Protocol for AbdRegister<V> {
    type Msg = AbdMsg<V>;
    type Output = AbdOutput<V>;
    type Inv = AbdOp<V>;
    type Fd = ProcessSet;

    fn on_invoke(&mut self, ctx: &mut Ctx<Self>, inv: AbdOp<V>) {
        self.queue.push_back(inv);
        self.try_advance(ctx);
    }

    fn on_tick(&mut self, ctx: &mut Ctx<Self>) {
        // Σ's quorum can change between steps; re-check progress.
        self.try_advance(ctx);
    }

    fn on_message(&mut self, ctx: &mut Ctx<Self>, from: ProcessId, msg: AbdMsg<V>) {
        match msg {
            AbdMsg::Query { op } => {
                ctx.send(
                    from,
                    AbdMsg::Reply {
                        op,
                        ts: self.ts,
                        val: self.val.clone(),
                    },
                );
            }
            AbdMsg::Store { op, ts, val } => {
                if ts > self.ts {
                    self.ts = ts;
                    self.val = val;
                }
                ctx.send(from, AbdMsg::StoreAck { op });
            }
            AbdMsg::Reply { op, ts, val } => {
                if op == self.op_nonce {
                    if let Phase::Query {
                        replies,
                        responders,
                        ..
                    } = &mut self.phase
                    {
                        replies[from.index()] = Some((ts, val));
                        responders.insert(from);
                    }
                }
                self.try_advance(ctx);
            }
            AbdMsg::StoreAck { op } => {
                if op == self.op_nonce {
                    if let Phase::Store { acks, .. } = &mut self.phase {
                        acks.insert(from);
                    }
                }
                self.try_advance(ctx);
            }
        }
    }

    fn footprint(&self, _me: ProcessId, n: usize, step: StepKind<'_, Self>) -> Footprint {
        match step {
            // Server-side handlers answer only the asking process and
            // never complete an operation.
            StepKind::Deliver {
                from,
                msg: AbdMsg::Query { .. } | AbdMsg::Store { .. },
            } => Footprint::local().sends_to(from),
            // Everything else funnels through `try_advance`, which may
            // launch a phase (broadcast) or complete an op (output).
            // wfd-lint: allow(d7-footprint, try_advance may launch a phase broadcast or complete an op with an output on any non-server step)
            _ => Footprint::opaque(n),
        }
    }
}

/// Reconstruct a checkable operation history from a run trace of
/// `AbdRegister<Value>` processes.
///
/// Operations that never completed (e.g. their invoker crashed) appear as
/// pending records, which the linearizability checker treats per the
/// standard pending-operation semantics.
pub fn op_history_from_trace(
    trace: &Trace<AbdMsg<Value>, AbdOutput<Value>>,
    initial: Value,
) -> OpHistory {
    let mut h = OpHistory::new(initial);
    for event in trace.events() {
        if let EventKind::Output(out) = &event.kind {
            match out {
                AbdOutput::Invoked { id, op } => {
                    h.ops.push(OpRecord {
                        id: *id,
                        op: match op {
                            AbdOp::Read => RegOp::Read,
                            AbdOp::Write(v) => RegOp::Write(*v),
                        },
                        invoked_at: event.time,
                        response: None,
                        participants: ProcessSet::new(),
                    });
                }
                AbdOutput::Completed {
                    id,
                    resp,
                    participants,
                } => {
                    let rec = h
                        .ops
                        .iter_mut()
                        .find(|r| r.id == *id)
                        .expect("completion without invocation");
                    rec.response = Some((
                        event.time,
                        match resp {
                            AbdResp::ReadOk(v) => RegResp::ReadOk(*v),
                            AbdResp::WriteOk => RegResp::WriteOk,
                        },
                    ));
                    rec.participants = participants.clone();
                }
            }
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linearizability::check_linearizable;
    use wfd_detectors::oracles::SigmaOracle;
    use wfd_sim::{
        Adversarial, ConstDetector, Environment, FailurePattern, PatternSampler, RandomFair,
        Scheduler, Sim, SimConfig,
    };

    type Reg = AbdRegister<Value>;

    /// Build a sim with one read/write workload per process: each process
    /// alternates `write(unique)` / `read`, `ops_per_proc` times.
    fn run_register<S: Scheduler>(
        n: usize,
        rule: QuorumRule,
        pattern: FailurePattern,
        sigma_stabilize: u64,
        sched: S,
        ops_per_proc: u64,
        horizon: u64,
    ) -> OpHistory {
        run_register_spaced(
            n,
            rule,
            pattern,
            sigma_stabilize,
            sched,
            ops_per_proc,
            horizon,
            40,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn run_register_spaced<S: Scheduler>(
        n: usize,
        rule: QuorumRule,
        pattern: FailurePattern,
        sigma_stabilize: u64,
        sched: S,
        ops_per_proc: u64,
        horizon: u64,
        spacing: u64,
    ) -> OpHistory {
        let sigma = SigmaOracle::new(&pattern, sigma_stabilize, 7).with_jitter(sigma_stabilize / 2);
        let mut sim = Sim::new(
            SimConfig::new(n).with_horizon(horizon),
            (0..n).map(|_| Reg::new(rule, 0)).collect(),
            pattern,
            sigma,
            sched,
        );
        for p in 0..n {
            for k in 0..ops_per_proc {
                let t = k * spacing;
                let unique = (p as u64 + 1) * 1_000 + k;
                sim.schedule_invoke(ProcessId(p), t, AbdOp::Write(unique));
                sim.schedule_invoke(ProcessId(p), t + spacing / 2, AbdOp::Read);
            }
        }
        sim.run();
        op_history_from_trace(sim.trace(), 0)
    }

    #[test]
    fn sigma_abd_is_linearizable_failure_free() {
        for seed in 0..5 {
            let h = run_register(
                3,
                QuorumRule::Detector,
                FailurePattern::failure_free(3),
                30,
                RandomFair::new(seed),
                3,
                6_000,
            );
            assert!(
                h.completed().count() >= 15,
                "seed {seed}: ops should complete"
            );
            check_linearizable(&h).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{h}"));
        }
    }

    #[test]
    fn sigma_abd_survives_majority_crash() {
        // 3 of 5 crash: majorities are impossible, but Σ keeps the
        // register both safe and live — the heart of Theorem 1.
        let n = 5;
        let pattern = FailurePattern::with_crashes(
            n,
            &[
                (ProcessId(1), 400),
                (ProcessId(2), 600),
                (ProcessId(4), 800),
            ],
        );
        for seed in 0..5 {
            // Spacing of 600 puts the last write/read pairs well after the
            // final crash at t = 800.
            let h = run_register_spaced(
                n,
                QuorumRule::Detector,
                pattern.clone(),
                1_000,
                RandomFair::new(seed),
                4,
                30_000,
                600,
            );
            check_linearizable(&h).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{h}"));
            // The two survivors must still complete operations *after* the
            // last crash.
            let late_completions = h
                .completed()
                .filter(|o| o.response.expect("completed").0 > 800)
                .count();
            assert!(
                late_completions > 0,
                "seed {seed}: Σ-ABD must stay live with a crashed majority"
            );
        }
    }

    #[test]
    fn majority_abd_is_linearizable_with_minority_crashes() {
        let n = 5;
        let pattern = FailurePattern::with_crashes(n, &[(ProcessId(0), 300), (ProcessId(3), 500)]);
        for seed in 0..5 {
            let sigma = ConstDetector::new(ProcessSet::new());
            let mut sim = Sim::new(
                SimConfig::new(n).with_horizon(15_000),
                (0..n).map(|_| Reg::new(QuorumRule::Majority, 0)).collect(),
                pattern.clone(),
                sigma,
                RandomFair::new(seed),
            );
            for p in 0..n {
                sim.schedule_invoke(ProcessId(p), 10, AbdOp::Write(100 + p as u64));
                sim.schedule_invoke(ProcessId(p), 200, AbdOp::Read);
                sim.schedule_invoke(ProcessId(p), 900, AbdOp::Read);
            }
            sim.run();
            let h = op_history_from_trace(sim.trace(), 0);
            check_linearizable(&h).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{h}"));
            assert!(h.completed().count() >= n);
        }
    }

    #[test]
    fn majority_abd_blocks_when_majority_crashes() {
        let n = 5;
        let pattern = FailurePattern::with_crashes(
            n,
            &[
                (ProcessId(0), 100),
                (ProcessId(1), 100),
                (ProcessId(2), 100),
            ],
        );
        let mut sim = Sim::new(
            SimConfig::new(n).with_horizon(10_000),
            (0..n).map(|_| Reg::new(QuorumRule::Majority, 0)).collect(),
            pattern,
            ConstDetector::new(ProcessSet::new()),
            RandomFair::new(3),
        );
        // Invoke *after* the majority is gone.
        sim.schedule_invoke(ProcessId(3), 500, AbdOp::Write(7));
        sim.run();
        let h = op_history_from_trace(sim.trace(), 0);
        let op = h
            .ops
            .iter()
            .find(|o| o.id == (ProcessId(3), 0))
            .expect("invoked");
        assert!(
            !op.is_complete(),
            "majority ABD must block without a live majority (got {op})"
        );
    }

    #[test]
    fn sigma_abd_linearizable_under_adversarial_schedule() {
        let n = 4;
        let pattern = FailurePattern::with_crashes(n, &[(ProcessId(0), 700)]);
        let h = run_register(
            n,
            QuorumRule::Detector,
            pattern,
            900,
            Adversarial::new(5),
            3,
            25_000,
        );
        check_linearizable(&h).unwrap_or_else(|e| panic!("{e}\n{h}"));
    }

    #[test]
    fn property_random_environments_and_schedules_stay_linearizable() {
        // Sweep: random patterns from the unrestricted environment ×
        // random schedules; Σ-ABD must be linearizable in every run.
        let n = 4;
        let mut sampler = PatternSampler::new(n, Environment::AtLeastOneCorrect, 99);
        for case in 0..12u64 {
            let pattern = sampler.sample(2_000);
            let h = run_register(
                n,
                QuorumRule::Detector,
                pattern.clone(),
                2_500,
                RandomFair::new(case),
                2,
                12_000,
            );
            check_linearizable(&h)
                .unwrap_or_else(|e| panic!("case {case} pattern {pattern}: {e}\n{h}"));
        }
    }

    #[test]
    fn participants_are_recorded_for_completed_ops() {
        let h = run_register(
            3,
            QuorumRule::Detector,
            FailurePattern::failure_free(3),
            10,
            RandomFair::new(1),
            1,
            4_000,
        );
        for op in h.completed() {
            assert!(
                !op.participants.is_empty(),
                "completed ops must record their quorum participants"
            );
        }
    }

    #[test]
    fn replica_accessors() {
        let r: Reg = AbdRegister::new(QuorumRule::Majority, 42);
        assert!(r.is_idle());
        let (ts, v) = r.replica_state();
        assert_eq!(ts, Ts::ZERO);
        assert_eq!(*v, 42);
    }

    #[test]
    fn timestamps_order_lexicographically() {
        let a = Ts {
            seq: 1,
            writer: ProcessId(2),
        };
        let b = Ts {
            seq: 2,
            writer: ProcessId(0),
        };
        let c = Ts {
            seq: 1,
            writer: ProcessId(3),
        };
        assert!(a < b);
        assert!(a < c, "same seq breaks ties by writer id");
    }
}
