//! **Figure 1 of the paper**: extracting Σ from any failure detector `D`
//! and any register implementation `A`.
//!
//! The necessity half of Theorem 1. Given an algorithm `A` that implements
//! atomic registers using some detector `D`, every process runs:
//!
//! 1. `n` register instances `Reg_1 … Reg_n` built from `A` (+`D`), where
//!    `Reg_i` is written only by `p_i` and read by everyone;
//! 2. a loop in which `p_i` **writes** its accumulated set of participant
//!    sets `E_i` into `Reg_i` (recording the participants `P_i(k)` of the
//!    write), then **reads** every `Reg_j`, and for every participant set
//!    `X` it finds there **probes** all members of `X` until one replies;
//! 3. `Σ-output_i := P_i(k−1) ∪ {one responsive member of every X}`.
//!
//! *Intersection* holds because `p_i` writes before reading everyone
//! (register atomicity forces two loop iterations at different processes
//! to see each other in at least one direction), and *completeness* holds
//! because eventually participant sets and probe responders contain only
//! correct processes.
//!
//! The implementation is generic over the register algorithm: any
//! [`Protocol`] speaking the [`AbdOp`]/[`AbdOutput`] operation interface
//! can be slotted in as `A` — [`crate::AbdRegister`] with either quorum
//! rule being the in-repo instantiations.

use crate::abd::{AbdOp, AbdOutput, AbdResp};
use std::collections::{BTreeSet, VecDeque};
use std::fmt::Debug;
use wfd_sim::{Ctx, Footprint, ProcessId, ProcessSet, Protocol, StepKind};

/// What Figure 1 stores in its registers: the write counter `k` together
/// with the set `E_i` of participant sets of all previous writes.
pub type EValue = (u64, BTreeSet<ProcessSet>);

/// The initial value of every `Reg_i`: `k = 0`, `E = {Π}` (the paper
/// assumes `P_i(0) = Π`).
pub fn initial_e_value(n: usize) -> EValue {
    let mut e = BTreeSet::new();
    e.insert(ProcessSet::full(n));
    (0, e)
}

/// Bound on the register-algorithm interface Figure 1 needs: a protocol
/// whose invocations are register operations over [`EValue`] and whose
/// outputs are the corresponding completions.
pub trait RegisterAlgorithm: Protocol<Inv = AbdOp<EValue>, Output = AbdOutput<EValue>> {}

impl<T> RegisterAlgorithm for T where T: Protocol<Inv = AbdOp<EValue>, Output = AbdOutput<EValue>> {}

/// Messages of the transformation: wrapped register-instance traffic plus
/// the probe/ack pairs of Figure 1's lines 14–18.
#[derive(Clone, Debug, PartialEq)]
pub enum ExtractionMsg<M> {
    /// Traffic of register instance `instance` (the instance index is the
    /// id of its writer).
    Reg {
        /// Which `Reg_j` this belongs to.
        instance: usize,
        /// The inner algorithm's message.
        inner: M,
    },
    /// Figure 1 line 14: `send(k, ?)`.
    Probe {
        /// Nonce matching the ack to the outstanding wait.
        nonce: u64,
    },
    /// Figure 1 line 18: `send(l, ok)`.
    ProbeAck {
        /// Echoed nonce.
        nonce: u64,
    },
}

#[derive(Clone, Debug)]
enum Stage {
    /// Waiting for the completion of `Reg_i.write(k, E_i)`.
    Writing,
    /// Waiting for the completion of `Reg_j.read()`.
    Reading {
        /// Register currently being read.
        j: usize,
    },
    /// Probing the participant sets collected from `Reg_j.read()`.
    Probing {
        /// Register whose sets are being probed.
        j: usize,
        /// The set currently awaiting one acknowledgement.
        current: ProcessSet,
        /// Sets still to probe from this register.
        remaining: VecDeque<ProcessSet>,
    },
}

/// One process of the Figure 1 transformation, generic over the hosted
/// register algorithm `A`.
///
/// Outputs a [`ProcessSet`] — the emulated Σ value — every time
/// `Σ-output_i` is updated. Validate a run with
/// [`check_sigma`](wfd_detectors::check::check_sigma) via
/// [`history_from_outputs`](wfd_detectors::history::history_from_outputs).
#[derive(Debug)]
pub struct SigmaExtraction<A: RegisterAlgorithm> {
    /// The `n` hosted register instances (this process's replica of each).
    regs: Vec<A>,
    stage: Stage,
    k: u64,
    e_sets: BTreeSet<ProcessSet>,
    /// `P_i(k−1)`: participants of the previous write.
    last_participants: ProcessSet,
    /// `F_i` being assembled this iteration.
    f: ProcessSet,
    probe_nonce: u64,
    /// Loop iterations completed (for harness introspection).
    iterations: u64,
}

impl<A: RegisterAlgorithm> SigmaExtraction<A> {
    /// Create the transformation process hosting the given `n` register
    /// instances (`regs[j]` is this process's replica of `Reg_j`).
    ///
    /// # Panics
    ///
    /// Panics if `regs.len() != n`.
    pub fn new(n: usize, regs: Vec<A>) -> Self {
        assert_eq!(regs.len(), n, "one register instance per process");
        SigmaExtraction {
            regs,
            stage: Stage::Writing,
            k: 0,
            e_sets: {
                let mut e = BTreeSet::new();
                e.insert(ProcessSet::full(n));
                e
            },
            last_participants: ProcessSet::full(n),
            f: ProcessSet::new(),
            probe_nonce: 0,
            iterations: 0,
        }
    }

    /// Completed loop iterations.
    pub fn iterations(&self) -> u64 {
        self.iterations
    }

    /// Run `f` on hosted instance `idx` with a sub-context, forwarding its
    /// sends (wrapped) and handling its operation completions.
    fn with_instance(
        &mut self,
        ctx: &mut Ctx<Self>,
        idx: usize,
        f: impl FnOnce(&mut A, &mut Ctx<A>),
    ) {
        let mut inner_ctx = Ctx::<A>::detached(ctx.me(), ctx.n(), ctx.now(), ctx.fd().clone());
        f(&mut self.regs[idx], &mut inner_ctx);
        for (to, msg) in inner_ctx.take_sends() {
            ctx.send(
                to,
                ExtractionMsg::Reg {
                    instance: idx,
                    inner: msg,
                },
            );
        }
        for out in inner_ctx.take_outputs() {
            self.on_instance_output(ctx, idx, out);
        }
    }

    fn on_instance_output(&mut self, ctx: &mut Ctx<Self>, idx: usize, out: AbdOutput<EValue>) {
        let AbdOutput::Completed {
            resp, participants, ..
        } = out
        else {
            return; // `Invoked` echoes are uninteresting here
        };
        match (&self.stage, resp) {
            (Stage::Writing, AbdResp::WriteOk) if idx == ctx.me().index() => {
                // Lines 8–10: record P_i(k), fold it into E_i, seed F_i
                // with P_i(k−1).
                let p_k = participants;
                self.f = self.last_participants.clone();
                self.last_participants = p_k.clone();
                self.e_sets.insert(p_k);
                self.start_read(ctx, 0);
            }
            (Stage::Reading { j }, AbdResp::ReadOk((_, l_j))) if idx == *j => {
                let j = *j;
                let mut remaining: VecDeque<ProcessSet> = l_j.into_iter().collect();
                match remaining.pop_front() {
                    Some(first) => {
                        self.stage = Stage::Probing {
                            j,
                            current: first.clone(),
                            remaining,
                        };
                        self.send_probe(ctx, &first);
                    }
                    None => self.next_register(ctx, j),
                }
            }
            _ => {}
        }
    }

    fn send_probe(&mut self, ctx: &mut Ctx<Self>, set: &ProcessSet) {
        self.probe_nonce += 1;
        for q in set.iter() {
            ctx.send(
                q,
                ExtractionMsg::Probe {
                    nonce: self.probe_nonce,
                },
            );
        }
    }

    fn start_read(&mut self, ctx: &mut Ctx<Self>, j: usize) {
        self.stage = Stage::Reading { j };
        self.with_instance(ctx, j, |reg, ictx| reg.on_invoke(ictx, AbdOp::Read));
    }

    fn next_register(&mut self, ctx: &mut Ctx<Self>, j: usize) {
        if j + 1 < ctx.n() {
            self.start_read(ctx, j + 1);
        } else {
            // Line 17: Σ-output_i := F_i; then start the next iteration.
            self.iterations += 1;
            ctx.output(self.f.clone());
            self.start_write(ctx);
        }
    }

    fn start_write(&mut self, ctx: &mut Ctx<Self>) {
        self.k += 1;
        self.stage = Stage::Writing;
        let value = (self.k, self.e_sets.clone());
        let me = ctx.me().index();
        self.with_instance(ctx, me, |reg, ictx| {
            reg.on_invoke(ictx, AbdOp::Write(value))
        });
    }
}

impl<A: RegisterAlgorithm> Protocol for SigmaExtraction<A> {
    type Msg = ExtractionMsg<A::Msg>;
    type Output = ProcessSet;
    type Inv = ();
    type Fd = A::Fd;

    fn on_start(&mut self, ctx: &mut Ctx<Self>) {
        // Σ-output_i is initially Π (line 5).
        ctx.output(ProcessSet::full(ctx.n()));
        self.start_write(ctx);
    }

    fn on_tick(&mut self, ctx: &mut Ctx<Self>) {
        // Give every hosted instance a chance to re-check quorum progress
        // under the current detector value.
        for idx in 0..self.regs.len() {
            self.with_instance(ctx, idx, |reg, ictx| reg.on_tick(ictx));
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<Self>, from: ProcessId, msg: Self::Msg) {
        match msg {
            ExtractionMsg::Reg { instance, inner } => {
                self.with_instance(ctx, instance, |reg, ictx| reg.on_message(ictx, from, inner));
            }
            ExtractionMsg::Probe { nonce } => {
                // Task 2 (line 18): always answer probes.
                ctx.send(from, ExtractionMsg::ProbeAck { nonce });
            }
            ExtractionMsg::ProbeAck { nonce } => {
                if nonce != self.probe_nonce {
                    return; // stale ack for an earlier probe
                }
                if let Stage::Probing {
                    j,
                    current,
                    remaining,
                } = &mut self.stage
                {
                    if !current.contains(from) {
                        return;
                    }
                    // Line 16: F_i := F_i ∪ {p_t}.
                    self.f.insert(from);
                    let j = *j;
                    match remaining.pop_front() {
                        Some(next) => {
                            let next_clone = next.clone();
                            if let Stage::Probing { current, .. } = &mut self.stage {
                                *current = next;
                            }
                            self.send_probe(ctx, &next_clone);
                        }
                        None => self.next_register(ctx, j),
                    }
                }
            }
        }
    }

    fn footprint(&self, _me: ProcessId, n: usize, step: StepKind<'_, Self>) -> Footprint {
        match step {
            // Probes are always answered with a single ack to the asker.
            StepKind::Deliver {
                from,
                msg: ExtractionMsg::Probe { .. },
            } => Footprint::local().sends_to(from),
            // Register traffic, acks and ticks drive the extraction loop:
            // hosted instances may message anyone and each finished
            // iteration outputs a quorum.
            // wfd-lint: allow(d7-footprint, the hosted register instances may message anyone and finished iterations output quorums)
            _ => Footprint::opaque(n),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abd::{AbdRegister, QuorumRule};
    use wfd_detectors::check::check_sigma;
    use wfd_detectors::history::history_from_outputs;
    use wfd_detectors::oracles::SigmaOracle;
    use wfd_sim::{Adversarial, FailurePattern, RandomFair, Scheduler, Sim, SimConfig};

    type Host = SigmaExtraction<AbdRegister<EValue>>;

    fn make_processes(n: usize) -> Vec<Host> {
        (0..n)
            .map(|_| {
                SigmaExtraction::new(
                    n,
                    (0..n)
                        .map(|_| AbdRegister::new(QuorumRule::Detector, initial_e_value(n)))
                        .collect(),
                )
            })
            .collect()
    }

    fn run_extraction<S: Scheduler>(
        n: usize,
        pattern: &FailurePattern,
        sigma_seed: u64,
        sched: S,
        horizon: u64,
    ) -> (wfd_detectors::History<ProcessSet>, Vec<u64>) {
        let sigma = SigmaOracle::new(pattern, 150, sigma_seed).with_jitter(100);
        let mut sim = Sim::new(
            SimConfig::new(n).with_horizon(horizon),
            make_processes(n),
            pattern.clone(),
            sigma,
            sched,
        );
        sim.run();
        let h = history_from_outputs(sim.trace(), |q: &ProcessSet| Some(q.clone()));
        let iters = sim.processes().iter().map(|p| p.iterations()).collect();
        (h, iters)
    }

    #[test]
    fn extracted_sigma_conforms_failure_free() {
        let n = 3;
        let pattern = FailurePattern::failure_free(n);
        for seed in 0..3 {
            let (h, iters) = run_extraction(n, &pattern, seed, RandomFair::new(seed), 30_000);
            assert!(
                iters.iter().all(|&k| k >= 2),
                "seed {seed}: every process should complete loop iterations, got {iters:?}"
            );
            check_sigma(&h, &pattern).unwrap_or_else(|v| panic!("seed {seed}: {v}"));
        }
    }

    #[test]
    fn extracted_sigma_conforms_with_crashes() {
        let n = 3;
        let pattern = FailurePattern::with_crashes(n, &[(ProcessId(2), 800)]);
        for seed in 0..3 {
            let (h, iters) = run_extraction(n, &pattern, seed, RandomFair::new(seed), 40_000);
            check_sigma(&h, &pattern).unwrap_or_else(|v| panic!("seed {seed}: {v}"));
            assert!(
                iters[0] >= 2 && iters[1] >= 2,
                "correct processes keep looping"
            );
        }
    }

    #[test]
    fn extracted_sigma_conforms_with_majority_crashed() {
        // The defining power of the theorem: D (here a Σ oracle) lets A
        // implement registers even with a crashed majority, and the
        // transformation still extracts a correct Σ.
        let n = 5;
        let pattern = FailurePattern::with_crashes(
            n,
            &[
                (ProcessId(0), 500),
                (ProcessId(2), 900),
                (ProcessId(4), 1_300),
            ],
        );
        let (h, _) = run_extraction(n, &pattern, 4, RandomFair::new(11), 60_000);
        check_sigma(&h, &pattern).unwrap_or_else(|v| panic!("{v}"));
        // Late outputs must have shed the crashed processes.
        let last = h.last_of(ProcessId(1)).expect("p1 keeps emitting").1;
        assert!(
            last.is_subset(&pattern.correct()),
            "final Σ-output {last} should contain only correct processes"
        );
    }

    #[test]
    fn extracted_sigma_conforms_under_adversarial_schedule() {
        let n = 3;
        let pattern = FailurePattern::with_crashes(n, &[(ProcessId(1), 600)]);
        let (h, _) = run_extraction(n, &pattern, 9, Adversarial::new(2), 60_000);
        check_sigma(&h, &pattern).unwrap_or_else(|v| panic!("{v}"));
    }

    #[test]
    fn extraction_works_over_majority_abd_with_trivial_detector() {
        // The theorem quantifies over ANY (A, D) implementing registers.
        // Here A = majority-rule ABD and D is trivial (constant ∅) — a
        // valid register implementation in majority-correct environments,
        // and the extraction must still emit a conforming Σ there.
        use wfd_sim::ConstDetector;
        let n = 3;
        let pattern = FailurePattern::with_crashes(n, &[(ProcessId(2), 700)]);
        let processes: Vec<SigmaExtraction<AbdRegister<EValue>>> = (0..n)
            .map(|_| {
                SigmaExtraction::new(
                    n,
                    (0..n)
                        .map(|_| AbdRegister::new(QuorumRule::Majority, initial_e_value(n)))
                        .collect(),
                )
            })
            .collect();
        let mut sim = Sim::new(
            SimConfig::new(n).with_horizon(40_000),
            processes,
            pattern.clone(),
            ConstDetector::new(wfd_sim::ProcessSet::new()),
            RandomFair::new(5),
        );
        sim.run();
        let h = history_from_outputs(sim.trace(), |q: &ProcessSet| Some(q.clone()));
        assert!(h.len() > 5, "extraction should keep emitting quorums");
        check_sigma(&h, &pattern).unwrap_or_else(|v| panic!("{v}"));
    }

    #[test]
    fn initial_e_value_is_k0_full_set() {
        let (k, e) = initial_e_value(4);
        assert_eq!(k, 0);
        assert_eq!(e.len(), 1);
        assert!(e.contains(&ProcessSet::full(4)));
    }

    #[test]
    #[should_panic(expected = "one register instance per process")]
    fn wrong_instance_count_is_rejected() {
        let _ = SigmaExtraction::<AbdRegister<EValue>>::new(
            3,
            vec![AbdRegister::new(QuorumRule::Detector, initial_e_value(3))],
        );
    }
}
