//! # wfd-registers — atomic registers and the Σ result (paper §3)
//!
//! Theorem 1 of the paper: **for all environments, Σ is the weakest
//! failure detector to implement an atomic register.** This crate holds
//! both halves, executable:
//!
//! * **Sufficiency** — [`abd::AbdRegister`], the Attiya–Bar-Noy–Dolev
//!   register adapted to wait for *quorums supplied by Σ* instead of
//!   majorities. The same code, switched to
//!   [`abd::QuorumRule::Majority`], is the classical majority-based
//!   baseline that only works when a majority of processes is correct.
//! * **Necessity** — [`sigma_extraction::SigmaExtraction`], the Figure 1
//!   transformation: given *any* algorithm `A` implementing registers
//!   with *any* detector `D`, it emulates a correct Σ output.
//! * **The judge** — [`linearizability`], a sound-and-complete
//!   linearizability checker for register histories (Wing–Gong search with
//!   memoisation), which is how runs of the register algorithms are
//!   verified, plus [`spec`] with the operation-history vocabulary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod abd;
pub mod linearizability;
pub mod sigma_extraction;
pub mod spec;
pub mod transformations;

pub use abd::{AbdRegister, QuorumRule};
pub use linearizability::{check_linearizable, LinearizabilityError};
pub use spec::{OpHistory, OpId, OpRecord, RegOp, RegResp};
